open O2_ir
open O2_pta

(* Access nodes carry the flat-IR location id (tid, see {!Flat.tid_field})
   of the location they touch — an int, not a structural target, so the
   race engine's grouping and class keys stay in integer land. Decode with
   {!target_of} at the reporting boundary. *)
type node_kind =
  | Read of int
  | Write of int
  | Acq of int
  | Rel of int
  | SpawnTo of int
  | JoinOf of int
  | SemSignal of int
  | SemWait of int

type node = {
  n_id : int;
  n_origin : int;
  n_sid : int;
  n_pos : Types.pos;
  n_kind : node_kind;
  n_lockset : int;
}

type t = {
  solver : Solver.result;
  locks : Lockset.t;
  mutable all_nodes : node list;  (* reversed during build *)
  mutable nodes_arr : node array;
  mutable accesses_arr : node array;
  mutable spawns_e : (int * int * int) list;
  mutable joins_e : (int * int * int) list;
  mutable sems_e : (int * int * int * int) list;
  self_par : bool array;
  ids : O2_util.Idgen.t;
  serial_events : bool;
  lock_region : bool;
  (* origin-level HB closure, precomputed once after the edge lists are
     final. hb_thresholds.(o) holds the sorted node ids of o's outgoing
     timed edges (spawns + semaphore signals): HB from a node of o depends
     only on which of those edges lie at/after it, i.e. on the index of the
     first threshold ≥ the node id. hb_inpos.(o) holds the sorted entry
     positions of o's incoming edges (join targets + semaphore waits): any
     position reachable *into* o is either min_int or one of these, so
     reachability at a node of o depends only on how many of them precede
     it. hb_closure.(o).(i).(o') is the minimal position reachable in o'
     starting from threshold interval i of o (max_int = unreachable). *)
  mutable hb_thresholds : int array array;
  mutable hb_inpos : int array array;
  mutable hb_closure : int array array array;
  hb_queries : int Atomic.t;
}

let solver g = g.solver
let target_of g tid = Access.of_tid g.solver.Solver.flat tid
let locks g = g.locks
let accesses g = g.accesses_arr
let nodes g = g.nodes_arr
let n_origins g = Array.length g.self_par
let self_parallel g o = o >= 0 && o < Array.length g.self_par && g.self_par.(o)
let spawn_edges g = g.spawns_e
let join_edges g = g.joins_e
let sem_edges g = g.sems_e

(* ------------------------------------------------------------------ *)
(* construction *)

type region_state = {
  mutable seen : int list;
      (* packed (lockset, tid, is_write) keys already represented in this
         region; packing is injective (see [build_origin_flat]), so the int
         keys dedup exactly the structural (lockset, target, is_write)
         triples the seed's walker deduped *)
}

let emit g ~origin ~sid ~pos ~kind ~lockset =
  let n =
    {
      n_id = O2_util.Idgen.next g.ids;
      n_origin = origin;
      n_sid = sid;
      n_pos = pos;
      n_kind = kind;
      n_lockset = lockset;
    }
  in
  g.all_nodes <- n :: g.all_nodes;
  n

(* Legacy AST walker, retained as the test oracle for the flat walker
   below ([build ~oracle:true]). Behaviour is the seed's, except access
   nodes carry the encoded tid of their structural target (injective, so
   region dedup and all downstream grouping are unchanged). *)
let build_origin_ast g (sp : Solver.spawn) spawn_index =
  let a = g.solver in
  let fl = a.Solver.flat in
  let origin = sp.Solver.sp_id in
  let base_ls =
    if g.serial_events && sp.Solver.sp_kind = `Event then
      Lockset.id g.locks [ Lockset.dispatcher_lock ]
    else Lockset.empty g.locks
  in
  let tid_bound =
    Flat.n_statics fl + (Pag.n_objs a.Solver.pag * Flat.n_fields fl) + 1
  in
  let pack ls tid w = (((ls * tid_bound) + tid) * 2) + if w then 1 else 0 in
  let visited = Hashtbl.create 64 in
  let region = { seen = [] } in
  let reset_region () = region.seen <- [] in
  let rec visit (m : Program.meth) ctx ls =
    let key = (m.Program.m_class, m.Program.m_name, ctx) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      body m ctx ls m.Program.m_body
    end
  and body m ctx ls stmts = List.iter (fun s -> stmt m ctx ls s) stmts
  and follow_calls m ctx ls (s : Ast.stmt) =
    ignore m;
    List.iter
      (fun (callee, cctx) -> visit callee cctx ls)
      (Solver.callees a ~site:s.Ast.sid ~ctx)
  and emit_access m ctx ls (s : Ast.stmt) targets is_write =
    ignore (m, ctx);
    List.iter
      (fun target ->
        let tid =
          match Access.tid_of fl target with
          | Some tid -> tid
          | None -> assert false (* targets come from lowered statements *)
        in
        let k = pack ls tid is_write in
        let dup = g.lock_region && List.mem k region.seen in
        if not dup then begin
          if g.lock_region then region.seen <- k :: region.seen;
          ignore
            (emit g ~origin ~sid:s.Ast.sid ~pos:s.Ast.pos
               ~kind:(if is_write then Write tid else Read tid)
               ~lockset:ls)
        end)
      targets
  and stmt m ctx ls (s : Ast.stmt) =
    match s.Ast.sk with
    | Ast.New _ | Ast.Call _ | Ast.StaticCall _ ->
        (* Table 4 ⑮: the call node with HB edges to/from the callee body is
           represented by inlining the callee's trace at the call site. *)
        follow_calls m ctx ls s
    | Ast.FieldWrite _ | Ast.FieldRead _ | Ast.ArrayWrite _ | Ast.ArrayRead _
    | Ast.StaticWrite _ | Ast.StaticRead _ -> (
        match Access.of_stmt a m ctx s with
        | Some (targets, is_write) -> emit_access m ctx ls s targets is_write
        | None -> ())
    | Ast.Sync (x, sync_body) ->
        (* Table 4 ⑯: lock/unlock nodes. A lock var counts as a must-lock
           only when it points to a single abstract object — precision of
           the pointer analysis directly decides protection here. *)
        let pts = Solver.pts_var a m ctx x in
        let ls' =
          match O2_util.Bitset.elements pts with
          | [ o ] ->
              ignore (emit g ~origin ~sid:s.Ast.sid ~pos:s.Ast.pos ~kind:(Acq o) ~lockset:ls);
              Lockset.acquire g.locks ls o
          | _ -> ls
        in
        let saved = region.seen in
        reset_region ();
        body m ctx ls' sync_body;
        (match O2_util.Bitset.elements pts with
        | [ o ] ->
            ignore (emit g ~origin ~sid:s.Ast.sid ~pos:s.Ast.pos ~kind:(Rel o) ~lockset:ls)
        | _ -> ());
        region.seen <- saved
    | Ast.If (b1, b2) ->
        body m ctx ls b1;
        body m ctx ls b2
    | Ast.While b -> body m ctx ls b
    | Ast.Start x | Ast.Post (x, _) ->
        (* Table 4 ⑰: entry(𝕆ᵢ,𝕆ⱼ) ⇒ origin_first(𝕆ⱼ) *)
        let pts = Solver.pts_var a m ctx x in
        let children =
          match Hashtbl.find_opt spawn_index s.Ast.sid with
          | Some l ->
              List.filter
                (fun (sp' : Solver.spawn) ->
                  O2_util.Bitset.mem pts sp'.Solver.sp_obj)
                l
          | None -> []
        in
        List.iter
          (fun (sp' : Solver.spawn) ->
            let n =
              emit g ~origin ~sid:s.Ast.sid ~pos:s.Ast.pos
                ~kind:(SpawnTo sp'.Solver.sp_id) ~lockset:ls
            in
            g.spawns_e <- (origin, sp'.Solver.sp_id, n.n_id) :: g.spawns_e;
            (* the HB position changed: accesses after this point are no
               longer equivalent to accesses before it *)
            reset_region ())
          children
    | Ast.Join x ->
        (* Table 4 ⑱: origin_last(𝕆ⱼ) ⇒ join(𝕆ⱼ,𝕆ᵢ). A join is a must-join
           only when the variable points to a single thread object. *)
        let pts = Solver.pts_var a m ctx x in
        (match O2_util.Bitset.elements pts with
        | [ oid ] ->
            Array.iter
              (fun (sp' : Solver.spawn) ->
                if sp'.Solver.sp_obj = oid && sp'.Solver.sp_kind = `Thread
                then begin
                  let n =
                    emit g ~origin ~sid:s.Ast.sid ~pos:s.Ast.pos
                      ~kind:(JoinOf sp'.Solver.sp_id) ~lockset:ls
                  in
                  g.joins_e <- (sp'.Solver.sp_id, origin, n.n_id) :: g.joins_e;
                  reset_region ()
                end)
              (a.Solver.spawns)
        | _ -> ())
    | Ast.Signal x ->
        let pts = Solver.pts_var a m ctx x in
        O2_util.Bitset.iter
          (fun o ->
            ignore
              (emit g ~origin ~sid:s.Ast.sid ~pos:s.Ast.pos
                 ~kind:(SemSignal o) ~lockset:ls);
            reset_region ())
          pts
    | Ast.Wait x ->
        let pts = Solver.pts_var a m ctx x in
        O2_util.Bitset.iter
          (fun o ->
            ignore
              (emit g ~origin ~sid:s.Ast.sid ~pos:s.Ast.pos ~kind:(SemWait o)
                 ~lockset:ls);
            reset_region ())
          pts
    | Ast.Assign _ | Ast.Null _ | Ast.Return _ -> ()
  in
  visit sp.Solver.sp_entry sp.Solver.sp_ectx base_ls

(* The default walker: a scan of the flat opcode streams. Statements
   appear in AST DFS order with block bodies inlined, so only [Sync] — the
   one construct with scoped state (lockset + region reset/restore, Table 4
   ⑯) — needs its block length; [If]/[While] headers are skipped and their
   bodies picked up by the linear scan, exactly like the legacy
   recursion. Variable points-to sets come from a (mid, ctx) → slot node
   cache instead of re-hashing structural [NVar] keys per use; the first
   probe interns exactly the node the legacy [pts_var] would, so the PAG
   sees the same population either way. *)
let build_origin_flat g (icg : Solver.icg) stamp (sp : Solver.spawn)
    spawn_index =
  let a = g.solver in
  let fl = a.Solver.flat in
  let origin = sp.Solver.sp_id in
  let base_ls =
    if g.serial_events && sp.Solver.sp_kind = `Event then
      Lockset.id g.locks [ Lockset.dispatcher_lock ]
    else Lockset.empty g.locks
  in
  (* region-dedup keys are packed into one int: tid < tid_bound always, and
     a lockset id is a small dense int, so (ls * tid_bound + tid) * 2 + w is
     injective — List.mem then compares unboxed ints, no tuple allocation *)
  let tid_bound =
    Flat.n_statics fl + (Pag.n_objs a.Solver.pag * Flat.n_fields fl) + 1
  in
  let pack ls tid w = (((ls * tid_bound) + tid) * 2) + if w then 1 else 0 in
  (* the region set itself is generation-stamped: membership means "bound
     to the CURRENT generation", so a reset is one int bump instead of a
     list drop, and probes are O(1) instead of a [List.mem] scan. [Sync]
     scopes shadow with [Hashtbl.add] and unwind their own trail on exit,
     re-exposing the outer region's bindings — exactly the legacy
     save/reset/restore list discipline. *)
  let rtbl : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let cur_gen = ref 0 and next_gen = ref 1 in
  let trail = ref [] in
  let reset_region () =
    cur_gen := !next_gen;
    incr next_gen
  in
  let region_mem k =
    match Hashtbl.find_opt rtbl k with
    | Some gen -> gen = !cur_gen
    | None -> false
  in
  let region_add k =
    Hashtbl.add rtbl k !cur_gen;
    trail := k :: !trail
  in
  (* visited set over instance ids: one shared stamp array, stamped with
     the spawn id — no per-spawn allocation, no structural hashing *)
  let rec visit iid ls =
    if stamp.(iid) <> origin then begin
      stamp.(iid) <- origin;
      let mi = fl.Flat.f_meths.(icg.Solver.ic_mid.(iid)) in
      walk iid mi icg.Solver.ic_pts.(iid) ls 0 (Array.length mi.Flat.f_code)
    end
  and follow_calls iid ls site =
    match
      Hashtbl.find_opt icg.Solver.ic_callees
        ((iid * icg.Solver.ic_nsids) + site)
    with
    | Some arr -> Array.iter (fun ci -> visit ci ls) arr
    | None -> ()
  and emit_access ls sid tids is_write =
    let pos = Flat.pos_of_sid fl sid in
    List.iter
      (fun tid ->
        let k = pack ls tid is_write in
        let dup = g.lock_region && region_mem k in
        if not dup then begin
          if g.lock_region then region_add k;
          ignore
            (emit g ~origin ~sid ~pos
               ~kind:(if is_write then Write tid else Read tid)
               ~lockset:ls)
        end)
      tids
  and field_tids (pts : O2_util.Bitset.t array) base fid =
    (* cons under an ascending fold: descending-oid order, the legacy
       [Access.base_targets] emission order *)
    O2_util.Bitset.fold
      (fun oid acc -> Flat.tid_field fl ~oid ~fid :: acc)
      pts.(base) []
  and walk iid (mi : Flat.meth_info) (pts : O2_util.Bitset.t array) ls lo hi =
    let code = mi.Flat.f_code in
    let i = ref lo in
    while !i < hi do
      let j = !i in
      let op = code.(j) in
      let sid = code.(j + 1) in
      if op = Flat.op_null || op = Flat.op_assign || op = Flat.op_return then
        i := j + (if op = Flat.op_null then 2 else if op = Flat.op_assign then 4 else 3)
      else if op = Flat.op_new then begin
        (* Table 4 ⑮: the call node with HB edges to/from the callee body
           is represented by inlining the callee's trace at the call site *)
        follow_calls iid ls sid;
        i := j + 5 + code.(j + 4)
      end
      else if op = Flat.op_callv then begin
        follow_calls iid ls sid;
        i := j + 7 + code.(j + 6)
      end
      else if op = Flat.op_calls then begin
        follow_calls iid ls sid;
        i := j + 5 + code.(j + 4)
      end
      else if op = Flat.op_fwrite then begin
        emit_access ls sid (field_tids pts code.(j + 2) code.(j + 3)) true;
        i := j + 5
      end
      else if op = Flat.op_fread then begin
        emit_access ls sid (field_tids pts code.(j + 3) code.(j + 4)) false;
        i := j + 5
      end
      else if op = Flat.op_awrite then begin
        emit_access ls sid (field_tids pts code.(j + 2) fl.Flat.f_star) true;
        i := j + 4
      end
      else if op = Flat.op_aread then begin
        emit_access ls sid (field_tids pts code.(j + 3) fl.Flat.f_star) false;
        i := j + 4
      end
      else if op = Flat.op_swrite then begin
        emit_access ls sid [ Flat.tid_static fl code.(j + 2) ] true;
        i := j + 4
      end
      else if op = Flat.op_sread then begin
        emit_access ls sid [ Flat.tid_static fl code.(j + 3) ] false;
        i := j + 4
      end
      else if op = Flat.op_sync then begin
        (* Table 4 ⑯: lock/unlock nodes. A lock var counts as a must-lock
           only when it points to a single abstract object. *)
        let blen = code.(j + 3) in
        let lpts = pts.(code.(j + 2)) in
        let pos = Flat.pos_of_sid fl sid in
        let singleton =
          match O2_util.Bitset.elements lpts with [ o ] -> Some o | _ -> None
        in
        let ls' =
          match singleton with
          | Some o ->
              ignore (emit g ~origin ~sid ~pos ~kind:(Acq o) ~lockset:ls);
              Lockset.acquire g.locks ls o
          | None -> ls
        in
        let saved_trail = !trail and saved_gen = !cur_gen in
        trail := [];
        reset_region ();
        walk iid mi pts ls' (j + 4) (j + 4 + blen);
        (match singleton with
        | Some o -> ignore (emit g ~origin ~sid ~pos ~kind:(Rel o) ~lockset:ls)
        | None -> ());
        List.iter (Hashtbl.remove rtbl) !trail;
        trail := saved_trail;
        cur_gen := saved_gen;
        i := j + 4 + blen
      end
      else if op = Flat.op_if then i := j + 4 (* bodies inline; keep scanning *)
      else if op = Flat.op_while then i := j + 3
      else if op = Flat.op_start || op = Flat.op_post then begin
        (* Table 4 ⑰: entry(𝕆ᵢ,𝕆ⱼ) ⇒ origin_first(𝕆ⱼ) *)
        let spts = pts.(code.(j + 2)) in
        let pos = Flat.pos_of_sid fl sid in
        (match Hashtbl.find_opt spawn_index sid with
        | Some l ->
            List.iter
              (fun (sp' : Solver.spawn) ->
                if O2_util.Bitset.mem spts sp'.Solver.sp_obj then begin
                  let n =
                    emit g ~origin ~sid ~pos ~kind:(SpawnTo sp'.Solver.sp_id)
                      ~lockset:ls
                  in
                  g.spawns_e <- (origin, sp'.Solver.sp_id, n.n_id) :: g.spawns_e;
                  (* the HB position changed: accesses after this point are
                     no longer equivalent to accesses before it *)
                  reset_region ()
                end)
              l
        | None -> ());
        i := j + (if op = Flat.op_start then 4 else 5 + code.(j + 4))
      end
      else if op = Flat.op_join then begin
        (* Table 4 ⑱: origin_last(𝕆ⱼ) ⇒ join(𝕆ⱼ,𝕆ᵢ). A join is a must-join
           only when the variable points to a single thread object. *)
        let jpts = pts.(code.(j + 2)) in
        let pos = Flat.pos_of_sid fl sid in
        (match O2_util.Bitset.elements jpts with
        | [ oid ] ->
            Array.iter
              (fun (sp' : Solver.spawn) ->
                if sp'.Solver.sp_obj = oid && sp'.Solver.sp_kind = `Thread
                then begin
                  let n =
                    emit g ~origin ~sid ~pos ~kind:(JoinOf sp'.Solver.sp_id)
                      ~lockset:ls
                  in
                  g.joins_e <- (sp'.Solver.sp_id, origin, n.n_id) :: g.joins_e;
                  reset_region ()
                end)
              a.Solver.spawns
        | _ -> ());
        i := j + 3
      end
      else if op = Flat.op_signal || op = Flat.op_wait then begin
        let wpts = pts.(code.(j + 2)) in
        let pos = Flat.pos_of_sid fl sid in
        let kind o = if op = Flat.op_signal then SemSignal o else SemWait o in
        O2_util.Bitset.iter
          (fun o ->
            ignore (emit g ~origin ~sid ~pos ~kind:(kind o) ~lockset:ls);
            reset_region ())
          wpts;
        i := j + 3
      end
      else assert false
    done
  in
  visit icg.Solver.ic_entry.(sp.Solver.sp_id) base_ls

(* ------------------------------------------------------------------ *)
(* origin-level HB closure *)

(* index of the first element ≥ v, i.e. the count of elements < v *)
let lower_bound (a : int array) v =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let build_hb_closure g =
  let n = Array.length g.self_par in
  let in_range o = o >= 0 && o < n in
  let sp_tmp = Array.make n []
  and jn_tmp = Array.make n []
  and sm_tmp = Array.make n [] in
  List.iter
    (fun (parent, child, sid) ->
      if in_range parent then sp_tmp.(parent) <- (sid, child) :: sp_tmp.(parent))
    g.spawns_e;
  List.iter
    (fun (child, parent, jid) ->
      if in_range child then jn_tmp.(child) <- (parent, jid) :: jn_tmp.(child))
    g.joins_e;
  List.iter
    (fun (so, sid, wo, wid) ->
      if in_range so then sm_tmp.(so) <- (sid, wo, wid) :: sm_tmp.(so))
    g.sems_e;
  let sorted l = Array.of_list (List.sort compare l) in
  let spawns_by = Array.map sorted sp_tmp
  and joins_by = Array.map sorted jn_tmp
  and sems_by = Array.map sorted sm_tmp in
  g.hb_thresholds <-
    Array.init n (fun o ->
        let sids =
          List.map fst sp_tmp.(o)
          @ List.map (fun (sid, _, _) -> sid) sm_tmp.(o)
        in
        Array.of_list (List.sort_uniq compare sids));
  g.hb_inpos <-
    (let acc = Array.make n [] in
     List.iter
       (fun (_, parent, jid) ->
         if in_range parent then acc.(parent) <- jid :: acc.(parent))
       g.joins_e;
     List.iter
       (fun (_, _, wo, wid) ->
         if in_range wo then acc.(wo) <- wid :: acc.(wo))
       g.sems_e;
     Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) acc);
  (* chaotic-iteration BFS from one normalized state, over indexed edges *)
  let reach_from o0 p0 =
    let best = Array.make n max_int in
    let queue = Queue.create () in
    best.(o0) <- p0;
    Queue.push (o0, p0) queue;
    let push x pos =
      if in_range x && pos < best.(x) then begin
        best.(x) <- pos;
        Queue.push (x, pos) queue
      end
    in
    while not (Queue.is_empty queue) do
      let x, p = Queue.pop queue in
      if p <= best.(x) then begin
        let sp = spawns_by.(x) in
        let lo = ref 0 and hi = ref (Array.length sp) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if fst sp.(mid) < p then lo := mid + 1 else hi := mid
        done;
        for i = !lo to Array.length sp - 1 do
          push (snd sp.(i)) min_int
        done;
        Array.iter (fun (parent, jid) -> push parent jid) joins_by.(x);
        let sm = sems_by.(x) in
        let lo = ref 0 and hi = ref (Array.length sm) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          let sid, _, _ = sm.(mid) in
          if sid < p then lo := mid + 1 else hi := mid
        done;
        for i = !lo to Array.length sm - 1 do
          let _, wo, wid = sm.(i) in
          push wo wid
        done
      end
    done;
    best
  in
  g.hb_closure <-
    Array.init n (fun o ->
        let t = g.hb_thresholds.(o) in
        Array.init
          (Array.length t + 1)
          (fun i ->
            let p = if i < Array.length t then t.(i) else max_int in
            reach_from o p))

(* Exclusive upper bounds of the two [hb_interval] components over all
   origins — the race engine packs (t, q) into its int class keys with
   these. *)
let interval_bounds g =
  let tb = ref 1 and qb = ref 1 in
  Array.iter (fun a -> tb := max !tb (Array.length a + 1)) g.hb_thresholds;
  Array.iter (fun a -> qb := max !qb (Array.length a + 1)) g.hb_inpos;
  (!tb, !qb)

let hb_interval g (node : node) =
  (* q counts entry positions ≤ the node id: a join/wait node is ordered
     after its own incoming edge, so its own position must be included *)
  ( lower_bound g.hb_thresholds.(node.n_origin) node.n_id,
    lower_bound g.hb_inpos.(node.n_origin) (node.n_id + 1) )

(* Interval-level happens-before: does a node of [src] in threshold
   interval [t_idx] happen before a node of [dst] with [q_idx] incoming
   entry positions behind it? Agrees with [hb] on any pair of nodes with
   those intervals ([src] ≠ [dst]): the closure value is min_int, max_int,
   or one of dst's incoming entry positions, so comparing its rank against
   [q_idx] is the same as comparing it against the node id. *)
let hb_state g ~src ~t_idx ~dst ~q_idx =
  let c = g.hb_closure.(src).(t_idx).(dst) in
  c = min_int || (c <> max_int && lower_bound g.hb_inpos.(dst) c < q_idx)

(* hb_state is pure (no per-call counting — worker domains would contend on
   the shared counter); batch callers account for their queries here *)
let note_hb_queries g k = ignore (Atomic.fetch_and_add g.hb_queries k)

let hb_queries g = Atomic.get g.hb_queries

let hb_closure_entries g =
  Array.fold_left
    (fun acc per_state ->
      Array.fold_left
        (fun acc best ->
          Array.fold_left
            (fun acc v -> if v < max_int then acc + 1 else acc)
            acc best)
        acc per_state)
    0 g.hb_closure

(* Self-parallelism under the merged (non-origin) policies. An abstract
   spawn stands for every runtime execution of its start/post site that
   the context abstraction folds together; whenever that count can exceed
   one, the single abstract origin covers concurrent runtime instances
   and must race with itself. The syntactic seeds (start inside a loop,
   thread object allocated in a loop) miss the interprocedural case: a
   spawn-wrapper method called from two sites collapses to ONE instance
   under 0-ctx, so its start statement executes twice per run while the
   analysis sees one origin — a dynamically witnessed race with no static
   report. So we compute, over the solved instance call graph, which
   (method, context) instances may execute more than once: two distinct
   incoming call edges, an incoming edge from a loop, a multi-executing
   caller, or being the entry of an already self-parallel origin — and a
   spawn whose start site lives in a multi-executing instance is
   self-parallel. The entry-instance rule also subsumes the old
   transitive parent→child propagation over spawn edges. *)
let multi_exec_self_par (a : Solver.result) =
  let p = a.Solver.program and fl = a.Solver.flat in
  let icg = a.Solver.icg in
  let sps = a.Solver.spawns in
  let n = max 1 icg.Solver.ic_n in
  let multi = Array.make n false in
  let preds = Array.make n [] in
  Hashtbl.iter
    (fun key callees ->
      let caller = key / icg.Solver.ic_nsids
      and sid = key mod icg.Solver.ic_nsids in
      Array.iter
        (fun callee ->
          if callee >= 0 && callee < n then
            preds.(callee) <- (caller, sid) :: preds.(callee))
        callees)
    icg.Solver.ic_callees;
  Array.iteri
    (fun callee ps -> preds.(callee) <- List.sort_uniq compare ps)
    preds;
  Array.iteri
    (fun callee ps ->
      match ps with
      | _ :: _ :: _ -> multi.(callee) <- true
      | ps ->
          if List.exists (fun (_, sid) -> Program.stmt_in_loop p sid) ps then
            multi.(callee) <- true)
    preds;
  let insts_by_mid = Hashtbl.create 64 in
  Array.iteri
    (fun iid mid -> Hashtbl.add insts_by_mid mid iid)
    icg.Solver.ic_mid;
  let site_insts sid =
    let _, m = Program.stmt p sid in
    Hashtbl.find_all insts_by_mid (Flat.mid_of_meth fl m)
  in
  let sp_par =
    Array.map
      (fun (sp : Solver.spawn) ->
        sp.Solver.sp_in_loop
        || (sp.Solver.sp_obj >= 0
           &&
           let o = Pag.obj (a.Solver.pag) sp.Solver.sp_obj in
           Program.stmt_in_loop p o.Pag.ob_site))
      sps
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun callee ps ->
        if
          (not multi.(callee))
          && List.exists (fun (c, _) -> multi.(c)) ps
        then begin
          multi.(callee) <- true;
          changed := true
        end)
      preds;
    Array.iteri
      (fun i (_sp : Solver.spawn) ->
        if sp_par.(i) then begin
          let e = icg.Solver.ic_entry.(i) in
          if e >= 0 && e < n && not multi.(e) then begin
            multi.(e) <- true;
            changed := true
          end
        end)
      sps;
    Array.iteri
      (fun i (sp : Solver.spawn) ->
        if
          (not sp_par.(i))
          && sp.Solver.sp_site >= 0
          && List.exists
               (fun iid -> multi.(iid))
               (site_insts sp.Solver.sp_site)
        then begin
          sp_par.(i) <- true;
          changed := true
        end)
      sps
  done;
  sp_par

let build_graph ~serial_events ~lock_region ~oracle a =
  let sps = a.Solver.spawns in
  let self_par =
    match a.Solver.policy with
    | Context.Korigin _ ->
        (* §3.2: an origin allocated in a loop is doubled, so races
           between run-time instances surface as races between the two
           copies; treating each copy as self-parallel would instead
           flag every origin-local object. The wrapper replay likewise
           copies origins per incoming call site, so the merged-policy
           multiplicity analysis below is not needed here. (Re-starting
           one thread object is an error in Java, so a started origin
           never runs concurrently with itself.) *)
        Array.map (fun _ -> false) sps
    | _ -> multi_exec_self_par a
  in
  let g =
    {
      solver = a;
      locks = Lockset.create ();
      all_nodes = [];
      nodes_arr = [||];
      accesses_arr = [||];
      spawns_e = [];
      joins_e = [];
      sems_e = [];
      self_par;
      ids = O2_util.Idgen.create ();
      serial_events;
      lock_region;
      hb_thresholds = [||];
      hb_inpos = [||];
      hb_closure = [||];
      hb_queries = Atomic.make 0;
    }
  in
  let spawn_index = Hashtbl.create 16 in
  Array.iter
    (fun (sp : Solver.spawn) ->
      if sp.Solver.sp_site >= 0 then
        let l =
          match Hashtbl.find_opt spawn_index sp.Solver.sp_site with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace spawn_index sp.Solver.sp_site (sp :: l))
    sps;
  (if oracle then Array.iter (fun sp -> build_origin_ast g sp spawn_index) sps
   else begin
     let icg = a.Solver.icg in
     let stamp = Array.make (max 1 icg.Solver.ic_n) (-1) in
     Array.iter (fun sp -> build_origin_flat g icg stamp sp spawn_index) sps
   end);
  (* transitive self-parallelism (a child spawned by a self-parallel
     origin has as many run-time instances as its parent) falls out of
     [multi_exec_self_par]: the parent's entry instance is marked
     multi-executing and the multiplicity propagates along call edges to
     every spawn site the parent reaches *)
  let all = Array.of_list (List.rev g.all_nodes) in
  g.nodes_arr <- all;
  (* §4.3 semaphore HB rule: for every abstract semaphore with exactly one
     static signal node, everything before the signal happens before
     everything after each wait on it *)
  let sigs = Hashtbl.create 8 and waits = Hashtbl.create 8 in
  Array.iter
    (fun n ->
      match n.n_kind with
      | SemSignal o ->
          Hashtbl.replace sigs o (n :: (try Hashtbl.find sigs o with Not_found -> []))
      | SemWait o ->
          Hashtbl.replace waits o (n :: (try Hashtbl.find waits o with Not_found -> []))
      | _ -> ())
    all;
  Hashtbl.iter
    (fun o sig_nodes ->
      match sig_nodes with
      | [ s ] ->
          List.iter
            (fun w ->
              if w.n_origin <> s.n_origin then
                g.sems_e <-
                  (s.n_origin, s.n_id, w.n_origin, w.n_id) :: g.sems_e)
            (try Hashtbl.find waits o with Not_found -> [])
      | _ -> ())
    sigs;
  g.accesses_arr <-
    Array.of_list
      (List.filter
         (fun n -> match n.n_kind with Read _ | Write _ -> true | _ -> false)
         (Array.to_list all));
  build_hb_closure g;
  g

let build ?(serial_events = true) ?(lock_region = true) ?(oracle = false)
    ?metrics a =
  match metrics with
  | None -> build_graph ~serial_events ~lock_region ~oracle a
  | Some m ->
      let g =
        O2_util.Metrics.span m "shb.build" (fun () ->
            build_graph ~serial_events ~lock_region ~oracle a)
      in
      let open O2_util in
      Metrics.set m "shb.nodes" (Array.length g.nodes_arr);
      Metrics.set m "shb.access_nodes" (Array.length g.accesses_arr);
      Metrics.set m "shb.spawn_edges" (List.length g.spawns_e);
      Metrics.set m "shb.join_edges" (List.length g.joins_e);
      Metrics.set m "shb.sem_edges" (List.length g.sems_e);
      Metrics.set m "shb.edges"
        (List.length g.spawns_e + List.length g.joins_e
       + List.length g.sems_e);
      Metrics.set m "shb.locksets" (Lockset.n_distinct g.locks);
      Metrics.set m "shb.hb_closure_size" (hb_closure_entries g);
      g

(* ------------------------------------------------------------------ *)
(* happens-before *)

(* Legacy BFS over (origin, position) states, kept as the test oracle for
   the precomputed closure (set O2_HB_BFS=1 to route hb through it). From a
   position p in origin X one can follow: a spawn edge of X at node id
   s ≥ p into the start of the child, or X's join into its parent at node
   id j (everything in X happens before j in the parent). Intra-origin
   order is the id order. *)
let hb_bfs g (a : node) (b : node) =
  if a.n_origin = b.n_origin then a.n_id < b.n_id
  else begin
    let best = Hashtbl.create 8 in
    (* best.(origin) = minimal position reached so far *)
    let queue = Queue.create () in
    let push origin pos =
      match Hashtbl.find_opt best origin with
      | Some p when p <= pos -> ()
      | _ ->
          Hashtbl.replace best origin pos;
          Queue.push (origin, pos) queue
    in
    push a.n_origin a.n_id;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let x, p = Queue.pop queue in
      if x = b.n_origin && p <= b.n_id then found := true
      else begin
        List.iter
          (fun (parent, child, sid) ->
            if parent = x && sid >= p then push child min_int)
          g.spawns_e;
        List.iter
          (fun (child, parent, jid) -> if child = x then push parent jid)
          g.joins_e;
        List.iter
          (fun (so, sid, wo, wid) -> if so = x && sid >= p then push wo wid)
          g.sems_e
      end
    done;
    !found
  end

let hb_use_bfs_oracle =
  match Sys.getenv_opt "O2_HB_BFS" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* O(1) happens-before: locate a's threshold interval by binary search,
   then compare the precomputed minimal reachable position in b's origin
   against b's id. *)
let hb g (a : node) (b : node) =
  Atomic.incr g.hb_queries;
  if a.n_origin = b.n_origin then a.n_id < b.n_id
  else if hb_use_bfs_oracle then hb_bfs g a b
  else
    let i = lower_bound g.hb_thresholds.(a.n_origin) a.n_id in
    g.hb_closure.(a.n_origin).(i).(b.n_origin) <= b.n_id

(* ------------------------------------------------------------------ *)

let pp_kind g ppf = function
  | Read t ->
      Format.fprintf ppf "read %a" (Access.pp_target g.solver) (target_of g t)
  | Write t ->
      Format.fprintf ppf "write %a" (Access.pp_target g.solver) (target_of g t)
  | Acq o -> Format.fprintf ppf "lock o%d" o
  | Rel o -> Format.fprintf ppf "unlock o%d" o
  | SpawnTo s -> Format.fprintf ppf "spawn O%d" s
  | JoinOf s -> Format.fprintf ppf "join O%d" s
  | SemSignal o -> Format.fprintf ppf "signal o%d" o
  | SemWait o -> Format.fprintf ppf "wait o%d" o

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun o _ ->
      Format.fprintf ppf "origin O%d%s:@," o
        (if self_parallel g o then " (self-parallel)" else "");
      Array.iter
        (fun n ->
          if n.n_origin = o then
            Format.fprintf ppf "  #%d %a ls=%d@," n.n_id (pp_kind g) n.n_kind
              n.n_lockset)
        g.nodes_arr)
    g.self_par;
  Format.fprintf ppf "@]"
