(** The static happens-before (SHB) graph (§4, Table 4).

    One trace of nodes per origin (read/write accesses, lock acquire and
    release, spawn and join events), in static program order. Following
    §4.1's first optimization, no intra-origin HB edges are stored: node ids
    are globally monotone during construction, so intra-origin
    happens-before is an integer comparison. The only explicit edges are
    inter-origin: [entry(𝕆ᵢ,𝕆ⱼ) ⇒ origin_first(𝕆ⱼ)] at spawns and
    [origin_last(𝕆ⱼ) ⇒ join(𝕆ⱼ,𝕆ᵢ)] at joins (Table 4 ⑰/⑱).

    Each access node carries a canonical lockset id ({!Lockset}); with
    [~lock_region:true] (the default, §4.1's third optimization) repeated
    accesses to the same target inside one lock region collapse into the
    representative first access — reset at spawn/join nodes inside the
    region, where the happens-before position changes. *)

open O2_ir
open O2_pta

type node_kind =
  | Read of int  (** flat-IR location id (tid); decode with {!target_of} *)
  | Write of int
  | Acq of int  (** lock object id *)
  | Rel of int
  | SpawnTo of int  (** spawn id of the started/posted origin *)
  | JoinOf of int  (** spawn id of the joined origin *)
  | SemSignal of int  (** semaphore post on abstract object id (§4.3) *)
  | SemWait of int  (** semaphore wait on abstract object id *)

type node = {
  n_id : int;  (** monotone integer id (§4.1) *)
  n_origin : int;  (** spawn id of the owning origin *)
  n_sid : int;  (** statement id *)
  n_pos : Types.pos;
  n_kind : node_kind;
  n_lockset : int;  (** canonical lockset id at this node *)
}

type t

(** [build a] constructs the SHB graph from a solved analysis by scanning
    the flat opcode streams of [a.flat].

    @param serial_events model the single dispatcher thread of §4.2: every
    event-handler origin implicitly holds {!Lockset.dispatcher_lock}
    (default [true]).
    @param lock_region enable lock-region access merging (default [true];
    the ablation benchmark disables it).
    @param oracle use the legacy AST tree-walk instead of the flat scan
    (default [false]). Kept only as the certification oracle: the two
    walkers must produce identical graphs, and the property tests compare
    full pipeline output across them.
    @param metrics observability sink: construction runs inside an
    ["shb.build"] span and records [shb.nodes], [shb.access_nodes],
    [shb.edges] (spawn + join + semaphore), [shb.locksets] and
    [shb.hb_closure_size]. *)
val build :
  ?serial_events:bool ->
  ?lock_region:bool ->
  ?oracle:bool ->
  ?metrics:O2_util.Metrics.t ->
  Solver.result ->
  t

val solver : t -> Solver.result

(** [target_of g tid] decodes an access node's location id back to the
    structural target (reporting boundary only). *)
val target_of : t -> int -> Access.target

val locks : t -> Lockset.t

(** [accesses g] lists all read/write access nodes, id-ascending. *)
val accesses : t -> node array

(** [nodes g] lists every node, id-ascending. *)
val nodes : t -> node array

(** [n_origins g] is the number of origins (= solver spawns). *)
val n_origins : t -> int

(** [self_parallel g o] is true iff origin [o] may run concurrently with
    another instance of itself (spawned in a loop, or its thread object is
    allocated in a loop under a policy without loop doubling). *)
val self_parallel : t -> int -> bool

(** [spawn_edges g] lists [(parent, child, node id of the spawn in the
    parent's trace)]. *)
val spawn_edges : t -> (int * int * int) list

(** [join_edges g] lists [(child, parent, node id of the join in the
    parent's trace)]. *)
val join_edges : t -> (int * int * int) list

(** [sem_edges g] lists the semaphore happens-before edges of the §4.3
    extension, [(signal origin, signal node id, wait origin, wait node id)].
    An edge exists only when the abstract semaphore object has exactly one
    signal node program-wide — the statically-must handshake pattern. *)
val sem_edges : t -> (int * int * int * int) list

(** [hb g a b] decides statically-must happens-before between two nodes:
    intra-origin by integer comparison, inter-origin via the origin-level
    HB closure precomputed at build time — a binary search over [a]'s
    outgoing-edge thresholds, one table lookup and one integer compare.
    Setting the environment variable [O2_HB_BFS=1] routes inter-origin
    queries through the legacy BFS instead (debugging aid). *)
val hb : t -> node -> node -> bool

(** [hb_bfs g a b] is the legacy memoized-BFS happens-before over the raw
    spawn/join/semaphore edge lists — the oracle the closure-based {!hb} is
    property-tested against. *)
val hb_bfs : t -> node -> node -> bool

(** [hb_interval g n] is [(t_idx, q_idx)]: the index of [n] among its
    origin's outgoing timed-edge thresholds, and the count of its origin's
    incoming entry positions at or before [n]. Two nodes of the same origin
    with equal intervals have identical inter-origin HB behaviour — the key
    fact behind equivalence-class race checking. *)
val hb_interval : t -> node -> int * int

(** [interval_bounds g] is [(tb, qb)]: exclusive upper bounds of the two
    {!hb_interval} components over all origins, used by the race engine to
    pack intervals into int class keys. *)
val interval_bounds : t -> int * int

(** [hb_state g ~src ~t_idx ~dst ~q_idx] is the interval-level form of
    {!hb}: for [src ≠ dst] it equals [hb g a b] for every node [a] of
    [src] in threshold interval [t_idx] and every node [b] of [dst] with
    [q_idx] incoming entry positions before it. The race engine uses it to
    compare whole equivalence classes (and origin blocks) at once. Pure —
    no per-call accounting, so worker domains never contend; batch callers
    report their query counts with {!note_hb_queries}. *)
val hb_state : t -> src:int -> t_idx:int -> dst:int -> q_idx:int -> bool

(** [hb_queries g] is the number of HB queries answered so far: {!hb} calls
    plus counts reported via {!note_hb_queries} (surfaced as
    [shb.hb_queries]). *)
val hb_queries : t -> int

(** [note_hb_queries g k] adds [k] interval-level queries ({!hb_state}
    calls) to the {!hb_queries} counter. Thread-safe. *)
val note_hb_queries : t -> int -> unit

(** [hb_closure_entries g] counts the finite (reachable) entries of the
    precomputed closure — the [shb.hb_closure_size] counter. *)
val hb_closure_entries : t -> int

(** [pp] dumps the per-origin traces (for debugging and the CLI). *)
val pp : Format.formatter -> t -> unit
