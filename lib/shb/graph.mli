(** The static happens-before (SHB) graph (§4, Table 4).

    One trace of nodes per origin (read/write accesses, lock acquire and
    release, spawn and join events), in static program order. Following
    §4.1's first optimization, no intra-origin HB edges are stored: node ids
    are globally monotone during construction, so intra-origin
    happens-before is an integer comparison. The only explicit edges are
    inter-origin: [entry(𝕆ᵢ,𝕆ⱼ) ⇒ origin_first(𝕆ⱼ)] at spawns and
    [origin_last(𝕆ⱼ) ⇒ join(𝕆ⱼ,𝕆ᵢ)] at joins (Table 4 ⑰/⑱).

    Each access node carries a canonical lockset id ({!Lockset}); with
    [~lock_region:true] (the default, §4.1's third optimization) repeated
    accesses to the same target inside one lock region collapse into the
    representative first access — reset at spawn/join nodes inside the
    region, where the happens-before position changes. *)

open O2_ir
open O2_pta

type node_kind =
  | Read of Access.target
  | Write of Access.target
  | Acq of int  (** lock object id *)
  | Rel of int
  | SpawnTo of int  (** spawn id of the started/posted origin *)
  | JoinOf of int  (** spawn id of the joined origin *)
  | SemSignal of int  (** semaphore post on abstract object id (§4.3) *)
  | SemWait of int  (** semaphore wait on abstract object id *)

type node = {
  n_id : int;  (** monotone integer id (§4.1) *)
  n_origin : int;  (** spawn id of the owning origin *)
  n_sid : int;  (** statement id *)
  n_pos : Types.pos;
  n_kind : node_kind;
  n_lockset : int;  (** canonical lockset id at this node *)
}

type t

(** [build a] constructs the SHB graph from a solved analysis.

    @param serial_events model the single dispatcher thread of §4.2: every
    event-handler origin implicitly holds {!Lockset.dispatcher_lock}
    (default [true]).
    @param lock_region enable lock-region access merging (default [true];
    the ablation benchmark disables it).
    @param metrics observability sink: construction runs inside an
    ["shb.build"] span and records [shb.nodes], [shb.access_nodes],
    [shb.edges] (spawn + join + semaphore) and [shb.locksets]. *)
val build :
  ?serial_events:bool ->
  ?lock_region:bool ->
  ?metrics:O2_util.Metrics.t ->
  Solver.t ->
  t

val solver : t -> Solver.t
val locks : t -> Lockset.t

(** [accesses g] lists all read/write access nodes, id-ascending. *)
val accesses : t -> node array

(** [nodes g] lists every node, id-ascending. *)
val nodes : t -> node array

(** [n_origins g] is the number of origins (= solver spawns). *)
val n_origins : t -> int

(** [self_parallel g o] is true iff origin [o] may run concurrently with
    another instance of itself (spawned in a loop, or its thread object is
    allocated in a loop under a policy without loop doubling). *)
val self_parallel : t -> int -> bool

(** [spawn_edges g] lists [(parent, child, node id of the spawn in the
    parent's trace)]. *)
val spawn_edges : t -> (int * int * int) list

(** [join_edges g] lists [(child, parent, node id of the join in the
    parent's trace)]. *)
val join_edges : t -> (int * int * int) list

(** [sem_edges g] lists the semaphore happens-before edges of the §4.3
    extension, [(signal origin, signal node id, wait origin, wait node id)].
    An edge exists only when the abstract semaphore object has exactly one
    signal node program-wide — the statically-must handshake pattern. *)
val sem_edges : t -> (int * int * int * int) list

(** [hb g a b] decides statically-must happens-before between two nodes:
    intra-origin by integer comparison, inter-origin by reachability over
    spawn/join edges (memoized BFS). *)
val hb : t -> node -> node -> bool

(** [pp] dumps the per-origin traces (for debugging and the CLI). *)
val pp : Format.formatter -> t -> unit
