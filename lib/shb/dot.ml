open O2_pta

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_label g (n : Graph.node) =
  let a = Graph.solver g in
  Format.asprintf "#%d %s" n.Graph.n_id
    (match n.Graph.n_kind with
    | Graph.Read t ->
        Format.asprintf "rd %a" (Access.pp_target a) (Graph.target_of g t)
    | Graph.Write t ->
        Format.asprintf "wr %a" (Access.pp_target a) (Graph.target_of g t)
    | Graph.Acq l -> Printf.sprintf "lock o%d" l
    | Graph.Rel l -> Printf.sprintf "unlock o%d" l
    | Graph.SpawnTo s -> Printf.sprintf "spawn O%d" s
    | Graph.JoinOf s -> Printf.sprintf "join O%d" s
    | Graph.SemSignal o -> Printf.sprintf "signal o%d" o
    | Graph.SemWait o -> Printf.sprintf "wait o%d" o)

let origin_label g o =
  let a = Graph.solver g in
  let sps = a.Solver.spawns in
  if o >= 0 && o < Array.length sps then
    let sp = sps.(o) in
    match sp.Solver.sp_kind with
    | `Main -> "main"
    | `Thread | `Event ->
        Printf.sprintf "%s.%s@%d" sp.Solver.sp_entry.O2_ir.Program.m_class
          sp.Solver.sp_entry.O2_ir.Program.m_name sp.Solver.sp_site
  else Printf.sprintf "O%d" o

let shb ppf g =
  Format.fprintf ppf "digraph shb {@.  rankdir=TB;@.  node [shape=box, fontsize=9];@.";
  let n_origins = Graph.n_origins g in
  for o = 0 to n_origins - 1 do
    Format.fprintf ppf "  subgraph cluster_%d {@.    label=\"%s%s\";@." o
      (escape (origin_label g o))
      (if Graph.self_parallel g o then " (self-parallel)" else "");
    let prev = ref None in
    Array.iter
      (fun (n : Graph.node) ->
        if n.Graph.n_origin = o then begin
          Format.fprintf ppf "    n%d [label=\"%s\"];@." n.Graph.n_id
            (escape (node_label g n));
          (match !prev with
          | Some p -> Format.fprintf ppf "    n%d -> n%d [style=dotted];@." p n.Graph.n_id
          | None -> ());
          prev := Some n.Graph.n_id
        end)
      (Graph.nodes g);
    Format.fprintf ppf "  }@."
  done;
  (* inter-origin edges *)
  let first_of o =
    let found = ref None in
    Array.iter
      (fun (n : Graph.node) ->
        if n.Graph.n_origin = o && !found = None then found := Some n.Graph.n_id)
      (Graph.nodes g);
    !found
  in
  let last_of o =
    let found = ref None in
    Array.iter
      (fun (n : Graph.node) -> if n.Graph.n_origin = o then found := Some n.Graph.n_id)
      (Graph.nodes g);
    !found
  in
  List.iter
    (fun (_, child, nid) ->
      match first_of child with
      | Some f -> Format.fprintf ppf "  n%d -> n%d [style=dashed, color=blue];@." nid f
      | None -> ())
    (Graph.spawn_edges g);
  List.iter
    (fun (child, _, nid) ->
      match last_of child with
      | Some l -> Format.fprintf ppf "  n%d -> n%d [style=dashed, color=red];@." l nid
      | None -> ())
    (Graph.join_edges g);
  List.iter
    (fun (_, sid, _, wid) ->
      Format.fprintf ppf "  n%d -> n%d [style=dashed, color=green];@." sid wid)
    (Graph.sem_edges g);
  Format.fprintf ppf "}@."

let origins ppf g =
  Format.fprintf ppf "digraph origins {@.  node [shape=ellipse];@.";
  for o = 0 to Graph.n_origins g - 1 do
    Format.fprintf ppf "  o%d [label=\"%s\"];@." o (escape (origin_label g o))
  done;
  List.iter
    (fun (parent, child, _) ->
      Format.fprintf ppf "  o%d -> o%d [label=spawn];@." parent child)
    (Graph.spawn_edges g);
  List.iter
    (fun (child, parent, _) ->
      Format.fprintf ppf "  o%d -> o%d [label=join, style=dashed];@." child
        parent)
    (Graph.join_edges g);
  Format.fprintf ppf "}@."

let callgraph ppf a =
  Format.fprintf ppf "digraph callgraph {@.  node [shape=box];@.";
  let methods = Query.reachable_methods a in
  List.iter
    (fun m -> Format.fprintf ppf "  \"%s\";@." (escape m))
    methods;
  List.iter
    (fun (caller, callee, _) ->
      Format.fprintf ppf "  \"%s\" -> \"%s\";@." (escape caller)
        (escape callee))
    (Query.call_graph_edges a);
  Format.fprintf ppf "}@."
