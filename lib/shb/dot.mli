(** Graphviz (DOT) exporters for the SHB graph and the origin structure —
    the visual the paper draws in Figure 2(b). *)

(** [shb ppf g] renders the full SHB graph: one cluster per origin with its
    trace in program order, dashed inter-origin spawn/join/semaphore
    edges. *)
val shb : Format.formatter -> Graph.t -> unit

(** [origins ppf g] renders just the origin DAG: one node per origin,
    spawn and join edges — the coarse structure the happens-before BFS
    walks. *)
val origins : Format.formatter -> Graph.t -> unit

(** [callgraph ppf a] renders the context-sensitive call graph collapsed to
    method granularity (Figure 2(b)/(c) style). *)
val callgraph : Format.formatter -> O2_pta.Solver.result -> unit
