(** Flat IR: a dense, integer-indexed lowering of a checked {!Program.t}.

    [lower] compiles the whole program in one sweep — scan, resolve,
    allocate at once, in the spirit of Wirth's one-pass Oberon compiler —
    into contiguous int tables and int opcode streams. Past this boundary
    the PTA describe phase and the SHB/OSA walkers see no strings and no
    polymorphic hash keys: classes, fields, static fields, methods,
    method names and per-method variable slots are all dense ints, and
    each method body is a single [int array] instruction stream.

    Stream invariants:
    - every source statement lowers to exactly one instruction carrying
      its [sid] (so linear scans count statements exactly like the legacy
      AST walkers);
    - instructions appear in AST DFS order; [Sync]/[If]/[While] are block
      headers carrying the int length of their inlined bodies;
    - name resolution is done here once: static-call targets are method
      ids, virtual calls carry an is-external bit, spawn sites carry
      their in-loop bit. *)

open Types

(** {1 Opcodes}

    Each value is the first int of one instruction; the comment gives the
    operands that follow, in stream order. *)

val op_null : int (* sid *)
val op_assign : int (* sid, dst slot, src slot *)
val op_new : int (* sid, lhs slot, cid, nargs, arg slots... *)
val op_fwrite : int (* sid, base slot, fid, src slot *)
val op_fread : int (* sid, dst slot, base slot, fid *)
val op_awrite : int (* sid, base slot, src slot *)
val op_aread : int (* sid, dst slot, base slot *)

val op_callv : int
(** sid, ret slot or -1, recv slot, name id, external bit, nargs, args... *)

val op_calls : int
(** sid, ret slot or -1, target mid or -1 (unresolved), nargs, args... *)

val op_swrite : int (* sid, static slot, src slot *)
val op_sread : int (* sid, dst slot, static slot *)
val op_start : int (* sid, recv slot, in-loop bit *)
val op_join : int (* sid, recv slot *)
val op_signal : int (* sid, recv slot *)
val op_wait : int (* sid, recv slot *)
val op_post : int (* sid, recv slot, in-loop bit, nargs, arg slots... *)
val op_sync : int (* sid, lock slot, body length; body inlined *)
val op_if : int (* sid, then length, else length; bodies inlined *)
val op_while : int (* sid, body length; body inlined *)
val op_return : int (* sid, value slot or -1 *)

(** {1 Tables} *)

type meth_info = {
  f_meth : Program.meth;  (** back-pointer for string-world consumers *)
  f_mid : int;
  f_cid : int;
  f_nslots : int;
  f_slot_name : string array;  (** slot -> variable name *)
  f_code : int array;  (** the opcode stream of the body *)
}

type t = {
  f_program : Program.t;
  f_class_name : string array;
  f_class_id : (cname, int) Hashtbl.t;
  f_field_name : string array;
  f_field_id : (fname, int) Hashtbl.t;
  f_star : int;  (** fid of the array pseudo-field "*" *)
  f_static_cid : int array;
  f_static_fid : int array;
  f_static_id : (cname * fname, int) Hashtbl.t;
  f_meths : meth_info array;
  f_meth_id : (cname * mname, int) Hashtbl.t;
  f_name_str : string array;
  f_name_id : (mname, int) Hashtbl.t;
  f_name_defined : bool array;
  f_pos : pos array;
  f_in_loop : bool array;
}

val lower : Program.t -> t
(** One-pass lowering. Deterministic: table ids follow declaration order,
    then first occurrence in bodies. *)

(** {1 Lookups} *)

val n_classes : t -> int
val n_fields : t -> int
val n_statics : t -> int
val n_meths : t -> int
val program : t -> Program.t
val class_name : t -> int -> string
val field_name : t -> int -> string
val name_str : t -> int -> string
val meth : t -> int -> meth_info
val mid : t -> cname -> mname -> int option
val mid_of_meth : t -> Program.meth -> int
val field_id : t -> fname -> int option
val static_slot : t -> cname -> fname -> int option
val static_cid : t -> int -> int
val static_fid : t -> int -> int
val pos_of_sid : t -> int -> pos

(** {1 Location ids}

    A tid names one abstract memory location: static slots occupy
    [0 .. n_statics-1], then the (object id × field id) plane. Injective
    once lowering is done, so int equality on tids coincides with
    structural equality of the legacy access targets. *)

val tid_field : t -> oid:int -> fid:int -> int
val tid_static : t -> int -> int
val tid_is_static : t -> int -> bool
val tid_oid : t -> int -> int
val tid_fid : t -> int -> int

(** {1 Validation} *)

exception Malformed of string

val check : t -> unit
(** Structural validation of every opcode stream (known opcodes, operand
    bounds, block lengths that tile exactly). Used by the property tests.
    @raise Malformed on the first violation. *)

val footprint : t -> int
(** Approximate heap words held by the lowered tables. *)
