open Types

(* One-pass lowering of a checked {!Program.t} into a dense, integer-indexed
   program form — scan, resolve and allocate in a single sweep, in the spirit
   of Wirth's one-pass Oberon compiler. Past this boundary the analysis
   pipeline sees only int tables and int opcode streams: no strings, no
   polymorphic hash keys.

   Layout invariants (relied on by the PTA describe phase and the SHB/OSA
   walkers, and checked by {!check}):
   - every statement of a method body lowers to exactly one instruction, in
     source (DFS) order; block statements ([Sync]/[If]/[While]) carry the
     int length of their inlined body so walkers can skip or scope them,
     while linear consumers (the describe phase) just keep scanning;
   - instruction operands are dense ids: variable slots are per-method,
     field/class/method-name ids and static-field slots are program-wide;
   - name resolution happens here, once: static-call targets, the
     external-name bit of virtual calls and the loop flag of spawn sites
     are baked into the stream. *)

(* -- opcodes ------------------------------------------------------------- *)
(* operand layout, in stream order after the opcode *)

let op_null = 0 (* sid *)
let op_assign = 1 (* sid, dst slot, src slot *)
let op_new = 2 (* sid, lhs slot, cid, nargs, arg slots... *)
let op_fwrite = 3 (* sid, base slot, fid, src slot *)
let op_fread = 4 (* sid, dst slot, base slot, fid *)
let op_awrite = 5 (* sid, base slot, src slot *)
let op_aread = 6 (* sid, dst slot, base slot *)
let op_swrite = 7 (* sid, static slot, src slot *)
let op_sread = 8 (* sid, dst slot, static slot *)
let op_callv = 9 (* sid, ret slot | -1, recv slot, name id, external bit,
                    nargs, arg slots... *)
let op_calls = 10 (* sid, ret slot | -1, target mid | -1, nargs, args... *)
let op_start = 11 (* sid, recv slot, in-loop bit *)
let op_join = 12 (* sid, recv slot *)
let op_signal = 13 (* sid, recv slot *)
let op_wait = 14 (* sid, recv slot *)
let op_post = 15 (* sid, recv slot, in-loop bit, nargs, arg slots... *)
let op_sync = 16 (* sid, lock slot, body length; body inlined *)
let op_if = 17 (* sid, then length, else length; bodies inlined *)
let op_while = 18 (* sid, body length; body inlined *)
let op_return = 19 (* sid, value slot | -1 *)

type meth_info = {
  f_meth : Program.meth;  (* back-pointer for string-world consumers *)
  f_mid : int;
  f_cid : int;
  f_nslots : int;
  f_slot_name : string array;  (* slot -> variable name *)
  f_code : int array;  (* the opcode stream of the body *)
}

type t = {
  f_program : Program.t;
  f_class_name : string array;  (* cid -> class name *)
  f_class_id : (cname, int) Hashtbl.t;
  f_field_name : string array;  (* fid -> field name ("*" for arrays) *)
  f_field_id : (fname, int) Hashtbl.t;
  f_star : int;  (* fid of the array pseudo-field "*" *)
  f_static_cid : int array;  (* static slot -> declaring class id *)
  f_static_fid : int array;  (* static slot -> field id *)
  f_static_id : (cname * fname, int) Hashtbl.t;
  f_meths : meth_info array;  (* mid -> method *)
  f_meth_id : (cname * mname, int) Hashtbl.t;
  f_name_str : string array;  (* method-name id -> name *)
  f_name_id : (mname, int) Hashtbl.t;
  f_name_defined : bool array;  (* name id -> some body exists in program *)
  f_pos : pos array;  (* sid -> source position *)
  f_in_loop : bool array;  (* sid -> statement sits under a While *)
}

(* -- sizes and id lookups ------------------------------------------------ *)

let n_classes fl = Array.length fl.f_class_name
let n_fields fl = Array.length fl.f_field_name
let n_statics fl = Array.length fl.f_static_cid
let n_meths fl = Array.length fl.f_meths
let program fl = fl.f_program
let class_name fl cid = fl.f_class_name.(cid)
let field_name fl fid = fl.f_field_name.(fid)
let name_str fl nid = fl.f_name_str.(nid)
let meth fl mid = fl.f_meths.(mid)
let mid fl c m = Hashtbl.find_opt fl.f_meth_id (c, m)

let mid_of_meth fl (m : Program.meth) =
  Hashtbl.find fl.f_meth_id (m.Program.m_class, m.Program.m_name)

let field_id fl f = Hashtbl.find_opt fl.f_field_id f
let static_slot fl c f = Hashtbl.find_opt fl.f_static_id (c, f)
let static_cid fl slot = fl.f_static_cid.(slot)
let static_fid fl slot = fl.f_static_fid.(slot)
let pos_of_sid fl sid = fl.f_pos.(sid)

(* -- location ids (tids) ------------------------------------------------- *)

(* A tid names one abstract memory location: static slots first, then the
   dense (object id × field id) plane. The encoding is total and injective
   once the lowering is done — object ids come from the solved PAG, and no
   new field or static appears after [lower]. *)

let tid_field fl ~oid ~fid = n_statics fl + (oid * n_fields fl) + fid
let tid_static _fl slot = slot
let tid_is_static fl tid = tid < n_statics fl

let tid_oid fl tid = (tid - n_statics fl) / n_fields fl
let tid_fid fl tid = (tid - n_statics fl) mod n_fields fl

(* -- lowering ------------------------------------------------------------ *)

module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 64 0; len = 0 }

  let push b v =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * Array.length b.a) 0 in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- v;
    b.len <- b.len + 1

  (* reserve a patch slot (body lengths are known only after the body) *)
  let reserve b =
    let i = b.len in
    push b 0;
    i

  let patch b i v = b.a.(i) <- v
  let contents b = Array.sub b.a 0 b.len
end

let lower (p : Program.t) =
  (* program-wide interning tables, filled in declaration order first so
     ids are stable under body reordering, then on demand for names that
     appear only in statements *)
  let class_id = Hashtbl.create 64 and classes_rev = ref [] in
  let cid c =
    match Hashtbl.find_opt class_id c with
    | Some i -> i
    | None ->
        let i = Hashtbl.length class_id in
        Hashtbl.add class_id c i;
        classes_rev := c :: !classes_rev;
        i
  in
  let field_id = Hashtbl.create 64 and fields_rev = ref [] in
  let fid f =
    match Hashtbl.find_opt field_id f with
    | Some i -> i
    | None ->
        let i = Hashtbl.length field_id in
        Hashtbl.add field_id f i;
        fields_rev := f :: !fields_rev;
        i
  in
  let static_id = Hashtbl.create 32 and statics_rev = ref [] in
  let static_slot c f =
    match Hashtbl.find_opt static_id (c, f) with
    | Some i -> i
    | None ->
        let i = Hashtbl.length static_id in
        Hashtbl.add static_id (c, f) i;
        statics_rev := (cid c, fid f) :: !statics_rev;
        i
  in
  let name_id = Hashtbl.create 64 and names_rev = ref [] in
  let nid name =
    match Hashtbl.find_opt name_id name with
    | Some i -> i
    | None ->
        let i = Hashtbl.length name_id in
        Hashtbl.add name_id name i;
        names_rev := name :: !names_rev;
        i
  in
  (* pass 1: classes, declared fields/statics, method ids *)
  List.iter
    (fun (c : Program.cls) ->
      ignore (cid c.Program.c_name);
      List.iter (fun f -> ignore (fid f)) c.Program.c_fields;
      List.iter
        (fun f -> ignore (static_slot c.Program.c_name f))
        c.Program.c_sfields)
    (Program.classes p);
  let star = fid "*" in
  let meth_id = Hashtbl.create 256 and meths_rev = ref [] in
  Program.iter_methods
    (fun m ->
      let key = (m.Program.m_class, m.Program.m_name) in
      if not (Hashtbl.mem meth_id key) then begin
        Hashtbl.add meth_id key (Hashtbl.length meth_id);
        meths_rev := m :: !meths_rev
      end)
    p;
  let meth_arr = Array.of_list (List.rev !meths_rev) in
  let defined = Hashtbl.create 256 in
  Array.iter (fun m -> Hashtbl.replace defined m.Program.m_name ()) meth_arr;
  (* pass 2: lower each body *)
  let lower_meth f_mid (m : Program.meth) =
    let slot_tbl = Hashtbl.create 16 and slots_rev = ref [] in
    let slot v =
      match Hashtbl.find_opt slot_tbl v with
      | Some i -> i
      | None ->
          let i = Hashtbl.length slot_tbl in
          Hashtbl.add slot_tbl v i;
          slots_rev := v :: !slots_rev;
          i
    in
    ignore (slot "this");
    List.iter (fun v -> ignore (slot v)) m.Program.m_params;
    List.iter (fun v -> ignore (slot v)) m.Program.m_locals;
    let buf = Ibuf.create () in
    let push = Ibuf.push buf in
    let rec stmt (s : Ast.stmt) =
      let sid = s.Ast.sid in
      match s.Ast.sk with
      | Ast.Null _ ->
          push op_null;
          push sid
      | Ast.Assign (x, y) ->
          push op_assign;
          push sid;
          push (slot x);
          push (slot y)
      | Ast.New (x, c, args) ->
          push op_new;
          push sid;
          push (slot x);
          push (cid c);
          push (List.length args);
          List.iter (fun a -> push (slot a)) args
      | Ast.FieldWrite (x, f, y) ->
          push op_fwrite;
          push sid;
          push (slot x);
          push (fid f);
          push (slot y)
      | Ast.FieldRead (x, y, f) ->
          push op_fread;
          push sid;
          push (slot x);
          push (slot y);
          push (fid f)
      | Ast.ArrayWrite (x, y) ->
          push op_awrite;
          push sid;
          push (slot x);
          push (slot y)
      | Ast.ArrayRead (x, y) ->
          push op_aread;
          push sid;
          push (slot x);
          push (slot y)
      | Ast.StaticWrite (c, f, y) ->
          push op_swrite;
          push sid;
          push (static_slot c f);
          push (slot y)
      | Ast.StaticRead (x, c, f) ->
          push op_sread;
          push sid;
          push (slot x);
          push (static_slot c f)
      | Ast.Call (ret, y, mname, args) ->
          push op_callv;
          push sid;
          push (match ret with Some r -> slot r | None -> -1);
          push (slot y);
          push (nid mname);
          push (if Hashtbl.mem defined mname then 0 else 1);
          push (List.length args);
          List.iter (fun a -> push (slot a)) args
      | Ast.StaticCall (ret, c, mname, args) ->
          let target =
            match Program.static_method p c mname with
            | Some tm ->
                Hashtbl.find meth_id (tm.Program.m_class, tm.Program.m_name)
            | None -> -1
          in
          push op_calls;
          push sid;
          push (match ret with Some r -> slot r | None -> -1);
          push target;
          push (List.length args);
          List.iter (fun a -> push (slot a)) args
      | Ast.Start x ->
          push op_start;
          push sid;
          push (slot x);
          push (if Program.stmt_in_loop p sid then 1 else 0)
      | Ast.Join x ->
          push op_join;
          push sid;
          push (slot x)
      | Ast.Signal x ->
          push op_signal;
          push sid;
          push (slot x)
      | Ast.Wait x ->
          push op_wait;
          push sid;
          push (slot x)
      | Ast.Post (x, args) ->
          push op_post;
          push sid;
          push (slot x);
          push (if Program.stmt_in_loop p sid then 1 else 0);
          push (List.length args);
          List.iter (fun a -> push (slot a)) args
      | Ast.Sync (x, body) ->
          push op_sync;
          push sid;
          push (slot x);
          let len_at = Ibuf.reserve buf in
          let before = buf.Ibuf.len in
          List.iter stmt body;
          Ibuf.patch buf len_at (buf.Ibuf.len - before)
      | Ast.If (b1, b2) ->
          push op_if;
          push sid;
          let len1_at = Ibuf.reserve buf in
          let len2_at = Ibuf.reserve buf in
          let before1 = buf.Ibuf.len in
          List.iter stmt b1;
          Ibuf.patch buf len1_at (buf.Ibuf.len - before1);
          let before2 = buf.Ibuf.len in
          List.iter stmt b2;
          Ibuf.patch buf len2_at (buf.Ibuf.len - before2)
      | Ast.While body ->
          push op_while;
          push sid;
          let len_at = Ibuf.reserve buf in
          let before = buf.Ibuf.len in
          List.iter stmt body;
          Ibuf.patch buf len_at (buf.Ibuf.len - before)
      | Ast.Return v ->
          push op_return;
          push sid;
          push (match v with Some r -> slot r | None -> -1)
    in
    List.iter stmt m.Program.m_body;
    let slot_name = Array.of_list (List.rev !slots_rev) in
    {
      f_meth = m;
      f_mid;
      f_cid = cid m.Program.m_class;
      f_nslots = Array.length slot_name;
      f_slot_name = slot_name;
      f_code = Ibuf.contents buf;
    }
  in
  let meths = Array.mapi lower_meth meth_arr in
  let n = Program.n_stmts p in
  {
    f_program = p;
    f_class_name = Array.of_list (List.rev !classes_rev);
    f_class_id = class_id;
    f_field_name = Array.of_list (List.rev !fields_rev);
    f_field_id = field_id;
    f_star = star;
    f_static_cid = Array.of_list (List.rev_map fst !statics_rev);
    f_static_fid = Array.of_list (List.rev_map snd !statics_rev);
    f_static_id = static_id;
    f_meths = meths;
    f_meth_id = meth_id;
    f_name_str = Array.of_list (List.rev !names_rev);
    f_name_id = name_id;
    f_name_defined =
      Array.of_list
        (List.rev_map (fun nm -> Hashtbl.mem defined nm) !names_rev);
    f_pos = Array.init n (fun sid -> (fst (Program.stmt p sid)).Ast.pos);
    f_in_loop = Array.init n (fun sid -> Program.stmt_in_loop p sid);
  }

(* -- structural validation (used by the property tests) ------------------ *)

exception Malformed of string

let fail fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let check fl =
  let nf = n_fields fl
  and ns = n_statics fl
  and nc = n_classes fl
  and nm = n_meths fl in
  let n_sids = Array.length fl.f_pos in
  Array.iter
    (fun mi ->
      let code = mi.f_code in
      let len = Array.length code in
      let sid v = if v < 0 || v >= n_sids then fail "bad sid %d" v in
      let slot v =
        if v < 0 || v >= mi.f_nslots then
          fail "bad slot %d in %s" v mi.f_meth.Program.m_name
      in
      let opt_slot v = if v <> -1 then slot v in
      let rec block i stop =
        if i > stop then fail "instruction overruns its block"
        else if i = stop then ()
        else
          let op = code.(i) in
          let next =
            if op = op_null then (
              sid code.(i + 1);
              i + 2)
            else if op = op_assign || op = op_awrite || op = op_aread then (
              sid code.(i + 1);
              slot code.(i + 2);
              slot code.(i + 3);
              i + 4)
            else if op = op_new then begin
              sid code.(i + 1);
              slot code.(i + 2);
              if code.(i + 3) < 0 || code.(i + 3) >= nc then
                fail "bad cid %d" code.(i + 3);
              let nargs = code.(i + 4) in
              for k = 0 to nargs - 1 do
                slot code.(i + 5 + k)
              done;
              i + 5 + nargs
            end
            else if op = op_fwrite || op = op_fread then begin
              sid code.(i + 1);
              slot code.(i + 2);
              let f = if op = op_fwrite then code.(i + 3) else code.(i + 4) in
              let b = if op = op_fwrite then code.(i + 2) else code.(i + 3) in
              slot b;
              if f < 0 || f >= nf then fail "bad fid %d" f;
              (if op = op_fwrite then slot code.(i + 4));
              i + 5
            end
            else if op = op_swrite || op = op_sread then begin
              sid code.(i + 1);
              let st = if op = op_swrite then code.(i + 2) else code.(i + 3) in
              let v = if op = op_swrite then code.(i + 3) else code.(i + 2) in
              if st < 0 || st >= ns then fail "bad static slot %d" st;
              slot v;
              i + 4
            end
            else if op = op_callv then begin
              sid code.(i + 1);
              opt_slot code.(i + 2);
              slot code.(i + 3);
              if code.(i + 4) < 0 || code.(i + 4) >= Array.length fl.f_name_str
              then fail "bad name id %d" code.(i + 4);
              let nargs = code.(i + 6) in
              for k = 0 to nargs - 1 do
                slot code.(i + 7 + k)
              done;
              i + 7 + nargs
            end
            else if op = op_calls then begin
              sid code.(i + 1);
              opt_slot code.(i + 2);
              if code.(i + 3) < -1 || code.(i + 3) >= nm then
                fail "bad target mid %d" code.(i + 3);
              let nargs = code.(i + 4) in
              for k = 0 to nargs - 1 do
                slot code.(i + 5 + k)
              done;
              i + 5 + nargs
            end
            else if op = op_start then (
              sid code.(i + 1);
              slot code.(i + 2);
              i + 4)
            else if op = op_join || op = op_signal || op = op_wait then (
              sid code.(i + 1);
              slot code.(i + 2);
              i + 3)
            else if op = op_post then begin
              sid code.(i + 1);
              slot code.(i + 2);
              let nargs = code.(i + 4) in
              for k = 0 to nargs - 1 do
                slot code.(i + 5 + k)
              done;
              i + 5 + nargs
            end
            else if op = op_sync then begin
              sid code.(i + 1);
              slot code.(i + 2);
              let blen = code.(i + 3) in
              block (i + 4) (i + 4 + blen);
              i + 4 + blen
            end
            else if op = op_if then begin
              sid code.(i + 1);
              let l1 = code.(i + 2) and l2 = code.(i + 3) in
              block (i + 4) (i + 4 + l1);
              block (i + 4 + l1) (i + 4 + l1 + l2);
              i + 4 + l1 + l2
            end
            else if op = op_while then begin
              sid code.(i + 1);
              let blen = code.(i + 2) in
              block (i + 3) (i + 3 + blen);
              i + 3 + blen
            end
            else if op = op_return then (
              sid code.(i + 1);
              opt_slot code.(i + 2);
              i + 3)
            else fail "unknown opcode %d at %d" op i
          in
          block next stop
      in
      block 0 len)
    fl.f_meths

(* [footprint fl] estimates the lowered form's heap words — the number the
   README quotes for cache-entry and daemon-residency sizing. *)
let footprint fl =
  Array.fold_left
    (fun acc mi -> acc + Array.length mi.f_code + mi.f_nslots)
    (n_statics fl * 2 + Array.length fl.f_pos + n_classes fl + n_fields fl)
    fl.f_meths
