type gauge = { mutable g_cur : int; mutable g_peak : int }

type span = {
  sp_path : string;
  sp_depth : int;
  sp_seq : int;
  sp_start : float;
  mutable sp_elapsed : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  timers : (string, float ref) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  mutable span_list : span list; (* reverse start order *)
  mutable span_stack : span list;
  mutable span_seq : int;
  t0 : float;
}

let create () =
  {
    counters = Hashtbl.create 32;
    timers = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    span_list = [];
    span_stack = [];
    span_seq = 0;
    t0 = Unix.gettimeofday ();
  }

(* ---- counters ---- *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter t name)

let add t name n =
  let r = counter t name in
  r := !r + n

let set t name n = counter t name := n

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- timers ---- *)

let timer t name =
  match Hashtbl.find_opt t.timers name with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.add t.timers name r;
      r

let time t name f =
  let r = timer t name in
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> r := !r +. (Unix.gettimeofday () -. t0)) f

let get_time t name =
  match Hashtbl.find_opt t.timers name with Some r -> !r | None -> 0.0

let timers t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.timers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- gauges ---- *)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { g_cur = 0; g_peak = 0 } in
      Hashtbl.add t.gauges name g;
      g

let gauge_set t name v =
  let g = gauge t name in
  g.g_cur <- v;
  if v > g.g_peak then g.g_peak <- v

let gauge_add t name d =
  let g = gauge t name in
  g.g_cur <- g.g_cur + d;
  if g.g_cur > g.g_peak then g.g_peak <- g.g_cur

let gauge_peak t name =
  match Hashtbl.find_opt t.gauges name with Some g -> g.g_peak | None -> 0

let gauges t =
  Hashtbl.fold (fun k g acc -> (k, g.g_cur, g.g_peak) :: acc) t.gauges []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(* ---- spans ---- *)

let span t name f =
  let path =
    match t.span_stack with
    | [] -> name
    | parent :: _ -> parent.sp_path ^ "/" ^ name
  in
  let sp =
    {
      sp_path = path;
      sp_depth = List.length t.span_stack;
      sp_seq = t.span_seq;
      sp_start = Unix.gettimeofday () -. t.t0;
      sp_elapsed = -1.0;
    }
  in
  t.span_seq <- t.span_seq + 1;
  t.span_list <- sp :: t.span_list;
  t.span_stack <- sp :: t.span_stack;
  Fun.protect
    ~finally:(fun () ->
      sp.sp_elapsed <- Unix.gettimeofday () -. t.t0 -. sp.sp_start;
      t.span_stack <-
        (match t.span_stack with top :: rest when top == sp -> rest | s -> s))
    f

let spans t =
  List.sort (fun a b -> compare a.sp_seq b.sp_seq) t.span_list

(* ---- merge ---- *)

let merge ~into src =
  Hashtbl.iter (fun k r -> add into k !r) src.counters;
  Hashtbl.iter
    (fun k r ->
      let dst = timer into k in
      dst := !dst +. !r)
    src.timers;
  Hashtbl.iter
    (fun k g ->
      let dst = gauge into k in
      dst.g_cur <- dst.g_cur + g.g_cur;
      if g.g_peak > dst.g_peak then dst.g_peak <- g.g_peak)
    src.gauges

(* ---- export ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_json sp =
  Printf.sprintf
    {|{"path":"%s","depth":%d,"start":%.6f,"elapsed":%.6f}|}
    (json_escape sp.sp_path) sp.sp_depth sp.sp_start
    (if sp.sp_elapsed < 0.0 then 0.0 else sp.sp_elapsed)

let to_json t =
  let fields kvs = String.concat "," kvs in
  let cs =
    List.map
      (fun (k, v) -> Printf.sprintf {|"%s":%d|} (json_escape k) v)
      (counters t)
  in
  let ts =
    List.map
      (fun (k, v) -> Printf.sprintf {|"%s":%.6f|} (json_escape k) v)
      (timers t)
  in
  let gs =
    List.map
      (fun (k, cur, peak) ->
        Printf.sprintf {|"%s":{"current":%d,"peak":%d}|} (json_escape k) cur
          peak)
      (gauges t)
  in
  let sps = List.map span_json (spans t) in
  Printf.sprintf
    {|{"counters":{%s},"timers":{%s},"gauges":{%s},"spans":[%s]}|}
    (fields cs) (fields ts) (fields gs) (fields sps)

let to_json_lines t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf {|{"type":"counter","name":"%s","value":%d}|}
           (json_escape k) v);
      Buffer.add_char buf '\n')
    (counters t);
  List.iter
    (fun (k, cur, peak) ->
      Buffer.add_string buf
        (Printf.sprintf
           {|{"type":"gauge","name":"%s","current":%d,"peak":%d}|}
           (json_escape k) cur peak);
      Buffer.add_char buf '\n')
    (gauges t);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf {|{"type":"timer","name":"%s","seconds":%.6f}|}
           (json_escape k) v);
      Buffer.add_char buf '\n')
    (timers t);
  List.iter
    (fun sp ->
      Buffer.add_string buf
        (Printf.sprintf {|{"type":"span",%s|}
           (let j = span_json sp in
            String.sub j 1 (String.length j - 1)));
      Buffer.add_char buf '\n')
    (spans t);
  Buffer.contents buf

let pp ppf t =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-32s %12d@." k v)
    (counters t);
  List.iter
    (fun (k, cur, peak) ->
      Format.fprintf ppf "%-32s %12d (peak %d)@." k cur peak)
    (gauges t);
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-32s %11.6fs@." k v)
    (timers t);
  List.iter
    (fun sp ->
      let name =
        match String.rindex_opt sp.sp_path '/' with
        | Some i ->
            String.sub sp.sp_path (i + 1) (String.length sp.sp_path - i - 1)
        | None -> sp.sp_path
      in
      let label = String.make (2 * sp.sp_depth) ' ' ^ name in
      Format.fprintf ppf "%-32s %11.6fs@." label
        (if sp.sp_elapsed < 0.0 then 0.0 else sp.sp_elapsed))
    (spans t)
