(** Structured observability sink for the analysis pipeline.

    One [Metrics.t] value travels through every pipeline stage (via
    [O2.Config.t]) and accumulates four kinds of signal:

    - {b counters} — monotone named integers ([pta.edges], ...);
    - {b timers} — named accumulating wall-clock buckets, for code that
      runs many times under one name;
    - {b gauges} — instantaneous levels with a tracked peak
      ([pta.worklist_peak], ...);
    - {b spans} — hierarchical wall-clock regions
      ([span m "pta.solve" @@ fun () -> ...]) forming the per-stage trace
      the paper's Tables 6–7 report.

    Instrumentation is zero-cost-by-default: stages keep plain mutable
    integers on their hot paths and flush them into the sink (if any) once
    per stage, so running with [metrics = None] allocates nothing.

    Export is machine-readable ({!to_json}, {!to_json_lines}) or a human
    table ({!pp}). *)

type t

(** One completed (or still-open) trace region. *)
type span = {
  sp_path : string;  (** slash-separated path, e.g. ["analyze/pta"] *)
  sp_depth : int;  (** nesting depth, 0 for roots *)
  sp_seq : int;  (** start order, unique per sink *)
  sp_start : float;  (** seconds since sink creation *)
  mutable sp_elapsed : float;  (** duration in seconds; -1 while open *)
}

(** [create ()] is an empty sink; span timestamps are relative to now. *)
val create : unit -> t

(** {1 Counters} *)

(** [counter t name] is the underlying ref — pre-resolve it outside a hot
    loop to skip the per-increment hash lookup. *)
val counter : t -> string -> int ref

(** [incr t name] bumps counter [name] by one (creating it at 0). *)
val incr : t -> string -> unit

(** [add t name n] bumps counter [name] by [n]. *)
val add : t -> string -> int -> unit

(** [set t name n] overwrites counter [name]. *)
val set : t -> string -> int -> unit

(** [get t name] is the current value of [name] (0 if never touched). *)
val get : t -> string -> int

(** [counters t] lists [(name, value)] sorted by name. *)
val counters : t -> (string * int) list

(** {1 Timers} *)

(** [time t name f] runs [f ()], accumulating its wall-clock duration under
    timer [name]; returns [f ()]'s result. Exception-safe. *)
val time : t -> string -> (unit -> 'a) -> 'a

(** [get_time t name] is the accumulated seconds for timer [name]. *)
val get_time : t -> string -> float

(** [timers t] lists [(name, seconds)] sorted by name. *)
val timers : t -> (string * float) list

(** {1 Gauges} *)

(** [gauge_set t name v] sets the gauge level, updating its peak. *)
val gauge_set : t -> string -> int -> unit

(** [gauge_add t name d] moves the gauge level by [d] (may be negative),
    updating its peak. *)
val gauge_add : t -> string -> int -> unit

(** [gauge_peak t name] is the highest level ever set (0 if untouched). *)
val gauge_peak : t -> string -> int

(** [gauges t] lists [(name, current, peak)] sorted by name. *)
val gauges : t -> (string * int * int) list

(** {1 Trace spans} *)

(** [span t name f] runs [f ()] inside a trace region nested under the
    innermost open span; the region is closed (duration recorded) even if
    [f] raises. *)
val span : t -> string -> (unit -> 'a) -> 'a

(** [spans t] lists all regions in start order. *)
val spans : t -> span list

(** {1 Merging} *)

(** [merge ~into src] folds [src] into [into]: counters and timers are
    summed, gauge levels summed with the higher peak kept. Spans are not
    transferred — they are wall-clock regions of one sink's own timeline.
    Used by the batch driver to aggregate per-file sinks into corpus
    totals. *)
val merge : into:t -> t -> unit

(** {1 Export} *)

(** [to_json t] is one JSON object:
    [{"counters":{..},"timers":{..},"gauges":{..},"spans":[..]}]. *)
val to_json : t -> string

(** [to_json_lines t] is the same data as JSON lines, one metric per line,
    each tagged with a ["type"] field. *)
val to_json_lines : t -> string

(** [pp] prints the human table: counters, gauges, timers, then the span
    tree indented by depth. *)
val pp : Format.formatter -> t -> unit
