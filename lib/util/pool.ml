type t = {
  size : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (int -> unit) option;
  mutable gen : int;
  mutable pending : int;
  mutable failures : (int * exn) list;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let worker t shard =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && t.gen = !seen do
      Condition.wait t.cond t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      seen := t.gen;
      let f = match t.job with Some f -> f | None -> fun _ -> () in
      Mutex.unlock t.mutex;
      let failure = try f shard; None with e -> Some e in
      Mutex.lock t.mutex;
      (match failure with
      | Some e -> t.failures <- (shard, e) :: t.failures
      | None -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create n =
  let n = max 1 n in
  let t =
    {
      size = n;
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      gen = 0;
      pending = 0;
      failures = [];
      stop = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (n - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let size t = t.size

let run t f =
  if t.size = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    t.job <- Some f;
    t.failures <- [];
    t.pending <- t.size - 1;
    t.gen <- t.gen + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    let mine = try f 0; None with e -> Some e in
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.cond t.mutex
    done;
    t.job <- None;
    (* deterministic choice: the caller's own failure wins, then the
       lowest-numbered shard's *)
    let others =
      List.sort (fun (a, _) (b, _) -> compare a b) t.failures
    in
    t.failures <- [];
    Mutex.unlock t.mutex;
    match (mine, others) with
    | Some e, _ -> raise e
    | None, (_, e) :: _ -> raise e
    | None, [] -> ()
  end

let shutdown t =
  if t.size > 1 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end
