(** Growable dense bitsets over non-negative integers.

    Points-to sets in the pointer-analysis solver are sets of interned
    [⟨alloc-site, heap-context⟩] identifiers; this module provides the compact
    mutable representation used for them, supporting the difference
    propagation the worklist solver performs. *)

type t

(** [create ()] is a fresh empty bitset. *)
val create : unit -> t

(** [singleton i] is the bitset containing exactly [i]. *)
val singleton : int -> t

(** [copy s] is an independent copy of [s]. *)
val copy : t -> t

(** [add s i] adds [i]; returns [true] iff [i] was not already present. *)
val add : t -> int -> bool

(** [mem s i] tests membership; [i] may exceed the current capacity. *)
val mem : t -> int -> bool

(** [union_into ~into src] adds all of [src] into [into]; returns [true]
    iff [into] changed. *)
val union_into : into:t -> t -> bool

(** [inter_into ~into src] removes from [into] every element not in
    [src], in place. *)
val inter_into : into:t -> t -> unit

(** [diff_new ~from ~minus] is the list of elements in [from] but not in
    [minus] — the "delta" driving difference propagation. *)
val diff_new : from:t -> minus:t -> int list

(** [clear s] empties [s] in place, keeping its capacity. *)
val clear : t -> unit

(** [take_fresh_span ~scratch ~pts ~delta] is {!take_fresh} without the
    allocation: fresh elements are written into [scratch] and the word
    span [lo, hi) holding them is returned ([(0, 0)] when there were
    none). Scratch words outside the span are stale from earlier calls —
    consumers must stay within the span (see {!union_span_into},
    {!copy_span}, {!cardinal_span}). The worklist drain reuses one
    scratch set per shard, so the hot pop allocates nothing, and all
    downstream work is bounded by the delta's live content. *)
val take_fresh_span : scratch:t -> pts:t -> delta:t -> int * int

(** [take_fresh_into ~scratch ~pts ~delta] is {!take_fresh_span} reduced
    to whether any fresh element was found. *)
val take_fresh_into : scratch:t -> pts:t -> delta:t -> bool

(** [union_span_into ~into src ~lo ~hi] unions words [lo, hi) of [src]
    into [into]. *)
val union_span_into : into:t -> t -> lo:int -> hi:int -> unit

(** [copy_span src ~lo ~hi] is a fresh bitset holding exactly words
    [lo, hi) of [src]. *)
val copy_span : t -> lo:int -> hi:int -> t

(** [cardinal_span s ~lo ~hi] counts elements in words [lo, hi). *)
val cardinal_span : t -> lo:int -> hi:int -> int

(** [take_fresh ~pts ~delta] commits a pending delta: the elements of
    [delta] not yet in [pts] are added to [pts] and returned as a fresh
    bitset; [delta] is cleared. [None] when every candidate was already
    known. This is the word-parallel pop of the difference-propagation
    worklist — candidates may be enqueued redundantly, deduplication
    happens here. *)
val take_fresh : pts:t -> delta:t -> t option

(** [cardinal s] is the number of elements. O(words). *)
val cardinal : t -> int

(** [is_empty s] is [true] iff [s] has no element. *)
val is_empty : t -> bool

(** [iter f s] applies [f] to each element in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s acc] folds over elements in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [elements s] lists elements in increasing order. *)
val elements : t -> int list

(** [exists p s] is [true] iff some element satisfies [p]. *)
val exists : (int -> bool) -> t -> bool

(** [inter_nonempty a b] is [true] iff [a] and [b] share an element. *)
val inter_nonempty : t -> t -> bool

(** [equal a b] is extensional equality. *)
val equal : t -> t -> bool

(** [subset a b] is [true] iff every element of [a] is in [b]. *)
val subset : t -> t -> bool

val pp : Format.formatter -> t -> unit
