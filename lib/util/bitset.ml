(* [top] is a cached upper bound on content: every nonzero word index is
   < [top], and [top] <= capacity. Mutators maintain it monotonically;
   [top_word] trims it back to the exact bound. It exists so the hot
   worklist operations of the PTA solver scan live content, never
   capacity — capacities track the highest id ever seen while deltas are
   usually near-singletons. *)
type t = { mutable words : int array; mutable top : int }

let word_bits = Sys.int_size

(* Freshly created sets own a shared zero-length array until the first
   [ensure]: the PAG allocates pts/delta/pending sets for every interned
   node up front, and most never grow past empty. *)
let empty_words : int array = [||]

let create () = { words = empty_words; top = 0 }

let ensure s i =
  let w = i / word_bits in
  let n = Array.length s.words in
  if w >= n then begin
    let n' = ref (max 4 n) in
    while w >= !n' do
      n' := !n' * 2
    done;
    let a = Array.make !n' 0 in
    Array.blit s.words 0 a 0 n;
    s.words <- a
  end

let add s i =
  if i < 0 then invalid_arg "Bitset.add: negative";
  ensure s i;
  let w = i / word_bits and b = i mod word_bits in
  let old = s.words.(w) in
  let nw = old lor (1 lsl b) in
  if nw = old then false
  else begin
    s.words.(w) <- nw;
    if w >= s.top then s.top <- w + 1;
    true
  end

let singleton i =
  let s = create () in
  ignore (add s i);
  s

let copy s = { words = Array.copy s.words; top = s.top }

let mem s i =
  if i < 0 then false
  else
    let w = i / word_bits in
    w < Array.length s.words && s.words.(w) land (1 lsl (i mod word_bits)) <> 0

(* Index just past the last nonzero word. Starts from the cached [top] and
   trims it, so repeated calls on a stable set are O(1). *)
let top_word s =
  let i = ref s.top in
  while !i > 0 && s.words.(!i - 1) = 0 do
    decr i
  done;
  s.top <- !i;
  !i

let union_into ~into src =
  let hi = top_word src in
  if hi = 0 then false
  else begin
    ensure into ((hi * word_bits) - 1);
    let changed = ref false in
    for w = 0 to hi - 1 do
      let sw = src.words.(w) in
      if sw <> 0 then begin
        let old = into.words.(w) in
        let nw = old lor sw in
        if nw <> old then begin
          into.words.(w) <- nw;
          changed := true
        end
      end
    done;
    if !changed && hi > into.top then into.top <- hi;
    !changed
  end

(* [union_span_into ~into src ~lo ~hi] unions words [lo,hi) of [src] into
   [into] — the caller (the worklist drain) knows the span holding fresh
   bits and skips the rest. *)
let union_span_into ~into src ~lo ~hi =
  if hi > lo then begin
    ensure into ((hi * word_bits) - 1);
    for w = lo to hi - 1 do
      let sw = src.words.(w) in
      if sw <> 0 then into.words.(w) <- into.words.(w) lor sw
    done;
    if hi > into.top then into.top <- hi
  end

(* [copy_span src ~lo ~hi] is a fresh bitset holding exactly words [lo,hi)
   of [src]. *)
let copy_span src ~lo ~hi =
  let a = Array.make (max hi 0) 0 in
  if hi > lo then Array.blit src.words lo a lo (hi - lo);
  { words = a; top = max hi 0 }

let inter_into ~into src =
  let hi = top_word into in
  let ns = Array.length src.words in
  for w = 0 to hi - 1 do
    let sw = if w < ns then src.words.(w) else 0 in
    let old = into.words.(w) in
    if old land lnot sw <> 0 then into.words.(w) <- old land sw
  done

let iter_word f w base =
  if w <> 0 then
    for b = 0 to word_bits - 1 do
      if w land (1 lsl b) <> 0 then f (base + b)
    done

let iter f s =
  let hi = top_word s in
  for wi = 0 to hi - 1 do
    iter_word f s.words.(wi) (wi * word_bits)
  done

let fold f s acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i l -> i :: l) s [])

let diff_new ~from ~minus =
  let out = ref [] in
  Array.iteri
    (fun wi w ->
      let mw = if wi < Array.length minus.words then minus.words.(wi) else 0 in
      let d = w land lnot mw in
      iter_word (fun i -> out := i :: !out) d (wi * word_bits))
    from.words;
  List.rev !out

let popcount w =
  let c = ref 0 and w = ref w in
  while !w <> 0 do
    incr c;
    w := !w land (!w - 1)
  done;
  !c

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let cardinal_span s ~lo ~hi =
  let acc = ref 0 in
  for w = lo to min hi (Array.length s.words) - 1 do
    acc := !acc + popcount s.words.(w)
  done;
  !acc

let is_empty s = top_word s = 0

let exists p s =
  try
    iter (fun i -> if p i then raise Exit) s;
    false
  with Exit -> true

let inter_nonempty a b =
  let n = min (Array.length a.words) (Array.length b.words) in
  let rec go i = i < n && (a.words.(i) land b.words.(i) <> 0 || go (i + 1)) in
  go 0

let subset a b =
  let nb = Array.length b.words in
  let ok = ref true in
  Array.iteri
    (fun wi w ->
      let bw = if wi < nb then b.words.(wi) else 0 in
      if w land lnot bw <> 0 then ok := false)
    a.words;
  !ok

let equal a b = subset a b && subset b a

let clear s =
  Array.fill s.words 0 (Array.length s.words) 0;
  s.top <- 0

(* [take_fresh_span ~scratch ~pts ~delta] is the span-returning core of
   the allocation-free pop: fresh elements land in [scratch] and the
   result is the word span [lo, hi) holding them ([(0, 0)] when none).
   Scratch words inside the span are written exactly; words outside are
   stale from earlier pops — consumers must stay within the span. Cost is
   bounded by the delta's live content, not anyone's capacity. *)
let take_fresh_span ~scratch ~pts ~delta =
  let nd = top_word delta in
  if nd = 0 then (0, 0)
  else begin
    ensure pts ((nd * word_bits) - 1);
    ensure scratch ((nd * word_bits) - 1);
    (* first nonzero delta word: writes below are bounded by the delta's
       nonzero span, so a lone high id costs one word, not a prefix scan *)
    let first = ref 0 in
    while delta.words.(!first) = 0 do
      incr first
    done;
    let lo = ref nd and hi = ref 0 in
    for w = !first to nd - 1 do
      let dw = delta.words.(w) in
      let f =
        if dw = 0 then 0
        else begin
          delta.words.(w) <- 0;
          dw land lnot pts.words.(w)
        end
      in
      scratch.words.(w) <- f;
      if f <> 0 then begin
        if w < !lo then lo := w;
        hi := w + 1;
        pts.words.(w) <- pts.words.(w) lor f
      end
    done;
    delta.top <- 0;
    if !hi = 0 then (0, 0)
    else begin
      if !hi > pts.top then pts.top <- !hi;
      if !hi > scratch.top then scratch.top <- !hi;
      (!lo, !hi)
    end
  end

let take_fresh_into ~scratch ~pts ~delta =
  let _, hi = take_fresh_span ~scratch ~pts ~delta in
  hi > 0

let take_fresh ~pts ~delta =
  let nd = Array.length delta.words in
  if nd = 0 then None
  else begin
    ensure pts (max 0 ((nd * word_bits) - 1));
    let fresh = Array.make nd 0 in
    let any = ref false in
    let hi = ref 0 in
    for w = 0 to nd - 1 do
      let dw = delta.words.(w) in
      if dw <> 0 then begin
        let f = dw land lnot pts.words.(w) in
        if f <> 0 then begin
          any := true;
          fresh.(w) <- f;
          hi := w + 1;
          pts.words.(w) <- pts.words.(w) lor f
        end;
        delta.words.(w) <- 0
      end
    done;
    delta.top <- 0;
    if !any then begin
      if !hi > pts.top then pts.top <- !hi;
      Some { words = fresh; top = !hi }
    end
    else None
  end

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements s)
