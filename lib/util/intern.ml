module Make (H : Hashtbl.HashedType) = struct
  (* A hand-rolled bucket table rather than [Hashtbl.Make], for two
     capabilities the stdlib cannot offer: interning with an externally
     precomputed hash (the parallel describe phases of the PTA solver hash
     keys off the serial path) and lock-free concurrent lookups while the
     table is frozen (no writer). Reads never mutate the structure. *)
  type slot = { s_hash : int; s_key : H.t; s_id : int }

  type t = {
    mutable buckets : slot list array;  (* length always a power of two *)
    mutable values : H.t array;
    mutable next : int;
  }

  let create () = { buckets = Array.make 16 []; values = [||]; next = 0 }

  let hash_key = H.hash

  let find_hashed t ~hash v =
    let b = t.buckets.(hash land (Array.length t.buckets - 1)) in
    let rec go = function
      | [] -> -1
      | s :: tl ->
          if s.s_hash = hash && H.equal s.s_key v then s.s_id else go tl
    in
    go b

  let resize t =
    let old = t.buckets in
    let n' = Array.length old * 2 in
    let fresh = Array.make n' [] in
    Array.iter
      (List.iter (fun s ->
           let i = s.s_hash land (n' - 1) in
           fresh.(i) <- s :: fresh.(i)))
      old;
    t.buckets <- fresh

  let intern_hashed t ~hash v =
    match find_hashed t ~hash v with
    | id when id >= 0 -> id
    | _ ->
        let id = t.next in
        t.next <- id + 1;
        if id > 2 * Array.length t.buckets then resize t;
        let i = hash land (Array.length t.buckets - 1) in
        t.buckets.(i) <- { s_hash = hash; s_key = v; s_id = id } :: t.buckets.(i);
        let cap = Array.length t.values in
        if id >= cap then begin
          let a = Array.make (max 8 (cap * 2)) v in
          Array.blit t.values 0 a 0 cap;
          t.values <- a
        end;
        t.values.(id) <- v;
        id

  let intern t v = intern_hashed t ~hash:(H.hash v) v

  let find_opt t v =
    match find_hashed t ~hash:(H.hash v) v with
    | -1 -> None
    | id -> Some id

  let value t id =
    if id < 0 || id >= t.next then invalid_arg "Intern.value: unknown id";
    t.values.(id)

  let count t = t.next

  let iter f t =
    for id = 0 to t.next - 1 do
      f id t.values.(id)
    done
end
