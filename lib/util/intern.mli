(** Generic interning (hash-consing) tables.

    Contexts, abstract heap objects and locksets are interned to dense
    integer identifiers so that equality is [(==)]-cheap and the analyses can
    use them as bitset indices and array offsets.

    Concurrency contract: the table is {e not} synchronized. Lookups
    ({!Make.find_opt}, {!Make.find_hashed}, {!Make.value}) are safe from
    multiple domains only while no domain interns — the PTA solver freezes
    its tables during parallel phases and interns exclusively at serial
    barriers. *)

module Make (H : Hashtbl.HashedType) : sig
  type t

  (** [create ()] is a fresh table with no interned values. *)
  val create : unit -> t

  (** [hash_key v] is [H.hash v] — precompute it once (possibly off the
      serial path) and feed it to the [_hashed] variants. *)
  val hash_key : H.t -> int

  (** [intern t v] returns the unique dense id of [v], assigning the next
      fresh id on first sight. Ids start at 0. *)
  val intern : t -> H.t -> int

  (** [intern_hashed t ~hash v] is [intern t v] with [hash = H.hash v]
      already computed by the caller. *)
  val intern_hashed : t -> hash:int -> H.t -> int

  (** [find_opt t v] is the id of [v] if already interned. *)
  val find_opt : t -> H.t -> int option

  (** [find_hashed t ~hash v] is the id of [v], or [-1] when absent —
      the allocation-free lookup used on hot paths. *)
  val find_hashed : t -> hash:int -> H.t -> int

  (** [value t id] recovers the interned value. @raise Invalid_argument on an
      id never returned by [intern]. *)
  val value : t -> int -> H.t

  (** [count t] is the number of interned values, i.e. the next fresh id. *)
  val count : t -> int

  (** [iter f t] applies [f id value] for every interned value. *)
  val iter : (int -> H.t -> unit) -> t -> unit
end
