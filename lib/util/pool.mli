(** A persistent pool of worker domains for bulk-synchronous phases.

    The PTA solver alternates short parallel phases (describe constraint
    batches, drain per-shard worklists) with serial barriers, many times per
    solve. [Domain.spawn] per phase would dominate the phase cost, so the
    pool spawns [n - 1] worker domains once and reuses them; the calling
    domain participates as shard 0.

    {!run} is a barrier: it returns only after every shard finished. Worker
    exceptions are captured and re-raised in the caller (caller's own
    exception first, then the lowest shard's), leaving the pool reusable —
    this is how {!O2_util.Budget.Exhausted} escapes a parallel solve. *)

type t

(** [create n] spawns [n - 1] worker domains ([n <= 1] spawns none and
    {!run} degenerates to a plain call). *)
val create : int -> t

(** [size t] is the shard count [n]. *)
val size : t -> int

(** [run t f] executes [f shard] for every [shard] in [0 .. size - 1]
    concurrently and waits for all of them. Do not nest or overlap calls on
    the same pool. *)
val run : t -> (int -> unit) -> unit

(** [shutdown t] terminates and joins the workers. Idempotent; the pool
    must not be used afterwards. *)
val shutdown : t -> unit
