(** Deprecated alias of {!Metrics}, kept for source compatibility.

    [Stats.t] {e is} [Metrics.t]: the counter/timer subset of the sink the
    pipeline now threads through every stage. New code should use
    {!Metrics} (and the [O2.Config.t] entry point) directly. *)

type t = Metrics.t

(** [create ()] is an empty statistics sink. *)
val create : unit -> t

(** [incr t name] bumps counter [name] by one (creating it at 0). *)
val incr : t -> string -> unit

(** [add t name n] bumps counter [name] by [n]. *)
val add : t -> string -> int -> unit

(** [set t name n] overwrites counter [name]. *)
val set : t -> string -> int -> unit

(** [get t name] is the current value of [name] (0 if never touched). *)
val get : t -> string -> int

(** [time t name f] runs [f ()], accumulating its wall-clock duration under
    timer [name]; returns [f ()]'s result. *)
val time : t -> string -> (unit -> 'a) -> 'a

(** [get_time t name] is the accumulated seconds for timer [name]. *)
val get_time : t -> string -> float

(** [counters t] lists [(name, value)] sorted by name. *)
val counters : t -> (string * int) list

(** [pp] prints all recorded metrics, one per line. *)
val pp : Format.formatter -> t -> unit
