(** Per-analysis resource budgets.

    A budget caps one analysis run with a wall-clock deadline and/or a
    ceiling on pointer-analysis worklist steps. The hot loop calls
    {!check} with its step count; an exhausted budget raises
    {!Exhausted}, which harnesses (notably [O2_batch]) catch and turn
    into a structured per-file [Timeout] entry instead of an aborted
    run. An {!unlimited} budget never raises. *)

type reason = [ `Wall | `Steps ]

exception Exhausted of reason

type t

(** No deadline, no step ceiling; {!check} is a cheap no-op. *)
val unlimited : t

(** [make ?wall ?max_steps ()] starts the clock now: [wall] is seconds
    from now (the stored deadline is absolute), [max_steps] the highest
    permitted step count.

    @raise Invalid_argument on a negative [wall] or [max_steps < 1]. *)
val make : ?wall:float -> ?max_steps:int -> unit -> t

val is_unlimited : t -> bool

(** [check b ~steps] raises [Exhausted `Steps] when [steps] passed the
    ceiling, and [Exhausted `Wall] when the deadline passed. *)
val check : t -> steps:int -> unit

(** Human-readable exhaustion cause, used in batch failure entries. *)
val reason_to_string : reason -> string
