type reason = [ `Wall | `Steps ]

exception Exhausted of reason

type t = {
  deadline : float option;  (* absolute Unix.gettimeofday when work must stop *)
  max_steps : int option;
}

let unlimited = { deadline = None; max_steps = None }

let make ?wall ?max_steps () =
  let deadline =
    match wall with
    | None -> None
    | Some s when s < 0.0 -> invalid_arg "Budget.make: negative wall budget"
    | Some s -> Some (Unix.gettimeofday () +. s)
  in
  (match max_steps with
  | Some n when n < 1 -> invalid_arg "Budget.make: non-positive step budget"
  | _ -> ());
  { deadline; max_steps }

let is_unlimited b = b.deadline = None && b.max_steps = None

let check b ~steps =
  (match b.max_steps with
  | Some limit when steps > limit -> raise (Exhausted `Steps)
  | _ -> ());
  match b.deadline with
  | Some d when Unix.gettimeofday () > d -> raise (Exhausted `Wall)
  | _ -> ()

let reason_to_string = function
  | `Wall -> "wall-clock deadline exceeded"
  | `Steps -> "PTA worklist-step ceiling exceeded"
