include Metrics
