(** Recursive-descent parser for CIR concrete syntax.

    The grammar (see README §"The CIR language") is LL(2); the parser works
    on the ocamllex token stream with one token of buffered lookahead.
    Parsed declarations still carry [sid = -1]; resolution happens in
    {!O2_ir.Program.of_decls} via {!parse_string} / {!parse_file}. *)

exception Parse_error of string * int  (** message, line *)

(** [parse_decls ~file src] parses a whole program declaration.
    @raise Parse_error on syntax errors
    @raise Lexer.Lex_error on lexical errors *)
val parse_decls : file:string -> string -> O2_ir.Ast.program_decl

(** [parse_string ?file src] parses and resolves.
    @raise O2_ir.Program.Ill_formed on resolution errors. *)
val parse_string : ?file:string -> string -> O2_ir.Program.t

(** How to obtain the analysis entry point from a source.

    CIR sources come in two forms: a whole program with a [main C;]
    header, and an Android-style bare class list whose entry is the
    generated lifecycle harness ({!O2_ir.Harness.android}). [Auto]
    distinguishes them by the first token. [Android None] drives the
    default activity; [Android (Some a)] drives activity [a]. *)
type entry = Auto | Main | Android of string option

(** [entry_of_string s] parses the CLI spellings ["auto"], ["main"],
    ["android"] and ["android:MyActivity"] (case-insensitive up to the
    activity name). *)
val entry_of_string : string -> (entry, string) result

(** [entry_name e] is the canonical spelling {!entry_of_string} accepts. *)
val entry_name : entry -> string

(** [parse_program ?entry ?file src] parses and resolves under the given
    entry-point selection (default [Auto]).
    @raise O2_ir.Program.Ill_formed on resolution errors
    @raise O2_ir.Harness.No_activity when the Android path finds no
    activity class. *)
val parse_program : ?entry:entry -> ?file:string -> string -> O2_ir.Program.t

(** [parse_file ?entry path] reads and parses [path] (default [Auto] —
    Android-style class lists get their harness generated, everything
    else must carry the [main C;] header). *)
val parse_file : ?entry:entry -> string -> O2_ir.Program.t

(** [parse_classes ~file src] parses a bare list of class declarations (no
    [main C;] header) — the Android-app form, to be wrapped by
    {!O2_ir.Harness.android}. *)
val parse_classes : file:string -> string -> O2_ir.Ast.class_decl list
