open O2_ir

exception Parse_error of string * int

type state = {
  lexbuf : Lexing.lexbuf;
  file : string;
  mutable tok : Token.t;
  mutable tok_line : int;
  mutable peeked : (Token.t * int) option;
}

let line_of_lexbuf lb = lb.Lexing.lex_curr_p.Lexing.pos_lnum

let make_state ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  let tok = Lexer.token lexbuf in
  { lexbuf; file; tok; tok_line = line_of_lexbuf lexbuf; peeked = None }

let err st fmt =
  Format.kasprintf (fun msg -> raise (Parse_error (msg, st.tok_line))) fmt

let advance st =
  match st.peeked with
  | Some (t, l) ->
      st.peeked <- None;
      st.tok <- t;
      st.tok_line <- l
  | None ->
      st.tok <- Lexer.token st.lexbuf;
      st.tok_line <- line_of_lexbuf st.lexbuf

let peek st =
  match st.peeked with
  | Some (t, _) -> t
  | None ->
      let t = Lexer.token st.lexbuf in
      st.peeked <- Some (t, line_of_lexbuf st.lexbuf);
      t

let expect st t =
  if st.tok = t then advance st
  else err st "expected %s but found %s" (Token.to_string t) (Token.to_string st.tok)

let ident st =
  match st.tok with
  | Token.IDENT s ->
      advance st;
      s
  | Token.KW_MAIN ->
      (* "main" is a header keyword but also a perfectly good method name *)
      advance st;
      "main"
  | t -> err st "expected an identifier but found %s" (Token.to_string t)

let pos st = { Types.file = st.file; line = st.tok_line }

(* args ::= '(' [ident {',' ident}] ')' *)
let parse_args st =
  expect st Token.LPAREN;
  if st.tok = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec more acc =
      let a = ident st in
      if st.tok = Token.COMMA then begin
        advance st;
        more (a :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev (a :: acc)
      end
    in
    more []
  end

let rec parse_block st =
  expect st Token.LBRACE;
  let rec stmts acc =
    if st.tok = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else stmts (parse_stmt st :: acc)
  in
  stmts []

and parse_stmt st =
  let p = pos st in
  let mkp sk = Ast.mk ~pos:p sk in
  match st.tok with
  | Token.KW_START ->
      advance st;
      let x = ident st in
      expect st Token.SEMI;
      mkp (Ast.Start x)
  | Token.KW_JOIN ->
      advance st;
      let x = ident st in
      expect st Token.SEMI;
      mkp (Ast.Join x)
  | Token.KW_SIGNAL ->
      advance st;
      let x = ident st in
      expect st Token.SEMI;
      mkp (Ast.Signal x)
  | Token.KW_WAIT ->
      advance st;
      let x = ident st in
      expect st Token.SEMI;
      mkp (Ast.Wait x)
  | Token.KW_POST ->
      advance st;
      let x = ident st in
      let args = parse_args st in
      expect st Token.SEMI;
      mkp (Ast.Post (x, args))
  | Token.KW_SYNC ->
      advance st;
      expect st Token.LPAREN;
      let x = ident st in
      expect st Token.RPAREN;
      let body = parse_block st in
      mkp (Ast.Sync (x, body))
  | Token.KW_IF ->
      advance st;
      let a = parse_block st in
      let b =
        if st.tok = Token.KW_ELSE then begin
          advance st;
          parse_block st
        end
        else []
      in
      mkp (Ast.If (a, b))
  | Token.KW_WHILE ->
      advance st;
      let body = parse_block st in
      mkp (Ast.While body)
  | Token.KW_RETURN ->
      advance st;
      if st.tok = Token.SEMI then begin
        advance st;
        mkp (Ast.Return None)
      end
      else begin
        let v = ident st in
        expect st Token.SEMI;
        mkp (Ast.Return (Some v))
      end
  | Token.IDENT _ -> parse_ident_stmt st
  | t -> err st "expected a statement but found %s" (Token.to_string t)

(* Statements beginning with an identifier:
     x = …;   x.f = y;   x[*] = y;   x.m(args);   C::f = y;   C::m(args);  *)
and parse_ident_stmt st =
  let p = pos st in
  let mkp sk = Ast.mk ~pos:p sk in
  let name = ident st in
  match st.tok with
  | Token.DOT -> (
      advance st;
      let member = ident st in
      match st.tok with
      | Token.LPAREN ->
          let args = parse_args st in
          expect st Token.SEMI;
          mkp (Ast.Call (None, name, member, args))
      | Token.EQ ->
          advance st;
          let y = ident st in
          expect st Token.SEMI;
          mkp (Ast.FieldWrite (name, member, y))
      | t -> err st "expected '(' or '=' after '%s.%s' but found %s" name member
               (Token.to_string t))
  | Token.STAR_BRACKETS ->
      advance st;
      expect st Token.EQ;
      let y = ident st in
      expect st Token.SEMI;
      mkp (Ast.ArrayWrite (name, y))
  | Token.COLONCOLON -> (
      advance st;
      let member = ident st in
      match st.tok with
      | Token.LPAREN ->
          let args = parse_args st in
          expect st Token.SEMI;
          mkp (Ast.StaticCall (None, name, member, args))
      | Token.EQ ->
          advance st;
          let y = ident st in
          expect st Token.SEMI;
          mkp (Ast.StaticWrite (name, member, y))
      | t ->
          err st "expected '(' or '=' after '%s::%s' but found %s" name member
            (Token.to_string t))
  | Token.EQ -> (
      advance st;
      match st.tok with
      | Token.KW_NEW ->
          advance st;
          let c = ident st in
          let args = parse_args st in
          expect st Token.SEMI;
          mkp (Ast.New (name, c, args))
      | Token.KW_NULL ->
          advance st;
          expect st Token.SEMI;
          mkp (Ast.Null name)
      | Token.IDENT _ -> (
          let rhs = ident st in
          match st.tok with
          | Token.SEMI ->
              advance st;
              mkp (Ast.Assign (name, rhs))
          | Token.STAR_BRACKETS ->
              advance st;
              expect st Token.SEMI;
              mkp (Ast.ArrayRead (name, rhs))
          | Token.DOT -> (
              advance st;
              let member = ident st in
              match st.tok with
              | Token.LPAREN ->
                  let args = parse_args st in
                  expect st Token.SEMI;
                  mkp (Ast.Call (Some name, rhs, member, args))
              | Token.SEMI ->
                  advance st;
                  mkp (Ast.FieldRead (name, rhs, member))
              | t ->
                  err st "expected '(' or ';' after '%s.%s' but found %s" rhs
                    member (Token.to_string t))
          | Token.COLONCOLON -> (
              advance st;
              let member = ident st in
              match st.tok with
              | Token.LPAREN ->
                  let args = parse_args st in
                  expect st Token.SEMI;
                  mkp (Ast.StaticCall (Some name, rhs, member, args))
              | Token.SEMI ->
                  advance st;
                  mkp (Ast.StaticRead (name, rhs, member))
              | t ->
                  err st "expected '(' or ';' after '%s::%s' but found %s" rhs
                    member (Token.to_string t))
          | t ->
              err st "unexpected %s in assignment to %s" (Token.to_string t)
                name)
      | t -> err st "unexpected %s after '%s ='" (Token.to_string t) name)
  | t -> err st "unexpected %s after identifier %s" (Token.to_string t) name

let parse_locals st =
  (* zero or more 'local a, b, c;' lines at the start of a method body *)
  let rec go acc =
    if st.tok = Token.KW_LOCAL then begin
      advance st;
      let rec names acc =
        let v = ident st in
        if st.tok = Token.COMMA then begin
          advance st;
          names (v :: acc)
        end
        else begin
          expect st Token.SEMI;
          List.rev (v :: acc)
        end
      in
      go (acc @ names [])
    end
    else acc
  in
  go []

let parse_meth st =
  let static =
    if st.tok = Token.KW_STATIC then begin
      advance st;
      true
    end
    else false
  in
  expect st Token.KW_METHOD;
  let name = ident st in
  let params = parse_args st in
  expect st Token.LBRACE;
  let locals = parse_locals st in
  let rec stmts acc =
    if st.tok = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else stmts (parse_stmt st :: acc)
  in
  let body = stmts [] in
  {
    Ast.md_name = name;
    md_static = static;
    md_params = params;
    md_locals = locals;
    md_body = body;
  }

(* optional origin annotation before 'class': 'thread', 'thread(entry)',
   'handler', 'handler(entry)' *)
let parse_origin_annot st =
  let with_entry default mk =
    advance st;
    if st.tok = Token.LPAREN then begin
      advance st;
      let e = ident st in
      expect st Token.RPAREN;
      Some (mk e)
    end
    else Some (mk default)
  in
  match st.tok with
  | Token.KW_THREAD -> with_entry "run" (fun e -> Ast.Athread e)
  | Token.KW_HANDLER -> with_entry "handle" (fun e -> Ast.Ahandler e)
  | _ -> None

let parse_class st =
  let origin = parse_origin_annot st in
  expect st Token.KW_CLASS;
  let name = ident st in
  let super =
    if st.tok = Token.KW_EXTENDS then begin
      advance st;
      Some (ident st)
    end
    else None
  in
  expect st Token.LBRACE;
  let fields = ref [] and sfields = ref [] and methods = ref [] in
  let rec members () =
    match st.tok with
    | Token.RBRACE -> advance st
    | Token.KW_FIELD ->
        advance st;
        let f = ident st in
        expect st Token.SEMI;
        fields := f :: !fields;
        members ()
    | Token.KW_STATIC when peek st = Token.KW_FIELD ->
        advance st;
        advance st;
        let f = ident st in
        expect st Token.SEMI;
        sfields := f :: !sfields;
        members ()
    | Token.KW_STATIC | Token.KW_METHOD ->
        methods := parse_meth st :: !methods;
        members ()
    | t -> err st "expected a class member but found %s" (Token.to_string t)
  in
  members ();
  {
    Ast.cd_name = name;
    cd_super = super;
    cd_origin = origin;
    cd_fields = List.rev !fields;
    cd_sfields = List.rev !sfields;
    cd_methods = List.rev !methods;
  }

let parse_class_list st =
  let rec classes acc =
    if st.tok = Token.EOF then List.rev acc
    else classes (parse_class st :: acc)
  in
  classes []

let parse_classes ~file src =
  let st = make_state ~file src in
  parse_class_list st

let parse_decls ~file src =
  let st = make_state ~file src in
  expect st Token.KW_MAIN;
  let main = ident st in
  expect st Token.SEMI;
  let cs = parse_class_list st in
  { Ast.pd_classes = cs; pd_main = main }

(* ---------------- entry-point selection ---------------- *)

type entry = Auto | Main | Android of string option

let entry_of_string s =
  let s = String.trim s in
  match String.lowercase_ascii s with
  | "auto" -> Ok Auto
  | "main" -> Ok Main
  | "android" -> Ok (Android None)
  | _ ->
      let n = String.length s in
      if n > 8 && String.lowercase_ascii (String.sub s 0 8) = "android:"
      then Ok (Android (Some (String.sub s 8 (n - 8))))
      else
        Error
          (Printf.sprintf
             "unknown entry %S (expected auto, main, android or \
              android:Activity)" s)

let entry_name = function
  | Auto -> "auto"
  | Main -> "main"
  | Android None -> "android"
  | Android (Some a) -> "android:" ^ a

let parse_program ?(entry = Auto) ?(file = "<string>") src =
  let android main_activity =
    Harness.android ?main_activity (parse_classes ~file src)
  in
  match entry with
  | Main -> Program.of_decls (parse_decls ~file src)
  | Android a -> android a
  | Auto ->
      (* the two program forms are distinguished by their first token: a
         whole program opens with the [main C;] header, an Android-style
         bare class list opens with [class] *)
      let st = make_state ~file src in
      if st.tok = Token.KW_MAIN then Program.of_decls (parse_decls ~file src)
      else android None

let parse_string ?(file = "<string>") src =
  Program.of_decls (parse_decls ~file src)

let parse_file ?entry path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_program ?entry ~file:path src
