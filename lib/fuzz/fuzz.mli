(** Corpus-scale sweep driver for the differential harness: deterministic
    per-(seed, index) generation, batch-style fault isolation and jobs
    fan-out, greedy spec-level shrinking and [.cir] reproducer emission. *)

open O2_workloads

type status =
  [ `Ok  (** every agreement class held *)
  | `Timeout of string  (** per-program budget exhausted (not a finding) *)
  | `Divergent of Differential.divergence list ]

type entry = {
  f_index : int;
  f_spec : Synth.spec;
  f_status : status;
  f_races : int;
  f_stmts : int;
  f_origins : int;
  f_elapsed : float;
}

type report = {
  r_seed : int;
  r_count : int;
  r_jobs : int;
  r_entries : entry list;  (** in index order, independent of [jobs] *)
  r_elapsed : float;
}

(** Resource gates for one program's check: the wall/step budget handed to
    the solver, plus the statement-count gates on the quadratic naive
    stage and the interpreter stage. *)
type gates = {
  g_policy : O2_pta.Context.policy option;  (** [None] = the default policy *)
  g_wall : float option;
  g_max_steps : int option;
  g_naive_max_stmts : int;
  g_dynamic_max_stmts : int;
}

val default_gates : gates

(** [sweep ~seed ~count ()] generates [count] programs from
    [Synth.spec_of_seed] and checks each under the batch fault boundary:
    budget exhaustion becomes [`Timeout], any other escape [`Divergent]
    of class ["crash"]. [jobs] fans programs out over worker domains;
    entries come back in index order either way. *)
val sweep : ?jobs:int -> ?gates:gates -> seed:int -> count:int -> unit -> report

(** The sorted distinct [dv_class]es of a divergent status ([[]] otherwise). *)
val divergence_classes : status -> string list

(** [shrink ~classes spec] greedily walks every generator knob toward its
    floor, keeping reductions under which the program still diverges in
    one of [classes]; stops at a fixpoint or after [max_checks]
    re-checks. Every attempt is validated, so the result is always a
    well-formed spec. *)
val shrink : ?gates:gates -> ?max_checks:int -> classes:string list ->
  Synth.spec -> Synth.spec

(** [write_reproducer ~dir ~seed entry] renders the entry's program to
    [dir/seedS-iN-CLASSES.cir] with the spec and divergences as header
    comments; returns the path. *)
val write_reproducer : dir:string -> seed:int -> entry -> string

val counts : report -> int * int * int
(** (ok, timeouts, divergent) *)

val divergent : report -> entry list

(** 0 when no entry diverged, 1 otherwise (timeouts do not fail a sweep). *)
val exit_code : report -> int

val render : ?format:[ `Text | `Json ] -> report -> string
