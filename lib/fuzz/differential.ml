open O2_ir
open O2_pta
open O2_shb
open O2_race

type divergence = { dv_class : string; dv_detail : string }

type dynamic_status = [ `Ran of int | `Skipped | `Runtime_error of string ]

type outcome = {
  o_divergences : divergence list;
  o_races : int;
  o_origins : int;
  o_stmts : int;
  o_dynamic : dynamic_status;
  o_naive_ran : bool;
  o_must_pairs : int;
}

let pp_divergence ppf d =
  Format.fprintf ppf "[%s] %s" d.dv_class d.dv_detail

(* ---------------- small helpers ---------------- *)

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> "byte lengths differ"
    | x :: _, [] -> Printf.sprintf "line %d only in first: %S" i x
    | [], y :: _ -> Printf.sprintf "line %d only in second: %S" i y
    | x :: la, y :: lb ->
        if String.equal x y then go (i + 1) la lb
        else Printf.sprintf "line %d: %S vs %S" i x y
  in
  go 1 la lb

let field_of_target = function
  | Access.Tfield (_, f) -> f
  | Access.Tstatic (c, f) -> c ^ "::" ^ f

let sid_pair (r : Detect.race) =
  ( min r.Detect.r_a.Graph.n_sid r.Detect.r_b.Graph.n_sid,
    max r.Detect.r_a.Graph.n_sid r.Detect.r_b.Graph.n_sid )

(* (target, unordered sid pair) — the site-level identity of a race *)
let race_site (r : Detect.race) =
  let a, b = sid_pair r in
  (r.Detect.r_target, a, b)

let race_sites report =
  List.map race_site report.Detect.races |> List.sort_uniq compare

(* the post-PTA counters both the flat path and the legacy oracles set —
   the same gate as test_flat.ml and the stage:* bench rows *)
let gated_counters =
  [
    "shb.nodes"; "shb.edges"; "race.pairs_checked"; "race.hb_pruned";
    "race.lock_pruned"; "race.class_pruned"; "race.candidates"; "race.races";
    "osa.stmts_scanned"; "osa.accesses"; "osa.locations";
    "osa.shared_locations";
  ]

(* one post-PTA pipeline over a shared solve: SHB build, detection, OSA
   scan, report rendering — flat by default, legacy tree-walkers under
   [oracle] *)
let pipeline ~oracle a =
  let m = O2_util.Metrics.create () in
  let g = Graph.build ~oracle ~metrics:m a in
  let r = Detect.run ~metrics:m ~oracle g in
  let osa = O2_osa.Osa.run ~oracle ~metrics:m a in
  let res = { O2_race.Report.solver = a; graph = g; report = r } in
  let text = O2_race.Report.render res in
  let json = O2_race.Report.render ~format:`Json res in
  let counters =
    List.map (fun k -> (k, O2_util.Metrics.get m k)) gated_counters
  in
  (text, json, counters, O2_osa.Osa.n_shared_accesses osa, r)

(* ---------------- RacerD must-race subset ---------------- *)

(* The subset of O2 races RacerD is guaranteed to warn about, derived from
   its syntactic rules: both endpoints recorded (base var not owned by its
   enclosing method, not [this] inside [init]), under two distinct roots
   (different origin entry methods, both in RacerD's root set), with
   distinct statement ids, the same syntactic field key on both sides, and
   not both endpoints syntactically inside [sync] in their own methods.
   RacerD's name-based call closure from a root is a superset of O2's
   points-to call chains from the same entry, so every such pair must
   appear among its warnings. *)
module Must = struct
  (* mirrors Racerd.owned_vars: assigned from New at some point and not
     subsequently reassigned from elsewhere (program order) *)
  let owned_vars (m : Program.meth) =
    let owned = Hashtbl.create 8 in
    Ast.iter_stmts
      (fun s ->
        match s.Ast.sk with
        | Ast.New (x, _, _) -> Hashtbl.replace owned x ()
        | Ast.Assign (x, _)
        | Ast.Null x
        | Ast.FieldRead (x, _, _)
        | Ast.ArrayRead (x, _)
        | Ast.StaticRead (x, _, _) ->
            if Hashtbl.mem owned x then Hashtbl.remove owned x
        | _ -> ())
      m.Program.m_body;
    owned

  (* syntactic view of an access statement inside its enclosing method *)
  type info = {
    i_base : string option;
    i_field : string;
    i_in_sync : bool;
    i_meth : Program.meth;
  }

  let info_of p sid =
    let stmt, m = Program.stmt p sid in
    let found = ref None in
    let rec walk ~in_sync stmts =
      List.iter
        (fun (s : Ast.stmt) ->
          (if s.Ast.sid = sid then
             let mk base field =
               found :=
                 Some
                   { i_base = base; i_field = field; i_in_sync = in_sync;
                     i_meth = m }
             in
             match s.Ast.sk with
             | Ast.FieldWrite (x, f, _) -> mk (Some x) f
             | Ast.FieldRead (_, y, f) -> mk (Some y) f
             | Ast.ArrayWrite (x, _) -> mk (Some x) "*"
             | Ast.ArrayRead (_, y) -> mk (Some y) "*"
             | Ast.StaticWrite (c, f, _) -> mk None (c ^ "::" ^ f)
             | Ast.StaticRead (_, c, f) -> mk None (c ^ "::" ^ f)
             | _ -> ());
          match s.Ast.sk with
          | Ast.Sync (_, b) -> walk ~in_sync:true b
          | Ast.If (b1, b2) ->
              walk ~in_sync b1;
              walk ~in_sync b2
          | Ast.While b -> walk ~in_sync b
          | _ -> ())
        stmts
    in
    ignore stmt;
    walk ~in_sync:false m.Program.m_body;
    !found

  (* RacerD's roots, replicated: main + every thread/handler entry *)
  let roots p =
    let tbl = Hashtbl.create 8 in
    let add (m : Program.meth) =
      Hashtbl.replace tbl (m.Program.m_class, m.Program.m_name) ()
    in
    add (Program.main p);
    List.iter
      (fun (cls : Program.cls) ->
        match Program.kind_of p cls.Program.c_name with
        | Program.Kthread _ | Program.Khandler _ -> (
            match Program.entry_method p cls.Program.c_name with
            | Some m -> add m
            | None -> ())
        | Program.Kplain -> ())
      (Program.classes p);
    tbl

  let recorded info =
    match info.i_base with
    | None -> true
    | Some v ->
        (not (Hashtbl.mem (owned_vars info.i_meth) v))
        && not (info.i_meth.Program.m_name = "init" && v = "this")

  (* [must_pairs p a report] lists the (field, sid_a, sid_b) triples RacerD
     must warn about, given O2's unmerged race report *)
  let must_pairs p (a : Solver.result) (report : Detect.report) =
    let root_set = roots p in
    let entry_of origin =
      let sp = a.Solver.spawns.(origin) in
      (sp.Solver.sp_entry.Program.m_class, sp.Solver.sp_entry.Program.m_name)
    in
    List.filter_map
      (fun (r : Detect.race) ->
        let sa = r.Detect.r_a.Graph.n_sid
        and sb = r.Detect.r_b.Graph.n_sid in
        let ea = entry_of r.Detect.r_a.Graph.n_origin
        and eb = entry_of r.Detect.r_b.Graph.n_origin in
        if sa = sb || ea = eb then None
        else if
          not (Hashtbl.mem root_set ea && Hashtbl.mem root_set eb)
        then None
        else
          match (info_of p sa, info_of p sb) with
          | Some ia, Some ib
            when String.equal ia.i_field ib.i_field
                 && (not (ia.i_in_sync && ib.i_in_sync))
                 && recorded ia && recorded ib ->
              Some (ia.i_field, min sa sb, max sa sb)
          | _ -> None)
      report.Detect.races
    |> List.sort_uniq compare
end

(* ---------------- the five-engine check ---------------- *)

let check ?policy ?budget ?(naive_max_stmts = 1500) ?(dynamic_max_stmts = 400)
    ?(dynamic_seeds = [ 0; 1; 2; 3 ]) ?(dynamic_max_steps = 20_000) p =
  let policy = Option.value policy ~default:(Context.Korigin 1) in
  let n_stmts = Program.n_stmts p in
  let divergences = ref [] in
  let add c d = divergences := { dv_class = c; dv_detail = d } :: !divergences in
  let tick () =
    match budget with Some b -> O2_util.Budget.check b ~steps:0 | None -> ()
  in
  let guard stage f =
    try Some (f ()) with
    | O2_util.Budget.Exhausted _ as e -> raise e
    | e -> add "crash" (stage ^ ": " ^ Printexc.to_string e); None
  in
  (* 1. printer ↔ parser round trip: render → parse → render must be
     byte-identical *)
  (match guard "render" (fun () -> Pp.program_to_string p) with
  | None -> ()
  | Some src -> (
      match O2_frontend.Parser.parse_string src with
      | exception e ->
          add "roundtrip"
            ("rendered program does not re-parse: " ^ Printexc.to_string e)
      | p2 ->
          let src2 = Pp.program_to_string p2 in
          if not (String.equal src src2) then
            add "roundtrip" (first_diff src src2)));
  tick ();
  (* 2. one shared solve, then flat vs oracle parity on the default
     (merged) pipeline *)
  let solved =
    match budget with
    | Some b -> Solver.analyze ~policy ~budget:b p
    | None -> Solver.analyze ~policy p
  in
  let flat = guard "flat pipeline" (fun () -> pipeline ~oracle:false solved) in
  tick ();
  let oracle =
    guard "oracle pipeline" (fun () -> pipeline ~oracle:true solved)
  in
  tick ();
  (match (flat, oracle) with
  | Some (t_f, j_f, c_f, sa_f, _), Some (t_o, j_o, c_o, sa_o, _) ->
      if not (String.equal t_f t_o) then
        add "oracle" ("text report: " ^ first_diff t_o t_f);
      if not (String.equal j_f j_o) then
        add "oracle" ("json report: " ^ first_diff j_o j_f);
      List.iter2
        (fun (k, vo) (_, vf) ->
          if vo <> vf then
            add "oracle" (Printf.sprintf "counter %s: %d vs %d" k vo vf))
        c_o c_f;
      if sa_f <> sa_o then
        add "oracle"
          (Printf.sprintf "osa shared accesses: %d vs %d" sa_o sa_f)
  | _ -> ());
  (* 3/4. unmerged graph: naive = fast, and merged ⊆ unmerged *)
  let unmerged =
    guard "unmerged detect" (fun () ->
        let g = Graph.build ~lock_region:false solved in
        Detect.run g)
  in
  tick ();
  let naive_ran = ref false in
  let must_pairs = ref 0 in
  (match unmerged with
  | None -> ()
  | Some fast_u ->
      if n_stmts <= naive_max_stmts then begin
        naive_ran := true;
        (match
           guard "naive detect" (fun () ->
               let g = Graph.build ~lock_region:false solved in
               O2_race.Naive.run g)
         with
        | None -> ()
        | Some naive ->
            let sn = race_sites naive and sf = race_sites fast_u in
            if sn <> sf then
              add "naive"
                (Printf.sprintf
                   "pairwise-DFS sites (%d) differ from optimized sites (%d)"
                   (List.length sn) (List.length sf)));
        tick ()
      end;
      (match flat with
      | Some (_, _, _, _, merged) ->
          let su = race_sites merged and all = race_sites fast_u in
          List.iter
            (fun site ->
              if not (List.mem site all) then
                let t, a, b = site in
                add "lock-region"
                  (Printf.sprintf
                     "merged race %s (%d,%d) absent from the unmerged report"
                     (field_of_target t) a b))
            su;
          let fields r =
            List.map
              (fun (x : Detect.race) -> field_of_target x.Detect.r_target)
              r.Detect.races
            |> List.sort_uniq compare
          in
          if fields merged <> fields fast_u then
            add "lock-region" "merged and unmerged field sets differ"
      | None -> ());
      (* 5. RacerD must-race subset *)
      (match
         guard "racerd" (fun () ->
             let must = Must.must_pairs p solved fast_u in
             must_pairs := List.length must;
             if must = [] then []
             else
               let rd = O2_racerd.Racerd.analyze p in
               let warned =
                 List.map
                   (fun (w : O2_racerd.Racerd.warning) ->
                     ( w.O2_racerd.Racerd.w_field,
                       min w.O2_racerd.Racerd.w_sid_a
                         w.O2_racerd.Racerd.w_sid_b,
                       max w.O2_racerd.Racerd.w_sid_a
                         w.O2_racerd.Racerd.w_sid_b ))
                   rd.O2_racerd.Racerd.warnings
               in
               List.filter (fun m -> not (List.mem m warned)) must)
       with
      | None | Some [] -> ()
      | Some missing ->
          List.iter
            (fun (f, a, b) ->
              add "racerd"
                (Printf.sprintf
                   "must-race on %s (stmts %d,%d) missing from RacerD" f a b))
            missing);
      tick ());
  (* 6. dynamic witnesses ⊆ static reports (unmerged site pairs, merged
     fields — the lock-region merge keeps fields, not exact sites) *)
  let dynamic =
    if n_stmts > dynamic_max_stmts then `Skipped
    else
      match unmerged with
      | None -> `Skipped
      | Some fast_u -> (
          match
            O2_runtime.Dynrace.check ~seeds:dynamic_seeds
              ~max_steps:dynamic_max_steps p
          with
          | exception O2_runtime.Interp.Runtime_error msg ->
              `Runtime_error msg
          | drs ->
              let stat =
                List.map sid_pair fast_u.Detect.races |> List.sort_uniq compare
              in
              let fields =
                List.map
                  (fun (x : Detect.race) -> field_of_target x.Detect.r_target)
                  fast_u.Detect.races
                |> List.sort_uniq compare
              in
              List.iter
                (fun (d : O2_runtime.Dynrace.race) ->
                  if
                    not
                      (List.mem (d.O2_runtime.Dynrace.d_sid_a,
                                 d.O2_runtime.Dynrace.d_sid_b)
                         stat
                      && List.mem d.O2_runtime.Dynrace.d_field fields)
                  then
                    add "dynamic"
                      (Printf.sprintf
                         "dynamic race on %s (stmts %d,%d) not statically \
                          reported"
                         d.O2_runtime.Dynrace.d_field
                         d.O2_runtime.Dynrace.d_sid_a
                         d.O2_runtime.Dynrace.d_sid_b))
                drs;
              `Ran (List.length drs))
  in
  let races =
    match flat with Some (_, _, _, _, r) -> Detect.n_races r | None -> 0
  in
  {
    o_divergences = List.rev !divergences;
    o_races = races;
    o_origins = Array.length solved.Solver.spawns - 1;
    o_stmts = n_stmts;
    o_dynamic = dynamic;
    o_naive_ran = !naive_ran;
    o_must_pairs = !must_pairs;
  }
