open O2_workloads

type status =
  [ `Ok | `Timeout of string | `Divergent of Differential.divergence list ]

type entry = {
  f_index : int;
  f_spec : Synth.spec;
  f_status : status;
  f_races : int;
  f_stmts : int;
  f_origins : int;
  f_elapsed : float;
}

type report = {
  r_seed : int;
  r_count : int;
  r_jobs : int;
  r_entries : entry list;
  r_elapsed : float;
}

type gates = {
  g_policy : O2_pta.Context.policy option;
  g_wall : float option;
  g_max_steps : int option;
  g_naive_max_stmts : int;
  g_dynamic_max_stmts : int;
}

let default_gates =
  {
    g_policy = None;
    g_wall = Some 60.0;
    g_max_steps = Some 20_000_000;
    g_naive_max_stmts = 1500;
    g_dynamic_max_stmts = 400;
  }

let check_spec gates spec =
  let budget =
    match (gates.g_wall, gates.g_max_steps) with
    | None, None -> None
    | wall, max_steps -> Some (O2_util.Budget.make ?wall ?max_steps ())
  in
  let p = Synth.program spec in
  Differential.check ?policy:gates.g_policy ?budget
    ~naive_max_stmts:gates.g_naive_max_stmts
    ~dynamic_max_stmts:gates.g_dynamic_max_stmts p

(* one generated program under the batch-style fault boundary: budget
   exhaustion is a timeout entry, any other escape is a divergence of
   class "crash" (the harness already downgrades per-stage crashes; this
   catches generation itself) *)
let run_one gates ~seed ~index =
  let t0 = Unix.gettimeofday () in
  let spec = Synth.spec_of_seed ~seed ~index in
  let finish status races stmts origins =
    {
      f_index = index;
      f_spec = spec;
      f_status = status;
      f_races = races;
      f_stmts = stmts;
      f_origins = origins;
      f_elapsed = Unix.gettimeofday () -. t0;
    }
  in
  match check_spec gates spec with
  | o ->
      let status =
        if o.Differential.o_divergences = [] then `Ok
        else `Divergent o.Differential.o_divergences
      in
      finish status o.Differential.o_races o.Differential.o_stmts
        o.Differential.o_origins
  | exception O2_util.Budget.Exhausted reason ->
      finish (`Timeout (O2_util.Budget.reason_to_string reason)) 0 0 0
  | exception e ->
      finish
        (`Divergent
          [
            {
              Differential.dv_class = "crash";
              dv_detail = "generation/check: " ^ Printexc.to_string e;
            };
          ])
        0 0 0

let sweep ?(jobs = 1) ?(gates = default_gates) ~seed ~count () =
  let t0 = Unix.gettimeofday () in
  let results = Array.make count None in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < count then begin
        results.(i) <- Some (run_one gates ~seed ~index:i);
        go ()
      end
    in
    go ()
  in
  let jobs = max 1 (min jobs (max 1 count)) in
  if jobs <= 1 then worker ()
  else begin
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  let entries =
    Array.to_list results
    |> List.map (function Some e -> e | None -> assert false)
  in
  {
    r_seed = seed;
    r_count = count;
    r_jobs = jobs;
    r_entries = entries;
    r_elapsed = Unix.gettimeofday () -. t0;
  }

(* ---------------- shrinking ---------------- *)

(* Greedy spec-level shrinking: walk every knob toward its floor (bools
   off, ints through floor / halfway / decrement) and keep any reduction
   under which the program still diverges in one of the original
   agreement classes; repeat to a fixpoint. Spec-level shrinking keeps
   every attempt a well-formed program by construction — no syntactic
   delta debugging needed. *)

let divergence_classes = function
  | `Divergent ds ->
      List.map (fun d -> d.Differential.dv_class) ds |> List.sort_uniq compare
  | _ -> []

let still_fails gates ~classes spec =
  match check_spec gates spec with
  | o ->
      List.exists
        (fun d -> List.mem d.Differential.dv_class classes)
        o.Differential.o_divergences
  | exception O2_util.Budget.Exhausted _ -> false
  | exception _ -> List.mem "crash" classes

let int_knobs :
    (string * (Synth.spec -> int) * (Synth.spec -> int -> Synth.spec) * int)
    list =
  Synth.
    [
      ("tc", (fun s -> s.s_thread_classes),
       (fun s v -> { s with s_thread_classes = v }), 0);
      ("inst", (fun s -> s.s_instances),
       (fun s v -> { s with s_instances = v }), 1);
      ("ev", (fun s -> s.s_event_classes),
       (fun s v -> { s with s_event_classes = v }), 0);
      ("depth", (fun s -> s.s_helper_depth),
       (fun s v -> { s with s_helper_depth = v }), 0);
      ("fan", (fun s -> s.s_helper_fanout),
       (fun s v -> { s with s_helper_fanout = v }), 1);
      ("allo", (fun s -> s.s_helper_alloc_sites),
       (fun s v -> { s with s_helper_alloc_sites = v }), 1);
      ("ld", (fun s -> s.s_locals_direct),
       (fun s v -> { s with s_locals_direct = v }), 0);
      ("lh", (fun s -> s.s_locals_helper),
       (fun s v -> { s with s_locals_helper = v }), 0);
      ("locked", (fun s -> s.s_shared_locked),
       (fun s v -> { s with s_shared_locked = v }), 0);
      ("racy", (fun s -> s.s_racy), (fun s v -> { s with s_racy = v }), 0);
      ("priv", (fun s -> s.s_priv), (fun s v -> { s with s_priv = v }), 0);
      ("cyclic", (fun s -> s.s_cyclic),
       (fun s v -> { s with s_cyclic = v }), 0);
      ("chain", (fun s -> s.s_chain), (fun s v -> { s with s_chain = v }), 0);
      ("storm", (fun s -> s.s_storm), (fun s v -> { s with s_storm = v }), 1);
      ("lockd", (fun s -> s.s_lock_depth),
       (fun s v -> { s with s_lock_depth = v }), 1);
      ("arrays", (fun s -> s.s_arrays),
       (fun s v -> { s with s_arrays = v }), 0);
      ("statics", (fun s -> s.s_statics),
       (fun s v -> { s with s_statics = v }), 0);
    ]

let bool_knobs : (string * (Synth.spec -> bool) * (Synth.spec -> Synth.spec)) list
    =
  Synth.
    [
      ("pool", (fun s -> s.s_pool), fun s -> { s with s_pool = false });
      ("nested", (fun s -> s.s_nested), fun s -> { s with s_nested = false });
      ("wrapper", (fun s -> s.s_wrapper), fun s -> { s with s_wrapper = false });
      ("selfpost", (fun s -> s.s_self_post),
       fun s -> { s with s_self_post = false });
      ("empty", (fun s -> s.s_empty), fun s -> { s with s_empty = false });
      ("unreach", (fun s -> s.s_unreachable),
       fun s -> { s with s_unreachable = false });
      ("join", (fun s -> s.s_join), fun s -> { s with s_join = false });
      ("signal", (fun s -> s.s_signal), fun s -> { s with s_signal = false });
      ("branch", (fun s -> s.s_branch), fun s -> { s with s_branch = false });
    ]

let valid s = match Synth.validate s with () -> true | exception _ -> false

let shrink ?(gates = default_gates) ?(max_checks = 200) ~classes spec =
  let checks = ref 0 in
  let try_spec s =
    incr checks;
    !checks <= max_checks && valid s && still_fails gates ~classes s
  in
  let rec fix spec =
    let shrunk = ref None in
    let attempt s = if !shrunk = None && try_spec s then shrunk := Some s in
    List.iter
      (fun (_, get, set, floor) ->
        let v = get spec in
        if v > floor && !shrunk = None then begin
          attempt (set spec floor);
          let mid = floor + ((v - floor) / 2) in
          if mid > floor && mid < v then attempt (set spec mid);
          attempt (set spec (v - 1))
        end)
      int_knobs;
    List.iter
      (fun (_, get, off) ->
        if get spec && !shrunk = None then attempt (off spec))
      bool_knobs;
    match !shrunk with
    | Some s when !checks < max_checks -> fix s
    | Some s -> s
    | None -> spec
  in
  fix spec

(* ---------------- reproducers ---------------- *)

let write_reproducer ~dir ~seed entry =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let classes = divergence_classes entry.f_status in
  let name =
    Printf.sprintf "seed%d-i%d-%s.cir" seed entry.f_index
      (match classes with [] -> "unknown" | c -> String.concat "-" c)
  in
  let path = Filename.concat dir name in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "// o2 fuzz reproducer: seed %d, index %d\n" seed
       entry.f_index);
  Buffer.add_string buf
    (Format.asprintf "// spec: %a\n" Synth.pp_spec entry.f_spec);
  (match entry.f_status with
  | `Divergent ds ->
      List.iter
        (fun d ->
          Buffer.add_string buf
            (Format.asprintf "// divergence %a\n" Differential.pp_divergence d))
        ds
  | _ -> ());
  Buffer.add_string buf (O2_ir.Pp.program_to_string (Synth.program entry.f_spec));
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents buf));
  path

(* ---------------- summaries and rendering ---------------- *)

let counts r =
  List.fold_left
    (fun (ok, to_, dv) e ->
      match e.f_status with
      | `Ok -> (ok + 1, to_, dv)
      | `Timeout _ -> (ok, to_ + 1, dv)
      | `Divergent _ -> (ok, to_, dv + 1))
    (0, 0, 0) r.r_entries

let divergent r =
  List.filter
    (fun e -> match e.f_status with `Divergent _ -> true | _ -> false)
    r.r_entries

let exit_code r =
  let _, _, dv = counts r in
  if dv = 0 then 0 else 1

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let status_name = function
  | `Ok -> "ok"
  | `Timeout _ -> "timeout"
  | `Divergent _ -> "divergent"

let render_json r =
  let entry_json e =
    let detail =
      match e.f_status with
      | `Ok -> ""
      | `Timeout msg -> Printf.sprintf {|,"error":"%s"|} (json_escape msg)
      | `Divergent ds ->
          Printf.sprintf {|,"divergences":[%s]|}
            (String.concat ","
               (List.map
                  (fun d ->
                    Printf.sprintf {|{"class":"%s","detail":"%s"}|}
                      (json_escape d.Differential.dv_class)
                      (json_escape d.Differential.dv_detail))
                  ds))
    in
    Printf.sprintf
      {|{"index":%d,"spec":"%s","status":"%s","races":%d,"stmts":%d,"origins":%d,"elapsed":%.6f%s}|}
      e.f_index
      (json_escape (Format.asprintf "%a" Synth.pp_spec e.f_spec))
      (status_name e.f_status) e.f_races e.f_stmts e.f_origins e.f_elapsed
      detail
  in
  let ok, to_, dv = counts r in
  Printf.sprintf
    {|{"schema":"o2_fuzz/v1","seed":%d,"count":%d,"jobs":%d,"elapsed":%.6f,"programs":[%s],"summary":{"ok":%d,"timeouts":%d,"divergent":%d}}|}
    r.r_seed r.r_count r.r_jobs r.r_elapsed
    (String.concat "," (List.map entry_json r.r_entries))
    ok to_ dv

let render_text r =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun e ->
      match e.f_status with
      | `Ok -> ()
      | `Timeout msg -> pf "i%d timeout: %s\n" e.f_index msg
      | `Divergent ds ->
          List.iter
            (fun d ->
              pf "i%d DIVERGENCE %a\n" e.f_index
                (fun () d -> Format.asprintf "%a" Differential.pp_divergence d)
                d)
            ds)
    r.r_entries;
  let ok, to_, dv = counts r in
  let stmts = List.fold_left (fun a e -> a + e.f_stmts) 0 r.r_entries in
  let races = List.fold_left (fun a e -> a + e.f_races) 0 r.r_entries in
  let origins = List.fold_left (fun a e -> a + e.f_origins) 0 r.r_entries in
  pf
    "%d program(s): %d ok, %d timeout(s), %d divergent; %d stmts, %d \
     origins, %d race(s); seed %d, jobs %d, %.3fs\n"
    r.r_count ok to_ dv stmts origins races r.r_seed r.r_jobs r.r_elapsed;
  Buffer.contents buf

let render ?(format = `Text) r =
  match format with `Json -> render_json r | `Text -> render_text r
