(** The five-engine differential harness behind [o2 fuzz].

    One program is driven through flat-IR O2 (the default pipeline), the
    seed tree-walkers ([~oracle:true]), the pairwise-DFS naive engine,
    the RacerD-style syntactic baseline and the dynamic vector-clock
    detector, asserting {e agreement classes} rather than exact outputs
    (the equivalence-class differential-testing idiom):

    - {b oracle ≡ flat}: rendered text/JSON reports, the gated stage
      counters and the OSA shared-access count are byte-identical;
    - {b naive = O2} at site granularity on the same unmerged
      ([~lock_region:false]) graph — the §4.1 optimizations are sound
      and complete w.r.t. the pairwise loop;
    - {b merged ⊆ unmerged}: every lock-region-merged race names a site
      pair present in the unmerged report, and both report the same
      field set;
    - {b RacerD ⊇ must-race subset}: every O2 race whose endpoints are
      syntactically visible to RacerD (distinct roots, un-owned bases,
      not both inside [sync], same syntactic field key) appears among
      its warnings;
    - {b dynamic ⊆ static}: every dynamically-witnessed race is in the
      static report (site pair in the unmerged run, field in the merged
      one).

    Engine crashes (other than budget exhaustion, which propagates) are
    downgraded to ["crash"] divergences, batch-style. *)

type divergence = {
  dv_class : string;
      (** agreement class that broke: ["roundtrip"], ["oracle"],
          ["naive"], ["lock-region"], ["racerd"], ["dynamic"] or
          ["crash"] *)
  dv_detail : string;
}

type dynamic_status =
  [ `Ran of int  (** dynamic races observed *)
  | `Skipped  (** program over the dynamic size gate *)
  | `Runtime_error of string  (** interpreter hit a runtime error *) ]

type outcome = {
  o_divergences : divergence list;  (** empty = all engines agree *)
  o_races : int;  (** default-pipeline race count *)
  o_origins : int;  (** origins beside main *)
  o_stmts : int;
  o_dynamic : dynamic_status;
  o_naive_ran : bool;  (** the quadratic naive stage ran (size gate) *)
  o_must_pairs : int;  (** RacerD must-race pairs checked — 0 = vacuous *)
}

val pp_divergence : Format.formatter -> divergence -> unit

(** [check p] runs every agreement class on [p].

    [budget] bounds the whole check: the PTA worklist checks it per pop
    and each stage boundary re-checks the deadline;
    {!O2_util.Budget.Exhausted} propagates to the caller. [naive_max_stmts]
    (default 1500) gates the quadratic pairwise-DFS stage,
    [dynamic_max_stmts] (default 400) the interpreter stage;
    [dynamic_seeds]/[dynamic_max_steps] bound each dynamic run. *)
val check :
  ?policy:O2_pta.Context.policy ->
  ?budget:O2_util.Budget.t ->
  ?naive_max_stmts:int ->
  ?dynamic_max_stmts:int ->
  ?dynamic_seeds:int list ->
  ?dynamic_max_steps:int ->
  O2_ir.Program.t ->
  outcome
