module Config = struct
  type t = {
    policy : O2_pta.Context.policy;
    serial_events : bool;
    lock_region : bool;
    metrics : O2_util.Metrics.t option;
    jobs : int;
    budget : O2_util.Budget.t option;
  }

  let default =
    {
      policy = O2_pta.Context.Korigin 1;
      serial_events = true;
      lock_region = true;
      metrics = None;
      jobs = 1;
      budget = None;
    }

  let with_metrics cfg = { cfg with metrics = Some (O2_util.Metrics.create ()) }
end

type result = {
  config : Config.t;
  solver : O2_pta.Solver.result;
  graph : O2_shb.Graph.t;
  report : O2_race.Detect.report;
  osa : O2_osa.Osa.t;
  elapsed : float;
}

let run (cfg : Config.t) p =
  let t0 = Unix.gettimeofday () in
  let m = cfg.Config.metrics in
  let sp name f =
    match m with None -> f () | Some mm -> O2_util.Metrics.span mm name f
  in
  (* the budget's step ceiling lives inside the PTA worklist; the deadline
     is additionally re-checked between stages so a pipeline whose PTA
     finished under the wire still stops before burning unbounded time in
     SHB construction or detection *)
  let deadline_gate () =
    match cfg.Config.budget with
    | None -> ()
    | Some b -> O2_util.Budget.check b ~steps:0
  in
  let solver, graph, report, osa =
    sp "analyze" (fun () ->
        let solver =
          sp "pta" (fun () ->
              O2_pta.Solver.analyze ~policy:cfg.Config.policy
                ~jobs:cfg.Config.jobs ?metrics:m ?budget:cfg.Config.budget p)
        in
        deadline_gate ();
        let graph =
          sp "shb" (fun () ->
              O2_shb.Graph.build ~serial_events:cfg.Config.serial_events
                ~lock_region:cfg.Config.lock_region ?metrics:m solver)
        in
        deadline_gate ();
        let report =
          sp "race" (fun () ->
              O2_race.Detect.run ?metrics:m ~jobs:cfg.Config.jobs graph)
        in
        deadline_gate ();
        let osa = sp "osa" (fun () -> O2_osa.Osa.run ?metrics:m solver) in
        (solver, graph, report, osa))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match m with
  | None -> ()
  | Some mm ->
      O2_util.Metrics.set mm "o2.races" (O2_race.Detect.n_races report);
      O2_util.Metrics.set mm "o2.origins" (O2_pta.Solver.n_origins solver));
  { config = cfg; solver; graph; report; osa; elapsed }

let render ?format r =
  O2_race.Report.render ?format ?metrics:r.config.Config.metrics
    {
      O2_race.Report.solver = r.solver;
      graph = r.graph;
      report = r.report;
    }

let races r = r.report.O2_race.Detect.races
let n_races r = O2_race.Detect.n_races r.report
let n_origins r = O2_pta.Solver.n_origins r.solver
let shared_locations r = O2_osa.Osa.shared_locations r.osa
let pp_race r ppf race = O2_race.Report.pp_race r.solver r.graph ppf race
let pp_report r ppf () = O2_race.Report.pp r.solver r.graph ppf r.report
let pp_sharing r ppf () = O2_osa.Osa.pp r.solver ppf r.osa
