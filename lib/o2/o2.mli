(** O2 — static race detection with origins (top-level pipeline).

    The one-call API tying the reproduction together: origin-sensitive
    pointer analysis (OPA), origin-sharing analysis (OSA), SHB-graph
    construction and hybrid lockset/happens-before race detection, as
    described in "When Threads Meet Events: Efficient and Precise Static
    Race Detection with Origins" (PLDI 2021).

    {[
      let program = O2_frontend.Parser.parse_file "app.cir" in
      let r = O2.run O2.Config.default program in
      print_endline (O2.render r)
    ]}

    To observe the pipeline, attach a metrics sink:

    {[
      let cfg = O2.Config.with_metrics O2.Config.default in
      let r = O2.run cfg program in
      print_endline (O2.render ~format:`Json r)   (* includes "metrics" *)
    ]} *)

open O2_ir

(** Pipeline configuration. Build one with a record update of
    {!Config.default} rather than from scratch, so new fields keep old code
    compiling. *)
module Config : sig
  type t = {
    policy : O2_pta.Context.policy;
        (** pointer-analysis context policy (paper default: [Korigin 1]) *)
    serial_events : bool;
        (** Android-style single event dispatcher (§4.2) *)
    lock_region : bool;  (** lock-region access merging (§4.1) *)
    metrics : O2_util.Metrics.t option;
        (** observability sink threaded through every stage; [None]
            (default) costs nothing on any hot path *)
    jobs : int;
        (** worker domains for the whole pipeline (default 1 = serial;
            requires OCaml 5): the PTA solve shards its worklist [jobs]
            ways by origin and the race-detection pair scan fans out over
            [jobs] domains; the batch driver reuses the same knob for
            corpus fan-out. Output is byte-identical for every value. *)
    budget : O2_util.Budget.t option;
        (** resource budget: the PTA worklist checks it every step, and the
            wall-clock deadline is re-checked between pipeline stages.
            {!run} lets {!O2_util.Budget.Exhausted} escape; the batch
            driver maps it to a structured timeout entry. [None] (default)
            costs nothing. *)
  }

  (** The paper's defaults: 1-origin OPA, serialized events, lock-region
      merging, no metrics, serial detection. *)
  val default : t

  (** [with_metrics cfg] is [cfg] with a fresh metrics sink attached. *)
  val with_metrics : t -> t
end

type result = {
  config : Config.t;  (** the configuration that produced this result *)
  solver : O2_pta.Solver.result;  (** points-to facts, call graph, origins *)
  graph : O2_shb.Graph.t;  (** the static happens-before graph *)
  report : O2_race.Detect.report;  (** detected races *)
  osa : O2_osa.Osa.t;  (** origin-sharing classification *)
  elapsed : float;  (** total wall-clock seconds *)
}

(** [run cfg p] runs the full O2 pipeline under [cfg]: OPA → SHB → race
    detection → OSA. When [cfg.metrics] is set, each stage runs inside a
    trace span ([analyze/pta], [analyze/shb], [analyze/race],
    [analyze/osa]) and records its counters into the sink.

    @raise O2_util.Budget.Exhausted when [cfg.budget] runs out. *)
val run : Config.t -> Program.t -> result

(** [render ?format r] renders the race report as text (default) or JSON
    via the unified {!O2_race.Report.render} path. If the run carried a
    metrics sink, the output includes it (text table / ["metrics"] JSON
    field). *)
val render : ?format:[ `Text | `Json ] -> result -> string

(** [races r] is the deduplicated race list. *)
val races : result -> O2_race.Detect.race list

(** [n_races r] is the race count the paper's tables report. *)
val n_races : result -> int

(** [n_origins r] is the paper's #O. *)
val n_origins : result -> int

(** [shared_locations r] lists the origin-shared abstract locations. *)
val shared_locations : result -> O2_osa.Osa.sharing list

val pp_race : result -> Format.formatter -> O2_race.Detect.race -> unit

(** [pp_report r ppf ()] prints the full race report. *)
val pp_report : result -> Format.formatter -> unit -> unit

(** [pp_sharing r ppf ()] prints the OSA report (Figure 2(d) style). *)
val pp_sharing : result -> Format.formatter -> unit -> unit
