(** Classical thread-escape analysis — the TLOA-style baseline of Table 7.

    An object {e escapes} if it is a thread/handler object, is reachable
    from a static field, or is reachable through the fields of an escaped
    object (in particular anything stored into a thread object's fields or
    passed as origin attributes). Every access to an escaped object is
    conservatively thread-shared.

    Contrast with OSA (§3.3): escape analysis answers only {e whether} an
    object may be shared, never {e how}; a static field used by a single
    thread is still "escaped" here but origin-local under OSA, and arrays
    are all-escaping once the array object escapes. The Table 7 benchmark
    runs this baseline over the context-sensitive (2-CFA) points-to facts —
    the configuration that models TLOA's context-sensitive information-flow
    analysis and reproduces its scalability collapse. *)

open O2_pta

type t

(** [run a] classifies all abstract objects of a solved analysis. *)
val run : Solver.result -> t

(** [is_escaped t oid] is true iff the object may be reached by ≥2 threads
    under this (coarse) criterion. *)
val is_escaped : t -> int -> bool

(** [escaped_objects t] lists escaped object ids, ascending. *)
val escaped_objects : t -> int list

(** [n_escaped_accesses t] counts access sites on escaped locations — the
    quantity comparable to OSA's #S-access (statics always count). *)
val n_escaped_accesses : t -> int
