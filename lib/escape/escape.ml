open O2_ir
open O2_pta

type t = { solver : Solver.result; escaped : (int, unit) Hashtbl.t }

let is_escaped t oid = Hashtbl.mem t.escaped oid

let escaped_objects t =
  Hashtbl.fold (fun oid () acc -> oid :: acc) t.escaped []
  |> List.sort compare

let run a =
  let pag = a.Solver.pag in
  let t = { solver = a; escaped = Hashtbl.create 64 } in
  let frontier = ref [] in
  let mark oid =
    if not (Hashtbl.mem t.escaped oid) then begin
      Hashtbl.add t.escaped oid ();
      frontier := oid :: !frontier
    end
  in
  (* roots: thread/handler objects and everything in static fields *)
  let p = a.Solver.program in
  Pag.iter_nodes
    (fun _ node pts ->
      match node with
      | Pag.NStatic _ -> O2_util.Bitset.iter mark pts
      | _ -> ())
    pag;
  for oid = 0 to Pag.n_objs pag - 1 do
    let o = Pag.obj pag oid in
    match Program.kind_of p o.Pag.ob_class with
    | Program.Kthread _ | Program.Khandler _ -> mark oid
    | Program.Kplain -> ()
  done;
  (* closure: fields of escaped objects escape *)
  let by_base : (int, int list ref) Hashtbl.t = Hashtbl.create 256 in
  Pag.iter_nodes
    (fun id node _ ->
      match node with
      | Pag.NField (oid, _) -> (
          match Hashtbl.find_opt by_base oid with
          | Some l -> l := id :: !l
          | None -> Hashtbl.add by_base oid (ref [ id ]))
      | _ -> ())
    pag;
  let rec close () =
    match !frontier with
    | [] -> ()
    | work ->
        frontier := [];
        List.iter
          (fun oid ->
            match Hashtbl.find_opt by_base oid with
            | Some nodes ->
                List.iter
                  (fun node_id -> O2_util.Bitset.iter mark (Pag.pts pag node_id))
                  !nodes
            | None -> ())
          work;
        close ()
  in
  close ();
  t

let n_escaped_accesses t =
  let a = t.solver in
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun sp ->
      Walk.iter_origin a sp (fun m ctx s ->
          match Access.of_stmt a m ctx s with
          | None -> ()
          | Some (targets, is_write) ->
              List.iter
                (fun target ->
                  let shared =
                    match target with
                    | Access.Tstatic _ -> true
                    | Access.Tfield (oid, _) -> is_escaped t oid
                  in
                  if shared then
                    Hashtbl.replace seen (s.Ast.sid, target, is_write) ())
                targets))
    (a.Solver.spawns);
  Hashtbl.length seen
