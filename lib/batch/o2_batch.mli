(** Corpus batch driver: a fleet of per-file analyses that degrade
    gracefully.

    [o2 analyze] handles exactly one [.cir] file; this module turns the
    same pipeline into a corpus harness. Every file runs inside a fault
    boundary — parse/lex/ill-formed errors, uncaught exceptions and
    {!O2_util.Budget} exhaustion each downgrade that one file to a
    structured [`Error]/[`Timeout] entry instead of killing the run — and
    files fan out across OCaml 5 domains ([config.jobs]). Per-file reports
    are rendered with detection jobs pinned to 1 and no metrics attached,
    so they are byte-identical to a serial [o2 analyze] of the same file
    regardless of batch parallelism.

    Results can persist in an on-disk cache keyed by source digest and
    analysis configuration; a rerun serves digest-unchanged files from the
    cache ([e_cached = true]) with the identical report. *)

(** Per-file outcome. *)
type status = [ `Ok | `Error of string | `Timeout of string ]

type entry = {
  e_file : string;
  e_digest : string;  (** hex MD5 of the source; [""] if unreadable *)
  e_status : status;
  e_races : int;  (** 0 unless [`Ok] *)
  e_elapsed : float;  (** seconds spent on this file (0 on a cache hit) *)
  e_cached : bool;  (** served from the on-disk result cache *)
  e_report : string;
      (** rendered per-file report, byte-identical to serial [o2 analyze]
          (resp. [o2 analyze --json]); [""] unless [`Ok] *)
  e_counters : (string * int) list;
      (** key pipeline counters (PAG sizes, worklist iterations, pairs
          checked, races), name-sorted; [[]] unless freshly analyzed *)
}

type report = {
  b_policy : O2_pta.Context.policy;
  b_jobs : int;
  b_format : [ `Text | `Json ];  (** per-file report format of this run *)
  b_entries : entry list;  (** sorted by file name — deterministic for any [jobs] *)
  b_elapsed : float;  (** corpus wall-clock seconds *)
  b_metrics : O2_util.Metrics.t;
      (** aggregate sink: [batch.*] counters plus the merged per-file
          pipeline counters/timers *)
}

type config = {
  policy : O2_pta.Context.policy;
  serial_events : bool;
  lock_region : bool;
  entry : O2_frontend.Parser.entry;
      (** entry-point selection per file (default [Auto]: [main C;]
          programs and Android-style class lists both analyze); part of
          the cache key *)
  jobs : int;  (** worker domains across files (per-file detection is serial) *)
  format : [ `Text | `Json ];  (** per-file report format *)
  wall : float option;  (** per-file wall-clock budget, seconds *)
  max_steps : int option;  (** per-file PTA worklist-step ceiling *)
  cache_file : string option;  (** on-disk result cache; [None] = disabled *)
}

(** Paper-default pipeline, serial, text reports, no budgets, no cache. *)
val default : config

(** [enumerate paths] expands each path: a directory contributes its
    [.cir] files (non-recursive), a plain file contributes itself. The
    result is name-sorted and deduplicated. [Error msg] on a path that
    does not exist or cannot be read. *)
val enumerate : string list -> (string list, string) result

(** [run cfg files] analyzes every file under [cfg]'s fault boundary and
    budgets, fanning across [cfg.jobs] domains, and returns the aggregate
    report (entries name-sorted). Never raises on malformed or
    over-budget inputs. *)
val run : config -> string list -> report

(** [render ?per_file r] renders the aggregate report.

    Text ([cfg.format = `Text]): one table row per file (status, races,
    elapsed, cache/failure detail) plus a summary line; with
    [per_file = true] (default false) each [`Ok] file's full serial
    report precedes the table.

    JSON: the [o2_batch/v1] document —
    [{"schema":"o2_batch/v1","policy":..,"jobs":..,"elapsed":..,
      "files":[{"file","digest","status","races","elapsed","cached",
                "report","counters",("error")}],
      "summary":{"total","ok","errors","timeouts","cached","races"},
      "metrics":{..aggregate..}}]. *)
val render : ?per_file:bool -> report -> string

(** [exit_code r] is 0 when every entry is [`Ok], 1 otherwise — the
    [o2 batch] process exit status. *)
val exit_code : report -> int

(** [n_failed r] counts [`Error] and [`Timeout] entries. *)
val n_failed : report -> int

(** [total_races r] sums races over [`Ok] entries. *)
val total_races : report -> int
