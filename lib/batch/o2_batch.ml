open O2_util

type status = [ `Ok | `Error of string | `Timeout of string ]

type entry = {
  e_file : string;
  e_digest : string;
  e_status : status;
  e_races : int;
  e_elapsed : float;
  e_cached : bool;
  e_report : string;
  e_counters : (string * int) list;
}

type report = {
  b_policy : O2_pta.Context.policy;
  b_jobs : int;
  b_format : [ `Text | `Json ];
  b_entries : entry list;
  b_elapsed : float;
  b_metrics : Metrics.t;
}

type config = {
  policy : O2_pta.Context.policy;
  serial_events : bool;
  lock_region : bool;
  entry : O2_frontend.Parser.entry;
  jobs : int;
  format : [ `Text | `Json ];
  wall : float option;
  max_steps : int option;
  cache_file : string option;
}

let default =
  {
    policy = O2_pta.Context.Korigin 1;
    serial_events = true;
    lock_region = true;
    entry = O2_frontend.Parser.Auto;
    jobs = 1;
    format = `Text;
    wall = None;
    max_steps = None;
    cache_file = None;
  }

(* ---------------- corpus enumeration ---------------- *)

let enumerate paths =
  let add_path acc path =
    if not (Sys.file_exists path) then
      failwith (Printf.sprintf "%s: no such file or directory" path)
    else if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".cir")
      |> List.map (fun f -> Filename.concat path f)
      |> List.rev_append acc
    else path :: acc
  in
  match List.fold_left add_path [] paths with
  | files -> Ok (List.sort_uniq compare files)
  | exception Failure msg -> Error msg
  | exception Sys_error msg -> Error msg

(* ---------------- on-disk result cache ---------------- *)

(* Marshal-based cache: {digest+config key -> finished entry payload}. A
   missing, corrupt or version-mismatched file degrades to an empty cache
   (never an error: the cache is purely an optimization). The magic string
   is the FIRST component of the marshalled tuple: a version mismatch is
   detected before any payload field is ever inspected, so old-format
   entries can never be misread as the current shape. *)

let cache_magic = "o2-batch-cache/v3"

(* the aggregate's "key counters": the Table 6 shape of each file plus the
   detection effort, enough to spot an outlier without rerunning --stats *)
let key_counter_names =
  [
    "pta.pointers"; "pta.objects"; "pta.edges"; "pta.origins";
    "pta.worklist_iters"; "shb.nodes"; "shb.edges"; "race.pairs_checked";
    "o2.races"; "o2.origins";
  ]

(* v3 payload: counters stored as a dense int array in [key_counter_names]
   order (the flat-IR storage discipline — no string keys past the
   boundary; v1 stored an assoc list) plus an explicit status. v2 stored
   only terminal `Ok results, but also stored nothing else — a `Wall or
   `Steps exhaustion was silently re-analyzed every run, and worse, an
   early buggy revision could serve one as terminal. v3 makes the
   distinction structural: timeouts are cached under a budget-qualified
   key (below), so a rerun with the same budget is served instantly while
   any budget change misses and re-analyzes. *)
type cached = {
  c_status : [ `Ok | `Timeout of string ];
  c_races : int;
  c_report : string;
  c_counters : int array;
}

type cache_tbl = (string, cached) Hashtbl.t

let cache_key cfg digest =
  Printf.sprintf "%s|%s|%b|%b|%s|%s" digest
    (O2_pta.Context.policy_name cfg.policy)
    cfg.serial_events cfg.lock_region
    (O2_frontend.Parser.entry_name cfg.entry)
    (match cfg.format with `Text -> "text" | `Json -> "json")

(* a timeout is a property of (file, config, budget), not of the file:
   the budget signature keys it so `--deadline 60` after a `--deadline 5`
   timeout re-analyzes instead of replaying the stale exhaustion *)
let timeout_key cfg digest =
  Printf.sprintf "%s|timeout|w=%s|s=%s" (cache_key cfg digest)
    (match cfg.wall with None -> "-" | Some w -> Printf.sprintf "%g" w)
    (match cfg.max_steps with None -> "-" | Some n -> string_of_int n)

let load_cache = function
  | None -> (Hashtbl.create 0 : cache_tbl)
  | Some path -> (
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let magic, (tbl : cache_tbl) = Marshal.from_channel ic in
            if String.equal magic cache_magic then tbl else Hashtbl.create 0)
      with _ -> Hashtbl.create 0)

let save_cache path (tbl : cache_tbl) =
  try
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Marshal.to_channel oc (cache_magic, tbl) []);
    Sys.rename tmp path
  with Sys_error _ -> ()

(* ---------------- per-file analysis under a fault boundary ---------------- *)

let digest_of file = try Digest.to_hex (Digest.file file) with _ -> ""

let analyze_one cfg (cache : cache_tbl) file =
  let t0 = Unix.gettimeofday () in
  let digest = digest_of file in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let fail status =
    {
      e_file = file;
      e_digest = digest;
      e_status = status;
      e_races = 0;
      e_elapsed = elapsed ();
      e_cached = false;
      e_report = "";
      e_counters = [];
    }
  in
  let hit =
    if digest = "" then None
    else
      match Hashtbl.find_opt cache (cache_key cfg digest) with
      | Some ({ c_status = `Ok; _ } as c)
        when Array.length c.c_counters = List.length key_counter_names ->
          Some c
      | _ -> (
          (* no terminal result: a timeout under this exact budget is
             still worth serving (rerunning would just burn the same
             wall clock again) *)
          match Hashtbl.find_opt cache (timeout_key cfg digest) with
          | Some ({ c_status = `Timeout _; _ } as c) -> Some c
          | _ -> None)
  in
  match hit with
  | Some c ->
      {
        e_file = file;
        e_digest = digest;
        e_status = (c.c_status :> status);
        e_races = c.c_races;
        e_elapsed = 0.0;
        e_cached = true;
        e_report = c.c_report;
        e_counters =
          (match c.c_status with
          | `Ok ->
              List.mapi (fun i k -> (k, c.c_counters.(i))) key_counter_names
          | `Timeout _ -> []);
      }
  | None -> (
      try
        let p = O2_frontend.Parser.parse_file ~entry:cfg.entry file in
        let budget =
          match (cfg.wall, cfg.max_steps) with
          | None, None -> None
          | wall, max_steps -> Some (Budget.make ?wall ?max_steps ())
        in
        let m = Metrics.create () in
        let ocfg =
          {
            O2.Config.policy = cfg.policy;
            serial_events = cfg.serial_events;
            lock_region = cfg.lock_region;
            metrics = Some m;
            (* detection stays serial inside one file: batch parallelism is
               across files, and per-file output must be byte-identical to
               a serial `o2 analyze` *)
            jobs = 1;
            budget;
          }
        in
        let r = O2.run ocfg p in
        (* render without the metrics sink, exactly like a plain
           `o2 analyze` (no --stats) of the same file *)
        let report_str =
          O2_race.Report.render ~format:cfg.format
            {
              O2_race.Report.solver = r.O2.solver;
              graph = r.O2.graph;
              report = r.O2.report;
            }
        in
        {
          e_file = file;
          e_digest = digest;
          e_status = `Ok;
          e_races = O2.n_races r;
          e_elapsed = elapsed ();
          e_cached = false;
          e_report = report_str;
          e_counters =
            List.map (fun k -> (k, Metrics.get m k)) key_counter_names;
        }
      with
      | O2_frontend.Parser.Parse_error (msg, line) ->
          fail (`Error (Printf.sprintf "parse error at line %d: %s" line msg))
      | O2_frontend.Lexer.Lex_error (msg, line) ->
          fail (`Error (Printf.sprintf "lexical error at line %d: %s" line msg))
      | O2_ir.Program.Ill_formed msg ->
          fail (`Error ("ill-formed program: " ^ msg))
      | O2_ir.Harness.No_activity msg ->
          fail (`Error ("no activity class: " ^ msg))
      | Budget.Exhausted reason -> fail (`Timeout (Budget.reason_to_string reason))
      | Sys_error msg -> fail (`Error msg)
      | Invalid_argument msg -> fail (`Error msg)
      | exn -> fail (`Error ("uncaught exception: " ^ Printexc.to_string exn)))

(* ---------------- the corpus run ---------------- *)

let run cfg files =
  let t0 = Unix.gettimeofday () in
  let bm = Metrics.create () in
  let cache = load_cache cfg.cache_file in
  let files_arr = Array.of_list files in
  let n = Array.length files_arr in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  (* each worker claims the next unanalyzed file; the cache table is only
     read during the run (writes happen after the join below) *)
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (analyze_one cfg cache files_arr.(i));
        go ()
      end
    in
    go ()
  in
  let jobs = max 1 (min cfg.jobs (max 1 n)) in
  Metrics.span bm "batch" (fun () ->
      if jobs <= 1 then worker ()
      else begin
        let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        Array.iter Domain.join domains
      end);
  let entries =
    Array.to_list results
    |> List.map (function Some e -> e | None -> assert false)
    |> List.sort (fun a b -> compare a.e_file b.e_file)
  in
  (* aggregate counters; per-file metrics were kept out of the entries to
     preserve report byte-identity, so recompute the batch.* roll-up here *)
  Metrics.set bm "batch.files" n;
  List.iter
    (fun e ->
      (match e.e_status with
      | `Ok ->
          Metrics.incr bm "batch.ok";
          Metrics.add bm "batch.races" e.e_races
      | `Error _ -> Metrics.incr bm "batch.errors"
      | `Timeout _ -> Metrics.incr bm "batch.timeouts");
      if e.e_cached then Metrics.incr bm "batch.cached";
      List.iter (fun (k, v) -> Metrics.add bm ("corpus." ^ k) v) e.e_counters)
    entries;
  (match cfg.cache_file with
  | None -> ()
  | Some path ->
      List.iter
        (fun e ->
          match e.e_status with
          | `Ok when e.e_digest <> "" ->
              Hashtbl.replace cache
                (cache_key cfg e.e_digest)
                {
                  c_status = `Ok;
                  c_races = e.e_races;
                  c_report = e.e_report;
                  c_counters = Array.of_list (List.map snd e.e_counters);
                }
          | `Timeout msg when e.e_digest <> "" ->
              Hashtbl.replace cache
                (timeout_key cfg e.e_digest)
                {
                  c_status = `Timeout msg;
                  c_races = 0;
                  c_report = "";
                  c_counters = [||];
                }
          | _ -> ())
        entries;
      save_cache path cache);
  {
    b_policy = cfg.policy;
    b_jobs = jobs;
    b_format = cfg.format;
    b_entries = entries;
    b_elapsed = Unix.gettimeofday () -. t0;
    b_metrics = bm;
  }

(* ---------------- summaries ---------------- *)

let n_failed r =
  List.length
    (List.filter
       (fun e -> match e.e_status with `Ok -> false | _ -> true)
       r.b_entries)

let total_races r =
  List.fold_left
    (fun acc e -> match e.e_status with `Ok -> acc + e.e_races | _ -> acc)
    0 r.b_entries

let exit_code r = if n_failed r = 0 then 0 else 1

(* ---------------- rendering ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let status_name = function
  | `Ok -> "ok"
  | `Error _ -> "error"
  | `Timeout _ -> "timeout"

let summary_counts r =
  let ok, errors, timeouts, cached =
    List.fold_left
      (fun (ok, er, tm, ca) e ->
        let ca = if e.e_cached then ca + 1 else ca in
        match e.e_status with
        | `Ok -> (ok + 1, er, tm, ca)
        | `Error _ -> (ok, er + 1, tm, ca)
        | `Timeout _ -> (ok, er, tm + 1, ca))
      (0, 0, 0, 0) r.b_entries
  in
  (List.length r.b_entries, ok, errors, timeouts, cached)

let entry_json e =
  let counters =
    e.e_counters
    |> List.map (fun (k, v) -> Printf.sprintf {|"%s":%d|} (json_escape k) v)
    |> String.concat ","
  in
  let detail =
    match e.e_status with
    | `Ok -> ""
    | `Error msg -> Printf.sprintf {|,"error":"%s"|} (json_escape msg)
    | `Timeout msg -> Printf.sprintf {|,"error":"%s"|} (json_escape msg)
  in
  Printf.sprintf
    {|{"file":"%s","digest":"%s","status":"%s","races":%d,"elapsed":%.6f,"cached":%b,"report":"%s","counters":{%s}%s}|}
    (json_escape e.e_file) (json_escape e.e_digest)
    (status_name e.e_status)
    e.e_races e.e_elapsed e.e_cached (json_escape e.e_report) counters detail

let render_json r =
  let total, ok, errors, timeouts, cached = summary_counts r in
  Printf.sprintf
    {|{"schema":"o2_batch/v1","policy":"%s","jobs":%d,"elapsed":%.6f,"files":[%s],"summary":{"total":%d,"ok":%d,"errors":%d,"timeouts":%d,"cached":%d,"races":%d},"metrics":%s}|}
    (json_escape (O2_pta.Context.policy_name r.b_policy))
    r.b_jobs r.b_elapsed
    (String.concat "," (List.map entry_json r.b_entries))
    total ok errors timeouts cached (total_races r)
    (Metrics.to_json r.b_metrics)

let render_text ~per_file r =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if per_file then
    List.iter
      (fun e ->
        if e.e_status = `Ok then
          pf "==> %s <==\n%s\n\n" e.e_file e.e_report)
      r.b_entries;
  let width =
    List.fold_left (fun w e -> max w (String.length e.e_file)) 4 r.b_entries
  in
  pf "%-*s %-8s %6s %9s  %s\n" width "file" "status" "races" "elapsed"
    "detail";
  List.iter
    (fun e ->
      let detail =
        match e.e_status with
        | `Ok -> if e.e_cached then "(cached)" else ""
        | `Error msg | `Timeout msg -> msg
      in
      pf "%-*s %-8s %6d %8.3fs  %s\n" width e.e_file
        (status_name e.e_status)
        e.e_races e.e_elapsed detail)
    r.b_entries;
  let total, ok, errors, timeouts, cached = summary_counts r in
  pf
    "%d file(s): %d ok, %d error(s), %d timeout(s), %d cached; %d race(s) \
     total; policy %s, jobs %d, %.3fs\n"
    total ok errors timeouts cached (total_races r)
    (O2_pta.Context.policy_name r.b_policy)
    r.b_jobs r.b_elapsed;
  Buffer.contents buf

let render ?(per_file = false) r =
  match r.b_format with
  | `Json -> render_json r
  | `Text -> render_text ~per_file r
