open O2_pta
open O2_shb

module IntTbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash x = (x * 0x9e3779b1) land max_int
end)

type race = {
  r_target : Access.target;
  r_a : Graph.node;
  r_b : Graph.node;
}

type report = {
  races : race list;
  n_pairs_checked : int;
  n_hb_pruned : int;
  n_lock_pruned : int;
  n_class_pruned : int;
}

let field_of_target = function
  | Access.Tfield (_, f) -> f
  | Access.Tstatic (c, f) -> c ^ "::" ^ f

let dedup_key r =
  let a = r.r_a.Graph.n_sid and b = r.r_b.Graph.n_sid in
  ((min a b, max a b), field_of_target r.r_target)

let n_races report =
  List.map dedup_key report.races |> List.sort_uniq compare |> List.length

let is_write (n : Graph.node) =
  match n.Graph.n_kind with Graph.Write _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* origin blocks and equivalence classes *)

(* The hybrid check sees a node of one target group only through its
   origin's self-parallelism, its canonical lockset id, its access kind,
   its HB interval ({!Graph.hb_interval}), and the closure relations of
   its origin. Origins whose relations are indistinguishable inside the
   group — identical occupied intervals, one shared relation matrix
   between every ordered pair of them, identical relations toward every
   other origin of the group — form a *block*: e.g. a farm of worker
   threads all spawned alike. Nodes are then classed by
   (block, HB interval, lockset, is-write): one check per class pair
   decides every member pair, with same-origin member pairs inside a
   block accounted combinatorially (they are candidates only under
   self-parallelism, exactly as in the pairwise loop), so the reported
   races and the total pair accounting stay identical while
   [n_pairs_checked] drops from O(n²) to O(classes²). *)

type oinfo = {
  o_id : int;
  o_self_par : bool;
  o_ts : int array;  (* sorted distinct t_idx of the origin's group nodes *)
  o_qs : int array;  (* sorted distinct q_idx of the origin's group nodes *)
}

type block = {
  bk_members : oinfo array;  (* insertion (= first-node) order *)
  bk_self_par : bool;
}

type cls = {
  c_nodes : Graph.node array;  (* members, id-ascending *)
  c_block : int;
  c_t : int;
  c_q : int;
  c_ls : int;
  c_write : bool;
  c_by_origin : (int, int) Hashtbl.t;  (* origin -> member count *)
}

(* per-worker accumulator: merged (and the race list re-sorted) at the end,
   so the parallel path stays byte-identical to the serial one *)
type acc = {
  mutable a_races : race list;
  mutable a_pairs : int;
  mutable a_hb : int;
  mutable a_lock : int;
  mutable a_cls : int;
  mutable a_hbq : int;  (* interval-level HB queries issued by this worker *)
}

(* [tb]/[qb]/[nls] are the packing bounds for the int class keys: exclusive
   upper bounds of HB intervals ({!Graph.interval_bounds}) and of canonical
   lockset ids. *)
(* [ostamp] (over origins, stamped with the group ordinal [gi]) and [ivl]
   (a node-id-indexed interval memo, packed [1 + t*qb + q], 0 = unset) are
   slice-local scratch arrays — per-group hash tables on these hot paths
   cost more than the group work itself. *)
let check_group g ~disjoint ~hb ~tb ~qb ~nls ~ostamp ~ivl ~gi acc target
    (ns : Graph.node list) =
  (* quick origin-sharing filter: skip single-origin or read-only groups *)
  let n_origins = ref 0 and first_origin = ref (-1) in
  List.iter
    (fun (n : Graph.node) ->
      if ostamp.(n.Graph.n_origin) <> gi then begin
        ostamp.(n.Graph.n_origin) <- gi;
        if !n_origins = 0 then first_origin := n.Graph.n_origin;
        incr n_origins
      end)
    ns;
  let has_write = List.exists is_write ns in
  let single_origin_ok =
    !n_origins = 1 && not (Graph.self_parallel g !first_origin)
  in
  if has_write && not single_origin_ok then begin
    let locks = Graph.locks g in
    let interval (n : Graph.node) =
      let c = ivl.(n.Graph.n_id) in
      if c <> 0 then ((c - 1) / qb, (c - 1) mod qb)
      else begin
        let ((t, q) as tq) = Graph.hb_interval g n in
        ivl.(n.Graph.n_id) <- 1 + (t * qb) + q;
        tq
      end
    in
    (* per-origin occupancy, first-seen (= id) order *)
    let by_origin = Hashtbl.create 8 and origin_order = ref [] in
    List.iter
      (fun (n : Graph.node) ->
        match Hashtbl.find_opt by_origin n.Graph.n_origin with
        | Some l -> l := n :: !l
        | None ->
            Hashtbl.add by_origin n.Graph.n_origin (ref [ n ]);
            origin_order := n.Graph.n_origin :: !origin_order)
      ns;
    let oinfos =
      List.rev_map
        (fun o ->
          let members = List.rev !(Hashtbl.find by_origin o) in
          let distinct proj =
            List.map proj members |> List.sort_uniq compare |> Array.of_list
          in
          {
            o_id = o;
            o_self_par = Graph.self_parallel g o;
            o_ts = distinct (fun n -> fst (interval n));
            o_qs = distinct (fun n -> snd (interval n));
          })
        !origin_order
      |> List.rev
    in
    let hb_state ~src ~t_idx ~dst ~q_idx =
      acc.a_hbq <- acc.a_hbq + 1;
      hb ~src ~t_idx ~dst ~q_idx
    in
    (* the full ordered relation table over occupied intervals: rel.(i).(j)
       is the matrix of hb_state answers from origin i's thresholds to
       origin j's entry positions *)
    let oarr = Array.of_list oinfos in
    let m = Array.length oarr in
    (* each matrix is bit-packed into a handful of ints (row-major over
       u.o_ts × v.o_qs): one allocation per ordered pair, and the block
       equivalence below compares words instead of nested arrays *)
    let rel =
      Array.init m (fun i ->
          Array.init m (fun j ->
              if i = j then [||]
              else begin
                let u = oarr.(i) and v = oarr.(j) in
                let nts = Array.length u.o_ts
                and nqs = Array.length v.o_qs in
                let words = Array.make (((nts * nqs) + 62) / 63) 0 in
                let b = ref 0 in
                for ti = 0 to nts - 1 do
                  for qi = 0 to nqs - 1 do
                    if
                      hb_state ~src:u.o_id ~t_idx:u.o_ts.(ti) ~dst:v.o_id
                        ~q_idx:v.o_qs.(qi)
                    then
                      words.(!b / 63) <-
                        words.(!b / 63) lor (1 lsl (!b mod 63));
                    incr b
                  done
                done;
                words
              end))
    in
    (* [equiv i r]: origins i and r are interchangeable inside this group —
       same self-parallelism and occupied slots, symmetric relation between
       the two, and identical relations toward every third origin. The
       relation is transitive (each third-origin row/column equality chains,
       and the pairwise entries themselves are pinned by any third member),
       so testing a candidate against one representative per block suffices *)
    let arr_eq (a : int array) (b : int array) =
      a == b
      ||
      let n = Array.length a in
      n = Array.length b
      &&
      let k = ref 0 in
      while !k < n && a.(!k) = b.(!k) do
        incr k
      done;
      !k = n
    in
    let equiv i r =
      let u = oarr.(i) and v = oarr.(r) in
      u.o_self_par = v.o_self_par
      && arr_eq u.o_ts v.o_ts
      && arr_eq u.o_qs v.o_qs
      && arr_eq rel.(i).(r) rel.(r).(i)
      &&
      let ok = ref true in
      let x = ref 0 in
      while !ok && !x < m do
        if !x <> i && !x <> r then
          ok :=
            arr_eq rel.(i).(!x) rel.(r).(!x)
            && arr_eq rel.(!x).(i) rel.(!x).(r);
        incr x
      done;
      !ok
    in
    (* greedy origin blocks, deterministic (first-node order both ways) *)
    let reps = ref [] and members = Hashtbl.create 8 in
    for i = 0 to m - 1 do
      match List.find_opt (fun r -> equiv i r) (List.rev !reps) with
      | Some r -> Hashtbl.replace members r (i :: Hashtbl.find members r)
      | None ->
          reps := i :: !reps;
          Hashtbl.add members i [ i ]
    done;
    let blocks =
      List.rev !reps
      |> List.map (fun r ->
             {
               bk_members =
                 List.rev (Hashtbl.find members r)
                 |> List.map (fun i -> oarr.(i))
                 |> Array.of_list;
               bk_self_par = oarr.(r).o_self_par;
             })
      |> Array.of_list
    in
    let block_of_origin = Hashtbl.create 8 in
    Array.iteri
      (fun i blk ->
        Array.iter (fun o -> Hashtbl.replace block_of_origin o.o_id i)
          blk.bk_members)
      blocks;
    (* node classes, first-member (= id) order; the class key packs
       (block, t, q, lockset, is-write) into one int — blocks, intervals
       and lockset ids are all dense, so the mixed-radix code is injective
       and the per-group table hashes plain ints *)
    let cls_tbl = IntTbl.create 16 and cls_order = ref [] in
    List.iter
      (fun (n : Graph.node) ->
        let t, q = interval n in
        let blk = Hashtbl.find block_of_origin n.Graph.n_origin in
        let ls = n.Graph.n_lockset in
        let w = is_write n in
        let key =
          ((((((blk * tb) + t) * qb) + q) * nls) + ls) * 2
          + if w then 1 else 0
        in
        match IntTbl.find_opt cls_tbl key with
        | Some members -> members := n :: !members
        | None ->
            let members = ref [ n ] in
            IntTbl.add cls_tbl key members;
            cls_order := ((blk, t, q, ls, w), members) :: !cls_order)
      ns;
    let classes =
      List.rev !cls_order
      |> List.map (fun ((blk, t, q, ls, w), members) ->
             let c_nodes = Array.of_list (List.rev !members) in
             let c_by_origin = Hashtbl.create 4 in
             Array.iter
               (fun (n : Graph.node) ->
                 Hashtbl.replace c_by_origin n.Graph.n_origin
                   (1
                   + Option.value ~default:0
                       (Hashtbl.find_opt c_by_origin n.Graph.n_origin)))
               c_nodes;
             {
               c_nodes;
               c_block = blk;
               c_t = t;
               c_q = q;
               c_ls = ls;
               c_write = w;
               c_by_origin;
             })
      |> Array.of_list
    in
    let k = Array.length classes in
    (* a write by a self-parallel origin races with the same access in
       another run-time instance of that origin — unless the access holds a
       lock, which the other instance would hold too *)
    Array.iter
      (fun c ->
        if
          c.c_write
          && blocks.(c.c_block).bk_self_par
          && c.c_ls = Lockset.empty locks
        then begin
          acc.a_pairs <- acc.a_pairs + 1;
          acc.a_cls <- acc.a_cls + Array.length c.c_nodes - 1;
          Array.iter
            (fun a ->
              acc.a_races <-
                { r_target = target; r_a = a; r_b = a } :: acc.a_races)
            c.c_nodes
        end)
      classes;
    for i = 0 to k - 1 do
      for j = i to k - 1 do
        let ci = classes.(i) and cj = classes.(j) in
        if ci.c_write || cj.c_write then begin
          let same_block = ci.c_block = cj.c_block in
          let sp_i = blocks.(ci.c_block).bk_self_par
          and sp_j = blocks.(cj.c_block).bk_self_par in
          let ni = Array.length ci.c_nodes and nj = Array.length cj.c_nodes in
          let total = if i = j then ni * (ni - 1) / 2 else ni * nj in
          (* member pairs drawn from one origin: candidates only under
             self-parallelism, exactly as in the pairwise loop *)
          let same_origin_pairs =
            if not same_block then 0
            else if i = j then
              Hashtbl.fold
                (fun _ c acc -> acc + (c * (c - 1) / 2))
                ci.c_by_origin 0
            else
              Hashtbl.fold
                (fun o c acc ->
                  acc
                  + c
                    * Option.value ~default:0 (Hashtbl.find_opt cj.c_by_origin o))
                ci.c_by_origin 0
          in
          let candidates =
            if same_block && not sp_i then total - same_origin_pairs else total
          in
          if candidates > 0 then begin
            acc.a_pairs <- acc.a_pairs + 1;
            acc.a_cls <- acc.a_cls + candidates - 1;
            if not (disjoint ci.c_ls cj.c_ls) then
              acc.a_lock <- acc.a_lock + 1
            else begin
              (* HB edges in/out of a self-parallel origin order each
                 run-time instance only with its own children — the static
                 graph cannot tell instances apart, so HB pruning is
                 unsound there and only locksets apply *)
              let hb_usable = (not sp_i) && not sp_j in
              let hb_hit =
                hb_usable
                &&
                if same_block then
                  (* candidates > 0 and no self-parallelism means the block
                     holds ≥ 2 origins; any ordered pair carries the one
                     shared relation matrix *)
                  let mem = blocks.(ci.c_block).bk_members in
                  Array.length mem >= 2
                  &&
                  let u = mem.(0) and v = mem.(1) in
                  hb_state ~src:u.o_id ~t_idx:ci.c_t ~dst:v.o_id ~q_idx:cj.c_q
                  || hb_state ~src:u.o_id ~t_idx:cj.c_t ~dst:v.o_id
                       ~q_idx:ci.c_q
                else
                  let u = blocks.(ci.c_block).bk_members.(0)
                  and v = blocks.(cj.c_block).bk_members.(0) in
                  hb_state ~src:u.o_id ~t_idx:ci.c_t ~dst:v.o_id ~q_idx:cj.c_q
                  || hb_state ~src:v.o_id ~t_idx:cj.c_t ~dst:u.o_id
                       ~q_idx:ci.c_q
              in
              if hb_hit then acc.a_hb <- acc.a_hb + 1
              else begin
                let skip_same_origin = same_block && not sp_i in
                let emit (a : Graph.node) (b : Graph.node) =
                  if
                    not
                      (skip_same_origin && a.Graph.n_origin = b.Graph.n_origin)
                  then
                    let a, b =
                      if a.Graph.n_id <= b.Graph.n_id then (a, b) else (b, a)
                    in
                    acc.a_races <-
                      { r_target = target; r_a = a; r_b = b } :: acc.a_races
                in
                if i = j then
                  for x = 0 to ni - 1 do
                    for y = x + 1 to ni - 1 do
                      emit ci.c_nodes.(x) ci.c_nodes.(y)
                    done
                  done
                else
                  Array.iter
                    (fun a -> Array.iter (emit a) cj.c_nodes)
                    ci.c_nodes
              end
            end
          end
        end
      done
    done
  end

(* ------------------------------------------------------------------ *)

(* The seed's group check, preserved verbatim as the test oracle for the
   integer-keyed fast path above: per-group hash tables on structural keys
   through the polymorphic hash, relation matrices as nested bool arrays
   compared with structural [=], and direct (unmemoized) closure queries.
   The report and every gated counter are identical to [check_group] —
   only the constant factors differ. *)
let check_group_oracle g ~disjoint acc target (ns : Graph.node list) =
  (* quick origin-sharing filter: skip single-origin or read-only groups *)
  let origin_seen = Hashtbl.create 8 in
  let n_origins = ref 0 and first_origin = ref (-1) in
  List.iter
    (fun (n : Graph.node) ->
      if not (Hashtbl.mem origin_seen n.Graph.n_origin) then begin
        Hashtbl.add origin_seen n.Graph.n_origin ();
        if !n_origins = 0 then first_origin := n.Graph.n_origin;
        incr n_origins
      end)
    ns;
  let has_write = List.exists is_write ns in
  let single_origin_ok =
    !n_origins = 1 && not (Graph.self_parallel g !first_origin)
  in
  if has_write && not single_origin_ok then begin
    let locks = Graph.locks g in
    let intervals = Hashtbl.create 64 in
    let interval n =
      match Hashtbl.find_opt intervals n.Graph.n_id with
      | Some tq -> tq
      | None ->
          let tq = Graph.hb_interval g n in
          Hashtbl.add intervals n.Graph.n_id tq;
          tq
    in
    (* per-origin occupancy, first-seen (= id) order *)
    let by_origin = Hashtbl.create 8 and origin_order = ref [] in
    List.iter
      (fun (n : Graph.node) ->
        match Hashtbl.find_opt by_origin n.Graph.n_origin with
        | Some l -> l := n :: !l
        | None ->
            Hashtbl.add by_origin n.Graph.n_origin (ref [ n ]);
            origin_order := n.Graph.n_origin :: !origin_order)
      ns;
    let oinfos =
      List.rev_map
        (fun o ->
          let members = List.rev !(Hashtbl.find by_origin o) in
          let distinct proj =
            List.map proj members |> List.sort_uniq compare |> Array.of_list
          in
          {
            o_id = o;
            o_self_par = Graph.self_parallel g o;
            o_ts = distinct (fun n -> fst (interval n));
            o_qs = distinct (fun n -> snd (interval n));
          })
        !origin_order
      |> List.rev
    in
    let hb_state ~src ~t_idx ~dst ~q_idx =
      acc.a_hbq <- acc.a_hbq + 1;
      Graph.hb_state g ~src ~t_idx ~dst ~q_idx
    in
    (* the full ordered relation table over occupied intervals: rel.(i).(j)
       is the matrix of hb_state answers from origin i's thresholds to
       origin j's entry positions *)
    let oarr = Array.of_list oinfos in
    let m = Array.length oarr in
    let rel =
      Array.init m (fun i ->
          Array.init m (fun j ->
              if i = j then [||]
              else
                let u = oarr.(i) and v = oarr.(j) in
                Array.map
                  (fun t ->
                    Array.map
                      (fun q ->
                        hb_state ~src:u.o_id ~t_idx:t ~dst:v.o_id ~q_idx:q)
                      v.o_qs)
                  u.o_ts))
    in
    (* [equiv i r]: origins i and r are interchangeable inside this group —
       same self-parallelism and occupied slots, symmetric relation between
       the two, and identical relations toward every third origin. The
       relation is transitive (each third-origin row/column equality chains,
       and the pairwise entries themselves are pinned by any third member),
       so testing a candidate against one representative per block suffices *)
    let equiv i r =
      let u = oarr.(i) and v = oarr.(r) in
      u.o_self_par = v.o_self_par
      && u.o_ts = v.o_ts
      && u.o_qs = v.o_qs
      && rel.(i).(r) = rel.(r).(i)
      &&
      let ok = ref true in
      let x = ref 0 in
      while !ok && !x < m do
        if !x <> i && !x <> r then
          ok :=
            rel.(i).(!x) = rel.(r).(!x) && rel.(!x).(i) = rel.(!x).(r);
        incr x
      done;
      !ok
    in
    (* greedy origin blocks, deterministic (first-node order both ways) *)
    let reps = ref [] and members = Hashtbl.create 8 in
    for i = 0 to m - 1 do
      match List.find_opt (fun r -> equiv i r) (List.rev !reps) with
      | Some r -> Hashtbl.replace members r (i :: Hashtbl.find members r)
      | None ->
          reps := i :: !reps;
          Hashtbl.add members i [ i ]
    done;
    let blocks =
      List.rev !reps
      |> List.map (fun r ->
             {
               bk_members =
                 List.rev (Hashtbl.find members r)
                 |> List.map (fun i -> oarr.(i))
                 |> Array.of_list;
               bk_self_par = oarr.(r).o_self_par;
             })
      |> Array.of_list
    in
    let block_of_origin = Hashtbl.create 8 in
    Array.iteri
      (fun i blk ->
        Array.iter (fun o -> Hashtbl.replace block_of_origin o.o_id i)
          blk.bk_members)
      blocks;
    (* node classes, first-member (= id) order *)
    let cls_tbl = Hashtbl.create 16 and cls_order = ref [] in
    List.iter
      (fun (n : Graph.node) ->
        let t, q = interval n in
        let key =
          ( Hashtbl.find block_of_origin n.Graph.n_origin,
            t,
            q,
            n.Graph.n_lockset,
            is_write n )
        in
        match Hashtbl.find_opt cls_tbl key with
        | Some members -> members := n :: !members
        | None ->
            let members = ref [ n ] in
            Hashtbl.add cls_tbl key members;
            cls_order := (key, members) :: !cls_order)
      ns;
    let classes =
      List.rev !cls_order
      |> List.map (fun ((blk, t, q, ls, w), members) ->
             let c_nodes = Array.of_list (List.rev !members) in
             let c_by_origin = Hashtbl.create 4 in
             Array.iter
               (fun (n : Graph.node) ->
                 Hashtbl.replace c_by_origin n.Graph.n_origin
                   (1
                   + Option.value ~default:0
                       (Hashtbl.find_opt c_by_origin n.Graph.n_origin)))
               c_nodes;
             {
               c_nodes;
               c_block = blk;
               c_t = t;
               c_q = q;
               c_ls = ls;
               c_write = w;
               c_by_origin;
             })
      |> Array.of_list
    in
    let k = Array.length classes in
    (* a write by a self-parallel origin races with the same access in
       another run-time instance of that origin — unless the access holds a
       lock, which the other instance would hold too *)
    Array.iter
      (fun c ->
        if
          c.c_write
          && blocks.(c.c_block).bk_self_par
          && c.c_ls = Lockset.empty locks
        then begin
          acc.a_pairs <- acc.a_pairs + 1;
          acc.a_cls <- acc.a_cls + Array.length c.c_nodes - 1;
          Array.iter
            (fun a ->
              acc.a_races <-
                { r_target = target; r_a = a; r_b = a } :: acc.a_races)
            c.c_nodes
        end)
      classes;
    for i = 0 to k - 1 do
      for j = i to k - 1 do
        let ci = classes.(i) and cj = classes.(j) in
        if ci.c_write || cj.c_write then begin
          let same_block = ci.c_block = cj.c_block in
          let sp_i = blocks.(ci.c_block).bk_self_par
          and sp_j = blocks.(cj.c_block).bk_self_par in
          let ni = Array.length ci.c_nodes and nj = Array.length cj.c_nodes in
          let total = if i = j then ni * (ni - 1) / 2 else ni * nj in
          (* member pairs drawn from one origin: candidates only under
             self-parallelism, exactly as in the pairwise loop *)
          let same_origin_pairs =
            if not same_block then 0
            else if i = j then
              Hashtbl.fold
                (fun _ c acc -> acc + (c * (c - 1) / 2))
                ci.c_by_origin 0
            else
              Hashtbl.fold
                (fun o c acc ->
                  acc
                  + c
                    * Option.value ~default:0 (Hashtbl.find_opt cj.c_by_origin o))
                ci.c_by_origin 0
          in
          let candidates =
            if same_block && not sp_i then total - same_origin_pairs else total
          in
          if candidates > 0 then begin
            acc.a_pairs <- acc.a_pairs + 1;
            acc.a_cls <- acc.a_cls + candidates - 1;
            if not (disjoint ci.c_ls cj.c_ls) then
              acc.a_lock <- acc.a_lock + 1
            else begin
              (* HB edges in/out of a self-parallel origin order each
                 run-time instance only with its own children — the static
                 graph cannot tell instances apart, so HB pruning is
                 unsound there and only locksets apply *)
              let hb_usable = (not sp_i) && not sp_j in
              let hb_hit =
                hb_usable
                &&
                if same_block then
                  (* candidates > 0 and no self-parallelism means the block
                     holds ≥ 2 origins; any ordered pair carries the one
                     shared relation matrix *)
                  let mem = blocks.(ci.c_block).bk_members in
                  Array.length mem >= 2
                  &&
                  let u = mem.(0) and v = mem.(1) in
                  hb_state ~src:u.o_id ~t_idx:ci.c_t ~dst:v.o_id ~q_idx:cj.c_q
                  || hb_state ~src:u.o_id ~t_idx:cj.c_t ~dst:v.o_id
                       ~q_idx:ci.c_q
                else
                  let u = blocks.(ci.c_block).bk_members.(0)
                  and v = blocks.(cj.c_block).bk_members.(0) in
                  hb_state ~src:u.o_id ~t_idx:ci.c_t ~dst:v.o_id ~q_idx:cj.c_q
                  || hb_state ~src:v.o_id ~t_idx:cj.c_t ~dst:u.o_id
                       ~q_idx:ci.c_q
              in
              if hb_hit then acc.a_hb <- acc.a_hb + 1
              else begin
                let skip_same_origin = same_block && not sp_i in
                let emit (a : Graph.node) (b : Graph.node) =
                  if
                    not
                      (skip_same_origin && a.Graph.n_origin = b.Graph.n_origin)
                  then
                    let a, b =
                      if a.Graph.n_id <= b.Graph.n_id then (a, b) else (b, a)
                    in
                    acc.a_races <-
                      { r_target = target; r_a = a; r_b = b } :: acc.a_races
                in
                if i = j then
                  for x = 0 to ni - 1 do
                    for y = x + 1 to ni - 1 do
                      emit ci.c_nodes.(x) ci.c_nodes.(y)
                    done
                  done
                else
                  Array.iter
                    (fun a -> Array.iter (emit a) cj.c_nodes)
                    ci.c_nodes
              end
            end
          end
        end
      done
    done
  end

(* ------------------------------------------------------------------ *)

(* Lockset-id disjointness for a worker domain. The canonical disjointness
   cache inside Lockset.t is a shared mutable Hashtbl, so the parallel path
   gives each domain a local cache over the read-only interned elements. *)
let local_disjoint locks =
  let cache = Hashtbl.create 64 in
  fun a b ->
    if a = b then a = Lockset.empty locks
    else if a = Lockset.empty locks || b = Lockset.empty locks then true
    else
      let key = if a <= b then (a, b) else (b, a) in
      match Hashtbl.find_opt cache key with
      | Some v -> v
      | None ->
          let la = Lockset.elements locks a and lb = Lockset.elements locks b in
          let v = not (List.exists (fun l -> List.mem l lb) la) in
          Hashtbl.add cache key v;
          v

(* Interval-level HB answers are pure functions of four small dense ints
   (source origin, threshold index, destination origin, entry index), and
   target groups re-ask the same questions — over a hundred times each on
   the bigger workloads. One byte-array memo per worker answers repeats
   with a single probe. (Per worker, not per graph: domains must not race
   on a shared cache.) *)
let hb_memo g =
  let tb, qb = Graph.interval_bounds g in
  let n = Graph.n_origins g in
  let size = n * tb * n * qb in
  if size <= 0 || size > 1 lsl 26 then
    fun ~src ~t_idx ~dst ~q_idx -> Graph.hb_state g ~src ~t_idx ~dst ~q_idx
  else
    let memo = Bytes.make size '\000' in
    fun ~src ~t_idx ~dst ~q_idx ->
      let k = ((((src * tb) + t_idx) * n + dst) * qb) + q_idx in
      match Bytes.unsafe_get memo k with
      | '\001' -> false
      | '\002' -> true
      | _ ->
          let v = Graph.hb_state g ~src ~t_idx ~dst ~q_idx in
          Bytes.unsafe_set memo k (if v then '\002' else '\001');
          v

let run_detect ?(jobs = 1) ?(oracle = false) g =
  let locks = Graph.locks g in
  (* group access nodes by flat location id — one int-keyed probe per
     access, with the structural target decoded once per group to label
     its witnesses. [oracle] restores the seed's grouping: every access
     keys the table on its structural target through the polymorphic
     hash. Either way the group members and all downstream accounting are
     identical (the tid encoding is injective); only the keying cost
     differs. *)
  let group_arr =
    if oracle then begin
      let groups : (Access.target, Graph.node list ref) Hashtbl.t =
        Hashtbl.create 256
      in
      Array.iter
        (fun (n : Graph.node) ->
          match n.Graph.n_kind with
          | Graph.Read t | Graph.Write t -> (
              let tgt = Graph.target_of g t in
              match Hashtbl.find_opt groups tgt with
              | Some l -> l := n :: !l
              | None -> Hashtbl.add groups tgt (ref [ n ]))
          | _ -> ())
        (Graph.accesses g);
      Hashtbl.fold (fun tgt l acc -> (tgt, List.rev !l) :: acc) groups []
      |> Array.of_list
    end
    else begin
      let groups : Graph.node list ref IntTbl.t = IntTbl.create 256 in
      Array.iter
        (fun (n : Graph.node) ->
          match n.Graph.n_kind with
          | Graph.Read t | Graph.Write t -> (
              match IntTbl.find_opt groups t with
              | Some l -> l := n :: !l
              | None -> IntTbl.add groups t (ref [ n ]))
          | _ -> ())
        (Graph.accesses g);
      (* accesses arrive id-ascending, so reversing the consed list keeps
         each group's members id-ascending *)
      IntTbl.fold
        (fun t l acc -> (Graph.target_of g t, List.rev !l) :: acc)
        groups []
      |> Array.of_list
    end
  in
  let tb, qb = Graph.interval_bounds g in
  let nls = Lockset.n_distinct locks in
  let detect_slice ~disjoint first step =
    let acc =
      { a_races = []; a_pairs = 0; a_hb = 0; a_lock = 0; a_cls = 0; a_hbq = 0 }
    in
    if oracle then begin
      let i = ref first in
      while !i < Array.length group_arr do
        let target, ns = group_arr.(!i) in
        check_group_oracle g ~disjoint acc target ns;
        i := !i + step
      done
    end
    else begin
      let hb = hb_memo g in
      let ostamp = Array.make (max 1 (Graph.n_origins g)) (-1) in
      let ivl = Array.make (max 1 (Array.length (Graph.nodes g))) 0 in
      let i = ref first in
      while !i < Array.length group_arr do
        let target, ns = group_arr.(!i) in
        check_group g ~disjoint ~hb ~tb ~qb ~nls ~ostamp ~ivl ~gi:!i acc target
          ns;
        i := !i + step
      done
    end;
    acc
  in
  let accs =
    if jobs <= 1 then [ detect_slice ~disjoint:(Lockset.disjoint locks) 0 1 ]
    else
      let nd = max 1 (min jobs (Array.length group_arr)) in
      let domains =
        Array.init nd (fun d ->
            Domain.spawn (fun () ->
                detect_slice ~disjoint:(local_disjoint locks) d nd))
      in
      Array.to_list (Array.map Domain.join domains)
  in
  let sum f = List.fold_left (fun s a -> s + f a) 0 accs in
  (* workers count their interval-level HB queries locally (the shared
     atomic would make domains contend on one cache line); flush once *)
  Graph.note_hb_queries g (sum (fun a -> a.a_hbq));
  let races = List.concat_map (fun a -> a.a_races) accs in
  let races =
    List.sort
      (fun r1 r2 ->
        compare
          (r1.r_a.Graph.n_id, r1.r_b.Graph.n_id)
          (r2.r_a.Graph.n_id, r2.r_b.Graph.n_id))
      races
  in
  (* deduplicate identical source-site pairs, keeping the first witness *)
  let seen = Hashtbl.create 64 in
  let races =
    List.filter
      (fun r ->
        let k = dedup_key r in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      races
  in
  {
    races;
    n_pairs_checked = sum (fun a -> a.a_pairs);
    n_hb_pruned = sum (fun a -> a.a_hb);
    n_lock_pruned = sum (fun a -> a.a_lock);
    n_class_pruned = sum (fun a -> a.a_cls);
  }

let run ?metrics ?(jobs = 1) ?(oracle = false) g =
  match metrics with
  | None -> run_detect ~jobs ~oracle g
  | Some m ->
      let report =
        O2_util.Metrics.span m "race.detect" (fun () ->
            run_detect ~jobs ~oracle g)
      in
      let open O2_util in
      let locks = Graph.locks g in
      Metrics.set m "race.pairs_checked" report.n_pairs_checked;
      Metrics.set m "race.hb_pruned" report.n_hb_pruned;
      Metrics.set m "race.lock_pruned" report.n_lock_pruned;
      Metrics.set m "race.class_pruned" report.n_class_pruned;
      Metrics.set m "race.candidates" (List.length report.races);
      Metrics.set m "race.races" (n_races report);
      Metrics.set m "race.jobs" jobs;
      Metrics.set m "shb.hb_queries" (Graph.hb_queries g);
      (* the lockset disjointness cache is exercised by detection: snapshot
         its hit rate here (cumulative over all runs on this graph) *)
      Metrics.set m "shb.lockset_cache_hits" (Lockset.cache_hits locks);
      Metrics.set m "shb.lockset_cache_misses" (Lockset.cache_misses locks);
      report

let analyze ?(policy = Context.Korigin 1) ?(serial_events = true)
    ?(lock_region = true) ?metrics ?jobs p =
  let a = Solver.analyze ~policy ?metrics p in
  let g = Graph.build ~serial_events ~lock_region ?metrics a in
  let report = run ?metrics ?jobs g in
  (a, g, report)
