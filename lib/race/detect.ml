open O2_pta
open O2_shb

type race = {
  r_target : Access.target;
  r_a : Graph.node;
  r_b : Graph.node;
}

type report = {
  races : race list;
  n_pairs_checked : int;
  n_hb_pruned : int;
  n_lock_pruned : int;
}

let field_of_target = function
  | Access.Tfield (_, f) -> f
  | Access.Tstatic (c, f) -> c ^ "::" ^ f

let dedup_key r =
  let a = r.r_a.Graph.n_sid and b = r.r_b.Graph.n_sid in
  ((min a b, max a b), field_of_target r.r_target)

let n_races report =
  List.map dedup_key report.races |> List.sort_uniq compare |> List.length

let run_detect g =
  let locks = Graph.locks g in
  (* group access nodes by target *)
  let groups : (Access.target, Graph.node list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  Array.iter
    (fun (n : Graph.node) ->
      let target =
        match n.Graph.n_kind with
        | Graph.Read t | Graph.Write t -> Some t
        | _ -> None
      in
      match target with
      | None -> ()
      | Some t -> (
          match Hashtbl.find_opt groups t with
          | Some l -> l := n :: !l
          | None -> Hashtbl.add groups t (ref [ n ])))
    (Graph.accesses g);
  let n_pairs = ref 0 and n_hb = ref 0 and n_lock = ref 0 in
  let races = ref [] in
  let is_write (n : Graph.node) =
    match n.Graph.n_kind with Graph.Write _ -> true | _ -> false
  in
  Hashtbl.iter
    (fun target group ->
      let ns = Array.of_list !group in
      let len = Array.length ns in
      (* quick origin-sharing filter: skip single-origin or read-only groups *)
      let origins =
        Array.fold_left
          (fun acc n -> if List.mem n.Graph.n_origin acc then acc else n.Graph.n_origin :: acc)
          [] ns
      in
      let has_write = Array.exists is_write ns in
      let single_origin_ok =
        match origins with
        | [ o ] -> not (Graph.self_parallel g o)
        | _ -> false
      in
      if has_write && not single_origin_ok then
        for i = 0 to len - 1 do
          (* a write by a self-parallel origin races with the same access in
             another run-time instance of that origin — unless the access
             holds a lock, which the other instance would hold too *)
          let a = ns.(i) in
          if
            is_write a
            && Graph.self_parallel g a.Graph.n_origin
            && Lockset.elements locks a.Graph.n_lockset = []
          then begin
            incr n_pairs;
            races := { r_target = target; r_a = a; r_b = a } :: !races
          end;
          for j = i + 1 to len - 1 do
            let a = ns.(i) and b = ns.(j) in
            if is_write a || is_write b then begin
              let same_origin = a.Graph.n_origin = b.Graph.n_origin in
              let candidate =
                if same_origin then Graph.self_parallel g a.Graph.n_origin
                else true
              in
              if candidate then begin
                incr n_pairs;
                (* HB edges in/out of a self-parallel origin order each
                   run-time instance only with its own children — the static
                   graph cannot tell instances apart, so HB pruning is
                   unsound there and only locksets apply *)
                let hb_usable =
                  (not (Graph.self_parallel g a.Graph.n_origin))
                  && not (Graph.self_parallel g b.Graph.n_origin)
                in
                if not (Lockset.disjoint locks a.Graph.n_lockset b.Graph.n_lockset)
                then incr n_lock
                else if
                  (not same_origin)
                  && hb_usable
                  && (Graph.hb g a b || Graph.hb g b a)
                then incr n_hb
                else
                  let a, b =
                    if a.Graph.n_id <= b.Graph.n_id then (a, b) else (b, a)
                  in
                  races := { r_target = target; r_a = a; r_b = b } :: !races
              end
            end
          done
        done)
    groups;
  let races =
    List.sort
      (fun r1 r2 ->
        compare
          (r1.r_a.Graph.n_id, r1.r_b.Graph.n_id)
          (r2.r_a.Graph.n_id, r2.r_b.Graph.n_id))
      !races
  in
  (* deduplicate identical source-site pairs, keeping the first witness *)
  let seen = Hashtbl.create 64 in
  let races =
    List.filter
      (fun r ->
        let k = dedup_key r in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      races
  in
  { races; n_pairs_checked = !n_pairs; n_hb_pruned = !n_hb; n_lock_pruned = !n_lock }

let run ?metrics g =
  match metrics with
  | None -> run_detect g
  | Some m ->
      let report = O2_util.Metrics.span m "race.detect" (fun () -> run_detect g) in
      let open O2_util in
      let locks = Graph.locks g in
      Metrics.set m "race.pairs_checked" report.n_pairs_checked;
      Metrics.set m "race.hb_pruned" report.n_hb_pruned;
      Metrics.set m "race.lock_pruned" report.n_lock_pruned;
      Metrics.set m "race.candidates" (List.length report.races);
      Metrics.set m "race.races" (n_races report);
      (* the lockset disjointness cache is exercised by detection: snapshot
         its hit rate here (cumulative over all runs on this graph) *)
      Metrics.set m "shb.lockset_cache_hits" (Lockset.cache_hits locks);
      Metrics.set m "shb.lockset_cache_misses" (Lockset.cache_misses locks);
      report

let analyze ?(policy = Context.Korigin 1) ?(serial_events = true)
    ?(lock_region = true) ?metrics p =
  let a = Solver.analyze ~policy ?metrics p in
  let g = Graph.build ~serial_events ~lock_region ?metrics a in
  let report = run ?metrics g in
  (a, g, report)
