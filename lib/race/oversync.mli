(** Over-synchronization analysis — the second §3 "beyond races" client.

    A [sync] region whose guarded accesses all touch origin-local locations
    (per OSA) excludes nobody: the lock is removable, a performance bug the
    paper's commercial deployment also reports. The analysis is only as good
    as the sharing classification — under 0-ctx, falsely-shared locals make
    almost every lock look necessary, another face of the precision
    argument. *)

type finding = {
  ov_site : int;  (** the sync statement id *)
  ov_pos : O2_ir.Types.pos;
  ov_origin : int;  (** spawn id executing the region *)
  ov_accesses : int;  (** guarded accesses, all origin-local *)
}

type report = { findings : finding list }

val n_findings : report -> int

(** [run a osa] scans every lock region of every origin. Regions with no
    accesses at all are not reported (empty regions are usually fences in
    disguise). *)
val run : O2_pta.Solver.result -> O2_osa.Osa.t -> report

val analyze : ?policy:O2_pta.Context.policy -> O2_ir.Program.t -> report
val pp_finding : Format.formatter -> finding -> unit
