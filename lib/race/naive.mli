(** The straw-man race detector of §4 ("existing static race detection …
    run a depth-first search starting from one access … and compute the
    locksets for both accesses").

    This is the D4-style baseline O2 is measured against in the ablation
    benchmarks: it stores explicit intra-origin HB edges and answers every
    happens-before query with an uncached DFS over the full node-level
    graph, recomputes lockset intersections as list operations with no
    canonical ids, and performs no lock-region merging (the SHB is built
    with [~lock_region:false]). Its reports agree with {!Detect} — the
    optimizations are sound — which the test suite asserts. *)

open O2_shb

(** [run g] detects races by pairwise DFS. [g] should be built with
    [~lock_region:false] for a faithful baseline; {!analyze} does so. *)
val run : Graph.t -> Detect.report

(** Full pipeline with the naive engine. [metrics] is threaded through the
    solver and SHB build; detection runs in a ["race.naive"] span. *)
val analyze :
  ?policy:O2_pta.Context.policy ->
  ?serial_events:bool ->
  ?metrics:O2_util.Metrics.t ->
  O2_ir.Program.t ->
  O2_pta.Solver.result * Graph.t * Detect.report
