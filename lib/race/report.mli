(** Rendering of race reports for the CLI and examples.

    {!render} is the single output path: both the optimized detector
    ({!Detect}) and the naive baseline ({!Naive}) produce the same
    [(solver, graph, report)] shape, and the [O2] facade delegates here, so
    text and JSON reports are byte-identical no matter which engine ran. *)

open O2_pta
open O2_shb

(** Everything needed to render a race report. Both detectors return these
    three values; [O2.result] carries them too. *)
type result = {
  solver : Solver.result;
  graph : Graph.t;
  report : Detect.report;
}

(** [render ?format ?metrics r] renders the report as text (default) or
    JSON. When [metrics] is given, the text form appends the metrics table
    after a [--- metrics ---] separator and the JSON form gains a
    ["metrics"] field ({!O2_util.Metrics.to_json}). *)
val render :
  ?format:[ `Text | `Json ] -> ?metrics:O2_util.Metrics.t -> result -> string

(** [pp_race a g ppf r] prints one race with both access sites, their
    origins and locksets, in the style of the paper's §5.4 listings. *)
val pp_race : Solver.result -> Graph.t -> Format.formatter -> Detect.race -> unit

(** [pp a g ppf report] prints the full report with a summary line. *)
val pp : Solver.result -> Graph.t -> Format.formatter -> Detect.report -> unit

(** [summary a report] is a one-line summary: #races, #pairs, pruning. *)
val summary : Solver.result -> Detect.report -> string

(** [origin_name a id] renders an origin (spawn) for messages, e.g.
    ["Thread Worker.run() started at input.cir:12"]. *)
val origin_name : Solver.result -> int -> string

(** [to_json a g report] serializes the report as a stable JSON document
    (for CI integration); no external JSON dependency. *)
val to_json : Solver.result -> Graph.t -> Detect.report -> string
