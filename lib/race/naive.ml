open O2_pta
open O2_shb

(* Explicit node-level successor graph: program-order edges within each
   origin trace, spawn edges into child traces, join edges back. *)
type edges = { succ : (int, int list) Hashtbl.t }

let build_edges g =
  let succ = Hashtbl.create 1024 in
  let add a b =
    let l = match Hashtbl.find_opt succ a with Some l -> l | None -> [] in
    Hashtbl.replace succ a (b :: l)
  in
  let nodes = Graph.nodes g in
  (* intra-origin program-order chains *)
  let last_of_origin = Hashtbl.create 16 in
  let first_of_origin = Hashtbl.create 16 in
  Array.iter
    (fun (n : Graph.node) ->
      (match Hashtbl.find_opt last_of_origin n.Graph.n_origin with
      | Some prev -> add prev n.Graph.n_id
      | None -> Hashtbl.add first_of_origin n.Graph.n_origin n.Graph.n_id);
      Hashtbl.replace last_of_origin n.Graph.n_origin n.Graph.n_id)
    nodes;
  (* inter-origin edges *)
  List.iter
    (fun (_, child, node_id) ->
      match Hashtbl.find_opt first_of_origin child with
      | Some first -> add node_id first
      | None -> ())
    (Graph.spawn_edges g);
  List.iter
    (fun (child, _, node_id) ->
      match Hashtbl.find_opt last_of_origin child with
      | Some last -> add last node_id
      | None -> ())
    (Graph.join_edges g);
  List.iter
    (fun (_, sig_id, _, wait_id) -> add sig_id wait_id)
    (Graph.sem_edges g);
  { succ }

let dfs_reachable edges src dst =
  let visited = Hashtbl.create 64 in
  let rec go n =
    n = dst
    || (not (Hashtbl.mem visited n))
       && begin
            Hashtbl.add visited n ();
            match Hashtbl.find_opt edges.succ n with
            | Some l -> List.exists go l
            | None -> false
          end
  in
  match Hashtbl.find_opt edges.succ src with
  | Some l -> List.exists go l
  | None -> false

let run g =
  let locks = Graph.locks g in
  let edges = build_edges g in
  let lockset_elems ls = Lockset.elements locks ls in
  let disjoint a b =
    (* deliberate: raw list intersection, no canonical-id cache *)
    let la = lockset_elems a and lb = lockset_elems b in
    not (List.exists (fun l -> List.mem l lb) la)
  in
  let groups : (int, Graph.node list ref) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (n : Graph.node) ->
      match n.Graph.n_kind with
      | Graph.Read t | Graph.Write t -> (
          match Hashtbl.find_opt groups t with
          | Some l -> l := n :: !l
          | None -> Hashtbl.add groups t (ref [ n ]))
      | _ -> ())
    (Graph.accesses g);
  let is_write (n : Graph.node) =
    match n.Graph.n_kind with Graph.Write _ -> true | _ -> false
  in
  let n_pairs = ref 0 and n_hb = ref 0 and n_lock = ref 0 in
  let races = ref [] in
  Hashtbl.iter
    (fun tid group ->
      let target = Graph.target_of g tid in
      let ns = Array.of_list !group in
      let len = Array.length ns in
      for i = 0 to len - 1 do
        let a = ns.(i) in
        if
          is_write a
          && Graph.self_parallel g a.Graph.n_origin
          && lockset_elems a.Graph.n_lockset = []
        then begin
          incr n_pairs;
          races := { Detect.r_target = target; r_a = a; r_b = a } :: !races
        end;
        for j = i + 1 to len - 1 do
          let a = ns.(i) and b = ns.(j) in
          if is_write a || is_write b then begin
            let same_origin = a.Graph.n_origin = b.Graph.n_origin in
            let candidate =
              if same_origin then Graph.self_parallel g a.Graph.n_origin
              else true
            in
            if candidate then begin
              incr n_pairs;
              let hb_usable =
                (not (Graph.self_parallel g a.Graph.n_origin))
                && not (Graph.self_parallel g b.Graph.n_origin)
              in
              if not (disjoint a.Graph.n_lockset b.Graph.n_lockset) then
                incr n_lock
              else if
                (not same_origin)
                &&
                (* the straw-man engine runs its graph traversal for every
                   conflicting pair — that cost is the point of the
                   baseline; the self-parallel soundness filter only
                   decides whether the result may prune *)
                let ordered =
                  dfs_reachable edges a.Graph.n_id b.Graph.n_id
                  || dfs_reachable edges b.Graph.n_id a.Graph.n_id
                in
                hb_usable && ordered
              then incr n_hb
              else
                let a, b =
                  if a.Graph.n_id <= b.Graph.n_id then (a, b) else (b, a)
                in
                races :=
                  { Detect.r_target = target; r_a = a; r_b = b } :: !races
            end
          end
        done
      done)
    groups;
  let races =
    List.sort
      (fun (r1 : Detect.race) (r2 : Detect.race) ->
        compare
          (r1.Detect.r_a.Graph.n_id, r1.Detect.r_b.Graph.n_id)
          (r2.Detect.r_a.Graph.n_id, r2.Detect.r_b.Graph.n_id))
      !races
  in
  let seen = Hashtbl.create 64 in
  let races =
    List.filter
      (fun (r : Detect.race) ->
        let a = r.Detect.r_a.Graph.n_sid and b = r.Detect.r_b.Graph.n_sid in
        let f =
          match r.Detect.r_target with
          | Access.Tfield (_, f) -> f
          | Access.Tstatic (c, f) -> c ^ "::" ^ f
        in
        let k = ((min a b, max a b), f) in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      races
  in
  {
    Detect.races;
    n_pairs_checked = !n_pairs;
    n_hb_pruned = !n_hb;
    n_lock_pruned = !n_lock;
    n_class_pruned = 0;
  }

let analyze ?(policy = Context.Insensitive) ?(serial_events = true) ?metrics p
    =
  let a = Solver.analyze ~policy ?metrics p in
  let g = Graph.build ~serial_events ~lock_region:false ?metrics a in
  let report =
    match metrics with
    | None -> run g
    | Some m ->
        let report = O2_util.Metrics.span m "race.naive" (fun () -> run g) in
        O2_util.Metrics.set m "race.pairs_checked" report.Detect.n_pairs_checked;
        O2_util.Metrics.set m "race.races" (Detect.n_races report);
        report
  in
  (a, g, report)
