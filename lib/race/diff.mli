(** Differential race reporting between two program versions — the
    workflow of the paper's D4 lineage (concurrency debugging as code
    changes) on top of the batch engine.

    Races are keyed by stable descriptors (class.field plus both access
    kinds and source lines) rather than statement ids, so reports from two
    compilations of edited source align. *)

type race_key = {
  k_field : string;  (** "Class.field" or "Class::static" *)
  k_kind_a : string;  (** "read" | "write" *)
  k_kind_b : string;
  k_line_a : int;
  k_line_b : int;
}

type delta = {
  introduced : race_key list;  (** in the new version only *)
  fixed : race_key list;  (** in the old version only *)
  unchanged : race_key list;  (** exact key matches *)
  moved : (race_key * race_key) list;
      (** same field and access kinds, shifted source lines — edited code,
          not a new defect *)
}

(** [key_of a race] is the stable descriptor of a detected race. *)
val key_of : O2_pta.Solver.result -> Detect.race -> race_key

(** [keys ?policy p] analyzes one version and returns its sorted,
    deduplicated race keys. Exposed separately from {!diff} so callers
    (the CLI) can put each side behind its own fault boundary: a parse
    or analysis failure on one version then degrades to a structured
    per-side error instead of aborting the comparison wholesale. *)
val keys : ?policy:O2_pta.Context.policy -> O2_ir.Program.t -> race_key list

(** [align old_keys new_keys] aligns two key sets (exact matches, then
    same-shape line moves). [diff] = [align] over both versions' {!keys}. *)
val align : race_key list -> race_key list -> delta

(** [diff ?policy old_p new_p] analyzes both versions and aligns the
    reports. *)
val diff :
  ?policy:O2_pta.Context.policy ->
  O2_ir.Program.t ->
  O2_ir.Program.t ->
  delta

val pp_key : Format.formatter -> race_key -> unit
val pp : Format.formatter -> delta -> unit
