(** O2's race-detection engine (§4, §4.1).

    Candidate generation follows the hybrid lockset + happens-before scheme:
    two accesses to the same abstract location race iff they come from
    different origins (or one self-parallel origin), at least one is a
    write, their locksets are disjoint, and neither happens-before the
    other. The three §4.1 optimizations are all in play: intra-origin HB is
    an integer comparison and inter-origin HB an O(1) lookup into the
    origin-level closure ({!O2_shb.Graph.hb}); locksets are canonical ids
    with a cached disjointness check ({!O2_shb.Lockset}); and lock-region
    merging happens at SHB construction.

    On top of that, each target group is partitioned into
    (origin, lockset, is-write, HB-interval) equivalence classes
    ({!O2_shb.Graph.hb_interval}): one check per class pair decides every
    member pair, and witnesses are recovered per surviving class pair, so
    the reported races are identical to the pairwise loop while
    [n_pairs_checked] drops from O(n²) to O(classes²). *)

open O2_pta
open O2_shb

type race = {
  r_target : Access.target;
  r_a : Graph.node;
  r_b : Graph.node;  (** [r_a.n_id <= r_b.n_id] *)
}

type report = {
  races : race list;  (** deduplicated, deterministic order *)
  n_pairs_checked : int;  (** class pairs examined *)
  n_hb_pruned : int;  (** class pairs pruned by happens-before *)
  n_lock_pruned : int;  (** class pairs pruned by common locks *)
  n_class_pruned : int;
      (** node pairs answered for free by class sharing; the pairwise
          loop's pair count is [n_pairs_checked + n_class_pruned] *)
}

(** [n_races r] counts distinct races after source-site deduplication: one
    race per unordered pair of statement sites per field — the unit the
    paper's Tables 8–10 report. *)
val n_races : report -> int

(** [run ?metrics ?jobs g] detects races on a built SHB graph. With a sink,
    detection runs inside a ["race.detect"] span and records
    [race.pairs_checked], [race.hb_pruned], [race.lock_pruned],
    [race.class_pruned], [race.candidates] (witnesses kept), [race.races]
    (after source-site dedup), [shb.hb_queries] and the lockset-cache
    hit/miss snapshot.

    [jobs] (default 1) fans the per-target-group checks across that many
    OCaml [Domain]s. Per-domain accumulators are merged, sorted and
    deduplicated at the end, so the output is byte-identical to the serial
    run; each domain keeps a local lockset-disjointness cache (the shared
    cache in {!O2_shb.Lockset} is not safe for concurrent mutation), which
    means [shb.lockset_cache_hits/misses] only reflect serial runs.

    [oracle] (default false) runs the seed's detection loop, preserved
    verbatim — access groups and equivalence classes keyed on structural
    values through the polymorphic hash, relation matrices as nested bool
    arrays, no closure-query memo — as the legacy baseline and test oracle
    for the default integer-indexed fast path. The report and every gated
    counter are identical either way. *)
val run :
  ?metrics:O2_util.Metrics.t -> ?jobs:int -> ?oracle:bool -> Graph.t -> report

(** [analyze ?policy ?serial_events p] is the full O2 pipeline:
    pointer analysis → SHB → detection. [metrics] is threaded through all
    three stages. *)
val analyze :
  ?policy:Context.policy ->
  ?serial_events:bool ->
  ?lock_region:bool ->
  ?metrics:O2_util.Metrics.t ->
  ?jobs:int ->
  O2_ir.Program.t ->
  Solver.result * Graph.t * report
