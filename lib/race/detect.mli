(** O2's race-detection engine (§4, §4.1).

    Candidate generation follows the hybrid lockset + happens-before scheme:
    two accesses to the same abstract location race iff they come from
    different origins (or one self-parallel origin), at least one is a
    write, their locksets are disjoint, and neither happens-before the
    other. The three §4.1 optimizations are all in play: intra-origin HB is
    an integer comparison and inter-origin HB a memoized reachability query
    ({!O2_shb.Graph.hb}); locksets are canonical ids with a cached
    disjointness check ({!O2_shb.Lockset}); and lock-region merging happens
    at SHB construction. *)

open O2_pta
open O2_shb

type race = {
  r_target : Access.target;
  r_a : Graph.node;
  r_b : Graph.node;  (** [r_a.n_id <= r_b.n_id] *)
}

type report = {
  races : race list;  (** deduplicated, deterministic order *)
  n_pairs_checked : int;  (** candidate pairs examined *)
  n_hb_pruned : int;  (** pairs pruned by happens-before *)
  n_lock_pruned : int;  (** pairs pruned by common locks *)
}

(** [n_races r] counts distinct races after source-site deduplication: one
    race per unordered pair of statement sites per field — the unit the
    paper's Tables 8–10 report. *)
val n_races : report -> int

(** [run ?metrics g] detects races on a built SHB graph. With a sink,
    detection runs inside a ["race.detect"] span and records
    [race.pairs_checked], [race.hb_pruned], [race.lock_pruned],
    [race.candidates] (witnesses kept), [race.races] (after source-site
    dedup) and the lockset-cache hit/miss snapshot. *)
val run : ?metrics:O2_util.Metrics.t -> Graph.t -> report

(** [analyze ?policy ?serial_events p] is the full O2 pipeline:
    pointer analysis → SHB → detection. [metrics] is threaded through all
    three stages. *)
val analyze :
  ?policy:Context.policy ->
  ?serial_events:bool ->
  ?lock_region:bool ->
  ?metrics:O2_util.Metrics.t ->
  O2_ir.Program.t ->
  Solver.t * Graph.t * report
