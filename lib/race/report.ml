open O2_ir
open O2_pta
open O2_shb

let origin_name a id =
  let sps = a.Solver.spawns in
  if id < 0 || id >= Array.length sps then Printf.sprintf "origin %d" id
  else
    let sp = sps.(id) in
    match sp.Solver.sp_kind with
    | `Main -> "main thread"
    | `Thread ->
        let st, _ = Program.stmt (a.Solver.program) sp.Solver.sp_site in
        Format.asprintf "thread %s.%s() started at %a"
          sp.Solver.sp_entry.Program.m_class sp.Solver.sp_entry.Program.m_name
          Types.pp_pos st.Ast.pos
    | `Event ->
        let st, _ = Program.stmt (a.Solver.program) sp.Solver.sp_site in
        Format.asprintf "event %s.%s() posted at %a"
          sp.Solver.sp_entry.Program.m_class sp.Solver.sp_entry.Program.m_name
          Types.pp_pos st.Ast.pos

let pp_access a g ppf (n : Graph.node) =
  let rw =
    match n.Graph.n_kind with
    | Graph.Write _ -> "write"
    | Graph.Read _ -> "read"
    | _ -> "?"
  in
  let ls = Lockset.elements (Graph.locks g) n.Graph.n_lockset in
  Format.fprintf ppf "%s at %a by %s%s" rw Types.pp_pos n.Graph.n_pos
    (origin_name a n.Graph.n_origin)
    (if ls = [] then " [no lock]"
     else
       Printf.sprintf " [locks: %s]"
         (String.concat ","
            (List.map
               (fun l ->
                 if l = Lockset.dispatcher_lock then "<dispatcher>"
                 else "o" ^ string_of_int l)
               ls)))

let pp_race a g ppf (r : Detect.race) =
  Format.fprintf ppf "@[<v 2>RACE on %a:@,%a@,%a@]"
    (Access.pp_target a) r.Detect.r_target (pp_access a g) r.Detect.r_a
    (pp_access a g) r.Detect.r_b

let summary _a (report : Detect.report) =
  Printf.sprintf
    "%d race(s) (%d pairs checked, %d HB-pruned, %d lock-pruned, %d \
     class-pruned)"
    (Detect.n_races report) report.Detect.n_pairs_checked
    report.Detect.n_hb_pruned report.Detect.n_lock_pruned
    report.Detect.n_class_pruned

let pp a g ppf (report : Detect.report) =
  Format.fprintf ppf "@[<v>%s@," (summary a report);
  List.iter
    (fun r -> Format.fprintf ppf "%a@," (pp_race a g) r)
    report.Detect.races;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* JSON serialization, dependency-free *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let access_json a g (n : Graph.node) =
  let kind =
    match n.Graph.n_kind with
    | Graph.Write _ -> "write"
    | Graph.Read _ -> "read"
    | _ -> "other"
  in
  let locks =
    Lockset.elements (Graph.locks g) n.Graph.n_lockset
    |> List.map (fun l ->
           if l = Lockset.dispatcher_lock then "\"<dispatcher>\""
           else Printf.sprintf "\"o%d\"" l)
    |> String.concat ","
  in
  Printf.sprintf
    {|{"kind":"%s","file":"%s","line":%d,"origin":"%s","locks":[%s]}|}
    kind
    (json_escape n.Graph.n_pos.Types.file)
    n.Graph.n_pos.Types.line
    (json_escape (origin_name a n.Graph.n_origin))
    locks

let json_body a g (report : Detect.report) =
  let races =
    List.map
      (fun (r : Detect.race) ->
        Printf.sprintf {|{"target":"%s","a":%s,"b":%s}|}
          (json_escape
             (Format.asprintf "%a" (Access.pp_target a) r.Detect.r_target))
          (access_json a g r.Detect.r_a)
          (access_json a g r.Detect.r_b))
      report.Detect.races
  in
  Printf.sprintf
    {|"races":[%s],"summary":{"n_races":%d,"pairs_checked":%d,"hb_pruned":%d,"lock_pruned":%d,"class_pruned":%d}|}
    (String.concat "," races)
    (Detect.n_races report)
    report.Detect.n_pairs_checked report.Detect.n_hb_pruned
    report.Detect.n_lock_pruned report.Detect.n_class_pruned

let to_json a g (report : Detect.report) =
  Printf.sprintf "{%s}" (json_body a g report)

(* ------------------------------------------------------------------ *)
(* the one render entry point shared by every detector and the CLI *)

type result = {
  solver : Solver.result;
  graph : Graph.t;
  report : Detect.report;
}

let render ?(format = `Text) ?metrics { solver; graph; report } =
  match format with
  | `Json -> (
      match metrics with
      | None -> to_json solver graph report
      | Some m ->
          Printf.sprintf {|{%s,"metrics":%s}|}
            (json_body solver graph report)
            (O2_util.Metrics.to_json m))
  | `Text -> (
      let base = Format.asprintf "%a" (pp solver graph) report in
      match metrics with
      | None -> base
      | Some m ->
          Format.asprintf "%s@.--- metrics ---@.%a" base O2_util.Metrics.pp m)
