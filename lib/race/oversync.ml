open O2_ir
open O2_pta

type finding = {
  ov_site : int;
  ov_pos : Types.pos;
  ov_origin : int;
  ov_accesses : int;
}

type report = { findings : finding list }

let n_findings r = List.length r.findings

let run a osa =
  let findings = ref [] in
  Array.iter
    (fun (sp : Solver.spawn) ->
      let visited = Hashtbl.create 32 in
      let rec visit (m : Program.meth) ctx =
        let key = (m.Program.m_class, m.Program.m_name, ctx) in
        if not (Hashtbl.mem visited key) then begin
          Hashtbl.add visited key ();
          body m ctx m.Program.m_body
        end
      and body m ctx stmts =
        List.iter
          (fun (s : Ast.stmt) ->
            match s.Ast.sk with
            | Ast.Sync (_, region) ->
                check_region m ctx s region;
                body m ctx region
            | Ast.If (b1, b2) ->
                body m ctx b1;
                body m ctx b2
            | Ast.While b -> body m ctx b
            | Ast.Call _ | Ast.StaticCall _ | Ast.New _ ->
                List.iter
                  (fun (callee, cctx) -> visit callee cctx)
                  (Solver.callees a ~site:s.Ast.sid ~ctx)
            | _ -> ())
          stmts
      and check_region m ctx (sync_stmt : Ast.stmt) region =
        (* direct accesses of the region (not through calls: a callee may be
           shared with unlocked paths, where the lock could still matter) *)
        let n_accesses = ref 0 in
        let all_local = ref true in
        let rec scan stmts =
          List.iter
            (fun (s : Ast.stmt) ->
              (match Access.of_stmt a m ctx s with
              | Some (targets, _) ->
                  List.iter
                    (fun t ->
                      incr n_accesses;
                      if O2_osa.Osa.is_shared_target osa t then
                        all_local := false)
                    targets
              | None -> ());
              match s.Ast.sk with
              | Ast.Sync (_, b) | Ast.While b -> scan b
              | Ast.If (b1, b2) ->
                  scan b1;
                  scan b2
              | Ast.Call _ | Ast.StaticCall _ | Ast.New _ ->
                  (* conservatively treat regions with calls as useful *)
                  all_local := false
              | _ -> ())
            stmts
        in
        scan region;
        if !n_accesses > 0 && !all_local then
          findings :=
            {
              ov_site = sync_stmt.Ast.sid;
              ov_pos = sync_stmt.Ast.pos;
              ov_origin = sp.Solver.sp_id;
              ov_accesses = !n_accesses;
            }
            :: !findings
      in
      visit sp.Solver.sp_entry sp.Solver.sp_ectx)
    (a.Solver.spawns);
  (* dedup by site (several origins may run the same region) *)
  let seen = Hashtbl.create 8 in
  {
    findings =
      List.rev !findings
      |> List.filter (fun f ->
             if Hashtbl.mem seen f.ov_site then false
             else begin
               Hashtbl.add seen f.ov_site ();
               true
             end);
  }

let analyze ?(policy = Context.Korigin 1) p =
  let a = Solver.analyze ~policy p in
  let osa = O2_osa.Osa.run a in
  run a osa

let pp_finding ppf f =
  Format.fprintf ppf
    "over-synchronization at %a: the lock guards %d access(es), all on \
     origin-local data"
    Types.pp_pos f.ov_pos f.ov_accesses
