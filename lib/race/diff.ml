open O2_pta
open O2_shb

type race_key = {
  k_field : string;
  k_kind_a : string;
  k_kind_b : string;
  k_line_a : int;
  k_line_b : int;
}

type delta = {
  introduced : race_key list;
  fixed : race_key list;
  unchanged : race_key list;
  moved : (race_key * race_key) list;
}

let kind_of (n : Graph.node) =
  match n.Graph.n_kind with
  | Graph.Write _ -> "write"
  | Graph.Read _ -> "read"
  | _ -> "other"

let key_of a (r : Detect.race) =
  let field =
    match r.Detect.r_target with
    | Access.Tfield (oid, f) ->
        let o = Pag.obj (a.Solver.pag) oid in
        o.Pag.ob_class ^ "." ^ f
    | Access.Tstatic (c, f) -> c ^ "::" ^ f
  in
  let la = r.Detect.r_a.Graph.n_pos.O2_ir.Types.line in
  let lb = r.Detect.r_b.Graph.n_pos.O2_ir.Types.line in
  let ka = kind_of r.Detect.r_a and kb = kind_of r.Detect.r_b in
  (* order endpoints canonically so the key is symmetric *)
  if (la, ka) <= (lb, kb) then
    { k_field = field; k_kind_a = ka; k_kind_b = kb; k_line_a = la; k_line_b = lb }
  else
    { k_field = field; k_kind_a = kb; k_kind_b = ka; k_line_a = lb; k_line_b = la }

let keys ?policy p =
  let a, _, report =
    match policy with
    | Some policy -> Detect.analyze ~policy p
    | None -> Detect.analyze p
  in
  List.sort_uniq compare (List.map (key_of a) report.Detect.races)

let align old_keys new_keys =
  (* phase 1: exact alignment *)
  let unchanged = List.filter (fun k -> List.mem k old_keys) new_keys in
  let old_rest = List.filter (fun k -> not (List.mem k new_keys)) old_keys in
  let new_rest = List.filter (fun k -> not (List.mem k old_keys)) new_keys in
  (* phase 2: a race on the same field with the same access kinds whose
     lines shifted is edited-but-same code, not a new defect *)
  let shape k = (k.k_field, k.k_kind_a, k.k_kind_b) in
  let moved = ref [] and fixed = ref [] in
  let remaining_new = ref new_rest in
  List.iter
    (fun ok ->
      match List.find_opt (fun nk -> shape nk = shape ok) !remaining_new with
      | Some nk ->
          moved := (ok, nk) :: !moved;
          remaining_new := List.filter (fun k -> k <> nk) !remaining_new
      | None -> fixed := ok :: !fixed)
    old_rest;
  {
    introduced = !remaining_new;
    fixed = List.rev !fixed;
    unchanged;
    moved = List.rev !moved;
  }

let diff ?policy old_p new_p = align (keys ?policy old_p) (keys ?policy new_p)

let pp_key ppf k =
  Format.fprintf ppf "%s: %s@%d vs %s@%d" k.k_field k.k_kind_a k.k_line_a
    k.k_kind_b k.k_line_b

let pp ppf d =
  Format.fprintf ppf "@[<v>%d introduced, %d fixed, %d unchanged, %d moved@,"
    (List.length d.introduced) (List.length d.fixed)
    (List.length d.unchanged) (List.length d.moved);
  List.iter (fun k -> Format.fprintf ppf "+ %a@," pp_key k) d.introduced;
  List.iter (fun k -> Format.fprintf ppf "- %a@," pp_key k) d.fixed;
  List.iter
    (fun (o, n) -> Format.fprintf ppf "~ %a -> %a@," pp_key o pp_key n)
    d.moved;
  Format.fprintf ppf "@]"
