open O2_pta

type sharing = {
  sh_target : Access.target;
  sh_readers : int list;
  sh_writers : int list;
}

let is_shared sh =
  sh.sh_writers <> []
  &&
  let all = List.sort_uniq compare (sh.sh_readers @ sh.sh_writers) in
  match all with [] | [ _ ] -> false | _ -> true

type mut_sharing = {
  mutable readers : int list;
  mutable writers : int list;
}

type t = {
  locs : (Access.target, mut_sharing) Hashtbl.t;
  (* every (site, target, origin, is_write) access, for #S-access *)
  mutable accesses : (int * Access.target * int * bool) list;
  (* objects touched per origin, for origin-local reporting *)
  touched : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  (* canonical origin key per spawn id *)
  mutable key_of_spawn : int array;
}

let loc t target =
  match Hashtbl.find_opt t.locs target with
  | Some s -> s
  | None ->
      let s = { readers = []; writers = [] } in
      Hashtbl.add t.locs target s;
      s

(* ComputeOriginSharing(s, f, O, isWrite) of Algorithm 1 *)
let compute_origin_sharing t ~site ~target ~origin ~is_write =
  let s = loc t target in
  if is_write then begin
    if not (List.mem origin s.writers) then s.writers <- origin :: s.writers
  end
  else if not (List.mem origin s.readers) then s.readers <- origin :: s.readers;
  t.accesses <- (site, target, origin, is_write) :: t.accesses

let touch t origin oid =
  let tbl =
    match Hashtbl.find_opt t.touched origin with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 16 in
        Hashtbl.add t.touched origin tbl;
        tbl
  in
  Hashtbl.replace tbl oid ()

let freeze target (s : mut_sharing) =
  { sh_target = target; sh_readers = s.readers; sh_writers = s.writers }

let run ?metrics a =
  let t =
    {
      locs = Hashtbl.create 256;
      accesses = [];
      touched = Hashtbl.create 16;
      key_of_spawn =
        Array.map (Solver.origin_of_spawn a) (a.Solver.spawns);
    }
  in
  let n_scanned = ref 0 in
  let scan () =
    Array.iter
      (fun (sp : Solver.spawn) ->
        let origin = Solver.origin_of_spawn a sp in
        Walk.iter_origin a sp (fun m ctx s ->
            incr n_scanned;
            match Access.of_stmt a m ctx s with
            | None -> ()
            | Some (targets, is_write) ->
                List.iter
                  (fun target ->
                    compute_origin_sharing t ~site:s.O2_ir.Ast.sid ~target
                      ~origin ~is_write;
                    match target with
                    | Access.Tfield (oid, _) -> touch t origin oid
                    | Access.Tstatic _ -> ())
                  targets))
      (a.Solver.spawns)
  in
  (match metrics with
  | None -> scan ()
  | Some m -> O2_util.Metrics.span m "osa.scan" scan);
  (match metrics with
  | None -> ()
  | Some m ->
      let open O2_util in
      Metrics.set m "osa.stmts_scanned" !n_scanned;
      Metrics.set m "osa.accesses" (List.length t.accesses);
      Metrics.set m "osa.locations" (Hashtbl.length t.locs);
      Metrics.set m "osa.shared_locations"
        (Hashtbl.fold
           (fun target s acc ->
             if is_shared (freeze target s) then acc + 1 else acc)
           t.locs 0));
  t

let sharing_of t target =
  Option.map (freeze target) (Hashtbl.find_opt t.locs target)

let shared_locations t =
  Hashtbl.fold
    (fun target s acc ->
      let sh = freeze target s in
      if is_shared sh then sh :: acc else acc)
    t.locs []
  |> List.sort (fun a b -> Access.compare_target a.sh_target b.sh_target)

let is_shared_target t target =
  match sharing_of t target with Some sh -> is_shared sh | None -> false

let n_shared_accesses t =
  List.filter (fun (_, target, _, _) -> is_shared_target t target) t.accesses
  |> List.map (fun (site, target, _, w) -> (site, target, w))
  |> List.sort_uniq compare |> List.length

let n_shared_objects t =
  Hashtbl.fold
    (fun target s acc ->
      if is_shared (freeze target s) then
        (match target with
        | Access.Tfield (oid, _) -> `Obj oid
        | Access.Tstatic (c, _) -> `Static c)
        :: acc
      else acc)
    t.locs []
  |> List.sort_uniq compare |> List.length

let n_shared_object_sites a t =
  Hashtbl.fold
    (fun target s acc ->
      if is_shared (freeze target s) then
        (match target with
        | Access.Tfield (oid, _) ->
            let o = Pag.obj (a.Solver.pag) oid in
            `Site o.Pag.ob_site
        | Access.Tstatic (c, _) -> `Static c)
        :: acc
      else acc)
    t.locs []
  |> List.sort_uniq compare |> List.length

let origin_local_objects t spawn_id =
  let origin =
    if spawn_id >= 0 && spawn_id < Array.length t.key_of_spawn then
      t.key_of_spawn.(spawn_id)
    else spawn_id
  in
  match Hashtbl.find_opt t.touched origin with
  | None -> []
  | Some tbl ->
      Hashtbl.fold
        (fun oid () acc ->
          let shared_somewhere =
            Hashtbl.fold
              (fun target s acc2 ->
                acc2
                ||
                match target with
                | Access.Tfield (o, _) when o = oid ->
                    let sh = freeze target s in
                    let others =
                      List.filter
                        (fun og -> og <> origin)
                        (sh.sh_readers @ sh.sh_writers)
                    in
                    others <> []
                | _ -> false)
              t.locs false
          in
          if shared_somewhere then acc else oid :: acc)
        tbl []
      |> List.sort compare

let pp a ppf t =
  let sps = a.Solver.spawns in
  let name key =
    (* recover a representative spawn for an origin key *)
    let found = ref None in
    Array.iteri
      (fun i k -> if k = key && !found = None then found := Some i)
      t.key_of_spawn;
    match !found with
    | None -> Printf.sprintf "O%d" key
    | Some id ->
      let sp = sps.(id) in
      if sp.Solver.sp_kind = `Main then "Main"
      else
        Printf.sprintf "%s.%s@%d" sp.Solver.sp_entry.O2_ir.Program.m_class
          sp.Solver.sp_entry.O2_ir.Program.m_name sp.Solver.sp_site
  in
  Format.fprintf ppf "@[<v>origin-shared locations:@,";
  List.iter
    (fun sh ->
      Format.fprintf ppf "  %a  readers={%s} writers={%s}@,"
        (Access.pp_target a) sh.sh_target
        (String.concat "," (List.map name (List.sort compare sh.sh_readers)))
        (String.concat "," (List.map name (List.sort compare sh.sh_writers))))
    (shared_locations t);
  Format.fprintf ppf "@]"
