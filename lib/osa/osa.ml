open O2_ir
open O2_pta

type sharing = {
  sh_target : Access.target;
  sh_readers : int list;
  sh_writers : int list;
}

let is_shared sh =
  sh.sh_writers <> []
  &&
  let all = List.sort_uniq compare (sh.sh_readers @ sh.sh_writers) in
  match all with [] | [ _ ] -> false | _ -> true

type mut_sharing = {
  mutable readers : int list;
  mutable writers : int list;
}

(* Internally everything is keyed by flat location id (tid) — the scan
   table probes ints, never structural targets. The target-typed public
   queries encode/decode at the boundary; the tid encoding is injective,
   so every count and set below matches the structural-keyed legacy. *)
type t = {
  flat : Flat.t;
  locs : mut_sharing option array;  (* tid-indexed; None = never accessed *)
  (* every (site, tid, origin, is_write) access, for #S-access *)
  mutable accesses : (int * int * int * bool) list;
  mutable n_accesses : int;
  (* objects touched per origin, keyed [origin * n_objs + oid] *)
  touched : (int, unit) Hashtbl.t;
  n_objs : int;
  (* canonical origin key per spawn id *)
  mutable key_of_spawn : int array;
}

let loc t tid =
  match t.locs.(tid) with
  | Some s -> s
  | None ->
      let s = { readers = []; writers = [] } in
      t.locs.(tid) <- Some s;
      s

let fold_locs t f acc =
  let r = ref acc in
  Array.iteri
    (fun tid s -> match s with Some s -> r := f tid s !r | None -> ())
    t.locs;
  !r

(* ComputeOriginSharing(s, f, O, isWrite) of Algorithm 1 *)
let compute_origin_sharing t ~site ~tid ~origin ~is_write =
  let s = loc t tid in
  if is_write then begin
    if not (List.mem origin s.writers) then s.writers <- origin :: s.writers
  end
  else if not (List.mem origin s.readers) then s.readers <- origin :: s.readers;
  t.accesses <- (site, tid, origin, is_write) :: t.accesses;
  t.n_accesses <- t.n_accesses + 1

let touch t origin oid =
  Hashtbl.replace t.touched ((origin * t.n_objs) + oid) ()

let freeze t tid (s : mut_sharing) =
  {
    sh_target = Access.of_tid t.flat tid;
    sh_readers = s.readers;
    sh_writers = s.writers;
  }

(* Legacy scan, retained as the test oracle ([run ~oracle:true]): the AST
   walker plus structural target resolution, encoding each target at the
   recording boundary. *)
let scan_ast a t n_scanned =
  let fl = a.Solver.flat in
  Array.iter
    (fun (sp : Solver.spawn) ->
      let origin = Solver.origin_of_spawn a sp in
      Walk.iter_origin a sp (fun m ctx s ->
          incr n_scanned;
          match Access.of_stmt a m ctx s with
          | None -> ()
          | Some (targets, is_write) ->
              List.iter
                (fun target ->
                  let tid =
                    match Access.tid_of fl target with
                    | Some tid -> tid
                    | None -> assert false
                  in
                  compute_origin_sharing t ~site:s.Ast.sid ~tid ~origin
                    ~is_write;
                  match target with
                  | Access.Tfield (oid, _) -> touch t origin oid
                  | Access.Tstatic _ -> ())
                targets))
      a.Solver.spawns

(* The default scan: a linear pass over the flat opcode streams, counting
   every instruction (the walker's statement count) and recursing into
   callees at call instructions, exactly the {!Walk.iter_origin} DFS.
   Instances, callees and variable points-to sets all come from the
   solver's dense instance call graph ({!Solver.icg}): the whole scan is
   array probes plus one int-keyed lookup per call site. *)
let scan_flat a t n_scanned =
  let fl = a.Solver.flat in
  let icg = a.Solver.icg in
  let n_st = Flat.n_statics fl in
  (* per-spawn visited set: one shared array stamped with the spawn index *)
  let stamp = Array.make (max 1 icg.Solver.ic_n) (-1) in
  Array.iteri
    (fun spi (sp : Solver.spawn) ->
      let origin = Solver.origin_of_spawn a sp in
      let field_access (pts : O2_util.Bitset.t array) ~site ~base ~fid
          ~is_write =
        (* descending-oid order, matching [Access.base_targets] *)
        O2_util.Bitset.fold
          (fun oid acc -> Flat.tid_field fl ~oid ~fid :: acc)
          pts.(base) []
        |> List.iter (fun tid ->
               compute_origin_sharing t ~site ~tid ~origin ~is_write;
               touch t origin (Flat.tid_oid fl tid))
      in
      let static_access ~site ~slot ~is_write =
        compute_origin_sharing t ~site
          ~tid:(Flat.tid_static fl slot)
          ~origin ~is_write;
        ignore n_st
      in
      let rec visit iid =
        if stamp.(iid) <> spi then begin
          stamp.(iid) <- spi;
          walk iid (Flat.meth fl icg.Solver.ic_mid.(iid))
        end
      and follow_calls iid sid =
        match
          Hashtbl.find_opt icg.Solver.ic_callees
            ((iid * icg.Solver.ic_nsids) + sid)
        with
        | Some arr -> Array.iter visit arr
        | None -> ()
      and walk iid (mi : Flat.meth_info) =
        let pts = icg.Solver.ic_pts.(iid) in
        let code = mi.Flat.f_code in
        let n = Array.length code in
        let i = ref 0 in
        while !i < n do
          let j = !i in
          let op = code.(j) in
          let sid = code.(j + 1) in
          incr n_scanned;
          if op = Flat.op_null then i := j + 2
          else if
            op = Flat.op_assign || op = Flat.op_awrite || op = Flat.op_aread
          then begin
            if op = Flat.op_awrite then
              field_access pts ~site:sid ~base:code.(j + 2)
                ~fid:fl.Flat.f_star ~is_write:true
            else if op = Flat.op_aread then
              field_access pts ~site:sid ~base:code.(j + 3)
                ~fid:fl.Flat.f_star ~is_write:false;
            i := j + 4
          end
          else if op = Flat.op_fwrite then begin
            field_access pts ~site:sid ~base:code.(j + 2) ~fid:code.(j + 3)
              ~is_write:true;
            i := j + 5
          end
          else if op = Flat.op_fread then begin
            field_access pts ~site:sid ~base:code.(j + 3) ~fid:code.(j + 4)
              ~is_write:false;
            i := j + 5
          end
          else if op = Flat.op_swrite then begin
            static_access ~site:sid ~slot:code.(j + 2) ~is_write:true;
            i := j + 4
          end
          else if op = Flat.op_sread then begin
            static_access ~site:sid ~slot:code.(j + 3) ~is_write:false;
            i := j + 4
          end
          else if op = Flat.op_new then begin
            follow_calls iid sid;
            i := j + 5 + code.(j + 4)
          end
          else if op = Flat.op_callv then begin
            follow_calls iid sid;
            i := j + 7 + code.(j + 6)
          end
          else if op = Flat.op_calls then begin
            follow_calls iid sid;
            i := j + 5 + code.(j + 4)
          end
          else if op = Flat.op_sync then i := j + 4 (* body inline *)
          else if op = Flat.op_if then i := j + 4
          else if op = Flat.op_while then i := j + 3
          else if op = Flat.op_start then i := j + 4
          else if
            op = Flat.op_join || op = Flat.op_signal || op = Flat.op_wait
          then i := j + 3
          else if op = Flat.op_post then i := j + 5 + code.(j + 4)
          else if op = Flat.op_return then i := j + 3
          else assert false
        done
      in
      visit icg.Solver.ic_entry.(sp.Solver.sp_id))
    a.Solver.spawns

let run ?(oracle = false) ?metrics a =
  let t =
    {
      flat = a.Solver.flat;
      locs =
        (let fl = a.Solver.flat in
         let bound =
           Flat.n_statics fl
           + (Pag.n_objs a.Solver.pag * Flat.n_fields fl)
         in
         Array.make (max 1 bound) None);
      accesses = [];
      n_accesses = 0;
      touched = Hashtbl.create 16;
      n_objs = Pag.n_objs a.Solver.pag;
      key_of_spawn = Array.map (Solver.origin_of_spawn a) a.Solver.spawns;
    }
  in
  let n_scanned = ref 0 in
  let scan () =
    if oracle then scan_ast a t n_scanned else scan_flat a t n_scanned
  in
  (match metrics with
  | None -> scan ()
  | Some m -> O2_util.Metrics.span m "osa.scan" scan);
  (match metrics with
  | None -> ()
  | Some m ->
      let open O2_util in
      Metrics.set m "osa.stmts_scanned" !n_scanned;
      Metrics.set m "osa.accesses" t.n_accesses;
      Metrics.set m "osa.locations"
        (fold_locs t (fun _ _ acc -> acc + 1) 0);
      Metrics.set m "osa.shared_locations"
        (fold_locs t
           (fun tid s acc -> if is_shared (freeze t tid s) then acc + 1 else acc)
           0));
  t

let tid_opt t target = Access.tid_of t.flat target

let sharing_of t target =
  match tid_opt t target with
  | None -> None
  | Some tid -> Option.map (freeze t tid) t.locs.(tid)

let shared_locations t =
  fold_locs t
    (fun tid s acc ->
      let sh = freeze t tid s in
      if is_shared sh then sh :: acc else acc)
    []
  |> List.sort (fun a b -> Access.compare_target a.sh_target b.sh_target)

let is_shared_target t target =
  match sharing_of t target with Some sh -> is_shared sh | None -> false

let is_shared_tid t tid =
  match t.locs.(tid) with
  | Some s -> is_shared (freeze t tid s)
  | None -> false

let n_shared_accesses t =
  (* int-triple dedup; injective tids make the count the structural one *)
  List.filter (fun (_, tid, _, _) -> is_shared_tid t tid) t.accesses
  |> List.map (fun (site, tid, _, w) -> (site, tid, w))
  |> List.sort_uniq compare |> List.length

let n_shared_objects t =
  let fl = t.flat in
  fold_locs t
    (fun tid s acc ->
      if is_shared (freeze t tid s) then
        (if Flat.tid_is_static fl tid then
           `Static (Flat.class_name fl (Flat.static_cid fl tid))
         else `Obj (Flat.tid_oid fl tid))
        :: acc
      else acc)
    []
  |> List.sort_uniq compare |> List.length

let n_shared_object_sites a t =
  let fl = t.flat in
  fold_locs t
    (fun tid s acc ->
      if is_shared (freeze t tid s) then
        (if Flat.tid_is_static fl tid then
           `Static (Flat.class_name fl (Flat.static_cid fl tid))
         else
           let o = Pag.obj a.Solver.pag (Flat.tid_oid fl tid) in
           `Site o.Pag.ob_site)
        :: acc
      else acc)
    []
  |> List.sort_uniq compare |> List.length

let origin_local_objects t spawn_id =
  let fl = t.flat in
  let origin =
    if spawn_id >= 0 && spawn_id < Array.length t.key_of_spawn then
      t.key_of_spawn.(spawn_id)
    else spawn_id
  in
  let oids =
    Hashtbl.fold
      (fun key () acc ->
        if t.n_objs > 0 && key / t.n_objs = origin then (key mod t.n_objs) :: acc
        else acc)
      t.touched []
  in
  List.filter
    (fun oid ->
      let shared_somewhere =
        fold_locs t
          (fun tid s acc2 ->
            acc2
            || (not (Flat.tid_is_static fl tid))
               && Flat.tid_oid fl tid = oid
               &&
               let sh = freeze t tid s in
               let others =
                 List.filter
                   (fun og -> og <> origin)
                   (sh.sh_readers @ sh.sh_writers)
               in
               others <> [])
          false
      in
      not shared_somewhere)
    oids
  |> List.sort compare

let pp a ppf t =
  let sps = a.Solver.spawns in
  let name key =
    (* recover a representative spawn for an origin key *)
    let found = ref None in
    Array.iteri
      (fun i k -> if k = key && !found = None then found := Some i)
      t.key_of_spawn;
    match !found with
    | None -> Printf.sprintf "O%d" key
    | Some id ->
      let sp = sps.(id) in
      if sp.Solver.sp_kind = `Main then "Main"
      else
        Printf.sprintf "%s.%s@%d" sp.Solver.sp_entry.O2_ir.Program.m_class
          sp.Solver.sp_entry.O2_ir.Program.m_name sp.Solver.sp_site
  in
  Format.fprintf ppf "@[<v>origin-shared locations:@,";
  List.iter
    (fun sh ->
      Format.fprintf ppf "  %a  readers={%s} writers={%s}@,"
        (Access.pp_target a) sh.sh_target
        (String.concat "," (List.map name (List.sort compare sh.sh_readers)))
        (String.concat "," (List.map name (List.sort compare sh.sh_writers))))
    (shared_locations t);
  Format.fprintf ppf "@]"
