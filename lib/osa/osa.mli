(** Origin-sharing analysis (Algorithm 1, §3.3).

    A linear scan over the statements reachable from each origin's entry,
    maintaining per abstract location (⟨object⟩.field or static field) the
    set of origins that read it and the set that write it. A location is
    {e origin-shared} iff at least two distinct origins access it and at
    least one of them writes (ComputeOriginSharing). Unlike classical
    thread-escape analysis, OSA answers {e how} a location is shared — which
    origins read, which write — and handles arrays through the ["*"]
    field and statics through their class-qualified signature.

    The origins here are the solver's {!O2_pta.Solver.spawn}s, so OSA (and
    the race engine above it) runs under every pointer-analysis policy; its
    precision then reflects the policy's, which is what Tables 7–9
    measure. *)

open O2_pta

(** Sharing information for one abstract location. *)
type sharing = {
  sh_target : Access.target;
  sh_readers : int list;  (** spawn ids that read the location *)
  sh_writers : int list;  (** spawn ids that write the location *)
}

(** [is_shared s] is the paper's origin-shared predicate: ≥2 distinct
    accessing origins, at least one writing. *)
val is_shared : sharing -> bool

type t

(** [run ?oracle ?metrics a] scans all origins of the analysis result [a]
    by a linear pass over the flat opcode streams of [a.flat]. With a sink
    the scan runs inside an ["osa.scan"] span and records
    [osa.stmts_scanned], [osa.accesses], [osa.locations] and
    [osa.shared_locations] (the Table 7 volume columns).

    @param oracle use the legacy AST tree-walk with structural target
    resolution instead of the flat scan (default [false]). Kept only as the
    certification oracle the property tests compare the flat path
    against. *)
val run : ?oracle:bool -> ?metrics:O2_util.Metrics.t -> Solver.result -> t

(** [sharing_of t target] is the recorded sharing for a location, if any
    origin accessed it. *)
val sharing_of : t -> Access.target -> sharing option

(** [shared_locations t] lists all origin-shared locations. *)
val shared_locations : t -> sharing list

(** [is_shared_target t target] is true iff [target] is origin-shared. *)
val is_shared_target : t -> Access.target -> bool

(** [n_shared_accesses t] counts access {e sites} (statement, target
    object-resolution included) that touch an origin-shared location — the
    paper's #S-access metric (Table 7). *)
val n_shared_accesses : t -> int

(** [n_shared_objects t] counts distinct abstract objects with at least one
    origin-shared field (statics count one object per class) — the paper's
    #S-obj metric (Table 9). *)
val n_shared_objects : t -> int

(** [n_shared_object_sites a t] is the same count by {e allocation site}
    instead of abstract object — the policy-comparable variant (context
    policies split one site into many abstract objects, which would
    otherwise inflate the more precise analyses' counts). *)
val n_shared_object_sites : Solver.result -> t -> int

(** [origin_local_objects t sp] lists abstract objects accessed only by
    origin [sp] — the "origin-local" part of the OSA output of Figure 2(d),
    which §5.4 uses to report that most Linux-kernel memory is
    origin-local. *)
val origin_local_objects : t -> int -> int list

(** [pp] renders the Figure 2(d)-style report: per origin-shared location,
    the reading and writing origins. *)
val pp : Solver.result -> Format.formatter -> t -> unit
