(** The pointer assignment graph and its difference-propagation worklist.

    Nodes are interned pointers (variables, returns, object fields, static
    fields); points-to sets are bitsets of interned abstract-object ids.
    Complex constraints (loads, stores, virtual calls, origin entries) are
    {e watchers}: callbacks invoked once per new object reaching a base
    node, which is how the call graph is built on the fly (§3.2, "the PAG
    constructed by OPA is built together with the call graph").

    {2 Difference propagation}

    Every node carries two bitsets: the confirmed points-to set [pts n]
    and a pending {e delta} of candidate objects not yet propagated.
    Constraint insertion ({!add_obj}, {!add_copy}) only merges candidates
    into deltas — O(words), no rescan of [pts]; the worklist pop commits
    [delta \ pts] in one word-parallel step ({!O2_util.Bitset.take_fresh})
    and forwards exactly the fresh objects along copy edges. Watchers fire
    on deltas, never on full sets: fresh objects of watched nodes are
    accumulated and delivered by {!flush_fires} in deterministic order
    (nodes ascending, objects ascending, watchers in registration order).

    {2 Origin sharding}

    The graph is created with a shard count and a [node -> shard] map
    (the solver keys it on the origin context owning each node). Node
    state is owned by its shard: {!propagate} drains each shard's
    worklist on its own domain, accumulating deltas for foreign nodes
    into per-domain outboxes that are merged serially at a barrier, and
    iterates such sub-rounds to fixpoint. All structural mutation —
    interning, edges, watchers, SCC merges — is restricted to serial
    phases, which is what makes the frozen-table parallel reads safe and
    the result independent of the shard count.

    {2 Cycle collapsing}

    {!collapse_sccs} unifies copy-edge cycles (whose members provably
    converge to equal points-to sets) onto one representative via
    union-find; all node ids remain valid and transparently resolve
    through the alias. *)

open O2_ir

(** An abstract heap object ⟨allocation site, heap context⟩ (Table 2 ❶). *)
type obj = { ob_site : int; ob_class : Types.cname; ob_hctx : Context.t }

type node =
  | NVar of Types.cname * Types.mname * Types.vname * Context.t
      (** a local/param under a context: ⟨x, 𝕆ᵢ⟩ *)
  | NRet of Types.cname * Types.mname * Context.t
      (** a method's return pointer *)
  | NField of int * Types.fname
      (** an object-field pointer ⟨o, 𝕆ₖ⟩.f; [int] is the object id; arrays
          use the ["*"] field *)
  | NStatic of Types.cname * Types.fname  (** a static field *)

type t

(** [create ?shards ?shard_of ()] builds an empty graph. [shard_of]
    assigns each node to a worklist shard in [0 .. shards-1] (reduced
    modulo [shards]); defaults to a single shard. *)
val create : ?shards:int -> ?shard_of:(node -> int) -> unit -> t

(** {2 Interning}

    The [_hashed] variants take a key hash precomputed with {!node_hash} /
    {!obj_hash} — parallel describe phases hash keys off the serial path
    and the serial barrier interns without rehashing. Lookups ([find_*],
    [node], [obj]) are safe from multiple domains while no domain interns. *)

val obj_hash : obj -> int
val node_hash : node -> int

(** [obj_id g o] interns an abstract object. *)
val obj_id : t -> obj -> int

val obj_id_hashed : t -> hash:int -> obj -> int

(** [find_obj_hashed g ~hash o] is the id of [o], or [-1] when unknown. *)
val find_obj_hashed : t -> hash:int -> obj -> int

(** [obj g id] recovers an interned object. *)
val obj : t -> int -> obj

(** [n_objs g] is the number of distinct abstract objects. *)
val n_objs : t -> int

(** [node_id g n] interns a PAG node. *)
val node_id : t -> node -> int

val node_id_hashed : t -> hash:int -> node -> int

(** [find_node_hashed g ~hash n] is the id of [n], or [-1] when unknown. *)
val find_node_hashed : t -> hash:int -> node -> int

(** [node g id] recovers an interned node. *)
val node : t -> int -> node

(** [n_nodes g] is the number of pointer nodes (the paper's #Pointer). *)
val n_nodes : t -> int

(** [n_edges g] is the number of live canonical copy edges (the paper's
    #Edge). {!collapse_sccs} rewrites edges onto representatives, merging
    parallel edges and dropping self-loops, so the count can decrease. *)
val n_edges : t -> int

(** {2 The graph} *)

(** [find g n] is the canonical representative of [n] under cycle
    collapsing ([n] itself unless an SCC merge aliased it). *)
val find : t -> int -> int

(** [pts g n] is the current points-to set of node [n], resolved through
    {!find} (do not mutate). *)
val pts : t -> int -> O2_util.Bitset.t

(** [delta g n] is the pending candidate set of [n] — objects scheduled
    but not yet committed by propagation (do not mutate). *)
val delta : t -> int -> O2_util.Bitset.t

(** [add_obj g n o] schedules object [o] for [pts n]. Serial phases only. *)
val add_obj : t -> int -> int -> unit

(** [add_copy g ~src ~dst] adds a subset edge [pts src ⊆ pts dst];
    idempotent; schedules the current contents of [src] as candidates for
    [dst]. Serial phases only. *)
val add_copy : t -> src:int -> dst:int -> unit

(** [add_watcher g n f] registers [f] to run on every object in [pts n]:
    immediately for the already-confirmed set, and via {!flush_fires} for
    every delta committed later. Watchers may add edges, objects and
    watchers. Serial phases only. *)
val add_watcher : t -> int -> (int -> unit) -> unit

(** {2 Solving} *)

(** [propagate ?check ?pool g] drains all pending deltas to fixpoint —
    pure copy propagation; watcher deliveries accumulate for
    {!flush_fires}. With [pool], shards drain concurrently (one domain
    each) with serial outbox merges between sub-rounds; results are
    identical with or without it. [check] runs once per pop with the
    cumulative pop count and may raise to abandon the solve — how
    {!O2_util.Budget} ceilings are enforced (under a pool the count each
    shard sees is approximate). *)
val propagate : ?check:(int -> unit) -> ?pool:O2_util.Pool.t -> t -> unit

(** [flush_fires g] delivers accumulated deltas of watched nodes to their
    watchers, in deterministic order; returns [true] if anything fired.
    Callbacks typically add constraints, so callers alternate
    [propagate]/[flush_fires] until both report quiescence. *)
val flush_fires : t -> bool

(** [collapse_sccs g] collapses copy-edge cycles onto one representative
    per strongly-connected component (watched nodes are never aliased);
    returns the number of nodes merged. The representative keeps as
    confirmed only the objects every merged member had confirmed — the
    rest, including deltas in flight when the cycle closed, are
    re-delivered through its delta and the representative is rescheduled,
    so no candidate is lost to the merge. Callers must follow a merging
    collapse with {!propagate} (or {!solve}) before reading final sets.
    Serial phases only. *)
val collapse_sccs : t -> int

(** [solve ?check g] is the serial convenience loop:
    [propagate]/[flush_fires] until quiescent. Reentrant: may be called
    again after adding more constraints. *)
val solve : ?check:(int -> unit) -> t -> unit

(** [iter_nodes f g] applies [f id node pts] to every node (aliased
    members report their representative's set). *)
val iter_nodes : (int -> node -> O2_util.Bitset.t -> unit) -> t -> unit

(** {2 Instrumentation}

    Always-on plain-integer counters (the increments cost nothing
    measurable); the solver flushes them into its {!O2_util.Metrics} sink
    after the fixpoint. Scheduling counters are kept in per-shard slots —
    a shard only schedules and pops nodes it owns, so parallel drains
    never race on them — and folded by the accessors; all counters are
    exact and deterministic for a given shard count. The fact counters
    ([n_pts_adds], [n_pts_facts]) are additionally shard-count
    independent. *)

(** [n_worklist_iters g] counts worklist items popped. *)
val n_worklist_iters : t -> int

(** [n_worklist_pushes g] counts node schedulings. *)
val n_worklist_pushes : t -> int

(** [worklist_peak g] is the sum of the per-shard peak worklist depths —
    an upper bound on the total work ever pending at once (exact with one
    shard). *)
val worklist_peak : t -> int

(** [n_pts_adds g] counts committed points-to facts (the
    difference-propagation work actually performed). *)
val n_pts_adds : t -> int

(** [n_fires g] counts watcher deliveries by {!flush_fires}. *)
val n_fires : t -> int

(** [n_collapsed g] counts nodes aliased by {!collapse_sccs}. *)
val n_collapsed : t -> int

(** [n_pts_facts g] is Σ|pts(n)| over all nodes — the paper's points-to
    set volume. O(nodes·words), computed on demand. *)
val n_pts_facts : t -> int
