(** The pointer assignment graph and its difference-propagation worklist.

    Nodes are interned pointers (variables, returns, object fields, static
    fields); points-to sets are bitsets of interned abstract-object ids.
    Complex constraints (loads, stores, virtual calls, origin entries) are
    {e watchers}: callbacks invoked once per new object reaching a base
    node, which is how the call graph is built on the fly (§3.2, "the PAG
    constructed by OPA is built together with the call graph"). *)

open O2_ir

(** An abstract heap object ⟨allocation site, heap context⟩ (Table 2 ❶). *)
type obj = { ob_site : int; ob_class : Types.cname; ob_hctx : Context.t }

type node =
  | NVar of Types.cname * Types.mname * Types.vname * Context.t
      (** a local/param under a context: ⟨x, 𝕆ᵢ⟩ *)
  | NRet of Types.cname * Types.mname * Context.t
      (** a method's return pointer *)
  | NField of int * Types.fname
      (** an object-field pointer ⟨o, 𝕆ₖ⟩.f; [int] is the object id; arrays
          use the ["*"] field *)
  | NStatic of Types.cname * Types.fname  (** a static field *)

type t

val create : unit -> t

(** [obj_id g o] interns an abstract object. *)
val obj_id : t -> obj -> int

(** [obj g id] recovers an interned object. *)
val obj : t -> int -> obj

(** [n_objs g] is the number of distinct abstract objects. *)
val n_objs : t -> int

(** [node_id g n] interns a PAG node. *)
val node_id : t -> node -> int

(** [node g id] recovers an interned node. *)
val node : t -> int -> node

(** [n_nodes g] is the number of pointer nodes (the paper's #Pointer). *)
val n_nodes : t -> int

(** [n_edges g] is the number of copy edges (the paper's #Edge). *)
val n_edges : t -> int

(** [pts g n] is the current points-to set of node [n] (do not mutate). *)
val pts : t -> int -> O2_util.Bitset.t

(** [add_obj g n o] adds object [o] to [pts n], scheduling propagation. *)
val add_obj : t -> int -> int -> unit

(** [add_copy g ~src ~dst] adds a subset edge [pts src ⊆ pts dst];
    idempotent; propagates the current contents of [src]. *)
val add_copy : t -> src:int -> dst:int -> unit

(** [add_watcher g n f] registers [f] to run on every object in [pts n],
    now and in the future. Watchers may add edges, objects and watchers. *)
val add_watcher : t -> int -> (int -> unit) -> unit

(** [solve ?check g] drains the worklist to fixpoint. Reentrant: may be
    called again after adding more constraints. [check] (if given) runs
    once per worklist pop with the cumulative iteration count; it may
    raise to abandon the solve — how {!O2_util.Budget} ceilings are
    enforced. *)
val solve : ?check:(int -> unit) -> t -> unit

(** [iter_nodes f g] applies [f id node pts] to every node. *)
val iter_nodes : (int -> node -> O2_util.Bitset.t -> unit) -> t -> unit

(** {2 Instrumentation}

    Always-on plain-integer counters (the increments cost nothing
    measurable); the solver flushes them into its {!O2_util.Metrics} sink
    after the fixpoint. *)

(** [n_worklist_iters g] counts worklist items popped by {!solve}. *)
val n_worklist_iters : t -> int

(** [n_worklist_pushes g] counts non-empty deltas scheduled. *)
val n_worklist_pushes : t -> int

(** [worklist_peak g] is the deepest the worklist ever got. *)
val worklist_peak : t -> int

(** [n_pts_adds g] counts successful points-to fact insertions (the
    difference-propagation work actually performed). *)
val n_pts_adds : t -> int

(** [n_pts_facts g] is Σ|pts(n)| over all nodes — the paper's points-to
    set volume. O(nodes·words), computed on demand. *)
val n_pts_facts : t -> int
