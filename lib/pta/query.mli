(** High-level queries over a solved analysis — the API a downstream client
    (IDE plugin, another analysis) would consume, and what the CLI's [pts]
    command prints.

    Beyond race detection, §3 positions OPA/OSA as a substrate "for any
    analysis that requires analyzing pointers or ownership"; this module is
    that entry point. *)

open O2_ir

(** A resolved abstract object, human-readable. *)
type obj_info = {
  oi_id : int;
  oi_class : Types.cname;
  oi_site : int;  (** allocation statement id; -1 synthetic *)
  oi_pos : Types.pos;  (** allocation site position *)
  oi_origin : string;  (** rendered heap context *)
}

(** [points_to a ~cls ~meth ~var] is the points-to set of local [var] of
    [cls.meth], unioned over every context the method was analyzed under. *)
val points_to :
  Solver.result -> cls:Types.cname -> meth:Types.mname -> var:Types.vname -> obj_info list

(** [may_alias a (c1,m1,v1) (c2,m2,v2)] is true iff the two locals may point
    to a common abstract object (in any context combination). *)
val may_alias :
  Solver.result ->
  Types.cname * Types.mname * Types.vname ->
  Types.cname * Types.mname * Types.vname ->
  bool

(** [objects_of_class a cls] lists all abstract objects of class [cls]. *)
val objects_of_class : Solver.result -> Types.cname -> obj_info list

(** [call_graph_edges a] lists resolved call edges as
    [(caller "C.m", callee "D.n", call-site sid)], deduplicated — the
    origin-sensitive call graph of Figure 2(b), flattened. *)
val call_graph_edges : Solver.result -> (string * string * int) list

(** [reachable_methods a] lists "C.m" names of analyzed methods. *)
val reachable_methods : Solver.result -> string list

val pp_obj_info : Format.formatter -> obj_info -> unit
