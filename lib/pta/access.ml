open O2_ir

type target =
  | Tfield of int * Types.fname
  | Tstatic of Types.cname * Types.fname

let compare_target = compare
let equal_target a b = a = b

let pp_target a ppf = function
  | Tfield (oid, f) ->
      let o = Pag.obj (a.Solver.pag) oid in
      if f = "*" then
        Format.fprintf ppf "%s@%d[*]" o.Pag.ob_class o.Pag.ob_site
      else Format.fprintf ppf "%s@%d.%s" o.Pag.ob_class o.Pag.ob_site f
  | Tstatic (c, f) -> Format.fprintf ppf "%s::%s" c f

let base_targets a m ctx base field =
  O2_util.Bitset.fold
    (fun oid acc -> Tfield (oid, field) :: acc)
    (Solver.pts_var a m ctx base)
    []

let of_stmt a m ctx (s : Ast.stmt) =
  match s.Ast.sk with
  | Ast.FieldWrite (x, f, _) -> Some (base_targets a m ctx x f, true)
  | Ast.FieldRead (_, y, f) -> Some (base_targets a m ctx y f, false)
  | Ast.ArrayWrite (x, _) -> Some (base_targets a m ctx x "*", true)
  | Ast.ArrayRead (_, y) -> Some (base_targets a m ctx y "*", false)
  | Ast.StaticWrite (c, f, _) -> Some ([ Tstatic (c, f) ], true)
  | Ast.StaticRead (_, c, f) -> Some ([ Tstatic (c, f) ], false)
  | _ -> None
