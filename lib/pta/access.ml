open O2_ir

type target =
  | Tfield of int * Types.fname
  | Tstatic of Types.cname * Types.fname

let compare_target = compare
let equal_target a b = a = b

let pp_target a ppf = function
  | Tfield (oid, f) ->
      let o = Pag.obj (a.Solver.pag) oid in
      if f = "*" then
        Format.fprintf ppf "%s@%d[*]" o.Pag.ob_class o.Pag.ob_site
      else Format.fprintf ppf "%s@%d.%s" o.Pag.ob_class o.Pag.ob_site f
  | Tstatic (c, f) -> Format.fprintf ppf "%s::%s" c f

(* tids are the flat-IR encoding of targets (static slots first, then the
   object × field plane); the codec lives here because [target] does. The
   encoding is injective, so int equality on tids is structural equality
   of targets — the flat walkers rely on this for region dedup. *)

let of_tid fl tid =
  if Flat.tid_is_static fl tid then
    Tstatic
      ( Flat.class_name fl (Flat.static_cid fl tid),
        Flat.field_name fl (Flat.static_fid fl tid) )
  else Tfield (Flat.tid_oid fl tid, Flat.field_name fl (Flat.tid_fid fl tid))

let tid_of fl = function
  | Tfield (oid, f) -> (
      match Flat.field_id fl f with
      | Some fid -> Some (Flat.tid_field fl ~oid ~fid)
      | None -> None)
  | Tstatic (c, f) -> (
      match Flat.static_slot fl c f with
      | Some slot -> Some (Flat.tid_static fl slot)
      | None -> None)

let base_targets a m ctx base field =
  O2_util.Bitset.fold
    (fun oid acc -> Tfield (oid, field) :: acc)
    (Solver.pts_var a m ctx base)
    []

let of_stmt a m ctx (s : Ast.stmt) =
  match s.Ast.sk with
  | Ast.FieldWrite (x, f, _) -> Some (base_targets a m ctx x f, true)
  | Ast.FieldRead (_, y, f) -> Some (base_targets a m ctx y f, false)
  | Ast.ArrayWrite (x, _) -> Some (base_targets a m ctx x "*", true)
  | Ast.ArrayRead (_, y) -> Some (base_targets a m ctx y "*", false)
  | Ast.StaticWrite (c, f, _) -> Some ([ Tstatic (c, f) ], true)
  | Ast.StaticRead (_, c, f) -> Some ([ Tstatic (c, f) ], false)
  | _ -> None
