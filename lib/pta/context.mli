(** Context abstractions for the pointer-analysis framework.

    The paper's key move is replacing call-string ([k]-CFA) and receiver
    object ([k]-obj) contexts by {e origins} (§3.2). This module defines one
    context type covering all four abstractions so the solver, OSA, SHB and
    race engine are policy-generic, which is what lets the benchmarks sweep
    the whole Table 5/8 policy axis. *)

(** An origin (§3.1): an entry point plus identity-determining structure.
    Attributes (the data pointers passed at the allocation/entry) are
    recorded by the solver per origin; identity is structural:
    allocation site, [k=1] wrapper call site, loop-doubling copy index and
    the (k−1)-truncated parent chain for k-origin. *)
type origin = {
  og_site : int;  (** allocation sid of the thread/handler object; -1 = main *)
  og_wrapper : int;
      (** sid of the call site through which the allocating method was
          entered — the paper's "wrapper functions" k=1 extension; -1 when
          the allocation is in an entry method *)
  og_copy : int;  (** loop-doubling copy index (0 or 1) *)
  og_class : string;  (** thread/handler class; ["<main>"] for the root *)
  og_parent : int list;  (** parent origin ids, most recent first (k−1) *)
}

val main_origin : origin
val pp_origin : Format.formatter -> origin -> unit

(** A calling context. The int payloads are call-site sids ([Ccall]),
    allocation-site object ids ([Cobj]) or origin ids ([Corigin]), most
    recent first. *)
type t =
  | Cempty
  | Ccall of int list
  | Cobj of int list
  | Corigin of int list

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Analysis policies of Table 5: [Insensitive] ≙ 0-ctx (D4's engine),
    [Kcfa k], [Kobj k], and [Korigin k] ≙ OPA (k = 1 in the paper's main
    configuration). *)
type policy = Insensitive | Kcfa of int | Kobj of int | Korigin of int

val policy_name : policy -> string

(** [validate_policy p] rejects k-limited policies with [k < 1] — they
    would silently truncate every context to the empty chain and
    masquerade as 0-ctx.

    @raise Invalid_argument on [Kcfa k], [Kobj k] or [Korigin k] with
    [k < 1]. *)
val validate_policy : policy -> unit

(** [policy_of_string s] parses every CLI spelling: ["0-ctx"], ["0ctx"],
    ["insensitive"], ["o2"], ["origin"], ["1-origin"], [k-cfa], [k-obj],
    [k-origin] (case-insensitive). Non-positive [k] and unknown spellings
    yield [Error msg]. *)
val policy_of_string : string -> (policy, string) result

(** [entry policy] is the context of the program's [main]. For [Korigin] the
    chain contains the main origin's id 0.

    @raise Invalid_argument on an invalid policy (see {!validate_policy}). *)
val entry : policy -> t

(** [truncate k xs] keeps the first [k] elements. *)
val truncate : int -> int list -> int list

(** [push_call policy ~ctx ~site] is the callee context for a non-origin
    call with no receiver-object information (static calls): k-CFA pushes
    the call site; 0-ctx stays empty; k-obj and k-origin inherit the caller
    context (Table 2 rule ❼ for origins). *)
val push_call_static : policy -> ctx:t -> site:int -> t

(** [push_call policy ~ctx ~site ~recv_site ~recv_hctx] is the callee
    context for a virtual, non-origin-entry call: k-obj builds the receiver
    chain from the receiver's allocation site and heap context. *)
val push_call : policy -> ctx:t -> site:int -> recv_site:int -> recv_hctx:t -> t
