(** Origin-scoped traversal of the context-sensitive call graph.

    Walks the statements executed by one origin (a {!Solver.spawn}): starts
    at the entry method instance and follows resolved call edges — including
    [init] calls, whose body {e executes} in the calling origin even though
    OPA {e analyzes} it in the new origin (§3.2) — but stops at
    [start]/[post] boundaries, which begin other origins. Each method
    instance is visited at most once per origin, making the scan linear
    (the property §3.3 claims for OSA). *)

open O2_ir

(** [iter_origin a sp f] calls [f m ctx s] for every statement [s] of every
    method instance ⟨m, ctx⟩ reachable within origin [sp], in program
    order. *)
val iter_origin :
  Solver.result ->
  Solver.spawn ->
  (Program.meth -> Context.t -> Ast.stmt -> unit) ->
  unit
