(** Abstract memory-access targets.

    A target identifies the abstract location a statement reads or writes:
    an ⟨object, field⟩ pair (arrays use the ["*"] field, §3.2) or a static
    field encoded by its class-qualified signature (§3.3). Shared between
    origin-sharing analysis, the SHB graph and the race engine. *)

open O2_ir

type target =
  | Tfield of int * Types.fname  (** field of interned abstract object *)
  | Tstatic of Types.cname * Types.fname

val compare_target : target -> target -> int
val equal_target : target -> target -> bool

(** [pp_target a ppf t] prints e.g. [Data@12.val] or [Settings::verbose]. *)
val pp_target : Solver.result -> Format.formatter -> target -> unit

(** [of_stmt a m ctx s] is the access performed by statement [s] of method
    instance ⟨m, ctx⟩: the targets (one per abstract object the base may
    point to) and whether it is a write. [None] for non-access statements. *)
val of_stmt :
  Solver.result ->
  Program.meth ->
  Context.t ->
  Ast.stmt ->
  (target list * bool) option
