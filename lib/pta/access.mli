(** Abstract memory-access targets.

    A target identifies the abstract location a statement reads or writes:
    an ⟨object, field⟩ pair (arrays use the ["*"] field, §3.2) or a static
    field encoded by its class-qualified signature (§3.3). Shared between
    origin-sharing analysis, the SHB graph and the race engine. *)

open O2_ir

type target =
  | Tfield of int * Types.fname  (** field of interned abstract object *)
  | Tstatic of Types.cname * Types.fname

val compare_target : target -> target -> int
val equal_target : target -> target -> bool

(** [pp_target a ppf t] prints e.g. [Data@12.val] or [Settings::verbose]. *)
val pp_target : Solver.result -> Format.formatter -> target -> unit

(** [of_tid fl tid] decodes a flat-IR location id (see {!Flat.tid_field})
    back to the structural target. Total on tids the flat pipeline emits. *)
val of_tid : Flat.t -> int -> target

(** [tid_of fl t] encodes a structural target as a flat-IR location id;
    [None] only if [t] mentions a field or static the lowered program never
    declares (impossible for targets produced by either pipeline). The
    encoding is injective: [tid_of fl a = tid_of fl b] iff [a = b]. *)
val tid_of : Flat.t -> target -> int option

(** [of_stmt a m ctx s] is the access performed by statement [s] of method
    instance ⟨m, ctx⟩: the targets (one per abstract object the base may
    point to) and whether it is a write. [None] for non-access statements. *)
val of_stmt :
  Solver.result ->
  Program.meth ->
  Context.t ->
  Ast.stmt ->
  (target list * bool) option
