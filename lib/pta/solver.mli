(** The on-the-fly-call-graph pointer-analysis solver (Table 2).

    One worklist solver covers all four policies ({!Context.policy}); the
    origin policy implements the paper's OPA rules:

    - ❶–❻ intra-origin constraints: allocations, copies, field and array
      loads/stores under the current context;
    - ❼ non-origin virtual calls keep the {e caller's} context regardless of
      the receiver's origin;
    - ❽ origin allocations (a [new] of a thread/handler class) switch to a
      fresh origin: the object, its [init] call and the constructor
      arguments' formals live in the new origin (Figure 3's context switch),
      with the [k=1] wrapper-call-site extension and loop doubling;
    - ❾ origin entry points ([start]/[post]) run the entry method in the
      origin attached to the receiver object at its allocation.

    Besides points-to sets, the solver records everything the downstream
    analyses need: the context-sensitive call graph, the {e spawns} (static
    thread-start / event-post instances — the race engine's origins, under
    every policy) and the join sites. *)

open O2_ir

(** A static origin instance: [main], a [start] of a thread object or a
    [post] to a handler object. *)
type spawn = {
  sp_id : int;  (** dense index; 0 is [main] *)
  sp_site : int;  (** the start/post sid; -1 for main *)
  sp_entry : Program.meth;  (** entry method (run/handle/… or main) *)
  sp_ectx : Context.t;  (** context the entry body is analyzed under *)
  sp_obj : int;  (** receiver object id; -1 for main *)
  sp_kind : [ `Main | `Thread | `Event ];
  sp_in_loop : bool;
      (** the spawn site is in a loop: the origin may run in parallel with
          itself *)
  sp_attr_nodes : int list;
      (** PAG nodes of the origin attributes: the receiver plus the actuals
          of the entry call (Table 2 ❾) and of the origin allocation (❽) *)
}

type join = {
  jn_site : int;
  jn_meth : Program.meth;
  jn_ctx : Context.t;
  jn_var : Types.vname;
}

type t

exception Analysis_error of string

(** [analyze ?policy ?metrics ?budget p] runs the whole-program analysis
    from [main]. Default policy is [Korigin 1] (the paper's O2
    configuration).

    When [metrics] is given it is used as the observability sink: the solve
    is wrapped in a ["pta.solve"] span and the Table 6 counters
    ([pta.pointers], [pta.objects], [pta.edges], [pta.worklist_iters],
    [pta.pts_facts], [pta.origins], …) are recorded into it; otherwise a
    private sink (readable via {!stats}) collects the same numbers.

    When [budget] is given, the worklist loop checks it on every pop and
    lets {!O2_util.Budget.Exhausted} escape when the wall-clock deadline
    or the worklist-step ceiling is passed — callers (the batch driver)
    turn that into a structured timeout entry.

    @raise Invalid_argument on a k-limited policy with [k < 1]
    (see {!Context.validate_policy}).
    @raise O2_util.Budget.Exhausted when [budget] runs out mid-solve. *)
val analyze :
  ?policy:Context.policy ->
  ?metrics:O2_util.Metrics.t ->
  ?budget:O2_util.Budget.t ->
  Program.t ->
  t

val program : t -> Program.t
val policy : t -> Context.policy
val pag : t -> Pag.t

(** [pts_var a m ctx v] is the points-to set of local [v] of method [m]
    under context [ctx] (empty if never seen). *)
val pts_var : t -> Program.meth -> Context.t -> Types.vname -> O2_util.Bitset.t

(** [callees a ~site ~ctx] resolves a call site analyzed under [ctx] to its
    callee instances; includes virtual, static and [init] calls, not
    spawns. *)
val callees : t -> site:int -> ctx:Context.t -> (Program.meth * Context.t) list

(** [spawns a] lists all origin instances, [main] first. *)
val spawns : t -> spawn array

(** [joins a] lists join sites; targets resolve via [pts_var]. *)
val joins : t -> join list

(** [origins a] is the origin registry (origin policy only; other policies
    see just the main origin). Indexed by origin id. *)
val origins : t -> Context.origin array

(** [origin_attrs a og] is the points-to closure of origin [og]'s attribute
    pointers — "the data pointers" of §3.1, for reports and OSA output. *)
val origin_attrs : t -> int -> int list

(** [origin_of_spawn a sp] is the canonical origin identity of a spawn.
    Under the origin policy two [post] sites delivering to the same handler
    object are the {e same} origin (rule ❾ attaches the origin at the
    allocation), so OSA must not count them as two accessors; under other
    policies each spawn is its own origin. *)
val origin_of_spawn : t -> spawn -> int

(** [reached a] lists analyzed method instances. *)
val reached : t -> (Program.meth * Context.t) list

(** [is_reached a m] is true iff [m] is analyzed under some context. *)
val is_reached : t -> Program.meth -> bool

(** [n_origins a] is the paper's #O: origins excluding main (origin policy),
    or the number of non-main spawns otherwise. *)
val n_origins : t -> int

(** [stats a] is the metrics sink the run recorded into — the one passed to
    {!analyze}, or the private one created when none was. *)
val stats : t -> O2_util.Metrics.t
