(** The on-the-fly-call-graph pointer-analysis solver (Table 2).

    One solver covers all four policies ({!Context.policy}); the origin
    policy implements the paper's OPA rules:

    - ❶–❻ intra-origin constraints: allocations, copies, field and array
      loads/stores under the current context;
    - ❼ non-origin virtual calls keep the {e caller's} context regardless of
      the receiver's origin;
    - ❽ origin allocations (a [new] of a thread/handler class) switch to a
      fresh origin: the object, its [init] call and the constructor
      arguments' formals live in the new origin (Figure 3's context switch),
      with the [k=1] wrapper-call-site extension and loop doubling;
    - ❾ origin entry points ([start]/[post]) run the entry method in the
      origin attached to the receiver object at its allocation.

    {2 The round engine}

    The solve alternates {e describe} and {e apply} phases until quiescent.
    Describe renders each newly reached method instance into a batch of
    constraint ops against frozen tables — pure, so a round's bodies are
    described concurrently on a domain pool, with node-key hashing off the
    serial path. Apply replays the batches serially in task order: all
    interning and graph mutation happen at this barrier, in an order
    independent of [jobs], which is why every result — internal ids
    included — is byte-identical for any shard count. Points-to deltas then
    propagate across the origin-sharded worklists ({!Pag.propagate}),
    watcher deliveries flush at the barrier, and newly reached bodies seed
    the next round. Copy cycles are collapsed ({!Pag.collapse_sccs}) as the
    graph grows.

    Besides points-to sets, the solver records everything the downstream
    analyses need: the context-sensitive call graph, the {e spawns} (static
    thread-start / event-post instances — the race engine's origins, under
    every policy) and the join sites. *)

open O2_ir

(** A static origin instance: [main], a [start] of a thread object or a
    [post] to a handler object. *)
type spawn = {
  sp_id : int;  (** dense index; 0 is [main] *)
  sp_site : int;  (** the start/post sid; -1 for main *)
  sp_entry : Program.meth;  (** entry method (run/handle/… or main) *)
  sp_ectx : Context.t;  (** context the entry body is analyzed under *)
  sp_obj : int;  (** receiver object id; -1 for main *)
  sp_kind : [ `Main | `Thread | `Event ];
  sp_in_loop : bool;
      (** the spawn site is in a loop: the origin may run in parallel with
          itself *)
  sp_attr_nodes : int list;
      (** PAG nodes of the origin attributes: the receiver plus the actuals
          of the entry call (Table 2 ❾) and of the origin allocation (❽) *)
}

type join = {
  jn_site : int;
  jn_meth : Program.meth;
  jn_ctx : Context.t;
  jn_var : Types.vname;
}

(** The solver's internal fact tables (reachability, call edges, the origin
    registry). Query them through the functions below. *)
type tables

(** The instance call graph: the solved context-sensitive call graph
    re-keyed on dense ints, built once per solve. Each reachable
    (method, context) instance carries an instance id ([iid]); the arrays
    give the flat method id, the solved points-to set of every variable
    slot, and (via [ic_callees], keyed [iid * ic_nsids + sid]) the callee
    instances of every call site, in {!callees} order. The flat SHB/OSA
    walkers traverse this with array probes and one int-keyed lookup per
    call site — no structural context hashing past the solve. *)
type icg = {
  ic_n : int;  (** instance count *)
  ic_mid : int array;  (** iid -> flat method id *)
  ic_pts : O2_util.Bitset.t array array;
      (** iid -> slot -> solved points-to (shared read-only empty set for
          slots the solve never interned) *)
  ic_callees : (int, int array) Hashtbl.t;
      (** [iid * ic_nsids + call sid] -> callee iids *)
  ic_entry : int array;  (** spawn id -> entry instance *)
  ic_nsids : int;  (** exclusive sid bound used by the packing *)
}

(** What a solve produces. The commonly consumed facts are plain fields;
    table-backed queries ({!pts_var}, {!callees}, {!origins}, …) take the
    whole record. *)
type result = {
  program : Program.t;
  flat : Flat.t;  (** the dense lowering the describe phase ran over *)
  policy : Context.policy;
  jobs : int;  (** shard / domain count the solve ran with *)
  pag : Pag.t;  (** the solved pointer-assignment graph *)
  spawns : spawn array;  (** all origin instances, [main] first *)
  joins : join list;  (** join sites; targets resolve via {!pts_var} *)
  stats : O2_util.Metrics.t;
      (** the metrics sink the run recorded into — the one passed to
          {!analyze}, or a private one created when none was *)
  tables : tables;
  icg : icg;  (** the dense instance call graph (["pta.icg"] span) *)
}

(** [analyze ?policy ?jobs ?metrics ?budget p] runs the whole-program
    analysis from [main]. Default policy is [Korigin 1] (the paper's O2
    configuration).

    [jobs] is the parallelism degree: the PAG is sharded [jobs] ways by
    origin and describe/propagate phases run on a pool of [jobs] domains
    ([1] = fully serial, the default). The result is byte-identical for
    every [jobs] value.

    When [metrics] is given it is used as the observability sink: the solve
    is wrapped in a ["pta.solve"] span and the Table 6 counters
    ([pta.pointers], [pta.objects], [pta.edges], [pta.worklist_iters],
    [pta.pts_facts], [pta.origins], …) plus the round-engine counters
    ([pta.rounds], [pta.tasks], [pta.fires], [pta.scc_collapsed]) are
    recorded into it.

    When [budget] is given, the propagation loop checks it on every pop and
    lets {!O2_util.Budget.Exhausted} escape when the wall-clock deadline
    or the worklist-step ceiling is passed — callers (the batch driver)
    turn that into a structured timeout entry. The worker pool is shut down
    on any exit, including exceptions.

    @raise Invalid_argument on a k-limited policy with [k < 1]
    (see {!Context.validate_policy}) or [jobs < 1].
    @raise O2_util.Budget.Exhausted when [budget] runs out mid-solve. *)
val analyze :
  ?policy:Context.policy ->
  ?jobs:int ->
  ?metrics:O2_util.Metrics.t ->
  ?budget:O2_util.Budget.t ->
  Program.t ->
  result

(** [pts_var r m ctx v] is the points-to set of local [v] of method [m]
    under context [ctx] (empty if never seen). *)
val pts_var :
  result -> Program.meth -> Context.t -> Types.vname -> O2_util.Bitset.t

(** [callees r ~site ~ctx] resolves a call site analyzed under [ctx] to its
    callee instances; includes virtual, static and [init] calls, not
    spawns. *)
val callees :
  result -> site:int -> ctx:Context.t -> (Program.meth * Context.t) list

(** [origins r] is the origin registry (origin policy only; other policies
    see just the main origin). Indexed by origin id. *)
val origins : result -> Context.origin array

(** [origin_attrs r og] is the points-to closure of origin [og]'s attribute
    pointers — "the data pointers" of §3.1, for reports and OSA output. *)
val origin_attrs : result -> int -> int list

(** [origin_of_spawn r sp] is the canonical origin identity of a spawn.
    Under the origin policy two [post] sites delivering to the same handler
    object are the {e same} origin (rule ❾ attaches the origin at the
    allocation), so OSA must not count them as two accessors; under other
    policies each spawn is its own origin. *)
val origin_of_spawn : result -> spawn -> int

(** [reached r] lists analyzed method instances. *)
val reached : result -> (Program.meth * Context.t) list

(** [is_reached r m] is true iff [m] is analyzed under some context. *)
val is_reached : result -> Program.meth -> bool

(** [n_origins r] is the paper's #O: origins excluding main (origin policy),
    or the number of non-main spawns otherwise. *)
val n_origins : result -> int

(** [fingerprint r] is the canonical identifier-free dump of all solved
    facts, in {!Oracle.fingerprint}'s format — equal strings iff the two
    analyses agree on every fact. *)
val fingerprint : result -> string
