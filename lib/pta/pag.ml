open O2_ir
open O2_util

type obj = { ob_site : int; ob_class : Types.cname; ob_hctx : Context.t }

type node =
  | NVar of Types.cname * Types.mname * Types.vname * Context.t
  | NRet of Types.cname * Types.mname * Context.t
  | NField of int * Types.fname
  | NStatic of Types.cname * Types.fname

module ObjIntern = Intern.Make (struct
  type t = obj

  let equal = ( = )
  let hash = Hashtbl.hash
end)

module NodeIntern = Intern.Make (struct
  type t = node

  let equal = ( = )
  let hash = Hashtbl.hash
end)

type t = {
  objs : ObjIntern.t;
  nodes : NodeIntern.t;
  mutable pts : Bitset.t array;
  succs : (int, int list ref) Hashtbl.t;
  edge_set : (int * int, unit) Hashtbl.t;
  watchers : (int, (int -> unit) list ref) Hashtbl.t;
  mutable worklist : (int * int list) list;  (* (node, delta objs), LIFO *)
  (* plain-int instrumentation, always on (no allocation, flushed into a
     Metrics sink by the solver at the end of the run) *)
  mutable wl_len : int;
  mutable wl_peak : int;
  mutable n_wl_iters : int;
  mutable n_wl_pushes : int;
  mutable n_pts_adds : int;
}

let create () =
  {
    objs = ObjIntern.create ();
    nodes = NodeIntern.create ();
    pts = [||];
    succs = Hashtbl.create 256;
    edge_set = Hashtbl.create 256;
    watchers = Hashtbl.create 64;
    worklist = [];
    wl_len = 0;
    wl_peak = 0;
    n_wl_iters = 0;
    n_wl_pushes = 0;
    n_pts_adds = 0;
  }

let obj_id g o = ObjIntern.intern g.objs o
let obj g id = ObjIntern.value g.objs id
let n_objs g = ObjIntern.count g.objs

let ensure_pts g id =
  let n = Array.length g.pts in
  if id >= n then begin
    let cap = max 64 (max (id + 1) (n * 2)) in
    let a = Array.init cap (fun i -> if i < n then g.pts.(i) else Bitset.create ()) in
    g.pts <- a
  end

let node_id g n =
  let id = NodeIntern.intern g.nodes n in
  ensure_pts g id;
  id

let node g id = NodeIntern.value g.nodes id
let n_nodes g = NodeIntern.count g.nodes
let n_edges g = Hashtbl.length g.edge_set
let pts g id = g.pts.(id)

let schedule g n delta =
  if delta <> [] then begin
    g.worklist <- (n, delta) :: g.worklist;
    g.n_wl_pushes <- g.n_wl_pushes + 1;
    g.wl_len <- g.wl_len + 1;
    if g.wl_len > g.wl_peak then g.wl_peak <- g.wl_len
  end

let add_obj g n o =
  if Bitset.add g.pts.(n) o then begin
    g.n_pts_adds <- g.n_pts_adds + 1;
    schedule g n [ o ]
  end

let add_copy g ~src ~dst =
  if src <> dst && not (Hashtbl.mem g.edge_set (src, dst)) then begin
    Hashtbl.add g.edge_set (src, dst) ();
    (match Hashtbl.find_opt g.succs src with
    | Some l -> l := dst :: !l
    | None -> Hashtbl.add g.succs src (ref [ dst ]));
    (* propagate current contents of src *)
    let delta =
      Bitset.fold (fun o acc -> if Bitset.add g.pts.(dst) o then o :: acc else acc)
        g.pts.(src) []
    in
    g.n_pts_adds <- g.n_pts_adds + List.length delta;
    schedule g dst delta
  end

let add_watcher g n f =
  (match Hashtbl.find_opt g.watchers n with
  | Some l -> l := f :: !l
  | None -> Hashtbl.add g.watchers n (ref [ f ]));
  Bitset.iter f g.pts.(n)

let solve ?check g =
  let check = match check with Some f -> f | None -> fun _ -> () in
  let rec loop () =
    match g.worklist with
    | [] -> ()
    | (n, delta) :: rest ->
        g.worklist <- rest;
        g.wl_len <- g.wl_len - 1;
        g.n_wl_iters <- g.n_wl_iters + 1;
        check g.n_wl_iters;
        (* copy propagation *)
        (match Hashtbl.find_opt g.succs n with
        | Some l ->
            List.iter
              (fun dst ->
                let fresh =
                  List.filter (fun o -> Bitset.add g.pts.(dst) o) delta
                in
                g.n_pts_adds <- g.n_pts_adds + List.length fresh;
                schedule g dst fresh)
              !l
        | None -> ());
        (* watchers *)
        (match Hashtbl.find_opt g.watchers n with
        | Some l ->
            let fs = !l in
            List.iter (fun o -> List.iter (fun f -> f o) fs) delta
        | None -> ());
        loop ()
  in
  loop ()

let iter_nodes f g = NodeIntern.iter (fun id n -> f id n g.pts.(id)) g.nodes

let n_worklist_iters g = g.n_wl_iters
let n_worklist_pushes g = g.n_wl_pushes
let worklist_peak g = g.wl_peak
let n_pts_adds g = g.n_pts_adds

let n_pts_facts g =
  let total = ref 0 in
  NodeIntern.iter (fun id _ -> total := !total + Bitset.cardinal g.pts.(id)) g.nodes;
  !total
