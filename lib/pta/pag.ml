open O2_ir
open O2_util

type obj = { ob_site : int; ob_class : Types.cname; ob_hctx : Context.t }

type node =
  | NVar of Types.cname * Types.mname * Types.vname * Context.t
  | NRet of Types.cname * Types.mname * Context.t
  | NField of int * Types.fname
  | NStatic of Types.cname * Types.fname

module ObjIntern = Intern.Make (struct
  type t = obj

  let equal = ( = )
  let hash = Hashtbl.hash
end)

module NodeIntern = Intern.Make (struct
  type t = node

  let equal = ( = )
  let hash = Hashtbl.hash
end)

(* Copy edges are deduplicated on the packed key [src lsl 31 lor dst]: a
   single-int key makes the per-probe cost one multiply-hash with no tuple
   allocation — [add_copy] runs once per watcher delivery, the solve's
   hottest table path. Node ids stay far below the 2^31 packing bound in
   practice; the guard makes an overflow fail loudly instead of silently
   merging unrelated edges. *)
module EdgeTbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash x = (x * 0x9e3779b1) land max_int
end)

let edge_key src dst =
  if (src lor dst) lsr 31 <> 0 then
    invalid_arg "Pag.edge_key: node id exceeds the 31-bit packing bound";
  (src lsl 31) lor dst

(* Difference-propagation invariant: [pts.(n)] holds the confirmed
   points-to set of [n]; [delta.(n)] holds pending {e candidates} (they may
   already be in [pts] — deduplication happens at the pop via
   [Bitset.take_fresh]). [pending.(n)] accumulates fresh objects of watched
   nodes between propagation and [flush_fires].

   Concurrency contract (the origin-sharded parallel solve): node [n] is
   owned by shard [shard.(n)]. During a parallel drain a shard mutates
   [pts]/[delta]/[pending]/[on_wl]/[wl] only for nodes it owns; deltas for
   foreign nodes go into its outbox row and are merged serially at the
   barrier. All structural mutation (interning, edges, watchers, union-find
   merges) happens in serial phases only. *)
type t = {
  objs : ObjIntern.t;
  nodes : NodeIntern.t;
  n_shards : int;
  shard_of : node -> int;
  dummy : Bitset.t;
      (* shared sentinel filling the set arrays: a slot holds [dummy] until
         its first write ([materialize]), so growing the arrays allocates no
         per-slot sets. Never mutated; reads of an untouched slot see the
         empty set. *)
  mutable pts : Bitset.t array;
  mutable delta : Bitset.t array;
  mutable pending : Bitset.t array;
  mutable succs : int list array;
  mutable watchers : (int -> unit) list array;  (* newest first *)
  mutable watched : bool array;
  mutable shard : int array;
  mutable uf : int array;  (* union-find parents; uf.(i) = i means root *)
  mutable on_wl : bool array;
  edge_set : unit EdgeTbl.t;
  wl : int list array;  (* per-shard LIFO worklists *)
  outbox : (int * Bitset.t) list array array;  (* [src_shard].(dst_shard) *)
  fire_wl : int list array;
      (* per-shard: watched nodes whose [pending] went nonempty since the
         last flush — flush visits only these instead of scanning every
         node *)
  scratch : Bitset.t array;
      (* per-shard scratch for [Bitset.take_fresh_into]: the drain pop
         allocates nothing *)
  (* plain-int instrumentation, always on (no allocation, flushed into a
     Metrics sink by the solver at the end of the run). The scheduling
     counters live in per-shard slots: during a parallel drain a shard
     schedules and pops only nodes it owns, so each slot is written by
     exactly one domain, and the accessor fold at the end is exact —
     unlike a shared scalar, which would race. *)
  wl_n : int array;  (* per-shard current worklist lengths *)
  wl_peak : int array;  (* per-shard peak worklist lengths *)
  wl_pushes : int array;  (* per-shard scheduling counts *)
  mutable n_wl_iters : int;
  mutable n_pts_adds : int;
  mutable n_fires : int;
  mutable n_collapsed : int;
}

let create ?(shards = 1) ?(shard_of = fun _ -> 0) () =
  let shards = max 1 shards in
  {
    objs = ObjIntern.create ();
    nodes = NodeIntern.create ();
    n_shards = shards;
    shard_of;
    dummy = Bitset.create ();
    pts = [||];
    delta = [||];
    pending = [||];
    succs = [||];
    watchers = [||];
    watched = [||];
    shard = [||];
    uf = [||];
    on_wl = [||];
    edge_set = EdgeTbl.create 256;
    wl = Array.make shards [];
    outbox = Array.init shards (fun _ -> Array.make shards []);
    fire_wl = Array.make shards [];
    scratch = Array.init shards (fun _ -> Bitset.create ());
    wl_n = Array.make shards 0;
    wl_peak = Array.make shards 0;
    wl_pushes = Array.make shards 0;
    n_wl_iters = 0;
    n_pts_adds = 0;
    n_fires = 0;
    n_collapsed = 0;
  }

let obj_hash = ObjIntern.hash_key
let node_hash = NodeIntern.hash_key
let obj_id_hashed g ~hash o = ObjIntern.intern_hashed g.objs ~hash o
let obj_id g o = ObjIntern.intern g.objs o
let find_obj_hashed g ~hash o = ObjIntern.find_hashed g.objs ~hash o
let obj g id = ObjIntern.value g.objs id
let n_objs g = ObjIntern.count g.objs

let grow g n =
  let cap = Array.length g.pts in
  if n > cap then begin
      let cap' = max 256 (max n (cap * 4)) in
    (* blit-extend: a closure call per slot across nine parallel arrays made
       growth a measurable slice of small solves *)
    let ext fill a =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    g.pts <- ext g.dummy g.pts;
    g.delta <- ext g.dummy g.delta;
    g.pending <- ext g.dummy g.pending;
    g.succs <- ext [] g.succs;
    g.watchers <- ext [] g.watchers;
    g.watched <- ext false g.watched;
    g.shard <- ext 0 g.shard;
    let uf' = Array.make cap' 0 in
    Array.blit g.uf 0 uf' 0 cap;
    for i = cap to cap' - 1 do
      uf'.(i) <- i
    done;
    g.uf <- uf';
    g.on_wl <- ext false g.on_wl
  end

let node_id_hashed g ~hash n =
  let before = NodeIntern.count g.nodes in
  let id = NodeIntern.intern_hashed g.nodes ~hash n in
  if id >= before then begin
    grow g (id + 1);
    g.shard.(id) <- g.shard_of n mod g.n_shards
  end;
  id

let node_id g n = node_id_hashed g ~hash:(node_hash n) n
let find_node_hashed g ~hash n = NodeIntern.find_hashed g.nodes ~hash n
let node g id = NodeIntern.value g.nodes id
let n_nodes g = NodeIntern.count g.nodes
let n_edges g = EdgeTbl.length g.edge_set

(* Path-halving find. Entries only ever move toward their root, and roots
   are changed exclusively in serial phases, so the benign races of
   concurrent path compression during parallel drains still always read a
   valid ancestor. *)
let rec find g i =
  let p = g.uf.(i) in
  if p = i then i
  else begin
    let gp = g.uf.(p) in
    if gp <> p then g.uf.(i) <- gp;
    find g (if gp <> p then gp else p)
  end

(* Callers of [pts]/[delta] must treat the result as read-only: an
   untouched slot returns the shared [dummy]. All internal writes go
   through [materialize]. *)
let pts g id = g.pts.(find g id)
let delta g id = g.delta.(find g id)

let materialize g (a : Bitset.t array) n =
  let s = a.(n) in
  if s == g.dummy then begin
    let s' = Bitset.create () in
    a.(n) <- s';
    s'
  end
  else s

let schedule g n =
  if not g.on_wl.(n) then begin
    g.on_wl.(n) <- true;
    let sh = g.shard.(n) in
    g.wl.(sh) <- n :: g.wl.(sh);
    g.wl_pushes.(sh) <- g.wl_pushes.(sh) + 1;
    let len = g.wl_n.(sh) + 1 in
    g.wl_n.(sh) <- len;
    if len > g.wl_peak.(sh) then g.wl_peak.(sh) <- len
  end

(* Total pending work, summed from the per-shard lengths — accurate at any
   serial point (shard boundaries included: each length is maintained by
   its owning domain). *)
let wl_total g = Array.fold_left ( + ) 0 g.wl_n

let add_obj g n o =
  let n = find g n in
  if not (Bitset.mem g.pts.(n) o) then
    if Bitset.add (materialize g g.delta n) o then schedule g n

let add_copy g ~src ~dst =
  let src = find g src and dst = find g dst in
  if src <> dst && not (EdgeTbl.mem g.edge_set (edge_key src dst)) then begin
    EdgeTbl.add g.edge_set (edge_key src dst) ();
    g.succs.(src) <- dst :: g.succs.(src);
    if Bitset.union_into ~into:(materialize g g.delta dst) g.pts.(src) then
      schedule g dst
  end

let add_watcher g n f =
  let n = find g n in
  g.watchers.(n) <- f :: g.watchers.(n);
  g.watched.(n) <- true;
  Bitset.iter f g.pts.(n)

(* -- propagation -------------------------------------------------------- *)

(* Drain the worklist of [sh] to local quiescence. Fresh objects flow to
   owned successors directly and to foreign successors via the outbox. *)
let drain g check sh =
  let iters = ref 0 and adds = ref 0 in
  let base = g.n_wl_iters in
  let scratch = g.scratch.(sh) in
  let rec loop () =
    match g.wl.(sh) with
    | [] -> ()
    | n :: rest ->
        g.wl.(sh) <- rest;
        g.on_wl.(n) <- false;
        g.wl_n.(sh) <- g.wl_n.(sh) - 1;
        incr iters;
        (match check with Some f -> f (base + !iters) | None -> ());
        let lo, hi =
          Bitset.take_fresh_span ~scratch ~pts:(materialize g g.pts n)
            ~delta:g.delta.(n)
        in
        if hi > 0 then begin
          adds := !adds + Bitset.cardinal_span scratch ~lo ~hi;
          List.iter
            (fun dst0 ->
              let dst = find g dst0 in
              if dst <> n then begin
                let dsh = g.shard.(dst) in
                if dsh = sh then begin
                  Bitset.union_span_into ~into:(materialize g g.delta dst)
                    scratch ~lo ~hi;
                  schedule g dst
                end
                else
                  (* the scratch set is recycled next pop: cross-shard
                     deltas get their own copy for the barrier merge *)
                  g.outbox.(sh).(dsh) <-
                    (dst, Bitset.copy_span scratch ~lo ~hi)
                    :: g.outbox.(sh).(dsh)
              end)
            g.succs.(n);
          if g.watched.(n) then begin
            if Bitset.is_empty g.pending.(n) then
              g.fire_wl.(sh) <- n :: g.fire_wl.(sh);
            Bitset.union_span_into ~into:(materialize g g.pending n) scratch
              ~lo ~hi
          end
        end;
        loop ()
  in
  loop ();
  (!iters, !adds)

(* One parallel propagation phase: alternate concurrent shard drains with
   serial outbox merges until every worklist is empty. With one shard (or no
   pool) this degenerates to the plain serial worklist loop. *)
let propagate ?check ?pool g =
  let shards = g.n_shards in
  let iters = Array.make shards 0 and adds = Array.make shards 0 in
  let run_shards f =
    (* re-evaluated every phase: barrier merges reschedule work, so later
       phases of the same propagate call still go parallel when the merged
       worklists are deep enough *)
    match pool with
    | Some p when Pool.size p > 1 && wl_total g >= 64 ->
        (* the pool may be narrower than the shard count (workers are
           clamped to the hardware): workers claim whole shards through one
           atomic cursor, so each shard's state is still touched by exactly
           one domain *)
        let cursor = Atomic.make 0 in
        Pool.run p (fun _ ->
            let rec work () =
              let sh = Atomic.fetch_and_add cursor 1 in
              if sh < shards then begin
                f sh;
                work ()
              end
            in
            work ())
    | _ ->
        for sh = 0 to shards - 1 do
          f sh
        done
  in
  let continue_ = ref (Array.exists (fun l -> l <> []) g.wl) in
  while !continue_ do
    run_shards (fun sh ->
        let it, ad = drain g check sh in
        iters.(sh) <- iters.(sh) + it;
        adds.(sh) <- adds.(sh) + ad);
    (* barrier: merge cross-shard deltas, reschedule their owners *)
    let any = ref false in
    for src = 0 to shards - 1 do
      for dsh = 0 to shards - 1 do
        match g.outbox.(src).(dsh) with
        | [] -> ()
        | entries ->
            g.outbox.(src).(dsh) <- [];
            List.iter
              (fun (dst, fresh) ->
                if Bitset.union_into ~into:(materialize g g.delta dst) fresh
                then begin
                  schedule g dst;
                  any := true
                end)
              entries
      done
    done;
    g.n_wl_iters <- g.n_wl_iters + Array.fold_left ( + ) 0 iters;
    g.n_pts_adds <- g.n_pts_adds + Array.fold_left ( + ) 0 adds;
    Array.fill iters 0 shards 0;
    Array.fill adds 0 shards 0;
    continue_ := !any
  done

(* Fire accumulated deltas of watched nodes, in deterministic order: nodes
   ascending, objects ascending, watchers in registration order. Watcher
   callbacks may mutate the graph (register watchers, add edges/objects);
   lists are snapshotted first and new work lands in delta/pending for the
   next round. *)
let flush_fires g =
  let hot = ref [] in
  for sh = 0 to g.n_shards - 1 do
    hot := List.rev_append g.fire_wl.(sh) !hot;
    g.fire_wl.(sh) <- []
  done;
  (* sort (and dedup — drains of successive rounds may both record a node)
     so delivery order is nodes ascending regardless of drain order *)
  let hot = List.sort_uniq Int.compare !hot in
  let fired = ref false in
  List.iter
    (fun id ->
      if not (Bitset.is_empty g.pending.(id)) then begin
        let fs = List.rev g.watchers.(id) in
        fired := true;
        (* iterate the pending set live: callbacks write only delta (via
           add_obj/add_copy) or other nodes' watcher lists, never pending,
           so no snapshot list is needed *)
        Bitset.iter
          (fun o ->
            g.n_fires <- g.n_fires + 1;
            List.iter (fun f -> f o) fs)
          g.pending.(id);
        Bitset.clear g.pending.(id)
      end)
    hot;
  !fired

(* -- SCC collapsing ----------------------------------------------------- *)

(* Iterative Tarjan over the canonical copy graph; every copy cycle is
   collapsed onto its minimum unwatched member via union-find. Watched
   nodes are left out of the union: merging them would require per-watcher
   catch-up firing, and cycles through watched nodes are rare. Runs only in
   serial phases; rebuilds the worklists so no stale member ids remain. *)
let collapse_sccs g =
  let n = NodeIntern.count g.nodes in
  if n = 0 then 0
  else begin
    let index = Array.make n (-1) in
    let low = Array.make n 0 in
    let on_stack = Array.make n false in
    let stack = ref [] in
    let next_index = ref 0 in
    let merged = ref 0 in
    let unions = ref [] in
    (* explicit DFS stack: (node, remaining successors) *)
    let strongconnect v0 =
      let call = ref [ (v0, ref (g.succs.(v0))) ] in
      index.(v0) <- !next_index;
      low.(v0) <- !next_index;
      incr next_index;
      stack := v0 :: !stack;
      on_stack.(v0) <- true;
      while !call <> [] do
        match !call with
        | [] -> ()
        | (v, rest) :: tl -> (
            match !rest with
            | [] ->
                call := tl;
                if low.(v) = index.(v) then begin
                  (* pop the component *)
                  let comp = ref [] in
                  let stop = ref false in
                  while not !stop do
                    match !stack with
                    | [] -> stop := true
                    | w :: s ->
                        stack := s;
                        on_stack.(w) <- false;
                        comp := w :: !comp;
                        if w = v then stop := true
                  done;
                  match !comp with
                  | _ :: _ :: _ -> unions := !comp :: !unions
                  | _ -> ()
                end;
                (match tl with
                | (u, _) :: _ -> if low.(v) < low.(u) then low.(u) <- low.(v)
                | [] -> ())
            | w0 :: ws ->
                rest := ws;
                let w = find g w0 in
                if w <> v then begin
                  if index.(w) < 0 then begin
                    index.(w) <- !next_index;
                    low.(w) <- !next_index;
                    incr next_index;
                    stack := w :: !stack;
                    on_stack.(w) <- true;
                    call := (w, ref g.succs.(w)) :: !call
                  end
                  else if on_stack.(w) then
                    if index.(w) < low.(v) then low.(v) <- index.(w)
                end)
      done
    in
    for v = 0 to n - 1 do
      if find g v = v && index.(v) < 0 then strongconnect v
    done;
    (* union each component onto its minimum unwatched member *)
    let reps = ref [] in
    List.iter
      (fun comp ->
        let eligible = List.filter (fun v -> not g.watched.(v)) comp in
        match List.sort compare eligible with
        | rep :: (_ :: _ as members) ->
            (* Merge semantics: the merged node's successor list becomes
               the union of the members' lists, but each member's [pts]
               was only ever propagated along its own edges. Only objects
               confirmed on EVERY member have traversed all of them, so
               [pts rep] shrinks to the intersection; everything else —
               facts some member never forwarded, plus deltas in flight
               when the cycle closed — is re-delivered through
               [delta rep] ([take_fresh]'s dedup keeps the re-delivery
               idempotent). Anything less silently drops points-to
               facts when a cycle is collapsed between an edge insertion
               and its propagation. *)
            let drep = materialize g g.delta rep in
            ignore (Bitset.union_into ~into:drep g.pts.(rep));
            List.iter
              (fun m ->
                g.uf.(m) <- rep;
                ignore (Bitset.union_into ~into:drep g.pts.(m));
                ignore (Bitset.union_into ~into:drep g.delta.(m));
                g.succs.(rep) <- List.rev_append g.succs.(m) g.succs.(rep);
                g.succs.(m) <- [];
                incr merged)
              members;
            List.iter
              (fun m -> Bitset.inter_into ~into:g.pts.(rep) g.pts.(m))
              members;
            reps := rep :: !reps
        | _ -> ())
      !unions;
    if !merged > 0 then begin
      (* canonicalize the copy graph under the new union-find state: every
         live root's successor list is rebuilt through [find] (duplicates
         and self-loops dropped) and re-registered in [edge_set] under its
         canonical key, stale member-keyed entries discarded. Without
         this, a later [add_copy] of an already-present canonical edge
         misses the table and appends a duplicate successor, and
         [n_edges] — which also drives the collapse cadence — drifts from
         the live edge count. *)
      EdgeTbl.reset g.edge_set;
      for v = 0 to n - 1 do
        if g.uf.(v) <> v then g.succs.(v) <- []
        else
          match g.succs.(v) with
          | [] -> ()
          | succs ->
              let out = ref [] in
              List.iter
                (fun d0 ->
                  let d = find g d0 in
                  let k = edge_key v d in
                  if d <> v && not (EdgeTbl.mem g.edge_set k) then begin
                    EdgeTbl.add g.edge_set k ();
                    out := d :: !out
                  end)
                succs;
              g.succs.(v) <- !out
      done;
      (* remap worklists: members collapse onto their representative, and
         any representative whose merge parked candidates in its delta is
         (re)scheduled so the next propagation delivers them *)
      let old = Array.copy g.wl in
      for sh = 0 to g.n_shards - 1 do
        List.iter (fun v -> g.on_wl.(v) <- false) g.wl.(sh);
        g.wl.(sh) <- [];
        g.wl_n.(sh) <- 0
      done;
      Array.iter
        (List.iter (fun v ->
             let r = find g v in
             if not (Bitset.is_empty g.delta.(r)) then schedule g r))
        old;
      List.iter
        (fun rep ->
          if not (Bitset.is_empty g.delta.(rep)) then schedule g rep)
        !reps;
      g.n_collapsed <- g.n_collapsed + !merged
    end;
    !merged
  end

let solve ?check g =
  let rec loop () =
    propagate ?check g;
    if flush_fires g then loop ()
  in
  loop ()

let iter_nodes f g = NodeIntern.iter (fun id n -> f id n (pts g id)) g.nodes

let n_worklist_iters g = g.n_wl_iters
let n_worklist_pushes g = Array.fold_left ( + ) 0 g.wl_pushes
let worklist_peak g = Array.fold_left ( + ) 0 g.wl_peak
let n_pts_adds g = g.n_pts_adds
let n_fires g = g.n_fires
let n_collapsed g = g.n_collapsed

let n_pts_facts g =
  let total = ref 0 in
  NodeIntern.iter (fun id _ -> total := !total + Bitset.cardinal (pts g id)) g.nodes;
  !total
