open O2_ir
open O2_util

type spawn = {
  sp_id : int;
  sp_site : int;
  sp_entry : Program.meth;
  sp_ectx : Context.t;
  sp_obj : int;
  sp_kind : [ `Main | `Thread | `Event ];
  sp_in_loop : bool;
  sp_attr_nodes : int list;
}

type join = {
  jn_site : int;
  jn_meth : Program.meth;
  jn_ctx : Context.t;
  jn_var : Types.vname;
}

module OriginIntern = Intern.Make (struct
  type t = Context.origin

  let equal = ( = )
  let hash = Hashtbl.hash
end)

module IntTbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash x = (x * 0x9e3779b1) land max_int
end)

type meth_key = Types.cname * Types.mname * Context.t

type reach_info = {
  mutable incoming : int list;  (* call-site sids reaching this instance *)
  incoming_set : (int, unit) Hashtbl.t;  (* O(1) membership for [incoming] *)
  mutable processed : bool;
  mutable origin_allocs : (int -> unit) list;
      (* wrapper-site redo closures for origin allocations in this body *)
}

(* A method instance whose body still has to be turned into constraints. *)
type task = { tk_meth : Program.meth; tk_ctx : Context.t }

(* A node description: structural key plus its hash, computed during the
   (possibly parallel) describe phase so the serial apply barrier interns
   without rehashing. [nd_id] caches the interned id after the first
   resolve — describe shares one [nd] per variable per body, so a variable
   used by many statements costs one intern probe, not one per use. *)
type nd = { nd_hash : int; nd_key : Pag.node; mutable nd_id : int }

(* One constraint of a described body. Simple ops resolve to graph edges;
   the watcher ops ([OFieldW] .. [OPost]) install callbacks that run at
   serial flush barriers and may in turn reach new bodies. *)
type op =
  | OCopy of nd * nd  (* src, dst *)
  | OJoin of join
  | OExtern of nd * int * Context.t  (* ret node, site, heap ctx (§4.3) *)
  | OFieldW of nd * nd * Types.fname  (* base, src: base.f = src *)
  | OFieldR of nd * nd * Types.fname  (* base, dst: dst = base.f *)
  | OCallV of nd * int * Context.t * Types.mname * nd list * nd option
      (* receiver, site, caller ctx, name, actuals, ret *)
  | OCallS of int * Context.t * Program.meth * nd list * nd option
  | OStart of nd * int * Context.t * bool  (* receiver, site, ctx, in_loop *)
  | OPost of nd * int * Context.t * nd list * bool
  | ONew of int * nd * Types.cname * nd list * meth_key
      (* site, lhs, class, ctor actuals, enclosing instance *)

type tables = {
  t_program : Program.t;
  t_flat : Flat.t;  (* dense lowering; describe reads only this *)
  t_policy : Context.policy;
  t_pag : Pag.t;
  reach_tbl : (meth_key, reach_info) Hashtbl.t;
  call_edges : (int * Context.t, (Program.meth * Context.t) list ref) Hashtbl.t;
  call_edge_keys :
    (int * Context.t * Types.cname * Types.mname * Context.t, int) Hashtbl.t;
      (* hashed dedup for call_edges (a per-site list scan is quadratic on
         megamorphic sites); the value caches the callee's interned "this"
         node (-1 when the call has no receiver) so repeat fires skip the
         structural intern probe *)
  mutable n_call_edges : int;
  mutable spawn_list : spawn list;
  spawn_keys : (int * Types.cname * Types.mname * Context.t * int, unit) Hashtbl.t;
  mutable join_list : join list;
  origin_reg : OriginIntern.t;
  origin_attr_nodes : (int, int list ref) Hashtbl.t;
  origin_attr_seen : (int * int, unit) Hashtbl.t;
      (* hashed dedup for origin_attr_nodes entries *)
  has_named : (Types.mname, unit) Hashtbl.t;
      (* method-name index: O(1) external-call detection in describe *)
  field_ids : (Types.fname, int) Hashtbl.t;
      (* dense field-name interning for the field-node memo *)
  fld_nodes : int IntTbl.t;
      (* packed (object id, field id) -> interned NField node: field
         watchers fire once per object per access site, and the structural
         intern of [NField] dominated that path — repeats cost one
         single-int probe (key = [oid lsl 20 lor fid]; dense field ids stay
         far below 2^20) *)
  mutable pending : task list;  (* bodies reached since the last round *)
}

(* Instance call graph: the solved, context-sensitive call graph re-keyed
   on dense ints. Each reachable (method, context) instance gets an
   instance id; per-instance arrays carry the solved points-to set of
   every variable slot and the callee instances of every call site. The
   flat SHB/OSA walkers traverse instances with nothing but array probes
   and one int-keyed table lookup per call site — no structural context
   hashing survives past the solve. *)
type icg = {
  ic_n : int;  (* instance count *)
  ic_mid : int array;  (* iid -> flat method id *)
  ic_pts : Bitset.t array array;  (* iid -> slot -> solved points-to *)
  ic_callees : (int, int array) Hashtbl.t;
      (* iid * ic_nsids + call sid -> callee iids, in [callees] order *)
  ic_entry : int array;  (* sp_id -> entry instance *)
  ic_nsids : int;
}

type result = {
  program : Program.t;
  flat : Flat.t;
  policy : Context.policy;
  jobs : int;
  pag : Pag.t;
  spawns : spawn array;
  joins : join list;
  stats : Metrics.t;
  tables : tables;
  icg : icg;
}

(* -- serial-phase helpers ----------------------------------------------- *)

let a_nvar st (m : Program.meth) ctx v =
  Pag.node_id st.t_pag (Pag.NVar (m.Program.m_class, m.Program.m_name, v, ctx))

let a_nret st (m : Program.meth) ctx =
  Pag.node_id st.t_pag (Pag.NRet (m.Program.m_class, m.Program.m_name, ctx))


let record_spawn st ~site ~entry ~ectx ~obj ~kind ~in_loop ~attr_nodes =
  let key =
    (site, entry.Program.m_class, entry.Program.m_name, ectx, obj)
  in
  if not (Hashtbl.mem st.spawn_keys key) then begin
    Hashtbl.add st.spawn_keys key ();
    let sp =
      {
        sp_id = -1;
        sp_site = site;
        sp_entry = entry;
        sp_ectx = ectx;
        sp_obj = obj;
        sp_kind = kind;
        sp_in_loop = in_loop;
        sp_attr_nodes = attr_nodes;
      }
    in
    st.spawn_list <- sp :: st.spawn_list
  end

let heap_ctx policy (ctx : Context.t) : Context.t =
  match policy with Context.Insensitive -> Context.Cempty | _ -> ctx

(* [a_reach] marks a method instance reached. The body is not processed
   inline (the old engine recursed here): it is queued as a task for the
   next round's describe phase. A call site arriving later at an
   already-described body replays its origin allocations through the redo
   closures — the paper's k=1 wrapper extension. *)
let a_reach st ?(via_site = -1) (m : Program.meth) (ctx : Context.t) =
  let key = (m.Program.m_class, m.Program.m_name, ctx) in
  let info =
    match Hashtbl.find_opt st.reach_tbl key with
    | Some i -> i
    | None ->
        let i =
          {
            incoming = [];
            incoming_set = Hashtbl.create 4;
            processed = false;
            origin_allocs = [];
          }
        in
        Hashtbl.add st.reach_tbl key i;
        i
  in
  let new_site =
    via_site >= 0 && not (Hashtbl.mem info.incoming_set via_site)
  in
  if new_site then begin
    Hashtbl.add info.incoming_set via_site ();
    info.incoming <- via_site :: info.incoming
  end;
  if not info.processed then begin
    info.processed <- true;
    st.pending <- { tk_meth = m; tk_ctx = ctx } :: st.pending
  end
  else if new_site then
    (* sites recorded before the body's ops apply are folded in by [ONew]
       itself (it reads [incoming] at apply time), so only genuinely late
       sites replay here *)
    List.iter (fun redo -> redo via_site) info.origin_allocs

(* Formal-parameter binding: actuals use the caller's context, formals the
   callee's (Table 2 ❽/❾ ownership note). *)
let a_bind_params st (target : Program.meth) cctx arg_nodes =
  List.iteri
    (fun i param ->
      match List.nth_opt arg_nodes i with
      | Some a ->
          Pag.add_copy st.t_pag ~src:a ~dst:(a_nvar st target cctx param)
      | None -> ())
    target.Program.m_params

let a_bind_call st ~site ~ctx ~target ~cctx ~this ~arg_nodes ~ret_node =
  let dedup =
    (site, ctx, target.Program.m_class, target.Program.m_name, cctx)
  in
  match Hashtbl.find_opt st.call_edge_keys dedup with
  | Some this_id -> (
      (* a repeated (site, ctx, target, cctx) edge — another receiver object
         of the same class reaching a virtual site — re-derives exactly the
         same param/ret copies (idempotent), so only the per-object "this"
         binding runs, against the node cached at the first bind *)
      match this with
      | None -> ()
      | Some oid ->
          let n =
            if this_id >= 0 then this_id
            else begin
              let n = a_nvar st target cctx "this" in
              Hashtbl.replace st.call_edge_keys dedup n;
              n
            end
          in
          Pag.add_obj st.t_pag n oid)
  | None ->
      let this_id =
        match this with
        | None -> -1
        | Some oid ->
            let n = a_nvar st target cctx "this" in
            Pag.add_obj st.t_pag n oid;
            n
      in
      Hashtbl.add st.call_edge_keys dedup this_id;
      st.n_call_edges <- st.n_call_edges + 1;
      (match Hashtbl.find_opt st.call_edges (site, ctx) with
      | Some l -> l := (target, cctx) :: !l
      | None -> Hashtbl.add st.call_edges (site, ctx) (ref [ (target, cctx) ]));
      a_reach st ~via_site:site target cctx;
      a_bind_params st target cctx arg_nodes;
      (match ret_node with
      | Some r -> Pag.add_copy st.t_pag ~src:(a_nret st target cctx) ~dst:r
      | None -> ())

(* Context for a thread/handler entry (Table 2 ❾): under the origin policy
   the origin was attached to the object at its allocation — the entry runs
   in the object's heap context. Other policies use their usual call rule. *)
let a_entry_ctx st ~ctx ~site ~(o : Pag.obj) =
  match st.t_policy with
  | Context.Korigin _ -> o.Pag.ob_hctx
  | policy ->
      Context.push_call policy ~ctx ~site ~recv_site:o.Pag.ob_site
        ~recv_hctx:o.Pag.ob_hctx

(* Attribute nodes of the origin carried by object [o]: registered at the
   origin allocation (origin policy); empty otherwise. *)
let a_origin_attrs_of st (o : Pag.obj) =
  match o.Pag.ob_hctx with
  | Context.Corigin (og :: _) -> (
      match Hashtbl.find_opt st.origin_attr_nodes og with
      | Some l -> !l
      | None -> [])
  | _ -> []

let a_new st ~site ~ctx ~info ~xnode ~c ~arg_nodes =
  let p = st.t_program in
  let policy = st.t_policy in
  let g = st.t_pag in
  let is_origin_alloc =
    match (policy, Program.kind_of p c) with
    | Context.Korigin _, (Program.Kthread _ | Program.Khandler _) -> true
    | _ -> false
  in
  if not is_origin_alloc then begin
    let hctx = heap_ctx policy ctx in
    let oid =
      Pag.obj_id g { Pag.ob_site = site; ob_class = c; ob_hctx = hctx }
    in
    Pag.add_obj g xnode oid;
    match Program.dispatch p c "init" with
    | None -> ()
    | Some init ->
        let cctx =
          Context.push_call policy ~ctx ~site ~recv_site:site ~recv_hctx:hctx
        in
        a_bind_call st ~site ~ctx ~target:init ~cctx ~this:(Some oid)
          ~arg_nodes ~ret_node:None
  end
  else begin
    (* Table 2 rule ❽: context switch at the origin allocation. "A new and
       unique origin is created for this new allocation": identity includes
       the immediate parent origin, so e.g. each copy of a loop-doubled
       parent spawns its own child origins (soundness of the doubling).
       Recursive spawn chains are collapsed — when an ancestor origin was
       created at this same allocation site, the parent is dropped from the
       identity — keeping the registry finite. *)
    let k = match policy with Context.Korigin k -> k | _ -> 1 in
    let chain = match ctx with Context.Corigin ch -> ch | _ -> [ 0 ] in
    let parent = match chain with pr :: _ -> pr | [] -> 0 in
    let rec ancestry_has_site og_id =
      og_id > 0
      &&
      let og = OriginIntern.value st.origin_reg og_id in
      og.Context.og_site = site
      ||
      match og.Context.og_parent with
      | pr :: _ -> ancestry_has_site pr
      | [] -> false
    in
    let id_parent =
      if parent = 0 || ancestry_has_site parent then [] else [ parent ]
    in
    let copies = if Program.stmt_in_loop p site then [ 0; 1 ] else [ 0 ] in
    let alloc_under ~wrapper =
      List.iter
        (fun copy ->
          let og : Context.origin =
            {
              Context.og_site = site;
              og_wrapper = wrapper;
              og_copy = copy;
              og_class = c;
              og_parent = id_parent;
            }
          in
          let og_id = OriginIntern.intern st.origin_reg og in
          (match Hashtbl.find_opt st.origin_attr_nodes og_id with
          | Some l ->
              List.iter
                (fun a ->
                  if not (Hashtbl.mem st.origin_attr_seen (og_id, a)) then begin
                    Hashtbl.add st.origin_attr_seen (og_id, a) ();
                    l := a :: !l
                  end)
                arg_nodes
          | None ->
              List.iter
                (fun a -> Hashtbl.replace st.origin_attr_seen (og_id, a) ())
                arg_nodes;
              Hashtbl.add st.origin_attr_nodes og_id (ref arg_nodes));
          let chain' = Context.truncate k (og_id :: chain) in
          let hctx = Context.Corigin chain' in
          let oid =
            Pag.obj_id g { Pag.ob_site = site; ob_class = c; ob_hctx = hctx }
          in
          Pag.add_obj g xnode oid;
          match Program.dispatch p c "init" with
          | None -> ()
          | Some init ->
              (* the init and the constructor-argument formals live in the
                 new origin (Figure 3) *)
              a_bind_call st ~site ~ctx ~target:init ~cctx:hctx
                ~this:(Some oid) ~arg_nodes ~ret_node:None)
        copies
    in
    (* one origin per incoming wrapper call site known now; re-done for call
       sites discovered later via the redo closure *)
    (match info.incoming with
    | [] -> alloc_under ~wrapper:(-1)
    | sites -> List.iter (fun ws -> alloc_under ~wrapper:ws) sites);
    info.origin_allocs <-
      (fun ws -> alloc_under ~wrapper:ws) :: info.origin_allocs
  end

(* -- describe ----------------------------------------------------------- *)

(* [describe st task] renders one method body into its op batch by a linear
   scan of the body's flat opcode stream — no AST, no string hashing: name
   resolution (static targets, the §4.3 external-call bit, in-loop flags)
   was baked in by {!Flat.lower}. Instructions sit in AST DFS order with
   block bodies inlined, so the op sequence is exactly the legacy
   tree-walk's. Reads only frozen state and mutates nothing, so the pool
   can describe a round's tasks concurrently; node-key hashing happens
   here, off the serial path. *)
let describe_into st task ~emit =
  let fl = st.t_flat in
  let policy = st.t_policy in
  let m = task.tk_meth in
  let ctx = task.tk_ctx in
  let mi = Flat.meth fl (Flat.mid_of_meth fl m) in
  let code = mi.Flat.f_code in
  let mk key = { nd_hash = Pag.node_hash key; nd_key = key; nd_id = -1 } in
  (* one shared [nd] per variable slot of the body: the key is hashed once
     here and interned once at the first resolve, however many statements
     use it *)
  let var_memo = Array.make mi.Flat.f_nslots None in
  let dvar slot =
    match var_memo.(slot) with
    | Some nd -> nd
    | None ->
        let nd =
          mk
            (Pag.NVar
               ( m.Program.m_class,
                 m.Program.m_name,
                 mi.Flat.f_slot_name.(slot),
                 ctx ))
        in
        var_memo.(slot) <- Some nd;
        nd
  in
  let dargs at nargs = List.init nargs (fun k -> dvar code.(at + k)) in
  let dopt slot = if slot < 0 then None else Some (dvar slot) in
  let dret () = mk (Pag.NRet (m.Program.m_class, m.Program.m_name, ctx)) in
  let dstatic slot =
    mk
      (Pag.NStatic
         ( Flat.class_name fl (Flat.static_cid fl slot),
           Flat.field_name fl (Flat.static_fid fl slot) ))
  in
  let star = Flat.field_name fl fl.Flat.f_star in
  let mkey = (m.Program.m_class, m.Program.m_name, ctx) in
  let n = Array.length code in
  let i = ref 0 in
  while !i < n do
    let op = code.(!i) and j = !i in
    let site = code.(j + 1) in
    if op = Flat.op_null then i := j + 2
    else if op = Flat.op_assign then begin
      emit (OCopy (dvar code.(j + 3), dvar code.(j + 2)));
      i := j + 4
    end
    else if op = Flat.op_new then begin
      let nargs = code.(j + 4) in
      emit
        (ONew
           ( site,
             dvar code.(j + 2),
             Flat.class_name fl code.(j + 3),
             dargs (j + 5) nargs,
             mkey ));
      i := j + 5 + nargs
    end
    else if op = Flat.op_fwrite then begin
      emit
        (OFieldW
           (dvar code.(j + 2), dvar code.(j + 4), Flat.field_name fl code.(j + 3)));
      i := j + 5
    end
    else if op = Flat.op_fread then begin
      emit
        (OFieldR
           (dvar code.(j + 3), dvar code.(j + 2), Flat.field_name fl code.(j + 4)));
      i := j + 5
    end
    else if op = Flat.op_awrite then begin
      emit (OFieldW (dvar code.(j + 2), dvar code.(j + 3), star));
      i := j + 4
    end
    else if op = Flat.op_aread then begin
      emit (OFieldR (dvar code.(j + 3), dvar code.(j + 2), star));
      i := j + 4
    end
    else if op = Flat.op_swrite then begin
      emit (OCopy (dvar code.(j + 3), dstatic code.(j + 2)));
      i := j + 4
    end
    else if op = Flat.op_sread then begin
      emit (OCopy (dstatic code.(j + 3), dvar code.(j + 2)));
      i := j + 4
    end
    else if op = Flat.op_callv then begin
      let ret = code.(j + 2) and nargs = code.(j + 6) in
      (* §4.3: the external bit marks calls whose name no program method
         bears; their result is an anonymous object so downstream accesses
         are still analyzed *)
      if code.(j + 5) = 1 && ret >= 0 then
        emit (OExtern (dvar ret, site, heap_ctx policy ctx));
      emit
        (OCallV
           ( dvar code.(j + 3),
             site,
             ctx,
             Flat.name_str fl code.(j + 4),
             dargs (j + 7) nargs,
             dopt ret ));
      i := j + 7 + nargs
    end
    else if op = Flat.op_calls then begin
      let nargs = code.(j + 4) in
      (if code.(j + 3) >= 0 then
         let target = (Flat.meth fl code.(j + 3)).Flat.f_meth in
         emit
           (OCallS (site, ctx, target, dargs (j + 5) nargs, dopt code.(j + 2))));
      i := j + 5 + nargs
    end
    else if op = Flat.op_start then begin
      emit (OStart (dvar code.(j + 2), site, ctx, code.(j + 3) = 1));
      i := j + 4
    end
    else if op = Flat.op_join then begin
      emit
        (OJoin
           {
             jn_site = site;
             jn_meth = m;
             jn_ctx = ctx;
             jn_var = mi.Flat.f_slot_name.(code.(j + 2));
           });
      i := j + 3
    end
    else if op = Flat.op_signal || op = Flat.op_wait then i := j + 3
    else if op = Flat.op_post then begin
      let nargs = code.(j + 4) in
      emit
        (OPost
           (dvar code.(j + 2), site, ctx, dargs (j + 5) nargs, code.(j + 3) = 1));
      i := j + 5 + nargs
    end
    else if op = Flat.op_sync then i := j + 4 (* body inlined; keep scanning *)
    else if op = Flat.op_if then i := j + 4
    else if op = Flat.op_while then i := j + 3
    else if op = Flat.op_return then begin
      if code.(j + 2) >= 0 then emit (OCopy (dvar code.(j + 2), dret ()));
      i := j + 3
    end
    else assert false
  done

let describe st task =
  let ops = ref [] in
  describe_into st task ~emit:(fun op -> ops := op :: !ops);
  Array.of_list (List.rev !ops)

(* -- apply -------------------------------------------------------------- *)

let resolve st nd =
  if nd.nd_id >= 0 then nd.nd_id
  else begin
    let id = Pag.node_id_hashed st.t_pag ~hash:nd.nd_hash nd.nd_key in
    nd.nd_id <- id;
    id
  end

let field_id st f =
  match Hashtbl.find_opt st.field_ids f with
  | Some i -> i
  | None ->
      let i = Hashtbl.length st.field_ids in
      (* the [fld_nodes] key packs the field id into 20 bits; overflowing
         it would silently alias unrelated field nodes *)
      if i lsr 20 <> 0 then
        invalid_arg "Solver.field_id: over 2^20 distinct field names";
      Hashtbl.add st.field_ids f i;
      i

(* Field watchers fire once per (base object, access site) and every fire
   needs the object's [NField] node; memoizing on the int pair turns the
   repeat structural interns into one table probe. *)
let fld_node st oid fid f =
  let key = (oid lsl 20) lor fid in
  match IntTbl.find_opt st.fld_nodes key with
  | Some n -> n
  | None ->
      let n = Pag.node_id st.t_pag (Pag.NField (oid, f)) in
      IntTbl.add st.fld_nodes key n;
      n

let apply_op st op =
  let g = st.t_pag in
  let p = st.t_program in
  match op with
  | OCopy (s, d) -> Pag.add_copy g ~src:(resolve st s) ~dst:(resolve st d)
  | OJoin j -> st.join_list <- j :: st.join_list
  | OExtern (r, site, hctx) ->
      let oid =
        Pag.obj_id g
          { Pag.ob_site = site; ob_class = "<external>"; ob_hctx = hctx }
      in
      Pag.add_obj g (resolve st r) oid
  | OFieldW (base, src, f) ->
      let src = resolve st src in
      let fid = field_id st f in
      Pag.add_watcher g (resolve st base) (fun o ->
          Pag.add_copy g ~src ~dst:(fld_node st o fid f))
  | OFieldR (base, dst, f) ->
      let dst = resolve st dst in
      let fid = field_id st f in
      Pag.add_watcher g (resolve st base) (fun o ->
          Pag.add_copy g ~src:(fld_node st o fid f) ~dst)
  | OCallV (recv, site, ctx, mname, args, ret) ->
      let arg_nodes = List.map (resolve st) args in
      let ret_node = Option.map (resolve st) ret in
      Pag.add_watcher g (resolve st recv) (fun oid ->
          let o = Pag.obj g oid in
          match Program.dispatch p o.Pag.ob_class mname with
          | None -> ()
          | Some target ->
              let cctx =
                Context.push_call st.t_policy ~ctx ~site
                  ~recv_site:o.Pag.ob_site ~recv_hctx:o.Pag.ob_hctx
              in
              a_bind_call st ~site ~ctx ~target ~cctx ~this:(Some oid)
                ~arg_nodes ~ret_node)
  | OCallS (site, ctx, target, args, ret) ->
      let cctx = Context.push_call_static st.t_policy ~ctx ~site in
      a_bind_call st ~site ~ctx ~target ~cctx ~this:None
        ~arg_nodes:(List.map (resolve st) args)
        ~ret_node:(Option.map (resolve st) ret)
  | OStart (recv, site, ctx, in_loop) ->
      Pag.add_watcher g (resolve st recv) (fun oid ->
          let o = Pag.obj g oid in
          match Program.kind_of p o.Pag.ob_class with
          | Program.Kthread _ -> (
              match Program.entry_method p o.Pag.ob_class with
              | None -> ()
              | Some entry ->
                  let ectx = a_entry_ctx st ~ctx ~site ~o in
                  a_reach st entry ectx;
                  Pag.add_obj g (a_nvar st entry ectx "this") oid;
                  record_spawn st ~site ~entry ~ectx ~obj:oid ~kind:`Thread
                    ~in_loop ~attr_nodes:(a_origin_attrs_of st o))
          | _ -> ())
  | OPost (recv, site, ctx, args, in_loop) ->
      let arg_nodes = List.map (resolve st) args in
      Pag.add_watcher g (resolve st recv) (fun oid ->
          let o = Pag.obj g oid in
          match Program.kind_of p o.Pag.ob_class with
          | Program.Khandler _ -> (
              match Program.entry_method p o.Pag.ob_class with
              | None -> ()
              | Some entry ->
                  let ectx = a_entry_ctx st ~ctx ~site ~o in
                  a_reach st entry ectx;
                  Pag.add_obj g (a_nvar st entry ectx "this") oid;
                  a_bind_params st entry ectx arg_nodes;
                  record_spawn st ~site ~entry ~ectx ~obj:oid ~kind:`Event
                    ~in_loop
                    ~attr_nodes:(arg_nodes @ a_origin_attrs_of st o))
          | _ -> ())
  | ONew (site, x, c, args, ((_, _, ctx) as key)) ->
      let info = Hashtbl.find st.reach_tbl key in
      a_new st ~site ~ctx ~info ~xnode:(resolve st x) ~c
        ~arg_nodes:(List.map (resolve st) args)

(* -- sharding ----------------------------------------------------------- *)

(* Shard key of a node: the head origin of its context when there is one
   (the origin policy's natural partition — an origin's locals and returns
   stay on one shard), a structural hash otherwise. *)
let shard_of_node (n : Pag.node) =
  let ctx_key = function
    | Context.Corigin (og :: _) -> og
    | Context.Corigin [] | Context.Cempty -> 0
    | (Context.Ccall _ | Context.Cobj _) as c -> Context.hash c
  in
  match n with
  | Pag.NVar (_, _, _, ctx) | Pag.NRet (_, _, ctx) -> ctx_key ctx
  | Pag.NField (oid, _) -> oid
  | Pag.NStatic (c, f) -> Hashtbl.hash (c, f)

(* -- instance call graph ------------------------------------------------ *)

(* One DFS from the spawn entries over the solved call edges, interning
   (mid, ctx) instances and resolving every slot's points-to set up front.
   Unsolved slots share one (read-only) empty set — the same answer the
   walkers used to get from interning the node lazily. *)
let build_icg fl pag
    (call_edges :
      (int * Context.t, (Program.meth * Context.t) list ref) Hashtbl.t)
    (spawns : spawn array) =
  let empty_pts = Bitset.create () in
  let nsids = Array.length fl.Flat.f_pos in
  let intern : (int * Context.t, int) Hashtbl.t = Hashtbl.create 256 in
  let mids = ref [] and ptss = ref [] and count = ref 0 in
  let callees_tbl : (int, int array) Hashtbl.t = Hashtbl.create 256 in
  let rec visit (mt : Program.meth) ctx =
    let mid = Flat.mid_of_meth fl mt in
    let key = (mid, ctx) in
    match Hashtbl.find_opt intern key with
    | Some iid -> iid
    | None ->
        let iid = !count in
        incr count;
        Hashtbl.add intern key iid;
        let mi = fl.Flat.f_meths.(mid) in
        let pts =
          Array.init mi.Flat.f_nslots (fun s ->
              let n =
                Pag.NVar
                  ( mt.Program.m_class,
                    mt.Program.m_name,
                    mi.Flat.f_slot_name.(s),
                    ctx )
              in
              let id = Pag.find_node_hashed pag ~hash:(Pag.node_hash n) n in
              if id < 0 then empty_pts else Pag.pts pag id)
        in
        mids := mid :: !mids;
        ptss := pts :: !ptss;
        let code = mi.Flat.f_code in
        let len = Array.length code in
        let i = ref 0 in
        while !i < len do
          let j = !i in
          let op = code.(j) in
          let step =
            if op = Flat.op_null then 2
            else if op = Flat.op_assign then 4
            else if op = Flat.op_return then 3
            else if op = Flat.op_new then 5 + code.(j + 4)
            else if op = Flat.op_callv then 7 + code.(j + 6)
            else if op = Flat.op_calls then 5 + code.(j + 4)
            else if op = Flat.op_fwrite || op = Flat.op_fread then 5
            else if
              op = Flat.op_awrite || op = Flat.op_aread
              || op = Flat.op_swrite || op = Flat.op_sread
            then 4
            else if op = Flat.op_sync || op = Flat.op_if || op = Flat.op_start
            then 4
            else if op = Flat.op_post then 5 + code.(j + 4)
            else if
              op = Flat.op_while || op = Flat.op_join || op = Flat.op_signal
              || op = Flat.op_wait
            then 3
            else assert false
          in
          (if op = Flat.op_new || op = Flat.op_callv || op = Flat.op_calls
           then
             let sid = code.(j + 1) in
             match Hashtbl.find_opt call_edges (sid, ctx) with
             | Some l ->
                 let arr =
                   Array.of_list
                     (List.map (fun (cm, cctx) -> visit cm cctx) !l)
                 in
                 Hashtbl.replace callees_tbl ((iid * nsids) + sid) arr
             | None -> ());
          i := j + step
        done;
        iid
  in
  let entries =
    Array.map (fun sp -> visit sp.sp_entry sp.sp_ectx) spawns
  in
  {
    ic_n = !count;
    ic_mid = Array.of_list (List.rev !mids);
    ic_pts = Array.of_list (List.rev !ptss);
    ic_callees = callees_tbl;
    ic_entry = entries;
    ic_nsids = nsids;
  }

(* -- the round loop ----------------------------------------------------- *)

let analyze ?(policy = Context.Korigin 1) ?(jobs = 1) ?metrics ?budget program
    =
  Context.validate_policy policy;
  if jobs < 1 then invalid_arg "Solver.analyze: jobs must be >= 1";
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let check =
    match budget with
    | None -> None
    | Some b when Budget.is_unlimited b -> None
    | Some b -> Some (fun steps -> Budget.check b ~steps)
  in
  let pag = Pag.create ~shards:jobs ~shard_of:shard_of_node () in
  let fl = Metrics.time m "pta.lower" (fun () -> Flat.lower program) in
  let st =
    {
      t_program = program;
      t_flat = fl;
      t_policy = policy;
      t_pag = pag;
      reach_tbl = Hashtbl.create 256;
      call_edges = Hashtbl.create 256;
      call_edge_keys = Hashtbl.create 256;
      n_call_edges = 0;
      spawn_list = [];
      spawn_keys = Hashtbl.create 64;
      join_list = [];
      origin_reg = OriginIntern.create ();
      origin_attr_nodes = Hashtbl.create 64;
      origin_attr_seen = Hashtbl.create 64;
      has_named = Hashtbl.create 256;
      field_ids = Hashtbl.create 64;
      fld_nodes = IntTbl.create 1024;
      pending = [];
    }
  in
  Program.iter_methods
    (fun mm -> Hashtbl.replace st.has_named mm.Program.m_name ())
    program;
  (* origin id 0 is main *)
  let zero = OriginIntern.intern st.origin_reg Context.main_origin in
  assert (zero = 0);
  let main = Program.main program in
  let ectx = Context.entry policy in
  (* [jobs] fixes the shard count (and with it the deterministic facts);
     the worker pool is additionally clamped to the hardware — extra
     domains on a narrower machine only add barrier latency, and workers
     claim whole shards through a cursor either way *)
  let workers = min jobs (Domain.recommended_domain_count ()) in
  let pool = if workers > 1 then Some (Pool.create workers) else None in
  let n_rounds = ref 0 and n_tasks = ref 0 in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      Metrics.span m "pta.solve" (fun () ->
          a_reach st main ectx;
          let last_edges = ref 0 in
          let scc_threshold = ref 1024 in
          let quiescent = ref false in
          while not !quiescent do
            incr n_rounds;
            let tasks = Array.of_list (List.rev st.pending) in
            st.pending <- [];
            n_tasks := !n_tasks + Array.length tasks;
            (match pool with
            | Some p when Array.length tasks >= 2 * Pool.size p ->
                let ops = Array.make (Array.length tasks) [||] in
                let describe_at i = ops.(i) <- describe st tasks.(i) in
                (* parallel describe over frozen tables; slots are claimed
                   through one atomic cursor *)
                Metrics.time m "pta.describe" (fun () ->
                    let cursor = Atomic.make 0 in
                    Pool.run p (fun _ ->
                        let rec work () =
                          let i = Atomic.fetch_and_add cursor 1 in
                          if i < Array.length tasks then begin
                            describe_at i;
                            work ()
                          end
                        in
                        work ()));
                (* serial apply barrier, in task order: interning and graph
                   mutation happen here in an order independent of [jobs] *)
                Metrics.time m "pta.apply" (fun () ->
                    Array.iter
                      (fun batch -> Array.iter (apply_op st) batch)
                      ops)
            | _ ->
                (* no pool worth feeding: describe and apply fuse into one
                   pass, skipping the op-batch materialization. Describe is
                   pure, so the op sequence applied here is exactly the
                   split path's — facts stay byte-identical *)
                Metrics.time m "pta.apply" (fun () ->
                    Array.iter
                      (fun t -> describe_into st t ~emit:(apply_op st))
                      tasks));
            (* adaptive collapse cadence: a Tarjan pass is linear in the
               whole graph, so an acyclic workload must not pay for one
               every few edges — each fruitless pass quadruples the edge
               growth required to try again (deterministic: depends only on
               the jobs-independent edge counts) *)
            if Pag.n_edges pag - !last_edges >= !scc_threshold then begin
              let merged =
                Metrics.time m "pta.scc" (fun () -> Pag.collapse_sccs pag)
              in
              if merged = 0 then scc_threshold := !scc_threshold * 4;
              last_edges := Pag.n_edges pag
            end;
            Metrics.time m "pta.propagate" (fun () ->
                Pag.propagate ?check ?pool pag);
            let fired =
              Metrics.time m "pta.flush" (fun () -> Pag.flush_fires pag)
            in
            quiescent := (not fired) && st.pending == []
          done));
  record_spawn st ~site:(-1) ~entry:main ~ectx ~obj:(-1) ~kind:`Main
    ~in_loop:false ~attr_nodes:[];
  let sps =
    List.rev st.spawn_list
    |> List.sort (fun a b ->
           match (a.sp_kind, b.sp_kind) with
           | `Main, `Main -> 0
           | `Main, _ -> -1
           | _, `Main -> 1
           | _ -> compare (a.sp_site, a.sp_obj) (b.sp_site, b.sp_obj))
  in
  let spawn_arr =
    Array.of_list (List.mapi (fun i sp -> { sp with sp_id = i }) sps)
  in
  (* the paper's Table 6 columns plus the solver-internal work counters *)
  Metrics.set m "pta.pointers" (Pag.n_nodes pag);
  Metrics.set m "pta.objects" (Pag.n_objs pag);
  Metrics.set m "pta.edges" (Pag.n_edges pag);
  Metrics.set m "pta.reached_methods" (Hashtbl.length st.reach_tbl);
  Metrics.set m "pta.call_edges" st.n_call_edges;
  Metrics.set m "pta.worklist_iters" (Pag.n_worklist_iters pag);
  Metrics.set m "pta.worklist_pushes" (Pag.n_worklist_pushes pag);
  Metrics.gauge_set m "pta.worklist_peak" (Pag.worklist_peak pag);
  Metrics.set m "pta.pts_adds" (Pag.n_pts_adds pag);
  Metrics.set m "pta.pts_facts" (Pag.n_pts_facts pag);
  Metrics.set m "pta.rounds" !n_rounds;
  Metrics.set m "pta.tasks" !n_tasks;
  Metrics.set m "pta.fires" (Pag.n_fires pag);
  Metrics.set m "pta.scc_collapsed" (Pag.n_collapsed pag);
  Metrics.set m "pta.jobs" jobs;
  Metrics.set m "pta.spawns" (Array.length spawn_arr);
  Metrics.set m "pta.origins"
    (match policy with
    | Context.Korigin _ -> max 0 (OriginIntern.count st.origin_reg - 1)
    | _ -> max 0 (Array.length spawn_arr - 1));
  let icg =
    Metrics.time m "pta.icg" (fun () ->
        build_icg fl pag st.call_edges spawn_arr)
  in
  {
    program;
    flat = fl;
    policy;
    jobs;
    pag;
    spawns = spawn_arr;
    joins = st.join_list;
    stats = m;
    tables = st;
    icg;
  }

(* -- queries over a result ---------------------------------------------- *)

let pts_var r (m : Program.meth) ctx v =
  Pag.pts r.pag
    (Pag.node_id r.pag
       (Pag.NVar (m.Program.m_class, m.Program.m_name, v, ctx)))

let callees r ~site ~ctx =
  match Hashtbl.find_opt r.tables.call_edges (site, ctx) with
  | Some l -> !l
  | None -> []

let origins r =
  Array.init (OriginIntern.count r.tables.origin_reg) (fun i ->
      OriginIntern.value r.tables.origin_reg i)

let origin_attrs r og =
  match Hashtbl.find_opt r.tables.origin_attr_nodes og with
  | None -> []
  | Some nodes ->
      List.concat_map (fun n -> Bitset.elements (Pag.pts r.pag n)) !nodes
      |> List.sort_uniq compare

let reached r =
  Hashtbl.fold
    (fun (c, mn, ctx) info acc ->
      if not info.processed then acc
      else
        match Program.find_class r.program c with
        | Some _ -> (
            match
              List.find_opt
                (fun (m : Program.meth) -> m.Program.m_name = mn)
                (Program.methods_of r.program c)
            with
            | Some m -> (m, ctx) :: acc
            | None -> acc)
        | None -> acc)
    r.tables.reach_tbl []

let is_reached r (m : Program.meth) =
  Hashtbl.fold
    (fun (c, mn, _) info acc ->
      acc
      || (info.processed && c = m.Program.m_class && mn = m.Program.m_name))
    r.tables.reach_tbl false

let origin_of_spawn r (sp : spawn) =
  match (r.policy, sp.sp_ectx) with
  | Context.Korigin _, Context.Corigin (og :: _) -> og
  | _ ->
      (* other policies have no origin registry: each spawn is its own
         origin; offset past the registry ids to keep the spaces disjoint *)
      OriginIntern.count r.tables.origin_reg + sp.sp_id

let n_origins r =
  match r.policy with
  | Context.Korigin _ -> max 0 (OriginIntern.count r.tables.origin_reg - 1)
  | _ -> max 0 (Array.length r.spawns - 1)

let fingerprint r =
  let kind_name = function
    | `Main -> "main"
    | `Thread -> "thread"
    | `Event -> "event"
  in
  Oracle.fingerprint_parts
    ~origin_of:(fun og -> OriginIntern.value r.tables.origin_reg og)
    ~iter_nodes:(fun f -> Pag.iter_nodes (fun _ n set -> f n set) r.pag)
    ~obj_of:(fun oid -> Pag.obj r.pag oid)
    ~spawns:
      (Array.to_list r.spawns
      |> List.map (fun sp ->
             ( sp.sp_site,
               kind_name sp.sp_kind,
               sp.sp_entry,
               sp.sp_ectx,
               (if sp.sp_obj < 0 then None else Some (Pag.obj r.pag sp.sp_obj)),
               sp.sp_in_loop )))
    ~call_edges:
      (Hashtbl.fold
         (fun (site, ctx) l acc ->
           List.fold_left
             (fun acc (target, cctx) -> (site, ctx, target, cctx) :: acc)
             acc !l)
         r.tables.call_edges [])
    ~joins:
      (List.map
         (fun j ->
           ( j.jn_site,
             j.jn_meth.Program.m_class,
             j.jn_meth.Program.m_name,
             j.jn_ctx,
             j.jn_var ))
         r.joins)
