open O2_ir
open O2_util

type spawn = {
  sp_id : int;
  sp_site : int;
  sp_entry : Program.meth;
  sp_ectx : Context.t;
  sp_obj : int;
  sp_kind : [ `Main | `Thread | `Event ];
  sp_in_loop : bool;
  sp_attr_nodes : int list;
}

type join = {
  jn_site : int;
  jn_meth : Program.meth;
  jn_ctx : Context.t;
  jn_var : Types.vname;
}

module OriginIntern = Intern.Make (struct
  type t = Context.origin

  let equal = ( = )
  let hash = Hashtbl.hash
end)

type meth_key = Types.cname * Types.mname * Context.t

type reach_info = {
  mutable incoming : int list;  (* call-site sids reaching this instance *)
  incoming_set : (int, unit) Hashtbl.t;  (* O(1) membership for [incoming] *)
  mutable processed : bool;
  mutable origin_allocs : (int -> unit) list;
      (* wrapper-site redo closures for origin allocations in this body *)
}

type t = {
  program : Program.t;
  policy : Context.policy;
  pag : Pag.t;
  reach_tbl : (meth_key, reach_info) Hashtbl.t;
  call_edges : (int * Context.t, (Program.meth * Context.t) list ref) Hashtbl.t;
  call_edge_keys :
    (int * Context.t * Types.cname * Types.mname * Context.t, unit) Hashtbl.t;
      (* hashed dedup for call_edges; a per-site list scan is quadratic on
         megamorphic sites *)
  mutable n_call_edges : int;
  mutable spawn_list : spawn list;
  spawn_keys : (int * Types.cname * Types.mname * Context.t * int, unit) Hashtbl.t;
  mutable join_list : join list;
  origin_reg : OriginIntern.t;
  origin_attr_nodes : (int, int list ref) Hashtbl.t;
  origin_attr_seen : (int * int, unit) Hashtbl.t;
      (* hashed dedup for origin_attr_nodes entries *)
  stats : Metrics.t;
  mutable spawn_arr : spawn array;  (* finalized *)
}

exception Analysis_error of string

(* ----------------------------------------------------------------------- *)

let nvar st (m : Program.meth) ctx v =
  Pag.node_id st.pag (Pag.NVar (m.Program.m_class, m.Program.m_name, v, ctx))

let nret st (m : Program.meth) ctx =
  Pag.node_id st.pag (Pag.NRet (m.Program.m_class, m.Program.m_name, ctx))

let record_call_edge st ~site ~ctx ((target, cctx) as callee) =
  let dedup =
    (site, ctx, target.Program.m_class, target.Program.m_name, cctx)
  in
  if not (Hashtbl.mem st.call_edge_keys dedup) then begin
    Hashtbl.add st.call_edge_keys dedup ();
    st.n_call_edges <- st.n_call_edges + 1;
    match Hashtbl.find_opt st.call_edges (site, ctx) with
    | Some l -> l := callee :: !l
    | None -> Hashtbl.add st.call_edges (site, ctx) (ref [ callee ])
  end

let record_spawn st ~site ~entry ~ectx ~obj ~kind ~in_loop ~attr_nodes =
  let key =
    (site, entry.Program.m_class, entry.Program.m_name, ectx, obj)
  in
  if not (Hashtbl.mem st.spawn_keys key) then begin
    Hashtbl.add st.spawn_keys key ();
    let sp =
      {
        sp_id = -1;
        sp_site = site;
        sp_entry = entry;
        sp_ectx = ectx;
        sp_obj = obj;
        sp_kind = kind;
        sp_in_loop = in_loop;
        sp_attr_nodes = attr_nodes;
      }
    in
    st.spawn_list <- sp :: st.spawn_list
  end

let heap_ctx policy (ctx : Context.t) : Context.t =
  match policy with Context.Insensitive -> Context.Cempty | _ -> ctx

(* ----------------------------------------------------------------------- *)

let rec reach st ?(via_site = -1) (m : Program.meth) (ctx : Context.t) =
  let key = (m.Program.m_class, m.Program.m_name, ctx) in
  let info =
    match Hashtbl.find_opt st.reach_tbl key with
    | Some i -> i
    | None ->
        let i =
          {
            incoming = [];
            incoming_set = Hashtbl.create 4;
            processed = false;
            origin_allocs = [];
          }
        in
        Hashtbl.add st.reach_tbl key i;
        i
  in
  let new_site =
    via_site >= 0 && not (Hashtbl.mem info.incoming_set via_site)
  in
  if new_site then begin
    Hashtbl.add info.incoming_set via_site ();
    info.incoming <- via_site :: info.incoming
  end;
  if not info.processed then begin
    info.processed <- true;
    process_body st m ctx info m.Program.m_body
  end
  else if new_site then
    (* the paper's k=1 wrapper extension: a new call site reaching a method
       that contains origin allocations yields fresh origins *)
    List.iter (fun redo -> redo via_site) info.origin_allocs

and process_body st (m : Program.meth) ctx info body =
  List.iter (fun s -> process_stmt st m ctx info s) body

and process_stmt st (m : Program.meth) ctx info (s : Ast.stmt) =
  let site = s.Ast.sid in
  let p = st.program in
  let policy = st.policy in
  match s.Ast.sk with
  | Ast.Null _ | Ast.Return None | Ast.Signal _ | Ast.Wait _ -> ()
  | Ast.Join x ->
      st.join_list <-
        { jn_site = site; jn_meth = m; jn_ctx = ctx; jn_var = x }
        :: st.join_list
  | Ast.Assign (x, y) ->
      Pag.add_copy st.pag ~src:(nvar st m ctx y) ~dst:(nvar st m ctx x)
  | Ast.New (x, c, args) -> process_new st m ctx info ~site ~x ~c ~args
  | Ast.FieldWrite (x, f, y) ->
      let ynode = nvar st m ctx y in
      Pag.add_watcher st.pag (nvar st m ctx x) (fun o ->
          Pag.add_copy st.pag ~src:ynode ~dst:(Pag.node_id st.pag (Pag.NField (o, f))))
  | Ast.FieldRead (x, y, f) ->
      let xnode = nvar st m ctx x in
      Pag.add_watcher st.pag (nvar st m ctx y) (fun o ->
          Pag.add_copy st.pag ~src:(Pag.node_id st.pag (Pag.NField (o, f))) ~dst:xnode)
  | Ast.ArrayWrite (x, y) ->
      let ynode = nvar st m ctx y in
      Pag.add_watcher st.pag (nvar st m ctx x) (fun o ->
          Pag.add_copy st.pag ~src:ynode ~dst:(Pag.node_id st.pag (Pag.NField (o, "*"))))
  | Ast.ArrayRead (x, y) ->
      let xnode = nvar st m ctx x in
      Pag.add_watcher st.pag (nvar st m ctx y) (fun o ->
          Pag.add_copy st.pag ~src:(Pag.node_id st.pag (Pag.NField (o, "*"))) ~dst:xnode)
  | Ast.StaticWrite (c, f, y) ->
      Pag.add_copy st.pag ~src:(nvar st m ctx y)
        ~dst:(Pag.node_id st.pag (Pag.NStatic (c, f)))
  | Ast.StaticRead (x, c, f) ->
      Pag.add_copy st.pag ~src:(Pag.node_id st.pag (Pag.NStatic (c, f)))
        ~dst:(nvar st m ctx x)
  | Ast.Call (ret, y, mname, args) ->
      let arg_nodes = List.map (nvar st m ctx) args in
      let ret_node = Option.map (nvar st m ctx) ret in
      (* §4.3: a call to a function whose body does not exist anywhere in
         the program is external; its result is an anonymous object so
         downstream accesses are still analyzed *)
      if not (Program.any_method_named p mname) then begin
        match ret_node with
        | Some r ->
            let hctx = heap_ctx policy ctx in
            let oid =
              Pag.obj_id st.pag
                { Pag.ob_site = site; ob_class = "<external>"; ob_hctx = hctx }
            in
            Pag.add_obj st.pag r oid
        | None -> ()
      end;
      Pag.add_watcher st.pag (nvar st m ctx y) (fun oid ->
          let o = Pag.obj st.pag oid in
          match Program.dispatch p o.Pag.ob_class mname with
          | None -> ()
          | Some target ->
              let cctx =
                Context.push_call policy ~ctx ~site ~recv_site:o.Pag.ob_site
                  ~recv_hctx:o.Pag.ob_hctx
              in
              bind_call st ~site ~ctx ~target ~cctx ~this:(Some oid) ~arg_nodes
                ~ret_node)
  | Ast.StaticCall (ret, c, mname, args) -> (
      match Program.static_method p c mname with
      | None -> ()
      | Some target ->
          let cctx = Context.push_call_static policy ~ctx ~site in
          let arg_nodes = List.map (nvar st m ctx) args in
          let ret_node = Option.map (nvar st m ctx) ret in
          bind_call st ~site ~ctx ~target ~cctx ~this:None ~arg_nodes ~ret_node)
  | Ast.Start x ->
      let in_loop = Program.stmt_in_loop p site in
      Pag.add_watcher st.pag (nvar st m ctx x) (fun oid ->
          let o = Pag.obj st.pag oid in
          match Program.kind_of p o.Pag.ob_class with
          | Program.Kthread _ -> (
              match Program.entry_method p o.Pag.ob_class with
              | None -> ()
              | Some entry ->
                  let ectx = entry_ctx st ~ctx ~site ~oid ~o in
                  reach st entry ectx;
                  Pag.add_obj st.pag (nvar st entry ectx "this") oid;
                  record_spawn st ~site ~entry ~ectx ~obj:oid ~kind:`Thread
                    ~in_loop ~attr_nodes:(origin_attr_nodes_of st o))
          | _ -> ())
  | Ast.Post (x, args) ->
      let in_loop = Program.stmt_in_loop p site in
      let arg_nodes = List.map (nvar st m ctx) args in
      Pag.add_watcher st.pag (nvar st m ctx x) (fun oid ->
          let o = Pag.obj st.pag oid in
          match Program.kind_of p o.Pag.ob_class with
          | Program.Khandler _ -> (
              match Program.entry_method p o.Pag.ob_class with
              | None -> ()
              | Some entry ->
                  let ectx = entry_ctx st ~ctx ~site ~oid ~o in
                  reach st entry ectx;
                  Pag.add_obj st.pag (nvar st entry ectx "this") oid;
                  bind_params st entry ectx arg_nodes;
                  record_spawn st ~site ~entry ~ectx ~obj:oid ~kind:`Event
                    ~in_loop
                    ~attr_nodes:(arg_nodes @ origin_attr_nodes_of st o))
          | _ -> ())
  | Ast.Sync (_, body) -> process_body st m ctx info body
  | Ast.If (a, b) ->
      process_body st m ctx info a;
      process_body st m ctx info b
  | Ast.While body -> process_body st m ctx info body
  | Ast.Return (Some v) ->
      Pag.add_copy st.pag ~src:(nvar st m ctx v) ~dst:(nret st m ctx)

(* Formal-parameter binding: actuals use the caller's context, formals the
   callee's (Table 2 ❽/❾ ownership note). *)
and bind_params st (target : Program.meth) cctx arg_nodes =
  List.iteri
    (fun i param ->
      match List.nth_opt arg_nodes i with
      | Some a -> Pag.add_copy st.pag ~src:a ~dst:(nvar st target cctx param)
      | None -> ())
    target.Program.m_params

and bind_call st ~site ~ctx ~target ~cctx ~this ~arg_nodes ~ret_node =
  reach st ~via_site:site target cctx;
  (match this with
  | Some oid -> Pag.add_obj st.pag (nvar st target cctx "this") oid
  | None -> ());
  bind_params st target cctx arg_nodes;
  (match ret_node with
  | Some r -> Pag.add_copy st.pag ~src:(nret st target cctx) ~dst:r
  | None -> ());
  record_call_edge st ~site ~ctx (target, cctx)

(* Context for a thread/handler entry (Table 2 ❾): under the origin policy
   the origin was attached to the object at its allocation — the entry runs
   in the object's heap context. Other policies use their usual call rule. *)
and entry_ctx st ~ctx ~site ~oid ~(o : Pag.obj) =
  match st.policy with
  | Context.Korigin _ -> o.Pag.ob_hctx
  | policy ->
      ignore oid;
      Context.push_call policy ~ctx ~site ~recv_site:o.Pag.ob_site
        ~recv_hctx:o.Pag.ob_hctx

(* Attribute nodes of the origin carried by object [o]: registered at the
   origin allocation (origin policy); empty otherwise. *)
and origin_attr_nodes_of st (o : Pag.obj) =
  match o.Pag.ob_hctx with
  | Context.Corigin (og :: _) -> (
      match Hashtbl.find_opt st.origin_attr_nodes og with
      | Some l -> !l
      | None -> [])
  | _ -> []

and process_new st (m : Program.meth) ctx info ~site ~x ~c ~args =
  let p = st.program in
  let policy = st.policy in
  let arg_nodes = List.map (nvar st m ctx) args in
  let xnode = nvar st m ctx x in
  let is_origin_alloc =
    match (policy, Program.kind_of p c) with
    | Context.Korigin _, (Program.Kthread _ | Program.Khandler _) -> true
    | _ -> false
  in
  if not is_origin_alloc then begin
    let hctx = heap_ctx policy ctx in
    let oid = Pag.obj_id st.pag { Pag.ob_site = site; ob_class = c; ob_hctx = hctx } in
    Pag.add_obj st.pag xnode oid;
    match Program.dispatch p c "init" with
    | None -> ()
    | Some init ->
        let cctx =
          Context.push_call policy ~ctx ~site ~recv_site:site ~recv_hctx:hctx
        in
        bind_call st ~site ~ctx ~target:init ~cctx ~this:(Some oid) ~arg_nodes
          ~ret_node:None
  end
  else begin
    (* Table 2 rule ❽: context switch at the origin allocation. "A new and
       unique origin is created for this new allocation": identity includes
       the immediate parent origin, so e.g. each copy of a loop-doubled
       parent spawns its own child origins (soundness of the doubling).
       Recursive spawn chains are collapsed — when an ancestor origin was
       created at this same allocation site, the parent is dropped from the
       identity — keeping the registry finite. *)
    let k = match policy with Context.Korigin k -> k | _ -> 1 in
    let chain = match ctx with Context.Corigin ch -> ch | _ -> [ 0 ] in
    let parent = match chain with pr :: _ -> pr | [] -> 0 in
    let rec ancestry_has_site og_id =
      og_id > 0
      &&
      let og = OriginIntern.value st.origin_reg og_id in
      og.Context.og_site = site
      ||
      match og.Context.og_parent with
      | pr :: _ -> ancestry_has_site pr
      | [] -> false
    in
    let id_parent =
      if parent = 0 || ancestry_has_site parent then [] else [ parent ]
    in
    let copies = if Program.stmt_in_loop p site then [ 0; 1 ] else [ 0 ] in
    let alloc_under ~wrapper =
      List.iter
        (fun copy ->
          let og : Context.origin =
            {
              Context.og_site = site;
              og_wrapper = wrapper;
              og_copy = copy;
              og_class = c;
              og_parent = id_parent;
            }
          in
          let og_id = OriginIntern.intern st.origin_reg og in
          (match Hashtbl.find_opt st.origin_attr_nodes og_id with
          | Some l ->
              List.iter
                (fun a ->
                  if not (Hashtbl.mem st.origin_attr_seen (og_id, a)) then begin
                    Hashtbl.add st.origin_attr_seen (og_id, a) ();
                    l := a :: !l
                  end)
                arg_nodes
          | None ->
              List.iter
                (fun a -> Hashtbl.replace st.origin_attr_seen (og_id, a) ())
                arg_nodes;
              Hashtbl.add st.origin_attr_nodes og_id (ref arg_nodes));
          let chain' = Context.truncate k (og_id :: chain) in
          let hctx = Context.Corigin chain' in
          let oid =
            Pag.obj_id st.pag { Pag.ob_site = site; ob_class = c; ob_hctx = hctx }
          in
          Pag.add_obj st.pag xnode oid;
          match Program.dispatch p c "init" with
          | None -> ()
          | Some init ->
              (* the init and the constructor-argument formals live in the
                 new origin (Figure 3) *)
              bind_call st ~site ~ctx ~target:init ~cctx:hctx ~this:(Some oid)
                ~arg_nodes ~ret_node:None)
        copies
    in
    (* one origin per incoming wrapper call site known now; re-done for call
       sites discovered later via the redo closure *)
    (match info.incoming with
    | [] -> alloc_under ~wrapper:(-1)
    | sites -> List.iter (fun ws -> alloc_under ~wrapper:ws) sites);
    info.origin_allocs <- (fun ws -> alloc_under ~wrapper:ws) :: info.origin_allocs
  end

(* ----------------------------------------------------------------------- *)

let analyze ?(policy = Context.Korigin 1) ?metrics ?budget program =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  let check =
    match budget with
    | None -> None
    | Some b when Budget.is_unlimited b -> None
    | Some b -> Some (fun steps -> Budget.check b ~steps)
  in
  let st =
    {
      program;
      policy;
      pag = Pag.create ();
      reach_tbl = Hashtbl.create 256;
      call_edges = Hashtbl.create 256;
      call_edge_keys = Hashtbl.create 256;
      n_call_edges = 0;
      spawn_list = [];
      spawn_keys = Hashtbl.create 64;
      join_list = [];
      origin_reg = OriginIntern.create ();
      origin_attr_nodes = Hashtbl.create 64;
      origin_attr_seen = Hashtbl.create 64;
      stats = m;
      spawn_arr = [||];
    }
  in
  (* origin id 0 is main *)
  let zero = OriginIntern.intern st.origin_reg Context.main_origin in
  assert (zero = 0);
  let main = Program.main program in
  let ectx = Context.entry policy in
  Metrics.span m "pta.solve" (fun () ->
      reach st main ectx;
      Pag.solve ?check st.pag;
      (* watchers added during solving may have queued more work *)
      Pag.solve ?check st.pag);
  record_spawn st ~site:(-1) ~entry:main ~ectx ~obj:(-1) ~kind:`Main
    ~in_loop:false ~attr_nodes:[];
  let sps =
    List.rev st.spawn_list
    |> List.sort (fun a b ->
           match (a.sp_kind, b.sp_kind) with
           | `Main, `Main -> 0
           | `Main, _ -> -1
           | _, `Main -> 1
           | _ -> compare (a.sp_site, a.sp_obj) (b.sp_site, b.sp_obj))
  in
  st.spawn_arr <- Array.of_list (List.mapi (fun i sp -> { sp with sp_id = i }) sps);
  (* the paper's Table 6 columns plus the solver-internal work counters *)
  Metrics.set m "pta.pointers" (Pag.n_nodes st.pag);
  Metrics.set m "pta.objects" (Pag.n_objs st.pag);
  Metrics.set m "pta.edges" (Pag.n_edges st.pag);
  Metrics.set m "pta.reached_methods" (Hashtbl.length st.reach_tbl);
  Metrics.set m "pta.call_edges" st.n_call_edges;
  Metrics.set m "pta.worklist_iters" (Pag.n_worklist_iters st.pag);
  Metrics.set m "pta.worklist_pushes" (Pag.n_worklist_pushes st.pag);
  Metrics.gauge_set m "pta.worklist_peak" (Pag.worklist_peak st.pag);
  Metrics.set m "pta.pts_adds" (Pag.n_pts_adds st.pag);
  Metrics.set m "pta.pts_facts" (Pag.n_pts_facts st.pag);
  Metrics.set m "pta.spawns" (Array.length st.spawn_arr);
  Metrics.set m "pta.origins"
    (match policy with
    | Context.Korigin _ -> max 0 (OriginIntern.count st.origin_reg - 1)
    | _ -> max 0 (Array.length st.spawn_arr - 1));
  st

let program t = t.program
let policy t = t.policy
let pag t = t.pag

let pts_var t (m : Program.meth) ctx v =
  match
    Pag.node_id t.pag (Pag.NVar (m.Program.m_class, m.Program.m_name, v, ctx))
  with
  | id -> Pag.pts t.pag id

let callees t ~site ~ctx =
  match Hashtbl.find_opt t.call_edges (site, ctx) with
  | Some l -> !l
  | None -> []

let spawns t = t.spawn_arr
let joins t = t.join_list

let origins t =
  Array.init (OriginIntern.count t.origin_reg) (fun i ->
      OriginIntern.value t.origin_reg i)

let origin_attrs t og =
  match Hashtbl.find_opt t.origin_attr_nodes og with
  | None -> []
  | Some nodes ->
      List.concat_map
        (fun n -> Bitset.elements (Pag.pts t.pag n))
        !nodes
      |> List.sort_uniq compare

let reached t =
  Hashtbl.fold
    (fun (c, mn, ctx) info acc ->
      if not info.processed then acc
      else
        match Program.find_class t.program c with
        | Some _ -> (
            match
              List.find_opt
                (fun (m : Program.meth) -> m.Program.m_name = mn)
                (Program.methods_of t.program c)
            with
            | Some m -> (m, ctx) :: acc
            | None -> acc)
        | None -> acc)
    t.reach_tbl []

let is_reached t (m : Program.meth) =
  Hashtbl.fold
    (fun (c, mn, _) info acc ->
      acc
      || (info.processed && c = m.Program.m_class && mn = m.Program.m_name))
    t.reach_tbl false

let origin_of_spawn t (sp : spawn) =
  match (t.policy, sp.sp_ectx) with
  | Context.Korigin _, Context.Corigin (og :: _) -> og
  | _ ->
      (* other policies have no origin registry: each spawn is its own
         origin; offset past the registry ids to keep the spaces disjoint *)
      OriginIntern.count t.origin_reg + sp.sp_id

let n_origins t =
  match t.policy with
  | Context.Korigin _ -> max 0 (OriginIntern.count t.origin_reg - 1)
  | _ -> max 0 (Array.length t.spawn_arr - 1)

let stats t = t.stats
