open O2_ir
open O2_util

(* The seed's immediate-firing serial solver, preserved as the executable
   specification of Table 2. The production engine ({!Solver}) restructures
   constraint generation into parallel describe phases and difference
   propagation; this module keeps the straightforward recursive formulation
   so property tests can certify the engine against it and the benchmarks
   can report an honest serial baseline. Nothing here is reachable from the
   analysis pipeline. *)

module OPag = struct
  [@@@warning "-32"]
  module ObjIntern = Intern.Make (struct
    type t = Pag.obj

    let equal = ( = )
    let hash = Hashtbl.hash
  end)

  module NodeIntern = Intern.Make (struct
    type t = Pag.node

    let equal = ( = )
    let hash = Hashtbl.hash
  end)

  type t = {
    objs : ObjIntern.t;
    nodes : NodeIntern.t;
    mutable pts : Bitset.t array;
    succs : (int, int list ref) Hashtbl.t;
    edge_set : (int * int, unit) Hashtbl.t;
    watchers : (int, (int -> unit) list ref) Hashtbl.t;
    mutable worklist : (int * int list) list;  (* (node, delta objs), LIFO *)
  }

  let create () =
    {
      objs = ObjIntern.create ();
      nodes = NodeIntern.create ();
      pts = [||];
      succs = Hashtbl.create 256;
      edge_set = Hashtbl.create 256;
      watchers = Hashtbl.create 64;
      worklist = [];
    }

  let obj_id g o = ObjIntern.intern g.objs o
  let obj g id = ObjIntern.value g.objs id

  let ensure_pts g id =
    let n = Array.length g.pts in
    if id >= n then begin
      let cap = max 64 (max (id + 1) (n * 2)) in
      let a =
        Array.init cap (fun i -> if i < n then g.pts.(i) else Bitset.create ())
      in
      g.pts <- a
    end

  let node_id g n =
    let id = NodeIntern.intern g.nodes n in
    ensure_pts g id;
    id

  let pts g id = g.pts.(id)

  let schedule g n delta =
    if delta <> [] then g.worklist <- (n, delta) :: g.worklist

  let add_obj g n o = if Bitset.add g.pts.(n) o then schedule g n [ o ]

  let add_copy g ~src ~dst =
    if src <> dst && not (Hashtbl.mem g.edge_set (src, dst)) then begin
      Hashtbl.add g.edge_set (src, dst) ();
      (match Hashtbl.find_opt g.succs src with
      | Some l -> l := dst :: !l
      | None -> Hashtbl.add g.succs src (ref [ dst ]));
      let delta =
        Bitset.fold
          (fun o acc -> if Bitset.add g.pts.(dst) o then o :: acc else acc)
          g.pts.(src) []
      in
      schedule g dst delta
    end

  let add_watcher g n f =
    (match Hashtbl.find_opt g.watchers n with
    | Some l -> l := f :: !l
    | None -> Hashtbl.add g.watchers n (ref [ f ]));
    Bitset.iter f g.pts.(n)

  let solve g =
    let rec loop () =
      match g.worklist with
      | [] -> ()
      | (n, delta) :: rest ->
          g.worklist <- rest;
          (match Hashtbl.find_opt g.succs n with
          | Some l ->
              List.iter
                (fun dst ->
                  let fresh =
                    List.filter (fun o -> Bitset.add g.pts.(dst) o) delta
                  in
                  schedule g dst fresh)
                !l
          | None -> ());
          (match Hashtbl.find_opt g.watchers n with
          | Some l ->
              let fs = !l in
              List.iter (fun o -> List.iter (fun f -> f o) fs) delta
          | None -> ());
          loop ()
    in
    loop ()

  let iter_nodes f g = NodeIntern.iter (fun id n -> f id n g.pts.(id)) g.nodes
end

type spawn = {
  sp_site : int;
  sp_entry : Program.meth;
  sp_ectx : Context.t;
  sp_obj : int;
  sp_kind : [ `Main | `Thread | `Event ];
  sp_in_loop : bool;
}

module OriginIntern = Intern.Make (struct
  type t = Context.origin

  let equal = ( = )
  let hash = Hashtbl.hash
end)

type meth_key = Types.cname * Types.mname * Context.t

type reach_info = {
  mutable incoming : int list;
  incoming_set : (int, unit) Hashtbl.t;
  mutable processed : bool;
  mutable origin_allocs : (int -> unit) list;
}

type t = {
  program : Program.t;
  policy : Context.policy;
  pag : OPag.t;
  reach_tbl : (meth_key, reach_info) Hashtbl.t;
  call_edges : (int * Context.t, (Program.meth * Context.t) list ref) Hashtbl.t;
  call_edge_keys :
    (int * Context.t * Types.cname * Types.mname * Context.t, unit) Hashtbl.t;
  mutable spawn_list : spawn list;
  spawn_keys :
    (int * Types.cname * Types.mname * Context.t * int, unit) Hashtbl.t;
  mutable join_list : (int * Types.cname * Types.mname * Context.t * Types.vname) list;
  origin_reg : OriginIntern.t;
  origin_attr_nodes : (int, int list ref) Hashtbl.t;
  origin_attr_seen : (int * int, unit) Hashtbl.t;
}

let nvar st (m : Program.meth) ctx v =
  OPag.node_id st.pag (Pag.NVar (m.Program.m_class, m.Program.m_name, v, ctx))

let nret st (m : Program.meth) ctx =
  OPag.node_id st.pag (Pag.NRet (m.Program.m_class, m.Program.m_name, ctx))

let record_call_edge st ~site ~ctx ((target, cctx) as callee) =
  let dedup =
    (site, ctx, target.Program.m_class, target.Program.m_name, cctx)
  in
  if not (Hashtbl.mem st.call_edge_keys dedup) then begin
    Hashtbl.add st.call_edge_keys dedup ();
    match Hashtbl.find_opt st.call_edges (site, ctx) with
    | Some l -> l := callee :: !l
    | None -> Hashtbl.add st.call_edges (site, ctx) (ref [ callee ])
  end

let record_spawn st ~site ~entry ~ectx ~obj ~kind ~in_loop =
  let key = (site, entry.Program.m_class, entry.Program.m_name, ectx, obj) in
  if not (Hashtbl.mem st.spawn_keys key) then begin
    Hashtbl.add st.spawn_keys key ();
    st.spawn_list <-
      {
        sp_site = site;
        sp_entry = entry;
        sp_ectx = ectx;
        sp_obj = obj;
        sp_kind = kind;
        sp_in_loop = in_loop;
      }
      :: st.spawn_list
  end

let heap_ctx policy (ctx : Context.t) : Context.t =
  match policy with Context.Insensitive -> Context.Cempty | _ -> ctx

let rec reach st ?(via_site = -1) (m : Program.meth) (ctx : Context.t) =
  let key = (m.Program.m_class, m.Program.m_name, ctx) in
  let info =
    match Hashtbl.find_opt st.reach_tbl key with
    | Some i -> i
    | None ->
        let i =
          {
            incoming = [];
            incoming_set = Hashtbl.create 4;
            processed = false;
            origin_allocs = [];
          }
        in
        Hashtbl.add st.reach_tbl key i;
        i
  in
  let new_site =
    via_site >= 0 && not (Hashtbl.mem info.incoming_set via_site)
  in
  if new_site then begin
    Hashtbl.add info.incoming_set via_site ();
    info.incoming <- via_site :: info.incoming
  end;
  if not info.processed then begin
    info.processed <- true;
    process_body st m ctx info m.Program.m_body
  end
  else if new_site then
    List.iter (fun redo -> redo via_site) info.origin_allocs

and process_body st (m : Program.meth) ctx info body =
  List.iter (fun s -> process_stmt st m ctx info s) body

and process_stmt st (m : Program.meth) ctx info (s : Ast.stmt) =
  let site = s.Ast.sid in
  let p = st.program in
  let policy = st.policy in
  match s.Ast.sk with
  | Ast.Null _ | Ast.Return None | Ast.Signal _ | Ast.Wait _ -> ()
  | Ast.Join x ->
      st.join_list <-
        (site, m.Program.m_class, m.Program.m_name, ctx, x) :: st.join_list
  | Ast.Assign (x, y) ->
      OPag.add_copy st.pag ~src:(nvar st m ctx y) ~dst:(nvar st m ctx x)
  | Ast.New (x, c, args) -> process_new st m ctx info ~site ~x ~c ~args
  | Ast.FieldWrite (x, f, y) ->
      let ynode = nvar st m ctx y in
      OPag.add_watcher st.pag (nvar st m ctx x) (fun o ->
          OPag.add_copy st.pag ~src:ynode
            ~dst:(OPag.node_id st.pag (Pag.NField (o, f))))
  | Ast.FieldRead (x, y, f) ->
      let xnode = nvar st m ctx x in
      OPag.add_watcher st.pag (nvar st m ctx y) (fun o ->
          OPag.add_copy st.pag
            ~src:(OPag.node_id st.pag (Pag.NField (o, f)))
            ~dst:xnode)
  | Ast.ArrayWrite (x, y) ->
      let ynode = nvar st m ctx y in
      OPag.add_watcher st.pag (nvar st m ctx x) (fun o ->
          OPag.add_copy st.pag ~src:ynode
            ~dst:(OPag.node_id st.pag (Pag.NField (o, "*"))))
  | Ast.ArrayRead (x, y) ->
      let xnode = nvar st m ctx x in
      OPag.add_watcher st.pag (nvar st m ctx y) (fun o ->
          OPag.add_copy st.pag
            ~src:(OPag.node_id st.pag (Pag.NField (o, "*")))
            ~dst:xnode)
  | Ast.StaticWrite (c, f, y) ->
      OPag.add_copy st.pag ~src:(nvar st m ctx y)
        ~dst:(OPag.node_id st.pag (Pag.NStatic (c, f)))
  | Ast.StaticRead (x, c, f) ->
      OPag.add_copy st.pag
        ~src:(OPag.node_id st.pag (Pag.NStatic (c, f)))
        ~dst:(nvar st m ctx x)
  | Ast.Call (ret, y, mname, args) ->
      let arg_nodes = List.map (nvar st m ctx) args in
      let ret_node = Option.map (nvar st m ctx) ret in
      if not (Program.any_method_named p mname) then begin
        match ret_node with
        | Some r ->
            let hctx = heap_ctx policy ctx in
            let oid =
              OPag.obj_id st.pag
                { Pag.ob_site = site; ob_class = "<external>"; ob_hctx = hctx }
            in
            OPag.add_obj st.pag r oid
        | None -> ()
      end;
      OPag.add_watcher st.pag (nvar st m ctx y) (fun oid ->
          let o = OPag.obj st.pag oid in
          match Program.dispatch p o.Pag.ob_class mname with
          | None -> ()
          | Some target ->
              let cctx =
                Context.push_call policy ~ctx ~site ~recv_site:o.Pag.ob_site
                  ~recv_hctx:o.Pag.ob_hctx
              in
              bind_call st ~site ~ctx ~target ~cctx ~this:(Some oid) ~arg_nodes
                ~ret_node)
  | Ast.StaticCall (ret, c, mname, args) -> (
      match Program.static_method p c mname with
      | None -> ()
      | Some target ->
          let cctx = Context.push_call_static policy ~ctx ~site in
          let arg_nodes = List.map (nvar st m ctx) args in
          let ret_node = Option.map (nvar st m ctx) ret in
          bind_call st ~site ~ctx ~target ~cctx ~this:None ~arg_nodes ~ret_node)
  | Ast.Start x ->
      let in_loop = Program.stmt_in_loop p site in
      OPag.add_watcher st.pag (nvar st m ctx x) (fun oid ->
          let o = OPag.obj st.pag oid in
          match Program.kind_of p o.Pag.ob_class with
          | Program.Kthread _ -> (
              match Program.entry_method p o.Pag.ob_class with
              | None -> ()
              | Some entry ->
                  let ectx = entry_ctx st ~ctx ~site ~o in
                  reach st entry ectx;
                  OPag.add_obj st.pag (nvar st entry ectx "this") oid;
                  record_spawn st ~site ~entry ~ectx ~obj:oid ~kind:`Thread
                    ~in_loop)
          | _ -> ())
  | Ast.Post (x, args) ->
      let in_loop = Program.stmt_in_loop p site in
      let arg_nodes = List.map (nvar st m ctx) args in
      OPag.add_watcher st.pag (nvar st m ctx x) (fun oid ->
          let o = OPag.obj st.pag oid in
          match Program.kind_of p o.Pag.ob_class with
          | Program.Khandler _ -> (
              match Program.entry_method p o.Pag.ob_class with
              | None -> ()
              | Some entry ->
                  let ectx = entry_ctx st ~ctx ~site ~o in
                  reach st entry ectx;
                  OPag.add_obj st.pag (nvar st entry ectx "this") oid;
                  bind_params st entry ectx arg_nodes;
                  record_spawn st ~site ~entry ~ectx ~obj:oid ~kind:`Event
                    ~in_loop)
          | _ -> ())
  | Ast.Sync (_, body) -> process_body st m ctx info body
  | Ast.If (a, b) ->
      process_body st m ctx info a;
      process_body st m ctx info b
  | Ast.While body -> process_body st m ctx info body
  | Ast.Return (Some v) ->
      OPag.add_copy st.pag ~src:(nvar st m ctx v) ~dst:(nret st m ctx)

and bind_params st (target : Program.meth) cctx arg_nodes =
  List.iteri
    (fun i param ->
      match List.nth_opt arg_nodes i with
      | Some a -> OPag.add_copy st.pag ~src:a ~dst:(nvar st target cctx param)
      | None -> ())
    target.Program.m_params

and bind_call st ~site ~ctx ~target ~cctx ~this ~arg_nodes ~ret_node =
  reach st ~via_site:site target cctx;
  (match this with
  | Some oid -> OPag.add_obj st.pag (nvar st target cctx "this") oid
  | None -> ());
  bind_params st target cctx arg_nodes;
  (match ret_node with
  | Some r -> OPag.add_copy st.pag ~src:(nret st target cctx) ~dst:r
  | None -> ());
  record_call_edge st ~site ~ctx (target, cctx)

and entry_ctx st ~ctx ~site ~(o : Pag.obj) =
  match st.policy with
  | Context.Korigin _ -> o.Pag.ob_hctx
  | policy ->
      Context.push_call policy ~ctx ~site ~recv_site:o.Pag.ob_site
        ~recv_hctx:o.Pag.ob_hctx

and process_new st (m : Program.meth) ctx info ~site ~x ~c ~args =
  let p = st.program in
  let policy = st.policy in
  let arg_nodes = List.map (nvar st m ctx) args in
  let xnode = nvar st m ctx x in
  let is_origin_alloc =
    match (policy, Program.kind_of p c) with
    | Context.Korigin _, (Program.Kthread _ | Program.Khandler _) -> true
    | _ -> false
  in
  if not is_origin_alloc then begin
    let hctx = heap_ctx policy ctx in
    let oid =
      OPag.obj_id st.pag { Pag.ob_site = site; ob_class = c; ob_hctx = hctx }
    in
    OPag.add_obj st.pag xnode oid;
    match Program.dispatch p c "init" with
    | None -> ()
    | Some init ->
        let cctx =
          Context.push_call policy ~ctx ~site ~recv_site:site ~recv_hctx:hctx
        in
        bind_call st ~site ~ctx ~target:init ~cctx ~this:(Some oid) ~arg_nodes
          ~ret_node:None
  end
  else begin
    let k = match policy with Context.Korigin k -> k | _ -> 1 in
    let chain = match ctx with Context.Corigin ch -> ch | _ -> [ 0 ] in
    let parent = match chain with pr :: _ -> pr | [] -> 0 in
    let rec ancestry_has_site og_id =
      og_id > 0
      &&
      let og = OriginIntern.value st.origin_reg og_id in
      og.Context.og_site = site
      ||
      match og.Context.og_parent with
      | pr :: _ -> ancestry_has_site pr
      | [] -> false
    in
    let id_parent =
      if parent = 0 || ancestry_has_site parent then [] else [ parent ]
    in
    let copies = if Program.stmt_in_loop p site then [ 0; 1 ] else [ 0 ] in
    let alloc_under ~wrapper =
      List.iter
        (fun copy ->
          let og : Context.origin =
            {
              Context.og_site = site;
              og_wrapper = wrapper;
              og_copy = copy;
              og_class = c;
              og_parent = id_parent;
            }
          in
          let og_id = OriginIntern.intern st.origin_reg og in
          (match Hashtbl.find_opt st.origin_attr_nodes og_id with
          | Some l ->
              List.iter
                (fun a ->
                  if not (Hashtbl.mem st.origin_attr_seen (og_id, a)) then begin
                    Hashtbl.add st.origin_attr_seen (og_id, a) ();
                    l := a :: !l
                  end)
                arg_nodes
          | None ->
              List.iter
                (fun a -> Hashtbl.replace st.origin_attr_seen (og_id, a) ())
                arg_nodes;
              Hashtbl.add st.origin_attr_nodes og_id (ref arg_nodes));
          let chain' = Context.truncate k (og_id :: chain) in
          let hctx = Context.Corigin chain' in
          let oid =
            OPag.obj_id st.pag { Pag.ob_site = site; ob_class = c; ob_hctx = hctx }
          in
          OPag.add_obj st.pag xnode oid;
          match Program.dispatch p c "init" with
          | None -> ()
          | Some init ->
              bind_call st ~site ~ctx ~target:init ~cctx:hctx ~this:(Some oid)
                ~arg_nodes ~ret_node:None)
        copies
    in
    (match info.incoming with
    | [] -> alloc_under ~wrapper:(-1)
    | sites -> List.iter (fun ws -> alloc_under ~wrapper:ws) sites);
    info.origin_allocs <-
      (fun ws -> alloc_under ~wrapper:ws) :: info.origin_allocs
  end

let analyze ?(policy = Context.Korigin 1) program =
  Context.validate_policy policy;
  let st =
    {
      program;
      policy;
      pag = OPag.create ();
      reach_tbl = Hashtbl.create 256;
      call_edges = Hashtbl.create 256;
      call_edge_keys = Hashtbl.create 256;
      spawn_list = [];
      spawn_keys = Hashtbl.create 64;
      join_list = [];
      origin_reg = OriginIntern.create ();
      origin_attr_nodes = Hashtbl.create 64;
      origin_attr_seen = Hashtbl.create 64;
    }
  in
  let zero = OriginIntern.intern st.origin_reg Context.main_origin in
  assert (zero = 0);
  let main = Program.main program in
  let ectx = Context.entry policy in
  reach st main ectx;
  OPag.solve st.pag;
  OPag.solve st.pag;
  record_spawn st ~site:(-1) ~entry:main ~ectx ~obj:(-1) ~kind:`Main
    ~in_loop:false;
  st

(* -- canonical fingerprint ---------------------------------------------- *)

(* Identifier-free dump of the solved facts. Interned ids (objects,
   origins) depend on discovery order, which differs between this oracle
   and the round-based engine, so everything is rendered structurally;
   {!Solver.fingerprint} emits the same format and equality of the two
   strings is the property the tests assert. *)

let rec canon_origin origin_of buf og_id =
  let og : Context.origin = origin_of og_id in
  if og.Context.og_site = -1 then Buffer.add_string buf "O<main>"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "O(%s@%d/w%d'%d" og.Context.og_class og.Context.og_site
         og.Context.og_wrapper og.Context.og_copy);
    List.iter
      (fun parent ->
        Buffer.add_char buf '<';
        canon_origin origin_of buf parent)
      og.Context.og_parent;
    Buffer.add_char buf ')'
  end

let canon_ctx origin_of buf (ctx : Context.t) =
  match ctx with
  | Context.Cempty -> Buffer.add_string buf "[]"
  | Context.Ccall xs ->
      Buffer.add_string buf "cfa[";
      List.iter (fun s -> Buffer.add_string buf (string_of_int s ^ ";")) xs;
      Buffer.add_char buf ']'
  | Context.Cobj xs ->
      Buffer.add_string buf "obj[";
      List.iter (fun s -> Buffer.add_string buf (string_of_int s ^ ";")) xs;
      Buffer.add_char buf ']'
  | Context.Corigin xs ->
      Buffer.add_string buf "org[";
      List.iter
        (fun og ->
          canon_origin origin_of buf og;
          Buffer.add_char buf ';')
        xs;
      Buffer.add_char buf ']'

let canon_obj origin_of buf (o : Pag.obj) =
  Buffer.add_string buf
    (Printf.sprintf "obj<%s@%d|" o.Pag.ob_class o.Pag.ob_site);
  canon_ctx origin_of buf o.Pag.ob_hctx;
  Buffer.add_char buf '>'

let canon_node origin_of buf (n : Pag.node) obj_of =
  match n with
  | Pag.NVar (c, m, v, ctx) ->
      Buffer.add_string buf (Printf.sprintf "var %s.%s.%s @" c m v);
      canon_ctx origin_of buf ctx
  | Pag.NRet (c, m, ctx) ->
      Buffer.add_string buf (Printf.sprintf "ret %s.%s @" c m);
      canon_ctx origin_of buf ctx
  | Pag.NField (oid, f) ->
      Buffer.add_string buf "fld ";
      canon_obj origin_of buf (obj_of oid);
      Buffer.add_string buf ("." ^ f)
  | Pag.NStatic (c, f) -> Buffer.add_string buf (Printf.sprintf "static %s.%s" c f)

let fingerprint_parts ~origin_of ~iter_nodes ~obj_of ~spawns ~call_edges
    ~joins =
  let lines = ref [] in
  let add line = lines := line :: !lines in
  iter_nodes (fun (n : Pag.node) (set : Bitset.t) ->
      if not (Bitset.is_empty set) then begin
        let buf = Buffer.create 64 in
        canon_node origin_of buf n obj_of;
        Buffer.add_string buf " => {";
        let objs =
          Bitset.fold
            (fun oid acc ->
              let b = Buffer.create 32 in
              canon_obj origin_of b (obj_of oid);
              Buffer.contents b :: acc)
            set []
          |> List.sort compare
        in
        List.iter
          (fun s ->
            Buffer.add_string buf s;
            Buffer.add_char buf ' ')
          objs;
        Buffer.add_char buf '}';
        add (Buffer.contents buf)
      end);
  List.iter
    (fun (site, kind, (entry : Program.meth), ectx, obj, in_loop) ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf
        (Printf.sprintf "spawn %s@%d %s.%s loop=%b obj=" kind site
           entry.Program.m_class entry.Program.m_name in_loop);
      (match obj with
      | None -> Buffer.add_string buf "<main>"
      | Some o -> canon_obj origin_of buf o);
      Buffer.add_string buf " ectx=";
      canon_ctx origin_of buf ectx;
      add (Buffer.contents buf))
    spawns;
  List.iter
    (fun (site, ctx, (target : Program.meth), cctx) ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf (Printf.sprintf "call @%d " site);
      canon_ctx origin_of buf ctx;
      Buffer.add_string buf
        (Printf.sprintf " -> %s.%s @" target.Program.m_class
           target.Program.m_name);
      canon_ctx origin_of buf cctx;
      add (Buffer.contents buf))
    call_edges;
  List.iter
    (fun (site, c, m, ctx, v) ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf (Printf.sprintf "join @%d %s.%s.%s @" site c m v);
      canon_ctx origin_of buf ctx;
      add (Buffer.contents buf))
    joins;
  String.concat "\n" (List.sort compare !lines)

let fingerprint st =
  let kind_name = function
    | `Main -> "main"
    | `Thread -> "thread"
    | `Event -> "event"
  in
  fingerprint_parts
    ~origin_of:(fun og -> OriginIntern.value st.origin_reg og)
    ~iter_nodes:(fun f -> OPag.iter_nodes (fun _ n set -> f n set) st.pag)
    ~obj_of:(fun oid -> OPag.obj st.pag oid)
    ~spawns:
      (List.map
         (fun sp ->
           ( sp.sp_site,
             kind_name sp.sp_kind,
             sp.sp_entry,
             sp.sp_ectx,
             (if sp.sp_obj < 0 then None else Some (OPag.obj st.pag sp.sp_obj)),
             sp.sp_in_loop ))
         st.spawn_list)
    ~call_edges:
      (Hashtbl.fold
         (fun (site, ctx) l acc ->
           List.fold_left
             (fun acc (target, cctx) -> (site, ctx, target, cctx) :: acc)
             acc !l)
         st.call_edges [])
    ~joins:st.join_list

let n_spawns st = List.length st.spawn_list
