(** The serial reference solver — the executable specification of Table 2.

    This is the seed's immediate-firing recursive solver, kept verbatim and
    out of the production pipeline. It exists for two jobs:

    - {b certification}: the property tests solve every workload with both
      this oracle and the round-based parallel engine ({!Solver.analyze})
      and assert the {!fingerprint}s are byte-identical — the
      equivalence-class style of validation the paper's artifact used;
    - {b honest baselines}: the benchmark trajectory reports the engine's
      speedup against this oracle, not against itself.

    The oracle has no metrics, budget, jobs or incremental features; it
    supports all four {!Context.policy}s. *)

open O2_ir

type t

(** [analyze ?policy p] runs the reference whole-program analysis from
    [main]. Default policy is [Korigin 1].
    @raise Invalid_argument on a k-limited policy with [k < 1]. *)
val analyze : ?policy:Context.policy -> Program.t -> t

(** [fingerprint a] is a canonical, identifier-free dump of the solved
    facts: every non-empty points-to set, every spawn, every call edge and
    every join site, rendered structurally (interned object/origin ids are
    expanded) and sorted. Two analyses agree on all facts iff their
    fingerprints are equal strings; {!Solver.fingerprint} emits the same
    format. *)
val fingerprint : t -> string

(** [n_spawns a] counts recorded spawns (including [main]). *)
val n_spawns : t -> int

(** {2 Canonical-rendering helpers}

    Shared with {!Solver.fingerprint}; [origin_of] expands an interned
    origin id into its structural record. *)

val fingerprint_parts :
  origin_of:(int -> Context.origin) ->
  iter_nodes:((Pag.node -> O2_util.Bitset.t -> unit) -> unit) ->
  obj_of:(int -> Pag.obj) ->
  spawns:
    (int * string * Program.meth * Context.t * Pag.obj option * bool) list ->
  call_edges:(int * Context.t * Program.meth * Context.t) list ->
  joins:(int * Types.cname * Types.mname * Context.t * Types.vname) list ->
  string
