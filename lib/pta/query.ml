open O2_ir

type obj_info = {
  oi_id : int;
  oi_class : Types.cname;
  oi_site : int;
  oi_pos : Types.pos;
  oi_origin : string;
}

let obj_info a oid =
  let o = Pag.obj (a.Solver.pag) oid in
  let pos =
    if o.Pag.ob_site >= 0 then
      let s, _ = Program.stmt (a.Solver.program) o.Pag.ob_site in
      s.Ast.pos
    else Types.dummy_pos
  in
  {
    oi_id = oid;
    oi_class = o.Pag.ob_class;
    oi_site = o.Pag.ob_site;
    oi_pos = pos;
    oi_origin = Format.asprintf "%a" Context.pp o.Pag.ob_hctx;
  }

let pts_ids a ~cls ~meth ~var =
  List.concat_map
    (fun ((m : Program.meth), ctx) ->
      if m.Program.m_class = cls && m.Program.m_name = meth then
        O2_util.Bitset.elements (Solver.pts_var a m ctx var)
      else [])
    (Solver.reached a)
  |> List.sort_uniq compare

let points_to a ~cls ~meth ~var =
  List.map (obj_info a) (pts_ids a ~cls ~meth ~var)

let may_alias a (c1, m1, v1) (c2, m2, v2) =
  let s1 = pts_ids a ~cls:c1 ~meth:m1 ~var:v1 in
  let s2 = pts_ids a ~cls:c2 ~meth:m2 ~var:v2 in
  List.exists (fun o -> List.mem o s2) s1

let objects_of_class a cls =
  let pag = a.Solver.pag in
  let out = ref [] in
  for oid = 0 to Pag.n_objs pag - 1 do
    if (Pag.obj pag oid).Pag.ob_class = cls then out := obj_info a oid :: !out
  done;
  List.rev !out

let meth_name (m : Program.meth) = m.Program.m_class ^ "." ^ m.Program.m_name

let call_graph_edges a =
  let p = a.Solver.program in
  let edges = ref [] in
  List.iter
    (fun ((m : Program.meth), ctx) ->
      Ast.iter_stmts
        (fun s ->
          match s.Ast.sk with
          | Ast.Call _ | Ast.StaticCall _ | Ast.New _ ->
              List.iter
                (fun ((callee : Program.meth), _) ->
                  edges := (meth_name m, meth_name callee, s.Ast.sid) :: !edges)
                (Solver.callees a ~site:s.Ast.sid ~ctx)
          | _ -> ())
        m.Program.m_body)
    (Solver.reached a);
  ignore p;
  List.sort_uniq compare !edges

let reachable_methods a =
  List.map (fun (m, _) -> meth_name m) (Solver.reached a)
  |> List.sort_uniq compare

let pp_obj_info ppf oi =
  Format.fprintf ppf "%s@%d (alloc %a, ctx %s)" oi.oi_class oi.oi_site
    Types.pp_pos oi.oi_pos oi.oi_origin
