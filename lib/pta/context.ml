type origin = {
  og_site : int;
  og_wrapper : int;
  og_copy : int;
  og_class : string;
  og_parent : int list;
}

let main_origin =
  { og_site = -1; og_wrapper = -1; og_copy = 0; og_class = "<main>"; og_parent = [] }

let pp_origin ppf o =
  if o.og_site = -1 then Format.pp_print_string ppf "O<main>"
  else
    Format.fprintf ppf "O(%s@%d%s%s)" o.og_class o.og_site
      (if o.og_wrapper >= 0 then Printf.sprintf "/w%d" o.og_wrapper else "")
      (if o.og_copy > 0 then Printf.sprintf "'%d" o.og_copy else "")

type t =
  | Cempty
  | Ccall of int list
  | Cobj of int list
  | Corigin of int list

let equal (a : t) (b : t) = a = b
let hash (c : t) = Hashtbl.hash c

let pp ppf = function
  | Cempty -> Format.pp_print_string ppf "[]"
  | Ccall xs ->
      Format.fprintf ppf "cfa%a" Fmt.(brackets (list ~sep:comma int)) xs
  | Cobj xs ->
      Format.fprintf ppf "obj%a" Fmt.(brackets (list ~sep:comma int)) xs
  | Corigin xs ->
      Format.fprintf ppf "org%a" Fmt.(brackets (list ~sep:comma int)) xs

type policy = Insensitive | Kcfa of int | Kobj of int | Korigin of int

let policy_name = function
  | Insensitive -> "0-ctx"
  | Kcfa k -> Printf.sprintf "%d-CFA" k
  | Kobj k -> Printf.sprintf "%d-obj" k
  | Korigin 1 -> "O2"
  | Korigin k -> Printf.sprintf "%d-origin" k

(* A k-limited policy with k < 1 would silently truncate every context to
   [] and masquerade as 0-ctx; reject it loudly instead. *)
let validate_policy p =
  match p with
  | (Kcfa k | Kobj k | Korigin k) when k < 1 ->
      invalid_arg
        (Printf.sprintf "Context: non-positive k in policy %s" (policy_name p))
  | _ -> ()

let policy_of_string s =
  match String.lowercase_ascii s with
  | "0-ctx" | "0ctx" | "insensitive" -> Ok Insensitive
  | "o2" | "origin" | "1-origin" -> Ok (Korigin 1)
  | s -> (
      let bad = Error ("bad policy: " ^ s) in
      match String.split_on_char '-' s with
      | [ k; kind ] -> (
          match (int_of_string_opt k, kind) with
          | Some k, ("cfa" | "obj" | "origin") when k < 1 ->
              Error
                (Printf.sprintf
                   "bad policy: %s (k must be >= 1; use 0-ctx for the \
                    context-insensitive analysis)"
                   s)
          | Some k, "cfa" -> Ok (Kcfa k)
          | Some k, "obj" -> Ok (Kobj k)
          | Some k, "origin" -> Ok (Korigin k)
          | _ -> bad)
      | _ -> bad)

let entry policy =
  validate_policy policy;
  match policy with
  | Insensitive -> Cempty
  | Kcfa _ -> Ccall []
  | Kobj _ -> Cobj []
  | Korigin _ -> Corigin [ 0 ]

let truncate k xs =
  let rec go k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: tl -> x :: go (k - 1) tl
  in
  go k xs

let push_call_static policy ~ctx ~site =
  match (policy, ctx) with
  | Insensitive, _ -> Cempty
  | Kcfa k, Ccall sites -> Ccall (truncate k (site :: sites))
  | Kcfa k, _ -> Ccall (truncate k [ site ])
  | (Kobj _ | Korigin _), _ -> ctx

let push_call policy ~ctx ~site ~recv_site ~recv_hctx =
  match policy with
  | Insensitive -> Cempty
  | Kcfa _ -> push_call_static policy ~ctx ~site
  | Kobj k ->
      let chain = match recv_hctx with Cobj xs -> xs | _ -> [] in
      Cobj (truncate k (recv_site :: chain))
  | Korigin _ -> ctx
