(** A RacerD-style syntactic race detector — the comparator of §5.1.3/§5.2.

    Implements the published RacerD design points without any pointer
    analysis (the contrast the paper draws):

    - accesses are keyed {e syntactically} by field name — no aliasing, so
      distinct objects with the same field conflate (false positives) and
      aliased locations reached through different access paths are missed
      (false negatives, "it does not reason about pointers and thus can
      miss races due to pointer aliases");
    - calls resolve by method name to every class declaring it (class
      hierarchy analysis without points-to);
    - {e ownership}: accesses through a variable the current method
      allocated itself ([x = new C(…)]) are owned and never reported —
      RacerD's main false-positive killer;
    - lock state is syntactic: inside any [sync] block or not;
    - two warning categories, as in RacerD's reports: read/write races
      between distinct roots, and unprotected writes conflicting with
      locked accesses. Both are counted as conflicting-site pairs, matching
      the paper's translation of RacerD output ("we add up the numbers of
      read/write races and of the pairs of conflict field accesses shown in
      unprotected writes"). *)

open O2_ir

type warning = {
  w_field : Types.fname;
  w_kind : [ `Race | `Unprotected_write ];
  w_site_a : Types.pos;
  w_site_b : Types.pos;
  w_sid_a : int;  (** statement id of the first recorded access *)
  w_sid_b : int;  (** statement id of the second (unordered pair) *)
}

type report = { warnings : warning list }

(** [n_warnings r] is the deduplicated warning count (the paper's RacerD
    columns in Tables 5/8/9). *)
val n_warnings : report -> int

(** [analyze p] runs the syntactic analysis from [main] and every
    thread/handler entry point. *)
val analyze : Program.t -> report

val pp_warning : Format.formatter -> warning -> unit
