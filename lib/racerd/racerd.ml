open O2_ir

type warning = {
  w_field : Types.fname;
  w_kind : [ `Race | `Unprotected_write ];
  w_site_a : Types.pos;
  w_site_b : Types.pos;
  w_sid_a : int;
  w_sid_b : int;
}

type report = { warnings : warning list }

let n_warnings r = List.length r.warnings

let pp_warning ppf w =
  Format.fprintf ppf "%s on field %s: %a vs %a"
    (match w.w_kind with
    | `Race -> "read/write race"
    | `Unprotected_write -> "unprotected write")
    w.w_field Types.pp_pos w.w_site_a Types.pp_pos w.w_site_b

(* One recorded access. [root] identifies which entry point's syntactic
   exploration found it; RacerD's "threads" dimension. *)
type acc = {
  a_field : Types.fname;
  a_write : bool;
  a_locked : bool;
  a_pos : Types.pos;
  a_sid : int;
  a_root : int;
}

(* methods owning vars: vars assigned from a New in this method *)
let owned_vars (m : Program.meth) =
  let owned = Hashtbl.create 8 in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.sk with
      | Ast.New (x, _, _) -> Hashtbl.replace owned x ()
      | Ast.Assign (x, _)
      | Ast.Null x
      | Ast.FieldRead (x, _, _)
      | Ast.ArrayRead (x, _)
      | Ast.StaticRead (x, _, _) ->
          (* reassignment from elsewhere loses syntactic ownership *)
          if Hashtbl.mem owned x then Hashtbl.remove owned x
      | _ -> ())
    m.Program.m_body;
  owned

(* class-hierarchy-free syntactic call resolution: every method with that
   name anywhere in the program *)
let methods_by_name p =
  let tbl = Hashtbl.create 64 in
  Program.iter_methods
    (fun m ->
      let l =
        match Hashtbl.find_opt tbl m.Program.m_name with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace tbl m.Program.m_name (m :: l))
    p;
  tbl

let analyze p =
  let by_name = methods_by_name p in
  let accs : acc list ref = ref [] in
  let visit_root root_id (entry : Program.meth) =
    let visited = Hashtbl.create 32 in
    let rec visit (m : Program.meth) =
      let key = (m.Program.m_class, m.Program.m_name) in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.add visited key ();
        let owned = owned_vars m in
        (* constructor self-initialization: [this.f = …] inside init writes
           the object the caller just allocated and still owns — RacerD's
           interprocedural ownership; never reported *)
        let ctor_this = m.Program.m_name = "init" in
        let record ~base ~field ~write ~locked (s : Ast.stmt) =
          let is_owned =
            match base with
            | Some v -> Hashtbl.mem owned v || (ctor_this && v = "this")
            | None -> false
          in
          if not is_owned then
            accs :=
              {
                a_field = field;
                a_write = write;
                a_locked = locked;
                a_pos = s.Ast.pos;
                a_sid = s.Ast.sid;
                a_root = root_id;
              }
              :: !accs
        in
        let call name =
          match Hashtbl.find_opt by_name name with
          | Some ms -> List.iter visit ms
          | None -> ()
        in
        let rec body ~locked stmts =
          List.iter
            (fun (s : Ast.stmt) ->
              match s.Ast.sk with
              | Ast.FieldWrite (x, f, _) ->
                  record ~base:(Some x) ~field:f ~write:true ~locked s
              | Ast.FieldRead (_, y, f) ->
                  record ~base:(Some y) ~field:f ~write:false ~locked s
              | Ast.ArrayWrite (x, _) ->
                  record ~base:(Some x) ~field:"*" ~write:true ~locked s
              | Ast.ArrayRead (_, y) ->
                  record ~base:(Some y) ~field:"*" ~write:false ~locked s
              | Ast.StaticWrite (c, f, _) ->
                  record ~base:None ~field:(c ^ "::" ^ f) ~write:true ~locked s
              | Ast.StaticRead (_, c, f) ->
                  record ~base:None ~field:(c ^ "::" ^ f) ~write:false ~locked
                    s
              | Ast.Call (_, _, name, _) -> call name
              | Ast.StaticCall (_, _, name, _) -> call name
              | Ast.New (_, c, _) -> (
                  match Program.dispatch p c "init" with
                  | Some init -> visit init
                  | None -> ())
              | Ast.Sync (_, b) -> body ~locked:true b
              | Ast.If (b1, b2) ->
                  body ~locked b1;
                  body ~locked b2
              | Ast.While b -> body ~locked b
              | Ast.Start _ | Ast.Post _ | Ast.Join _ | Ast.Signal _
              | Ast.Wait _ | Ast.Assign _ | Ast.Null _ | Ast.Return _ ->
                  ())
            stmts
        in
        body ~locked:false m.Program.m_body
      end
    in
    visit entry
  in
  (* roots: main + every entry method of every thread/handler class *)
  let roots = ref [ Program.main p ] in
  List.iter
    (fun (cls : Program.cls) ->
      match Program.kind_of p cls.Program.c_name with
      | Program.Kthread _ | Program.Khandler _ -> (
          match Program.entry_method p cls.Program.c_name with
          | Some m -> if not (List.memq m !roots) then roots := m :: !roots
          | None -> ())
      | Program.Kplain -> ())
    (Program.classes p);
  List.iteri (fun i r -> visit_root i r) (List.rev !roots);
  (* warnings *)
  let by_field = Hashtbl.create 64 in
  List.iter
    (fun a ->
      let l =
        match Hashtbl.find_opt by_field a.a_field with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace by_field a.a_field (a :: l))
    !accs;
  let warnings = ref [] in
  let seen = Hashtbl.create 64 in
  let emit kind f a b =
    let k = (f, min a.a_sid b.a_sid, max a.a_sid b.a_sid) in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      warnings :=
        {
          w_field = f;
          w_kind = kind;
          w_site_a = a.a_pos;
          w_site_b = b.a_pos;
          w_sid_a = a.a_sid;
          w_sid_b = b.a_sid;
        }
        :: !warnings
    end
  in
  Hashtbl.iter
    (fun f l ->
      let arr = Array.of_list l in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = arr.(i) and b = arr.(j) in
          if (a.a_write || b.a_write) && a.a_sid <> b.a_sid then begin
            (* read/write race: two roots, not both locked *)
            if a.a_root <> b.a_root && not (a.a_locked && b.a_locked) then
              emit `Race f a b
            else if
              (* unprotected write: a write outside sync conflicting with a
                 locked access elsewhere *)
              (a.a_write && (not a.a_locked) && b.a_locked)
              || (b.a_write && (not b.a_locked) && a.a_locked)
            then emit `Unprotected_write f a b
          end
        done
      done)
    by_field;
  { warnings = List.rev !warnings }
