open O2_ir.Builder

type spec = {
  s_name : string;
  s_thread_classes : int;
  s_instances : int;
  s_event_classes : int;
  s_helper_depth : int;
  s_helper_fanout : int;
  s_helper_alloc_sites : int;
  s_locals_direct : int;
  s_locals_helper : int;
  s_shared_locked : int;
  s_racy : int;
  s_priv : int;
  s_pool : bool;
  s_nested : bool;
  s_wrapper : bool;
  s_cyclic : int;
  s_chain : int;
  s_storm : int;
  s_lock_depth : int;
  s_self_post : bool;
  s_empty : bool;
  s_unreachable : bool;
  s_join : bool;
  s_signal : bool;
  s_arrays : int;
  s_statics : int;
  s_branch : bool;
}

let default =
  {
    s_name = "default";
    s_thread_classes = 2;
    s_instances = 1;
    s_event_classes = 1;
    s_helper_depth = 4;
    s_helper_fanout = 2;
    s_helper_alloc_sites = 2;
    s_locals_direct = 2;
    s_locals_helper = 1;
    s_shared_locked = 2;
    s_racy = 2;
    s_priv = 2;
    s_pool = false;
    s_nested = false;
    s_wrapper = false;
    s_cyclic = 0;
    s_chain = 0;
    s_storm = 2;
    s_lock_depth = 1;
    s_self_post = false;
    s_empty = false;
    s_unreachable = false;
    s_join = false;
    s_signal = false;
    s_arrays = 0;
    s_statics = 0;
    s_branch = false;
  }

(* ------------------------------------------------------------------ *)
(* spec validation: the one place every constraint lives. The generator
   used to clamp some fields ad hoc ([max 1 s_helper_fanout]) while
   letting others silently accept zero/negative values and emit
   ill-formed or degenerate programs; now every field is checked here
   and the error names the offending field. *)

let validate s =
  let atleast field floor v =
    if v < floor then
      invalid_arg
        (Printf.sprintf "Synth.validate: %s must be >= %d (got %d)" field floor
           v)
  in
  atleast "s_thread_classes" 0 s.s_thread_classes;
  atleast "s_instances" 1 s.s_instances;
  atleast "s_event_classes" 0 s.s_event_classes;
  atleast "s_helper_depth" 0 s.s_helper_depth;
  atleast "s_helper_fanout" 1 s.s_helper_fanout;
  atleast "s_helper_alloc_sites" 1 s.s_helper_alloc_sites;
  atleast "s_locals_direct" 0 s.s_locals_direct;
  atleast "s_locals_helper" 0 s.s_locals_helper;
  atleast "s_shared_locked" 0 s.s_shared_locked;
  atleast "s_racy" 0 s.s_racy;
  atleast "s_priv" 0 s.s_priv;
  atleast "s_cyclic" 0 s.s_cyclic;
  atleast "s_chain" 0 s.s_chain;
  atleast "s_storm" 1 s.s_storm;
  atleast "s_lock_depth" 1 s.s_lock_depth;
  if s.s_racy > 0 && s.s_thread_classes + s.s_event_classes = 0 then
    invalid_arg
      "Synth.validate: s_racy requires at least one thread or event class";
  if s.s_wrapper && s.s_thread_classes = 0 then
    invalid_arg "Synth.validate: s_wrapper requires s_thread_classes >= 1";
  if s.s_self_post && s.s_event_classes = 0 then
    invalid_arg "Synth.validate: s_self_post requires s_event_classes >= 1";
  atleast "s_arrays" 0 s.s_arrays;
  atleast "s_statics" 0 s.s_statics;
  if s.s_join && s.s_thread_classes = 0 then
    invalid_arg "Synth.validate: s_join requires s_thread_classes >= 1";
  if s.s_signal && s.s_thread_classes = 0 then
    invalid_arg "Synth.validate: s_signal requires s_thread_classes >= 1"

(* ------------------------------------------------------------------ *)

let sf i = Printf.sprintf "g%d" i
let rf i = Printf.sprintf "race%d" i
let lkf i = Printf.sprintf "lkf%d" i
let af i = Printf.sprintf "arr%d" i
let stf i = Printf.sprintf "st%d" i

(* helper chain: Hlp0 … Hlp<depth>. Constructors allocate the next level at
   [alloc_sites] sites (k-obj pressure); work() calls the next level at
   [fanout] sites (k-CFA pressure) and allocates helper-local Data. *)
let helper_classes spec =
  let d = spec.s_helper_depth in
  let f = spec.s_helper_fanout in
  let a = spec.s_helper_alloc_sites in
  List.init (d + 1) (fun i ->
      let name = Printf.sprintf "Hlp%d" i in
      let next = Printf.sprintf "Hlp%d" (i + 1) in
      let last = i = d in
      let fields = if last then [] else List.init a (fun j -> Printf.sprintf "nxt%d" j) in
      let init_body =
        if last then [ ret None ]
        else
          List.concat
            (List.init a (fun j ->
                 let v = Printf.sprintf "n%d" j in
                 [ new_ v next []; fwrite "this" (Printf.sprintf "nxt%d" j) v ]))
      in
      let locals_body =
        List.concat
          (List.init spec.s_locals_helper (fun j ->
               let v = Printf.sprintf "loc%d" j in
               let t = Printf.sprintf "tmp%d" j in
               [ new_ v "Data" []; fwrite v "val" v; fread t v "val" ]))
      in
      let work_body =
        if last then locals_body @ [ ret None ]
        else
          locals_body
          @ List.concat
              (List.init f (fun j ->
                   let v = Printf.sprintf "c%d" j in
                   [
                     fread v "this" (Printf.sprintf "nxt%d" (j mod a));
                     call v "work" [ "d" ];
                   ]))
      in
      cls name
        ~fields
        [ meth "init" [] init_body; meth "work" [ "d" ] work_body ])

(* body fragments shared by thread run() and handler handle().

   [idx] is the participant index; with [s_lock_depth > 1] the locked
   region nests that many locks with a per-participant rotated (and, for
   odd participants, reversed) acquisition order — lockset variety plus
   lock-order cycles. *)
let entry_accesses spec ~idx ~writes_racy ~reads_racy =
  let direct =
    List.concat
      (List.init spec.s_locals_direct (fun j ->
           let v = Printf.sprintf "d%d" j in
           let t = Printf.sprintf "dt%d" j in
           [ new_ v "Data" []; fwrite v "val" v; fread t v "val" ]))
  in
  let region =
    (* each field is touched three times in the region — the repeated
       accesses collapse under §4.1's lock-region merging *)
    List.concat
      (List.init spec.s_shared_locked (fun j ->
           [
             fwrite "sh" (sf j) "sh";
             fread (Printf.sprintf "lr%d" j) "sh" (sf j);
             fwrite "sh" (sf j) "sh";
           ]))
  in
  let locked =
    if spec.s_shared_locked = 0 then []
    else if spec.s_lock_depth = 1 then [ sync "lk" region ]
    else begin
      let d = spec.s_lock_depth in
      let order = List.init d (fun k -> (idx + k) mod d) in
      let order = if idx mod 2 = 1 then List.rev order else order in
      let lkv j = Printf.sprintf "lkv%d" j in
      let reads = List.map (fun j -> fread (lkv j) "sh" (lkf j)) order in
      let nest =
        List.fold_left (fun inner j -> [ sync (lkv j) inner ]) region
          (List.rev order)
      in
      reads @ nest
    end
  in
  let racy_w = List.map (fun j -> fwrite "sh" (rf j) "sh") writes_racy in
  let racy_r =
    List.map (fun j -> fread (Printf.sprintf "rr%d" j) "sh" (rf j)) reads_racy
  in
  (* shared arrays: every participant writes and reads the same element
     cells ([*] accesses), racy by construction *)
  let arrays =
    List.concat
      (List.init spec.s_arrays (fun j ->
           let av = Printf.sprintf "av%d" j in
           let at = Printf.sprintf "at%d" j in
           [ fread av "sh" (af j); awrite av av; aread at av ]))
  in
  (* static (class-global) fields: shared without any pointer chain *)
  let statics =
    List.concat
      (List.init spec.s_statics (fun j ->
           let st = Printf.sprintf "stv%d" j in
           [ swrite "GlobalBox" (stf j) "sh"; sread st "GlobalBox" (stf j) ]))
  in
  let racy = racy_w @ racy_r in
  (* branch shapes: put the racy accesses under both arms of an [if] —
     statically both arms count, dynamically one is taken per run *)
  let racy =
    if spec.s_branch && racy <> [] then [ if_ racy_r racy_w ] @ racy else racy
  in
  direct @ locked @ arrays @ statics @ racy

(* distribute the racy fields over (writer, reader) origin pairs:
   field j is written by participant (j mod n) and read by ((j+1) mod n),
   where participants are thread classes then event classes. *)
let race_plan spec =
  let n = spec.s_thread_classes + spec.s_event_classes in
  let writers = Array.make (max n 1) [] and readers = Array.make (max n 1) [] in
  for j = 0 to spec.s_racy - 1 do
    let w = j mod n in
    let r = (j + 1) mod n in
    let r = if r = w then (r + 1) mod n else r in
    writers.(w) <- j :: writers.(w);
    readers.(r) <- j :: readers.(r)
  done;
  (writers, readers)

let thread_class spec ~idx ~writers ~readers =
  let name = Printf.sprintf "Worker%d" idx in
  (* per-class private objects reached through fields with names shared by
     every class: distinct objects, so no race — but a syntactic detector
     without aliasing conflates them (RacerD's main false-positive source) *)
  let priv_init =
    List.concat
      (List.init spec.s_priv (fun j ->
           let v = Printf.sprintf "pv%d" j in
           [ new_ v "Data" []; fwrite "this" (Printf.sprintf "priv%d" j) v ]))
  in
  let priv_access =
    List.concat
      (List.init spec.s_priv (fun j ->
           let d = Printf.sprintf "pd%d" j in
           let t = Printf.sprintf "pt%d" j in
           [
             fread d "this" (Printf.sprintf "priv%d" j);
             fwrite d "pval" d;
             fread t d "pval";
           ]))
  in
  let body =
    [ fread "sh" "this" "shared"; fread "lk" "this" "lock";
      fread "h" "this" "helper" ]
    @ priv_access
    @ entry_accesses spec ~idx ~writes_racy:writers ~reads_racy:readers
    @ [ call "h" "work" [ "sh" ] ]
    @ (if spec.s_nested && idx = 0 then
         [ new_ "kid" "NestedChild" [ "sh" ]; start "kid" ]
       else [])
    @ (if spec.s_signal && idx = 0 then
         (* publish, then signal: the signal→wait HB edge orders this
            write before main's post-wait read of [sig] *)
         [ fwrite "sh" "sig" "sh"; fread "sv" "sh" "sem"; signal "sv" ]
       else [])
    @ [ ret None ]
  in
  cls name ~super:"Thread"
    ~fields:
      ([ "shared"; "lock"; "helper" ]
      @ List.init spec.s_priv (fun j -> Printf.sprintf "priv%d" j))
    [
      meth "init" [ "s"; "l"; "h" ]
        ([
           fwrite "this" "shared" "s";
           fwrite "this" "lock" "l";
           fwrite "this" "helper" "h";
         ]
        @ priv_init);
      meth "run" [] body;
    ]

let event_class spec ~idx ~writers ~readers =
  let name = Printf.sprintf "Evt%d" idx in
  let self_post = spec.s_self_post && idx = 0 in
  let body =
    [ fread "sh" "this" "shared"; fread "lk" "this" "lock" ]
    @ entry_accesses spec ~idx:(spec.s_thread_classes + idx)
        ~writes_racy:writers ~reads_racy:readers
    @ (if self_post then [ fread "me" "this" "self"; post "me" [] ] else [])
    @ [ ret None ]
  in
  cls name ~super:"Handler"
    ~fields:([ "shared"; "lock" ] @ if self_post then [ "self" ] else [])
    [
      meth "init" [ "s"; "l" ]
        [ fwrite "this" "shared" "s"; fwrite "this" "lock" "l" ];
      meth "handle" [] body;
    ]

(* event chains: Chain0 … Chain<n-1>, each handle() re-posting the next
   (cyclically), every hop writing the same shared field. Handlers that
   post are the origin-from-origin static path; the cyclic wiring keeps
   the runtime free of null posts (the trace is step-bounded instead). *)
let chain_classes spec =
  List.init spec.s_chain (fun i ->
      cls
        (Printf.sprintf "Chain%d" i)
        ~super:"Handler" ~fields:[ "shared"; "next" ]
        [
          meth "init" [ "s" ] [ fwrite "this" "shared" "s" ];
          meth "handle" []
            [
              fread "sh" "this" "shared";
              fwrite "sh" "chain" "sh";
              fread "nx" "this" "next";
              post "nx" [];
              ret None;
            ];
        ])

(* adversarial degenerate shapes: entry methods with empty bodies and a
   method-less class *)
let empty_classes =
  [
    cls "EmptyT" ~super:"Thread" [ meth "run" [] [] ];
    cls "EmptyH" ~super:"Handler" [ meth "handle" [] [] ];
    cls "Inert" ~fields:[ "f" ] [];
  ]

(* a helper whose only method is never called: its accesses must not
   reach any report *)
let ghost_class =
  cls "Ghost" ~fields:[ "g" ]
    [
      meth "phantom" []
        [
          new_ "d" "Data" [];
          fwrite "this" "g" "d";
          fread "t" "this" "g";
          fwrite "d" "val" "t";
          ret None;
        ];
    ]

let nested_child =
  cls "NestedChild" ~super:"Thread" ~fields:[ "shared" ]
    [
      meth "init" [ "s" ] [ fwrite "this" "shared" "s" ];
      meth "run" []
        [
          fread "sh" "this" "shared";
          new_ "priv" "Data" [];
          fwrite "priv" "val" "priv";
          ret None;
        ];
    ]

let program spec =
  validate spec;
  let tw, tr = race_plan spec in
  let part i = (tw.(i), tr.(i)) in
  let threads =
    List.init spec.s_thread_classes (fun i ->
        let w, r = part i in
        thread_class spec ~idx:i ~writers:w ~readers:r)
  in
  let events =
    List.init spec.s_event_classes (fun i ->
        let w, r = part (spec.s_thread_classes + i) in
        event_class spec ~idx:i ~writers:w ~readers:r)
  in
  let helper = helper_classes spec in
  let shared_fields =
    List.init spec.s_shared_locked sf
    @ List.init spec.s_racy rf
    @ List.init spec.s_arrays af
    @ (if spec.s_chain > 0 then [ "chain" ] else [])
    @ (if spec.s_signal && spec.s_thread_classes > 0 then [ "sem"; "sig" ]
       else [])
    @
    if spec.s_lock_depth > 1 && spec.s_shared_locked > 0 then
      List.init spec.s_lock_depth lkf
    else []
  in
  let data = cls "Data" ~fields:[ "val"; "next"; "pval" ] [] in
  let shared = cls "SharedState" ~fields:shared_fields [] in
  let lockc = cls "Lk" ~fields:[ "held" ] [] in
  let globals =
    if spec.s_statics = 0 then []
    else [ cls "GlobalBox" ~sfields:(List.init spec.s_statics stf) [] ]
  in
  let wrapper =
    cls "Factory"
      [
        meth ~static:true "spawn" [ "s"; "l"; "h" ]
          [ new_ "t" "Worker0" [ "s"; "l"; "h" ]; start "t"; ret None ];
      ]
  in
  (* copy-cycle rings: 8 locals per ring assigned cyclically, so the PAG
     gains [8 * s_cyclic] copy edges all lying on variable cycles — enough
     rings cross the solver's SCC cadence threshold and make
     [pta.scc_collapsed] non-zero on a committed bench row *)
  let cyclic_rings =
    List.concat
      (List.init spec.s_cyclic (fun i ->
           let v j = Printf.sprintf "cy%d_%d" i (j mod 8) in
           new_ (v 0) "Data" []
           :: List.init 8 (fun j -> assign (v (j + 1)) (v j))))
  in
  let lock_field_init =
    if spec.s_lock_depth > 1 && spec.s_shared_locked > 0 then
      List.concat
        (List.init spec.s_lock_depth (fun j ->
             let v = Printf.sprintf "lko%d" j in
             [ new_ v "Lk" []; fwrite "s" (lkf j) v ]))
    else []
  in
  let array_init =
    List.concat
      (List.init spec.s_arrays (fun j ->
           let v = Printf.sprintf "ar%d" j in
           [ new_ v "Data" []; fwrite "s" (af j) v ]))
  in
  let sem_init =
    if spec.s_signal && spec.s_thread_classes > 0 then
      [ new_ "sem" "Lk" []; fwrite "s" "sem" "sem" ]
    else []
  in
  (* post-spawn HB tail: wait on the semaphore the workers signal, then
     read the published field; join one spawned thread, then re-read the
     racy fields — reads whose race status hinges on the wait/join edges *)
  let wait_tail =
    if spec.s_signal && spec.s_thread_classes > 0 then
      [ wait "sem"; fread "sgr" "s" "sig" ]
    else []
  in
  let join_ok =
    spec.s_join
    && spec.s_thread_classes > 0
    && (not spec.s_pool)
    && not (spec.s_wrapper && spec.s_thread_classes = 1)
  in
  let join_tail =
    if not join_ok then []
    else
      join (Printf.sprintf "t%d_0" (spec.s_thread_classes - 1))
      :: List.init spec.s_racy (fun j ->
             fread (Printf.sprintf "jr%d" j) "s" (rf j))
  in
  let chain_wiring =
    if spec.s_chain = 0 then []
    else
      let cv i = Printf.sprintf "c%d" i in
      List.init spec.s_chain (fun i ->
          new_ (cv i) (Printf.sprintf "Chain%d" i) [ "s" ])
      @ List.init spec.s_chain (fun i ->
            fwrite (cv i) "next" (cv ((i + 1) mod spec.s_chain)))
      @ [ post (cv 0) [] ]
  in
  let empty_wiring =
    if not spec.s_empty then []
    else
      [
        new_ "et" "EmptyT" []; start "et"; new_ "eh" "EmptyH" []; post "eh" [];
      ]
  in
  let main_body =
    [
      new_ "s" "SharedState" [];
      new_ "l" "Lk" [];
      new_ "h" "Hlp0" [];
    ]
    @ lock_field_init @ array_init @ sem_init
    @ cyclic_rings
    @ List.concat
        (List.init spec.s_thread_classes (fun i ->
             let cname = Printf.sprintf "Worker%d" i in
             if spec.s_wrapper && i = 0 then
               [
                 scall "Factory" "spawn" [ "s"; "l"; "h" ];
                 scall "Factory" "spawn" [ "s"; "l"; "h" ];
               ]
             else if spec.s_pool then
               [
                 while_
                   [
                     new_ (Printf.sprintf "t%d" i) cname [ "s"; "l"; "h" ];
                     start (Printf.sprintf "t%d" i);
                   ];
               ]
             else
               List.concat
                 (List.init spec.s_instances (fun j ->
                      let v = Printf.sprintf "t%d_%d" i j in
                      [ new_ v cname [ "s"; "l"; "h" ]; start v ]))))
    @ List.concat
        (List.init spec.s_event_classes (fun i ->
             let v = Printf.sprintf "e%d" i in
             [ new_ v (Printf.sprintf "Evt%d" i) [ "s"; "l" ] ]
             @ (if spec.s_self_post && i = 0 then [ fwrite v "self" v ]
                else [])
             @ List.init spec.s_storm (fun _ -> post v [])))
    @ chain_wiring @ empty_wiring @ wait_tail @ join_tail
    @ [ ret None ]
  in
  let mainc = cls "Main" [ meth ~static:true "main" [] main_body ] in
  prog ~main:"Main"
    ([ data; shared; lockc; nested_child ]
    @ globals @ helper @ threads @ events @ chain_classes spec
    @ (if spec.s_empty then empty_classes else [])
    @ (if spec.s_unreachable then [ ghost_class ] else [])
    @ (if spec.s_wrapper then [ wrapper ] else [])
    @ [ mainc ])

(* ------------------------------------------------------------------ *)
(* named suites *)

let mk name ?(tc = 2) ?(inst = 1) ?(ev = 1) ?(depth = 4) ?(fan = 2) ?(allo = 2)
    ?(ld = 2) ?(lh = 1) ?(locked = 2) ?(racy = 2) ?priv ?(pool = false)
    ?(nested = false) ?(wrapper = false) ?(cyclic = 0) ?(chain = 0)
    ?(storm = 2) ?(lockd = 1) ?(selfpost = false) ?(empty = false)
    ?(unreach = false) ?(join = false) ?(sig_ = false) ?(arrays = 0)
    ?(statics = 0) ?(branch = false) () =
  let priv = match priv with Some p -> p | None -> ld in
  {
    s_name = name;
    s_thread_classes = tc;
    s_instances = inst;
    s_event_classes = ev;
    s_helper_depth = depth;
    s_helper_fanout = fan;
    s_helper_alloc_sites = allo;
    s_locals_direct = ld;
    s_locals_helper = lh;
    s_shared_locked = locked;
    s_racy = racy;
    s_priv = priv;
    s_pool = pool;
    s_nested = nested;
    s_wrapper = wrapper;
    s_cyclic = cyclic;
    s_chain = chain;
    s_storm = storm;
    s_lock_depth = lockd;
    s_self_post = selfpost;
    s_empty = empty;
    s_unreachable = unreach;
    s_join = join;
    s_signal = sig_;
    s_arrays = arrays;
    s_statics = statics;
    s_branch = branch;
  }

(* Dacapo-shaped: few origins (#O 3–9), deep library call chains, lots of
   local data that 0-ctx conflates (large Table 8 spread). *)
let dacapo =
  [
    mk "avrora" ~tc:2 ~inst:2 ~ev:0 ~depth:6 ~fan:3 ~allo:3 ~ld:18 ~lh:2
      ~locked:4 ~racy:3 ();
    mk "batik" ~tc:2 ~inst:2 ~ev:0 ~depth:7 ~fan:4 ~allo:4 ~ld:10 ~lh:2
      ~locked:3 ~racy:2 ();
    mk "eclipse" ~tc:2 ~inst:2 ~ev:0 ~depth:5 ~fan:2 ~allo:2 ~ld:8 ~lh:1
      ~locked:4 ~racy:1 ();
    mk "h2" ~tc:3 ~inst:1 ~ev:0 ~depth:8 ~fan:4 ~allo:4 ~ld:24 ~lh:3 ~locked:6
      ~racy:6 ~pool:true ();
    mk "jython" ~tc:2 ~inst:2 ~ev:0 ~depth:9 ~fan:4 ~allo:4 ~ld:30 ~lh:3
      ~locked:4 ~racy:8 ();
    mk "luindex" ~tc:3 ~inst:1 ~ev:0 ~depth:6 ~fan:3 ~allo:3 ~ld:16 ~lh:2
      ~locked:3 ~racy:4 ();
    mk "lusearch" ~tc:3 ~inst:1 ~ev:0 ~depth:4 ~fan:2 ~allo:2 ~ld:10 ~lh:1
      ~locked:2 ~racy:3 ();
    mk "pmd" ~tc:3 ~inst:1 ~ev:0 ~depth:4 ~fan:2 ~allo:2 ~ld:6 ~lh:1 ~locked:2
      ~racy:2 ();
    mk "sunflow" ~tc:3 ~inst:3 ~ev:0 ~depth:5 ~fan:3 ~allo:3 ~ld:20 ~lh:2
      ~locked:3 ~racy:5 ~pool:true ();
    mk "tomcat" ~tc:3 ~inst:2 ~ev:3 ~depth:5 ~fan:3 ~allo:4 ~ld:8 ~lh:1
      ~locked:4 ~racy:3 ~wrapper:true ();
    mk "tradebeans" ~tc:3 ~inst:1 ~ev:0 ~depth:4 ~fan:2 ~allo:2 ~ld:5 ~lh:1
      ~locked:3 ~racy:2 ();
    mk "tradesoap" ~tc:3 ~inst:1 ~ev:0 ~depth:4 ~fan:2 ~allo:2 ~ld:5 ~lh:1
      ~locked:3 ~racy:2 ();
    mk "xalan" ~tc:3 ~inst:1 ~ev:0 ~depth:6 ~fan:4 ~allo:3 ~ld:2 ~lh:1
      ~locked:4 ~racy:1 ();
  ]

(* Android-shaped: event-heavy, many origins, short handlers. *)
let android =
  [
    mk "connectbot" ~tc:3 ~inst:1 ~ev:8 ~depth:4 ~fan:3 ~allo:3 ~ld:6 ~lh:1
      ~locked:2 ~racy:2 ();
    mk "sipdroid" ~tc:4 ~inst:1 ~ev:11 ~depth:5 ~fan:3 ~allo:3 ~ld:8 ~lh:1
      ~locked:2 ~racy:3 ();
    mk "k9mail" ~tc:5 ~inst:2 ~ev:18 ~depth:5 ~fan:3 ~allo:3 ~ld:8 ~lh:1
      ~locked:3 ~racy:3 ();
    mk "tasks" ~tc:2 ~inst:1 ~ev:5 ~depth:5 ~fan:4 ~allo:4 ~ld:5 ~lh:1
      ~locked:2 ~racy:2 ();
    mk "fbreader" ~tc:4 ~inst:1 ~ev:11 ~depth:5 ~fan:3 ~allo:4 ~ld:6 ~lh:1
      ~locked:2 ~racy:2 ();
    mk "vlc" ~tc:2 ~inst:1 ~ev:2 ~depth:7 ~fan:4 ~allo:4 ~ld:6 ~lh:2 ~locked:2
      ~racy:2 ();
    mk "firefox_focus" ~tc:3 ~inst:1 ~ev:5 ~depth:5 ~fan:4 ~allo:4 ~ld:5 ~lh:1
      ~locked:2 ~racy:2 ();
    mk "telegram" ~tc:10 ~inst:4 ~ev:100 ~depth:5 ~fan:3 ~allo:3 ~ld:6 ~lh:1
      ~locked:4 ~racy:6 ~pool:true ();
    mk "zoom" ~tc:5 ~inst:1 ~ev:10 ~depth:6 ~fan:4 ~allo:4 ~ld:8 ~lh:1
      ~locked:3 ~racy:3 ();
    mk "chrome" ~tc:8 ~inst:2 ~ev:20 ~depth:6 ~fan:4 ~allo:4 ~ld:6 ~lh:1
      ~locked:4 ~racy:3 ~nested:true ();
  ]

(* Distributed-system-shaped: many threads and events, big shared state. *)
let distributed =
  [
    mk "hbase" ~tc:8 ~inst:2 ~ev:8 ~depth:8 ~fan:4 ~allo:4 ~ld:30 ~lh:3
      ~locked:10 ~racy:12 ~pool:true ~nested:true ();
    mk "hdfs" ~tc:6 ~inst:2 ~ev:6 ~depth:8 ~fan:4 ~allo:4 ~ld:34 ~lh:3
      ~locked:10 ~racy:14 ~pool:true ();
    mk "yarn" ~tc:7 ~inst:2 ~ev:7 ~depth:9 ~fan:4 ~allo:4 ~ld:38 ~lh:3
      ~locked:12 ~racy:16 ~pool:true ~nested:true ();
    mk "zookeeper" ~tc:12 ~inst:2 ~ev:28 ~depth:6 ~fan:3 ~allo:3 ~ld:22 ~lh:2
      ~locked:8 ~racy:10 ~pool:true ();
  ]

(* C-application-shaped (Table 6): memcached small event+thread mix, redis
   with nested spawning, sqlite3 large and nearly single-origin. *)
let capps =
  [
    mk "memcached" ~tc:4 ~inst:2 ~ev:4 ~depth:5 ~fan:3 ~allo:3 ~ld:10 ~lh:1
      ~locked:4 ~racy:3 ();
    mk "redis" ~tc:5 ~inst:2 ~ev:5 ~depth:8 ~fan:4 ~allo:4 ~ld:16 ~lh:2
      ~locked:6 ~racy:5 ~nested:true ();
    mk "sqlite3" ~tc:1 ~inst:2 ~ev:0 ~depth:12 ~fan:5 ~allo:5 ~ld:40 ~lh:4
      ~locked:8 ~racy:2 ();
  ]

(* Solver-stress shapes outside the paper's benchmark sets. [cyclic] seeds
   copy-cycle rings so the SCC collapse path is exercised (and gated) on a
   committed bench row, not only in unit tests; [chainstorm] piles event
   chains, post storms and nested out-of-order locks on one program for
   the fuzz/bench scale rows. *)
let stress =
  [
    mk "cyclic" ~tc:2 ~inst:1 ~ev:1 ~ld:4 ~racy:2 ~cyclic:160 ();
    mk "chainstorm" ~tc:3 ~inst:2 ~ev:12 ~depth:3 ~ld:4 ~locked:4 ~racy:4
      ~chain:8 ~storm:12 ~lockd:3 ~selfpost:true ();
    (* every happens-before edge kind plus array/static/branch accesses in
       one program — the HB-sensitive counterpart to [chainstorm] *)
    mk "hbmix" ~tc:3 ~inst:2 ~ev:2 ~depth:2 ~ld:2 ~locked:3 ~racy:4 ~join:true
      ~sig_:true ~arrays:2 ~statics:2 ~branch:true ~lockd:2 ();
  ]

let all_specs = dacapo @ android @ distributed @ capps @ stress

let find name =
  match List.find_opt (fun s -> s.s_name = name) all_specs with
  | Some s -> s
  | None -> raise Not_found

let scaling ~n =
  program
    (mk (Printf.sprintf "scale%d" n) ~tc:2 ~inst:1 ~ev:1
       ~depth:(max 1 n) ~fan:2 ~allo:2 ~ld:4 ~lh:2 ~locked:2 ~racy:2 ())

(* ------------------------------------------------------------------ *)
(* the QCheck shape-space generator behind `o2 fuzz` *)

let gen : spec QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* tc = frequency [ (4, int_range 0 4); (2, int_range 1 8) ] in
  let* inst = int_range 1 4 in
  (* occasionally explode the origin count: hundreds of handler classes,
     each posted [storm] times *)
  let* ev = frequency [ (6, int_range 0 5); (1, int_range 20 120) ] in
  let* storm = frequency [ (5, int_range 1 3); (1, int_range 8 40) ] in
  let* depth = int_range 0 6 in
  let* fan = int_range 1 4 in
  let* allo = int_range 1 4 in
  let* ld = int_range 0 6 in
  let* lh = int_range 0 2 in
  let* locked = int_range 0 5 in
  let* racy = if tc + ev = 0 then pure 0 else int_range 0 6 in
  let* priv = int_range 0 3 in
  let* pool = bool in
  let* nested = bool in
  let* wrapper = if tc = 0 then pure false else bool in
  let* cyclic = frequency [ (5, pure 0); (1, int_range 1 24) ] in
  let* chain = frequency [ (4, pure 0); (2, int_range 1 10) ] in
  let* lockd = frequency [ (4, pure 1); (2, int_range 2 4) ] in
  let* selfpost = if ev = 0 then pure false else bool in
  let* empty = frequency [ (3, pure false); (1, pure true) ] in
  let* unreach = frequency [ (3, pure false); (1, pure true) ] in
  let* join = if tc = 0 then pure false else bool in
  let* sig_ = if tc = 0 then pure false else bool in
  let* arrays = frequency [ (3, pure 0); (2, int_range 1 3) ] in
  let* statics = frequency [ (3, pure 0); (2, int_range 1 3) ] in
  let+ branch = frequency [ (2, pure false); (1, pure true) ] in
  {
    s_name = "fuzz";
    s_thread_classes = tc;
    s_instances = inst;
    s_event_classes = ev;
    s_helper_depth = depth;
    s_helper_fanout = fan;
    s_helper_alloc_sites = allo;
    s_locals_direct = ld;
    s_locals_helper = lh;
    s_shared_locked = locked;
    s_racy = racy;
    s_priv = priv;
    s_pool = pool;
    s_nested = nested;
    s_wrapper = wrapper;
    s_cyclic = cyclic;
    s_chain = chain;
    s_storm = storm;
    s_lock_depth = lockd;
    s_self_post = selfpost;
    s_empty = empty;
    s_unreachable = unreach;
    s_join = join;
    s_signal = sig_;
    s_arrays = arrays;
    s_statics = statics;
    s_branch = branch;
  }

let spec_of_seed ~seed ~index =
  let rand = Random.State.make [| 0x02f5; seed; index |] in
  let s = QCheck2.Gen.generate1 ~rand gen in
  { s with s_name = Printf.sprintf "fuzz-s%d-i%d" seed index }

let pp_spec ppf s =
  Format.fprintf ppf
    "{%s tc=%d inst=%d ev=%d depth=%d fan=%d allo=%d ld=%d lh=%d locked=%d \
     racy=%d priv=%d pool=%b nested=%b wrapper=%b cyclic=%d chain=%d \
     storm=%d lockd=%d selfpost=%b empty=%b unreach=%b join=%b sig=%b \
     arrays=%d statics=%d branch=%b}"
    s.s_name s.s_thread_classes s.s_instances s.s_event_classes
    s.s_helper_depth s.s_helper_fanout s.s_helper_alloc_sites s.s_locals_direct
    s.s_locals_helper s.s_shared_locked s.s_racy s.s_priv s.s_pool s.s_nested
    s.s_wrapper s.s_cyclic s.s_chain s.s_storm s.s_lock_depth s.s_self_post
    s.s_empty s.s_unreachable s.s_join s.s_signal s.s_arrays s.s_statics
    s.s_branch
