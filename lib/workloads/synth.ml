open O2_ir.Builder

type spec = {
  s_name : string;
  s_thread_classes : int;
  s_instances : int;
  s_event_classes : int;
  s_helper_depth : int;
  s_helper_fanout : int;
  s_helper_alloc_sites : int;
  s_locals_direct : int;
  s_locals_helper : int;
  s_shared_locked : int;
  s_racy : int;
  s_priv : int;
  s_pool : bool;
  s_nested : bool;
  s_wrapper : bool;
  s_cyclic : int;
}

let default =
  {
    s_name = "default";
    s_thread_classes = 2;
    s_instances = 1;
    s_event_classes = 1;
    s_helper_depth = 4;
    s_helper_fanout = 2;
    s_helper_alloc_sites = 2;
    s_locals_direct = 2;
    s_locals_helper = 1;
    s_shared_locked = 2;
    s_racy = 2;
    s_priv = 2;
    s_pool = false;
    s_nested = false;
    s_wrapper = false;
    s_cyclic = 0;
  }

(* ------------------------------------------------------------------ *)

let sf i = Printf.sprintf "g%d" i
let rf i = Printf.sprintf "race%d" i

(* helper chain: Hlp0 … Hlp<depth>. Constructors allocate the next level at
   [alloc_sites] sites (k-obj pressure); work() calls the next level at
   [fanout] sites (k-CFA pressure) and allocates helper-local Data. *)
let helper_classes spec =
  let d = spec.s_helper_depth in
  let f = max 1 spec.s_helper_fanout in
  let a = max 1 spec.s_helper_alloc_sites in
  List.init (d + 1) (fun i ->
      let name = Printf.sprintf "Hlp%d" i in
      let next = Printf.sprintf "Hlp%d" (i + 1) in
      let last = i = d in
      let fields = if last then [] else List.init a (fun j -> Printf.sprintf "nxt%d" j) in
      let init_body =
        if last then [ ret None ]
        else
          List.concat
            (List.init a (fun j ->
                 let v = Printf.sprintf "n%d" j in
                 [ new_ v next []; fwrite "this" (Printf.sprintf "nxt%d" j) v ]))
      in
      let locals_body =
        List.concat
          (List.init (max 1 spec.s_locals_helper) (fun j ->
               let v = Printf.sprintf "loc%d" j in
               let t = Printf.sprintf "tmp%d" j in
               [ new_ v "Data" []; fwrite v "val" v; fread t v "val" ]))
      in
      let work_body =
        if last then locals_body @ [ ret None ]
        else
          locals_body
          @ List.concat
              (List.init f (fun j ->
                   let v = Printf.sprintf "c%d" j in
                   [
                     fread v "this" (Printf.sprintf "nxt%d" (j mod a));
                     call v "work" [ "d" ];
                   ]))
      in
      cls name
        ~fields
        [ meth "init" [] init_body; meth "work" [ "d" ] work_body ])

(* body fragments shared by thread run() and handler handle() *)
let entry_accesses spec ~writes_racy ~reads_racy =
  let direct =
    List.concat
      (List.init spec.s_locals_direct (fun j ->
           let v = Printf.sprintf "d%d" j in
           let t = Printf.sprintf "dt%d" j in
           [ new_ v "Data" []; fwrite v "val" v; fread t v "val" ]))
  in
  let locked =
    if spec.s_shared_locked = 0 then []
    else
      [
        (* each field is touched three times in the region — the repeated
           accesses collapse under §4.1's lock-region merging *)
        sync "lk"
          (List.concat
             (List.init spec.s_shared_locked (fun j ->
                  [
                    fwrite "sh" (sf j) "sh";
                    fread (Printf.sprintf "lr%d" j) "sh" (sf j);
                    fwrite "sh" (sf j) "sh";
                  ])));
      ]
  in
  let racy_w = List.map (fun j -> fwrite "sh" (rf j) "sh") writes_racy in
  let racy_r =
    List.map (fun j -> fread (Printf.sprintf "rr%d" j) "sh" (rf j)) reads_racy
  in
  direct @ locked @ racy_w @ racy_r

(* distribute the racy fields over (writer, reader) origin pairs:
   field j is written by participant (j mod n) and read by ((j+1) mod n),
   where participants are thread classes then event classes. *)
let race_plan spec =
  let n = max 1 (spec.s_thread_classes + spec.s_event_classes) in
  let writers = Array.make n [] and readers = Array.make n [] in
  for j = 0 to spec.s_racy - 1 do
    let w = j mod n in
    let r = (j + 1) mod n in
    let r = if r = w then (r + 1) mod n else r in
    writers.(w) <- j :: writers.(w);
    readers.(r) <- j :: readers.(r)
  done;
  (writers, readers)

let thread_class spec ~idx ~writers ~readers =
  let name = Printf.sprintf "Worker%d" idx in
  (* per-class private objects reached through fields with names shared by
     every class: distinct objects, so no race — but a syntactic detector
     without aliasing conflates them (RacerD's main false-positive source) *)
  let priv_init =
    List.concat
      (List.init spec.s_priv (fun j ->
           let v = Printf.sprintf "pv%d" j in
           [ new_ v "Data" []; fwrite "this" (Printf.sprintf "priv%d" j) v ]))
  in
  let priv_access =
    List.concat
      (List.init spec.s_priv (fun j ->
           let d = Printf.sprintf "pd%d" j in
           let t = Printf.sprintf "pt%d" j in
           [
             fread d "this" (Printf.sprintf "priv%d" j);
             fwrite d "pval" d;
             fread t d "pval";
           ]))
  in
  let body =
    [ fread "sh" "this" "shared"; fread "lk" "this" "lock";
      fread "h" "this" "helper" ]
    @ priv_access
    @ entry_accesses spec ~writes_racy:writers ~reads_racy:readers
    @ [ call "h" "work" [ "sh" ] ]
    @ (if spec.s_nested && idx = 0 then
         [ new_ "kid" "NestedChild" [ "sh" ]; start "kid" ]
       else [])
    @ [ ret None ]
  in
  cls name ~super:"Thread"
    ~fields:
      ([ "shared"; "lock"; "helper" ]
      @ List.init spec.s_priv (fun j -> Printf.sprintf "priv%d" j))
    [
      meth "init" [ "s"; "l"; "h" ]
        ([
           fwrite "this" "shared" "s";
           fwrite "this" "lock" "l";
           fwrite "this" "helper" "h";
         ]
        @ priv_init);
      meth "run" [] body;
    ]

let event_class spec ~idx ~writers ~readers =
  let name = Printf.sprintf "Evt%d" idx in
  let body =
    [ fread "sh" "this" "shared"; fread "lk" "this" "lock" ]
    @ entry_accesses spec ~writes_racy:writers ~reads_racy:readers
    @ [ ret None ]
  in
  cls name ~super:"Handler"
    ~fields:[ "shared"; "lock" ]
    [
      meth "init" [ "s"; "l" ]
        [ fwrite "this" "shared" "s"; fwrite "this" "lock" "l" ];
      meth "handle" [] body;
    ]

let nested_child =
  cls "NestedChild" ~super:"Thread" ~fields:[ "shared" ]
    [
      meth "init" [ "s" ] [ fwrite "this" "shared" "s" ];
      meth "run" []
        [
          fread "sh" "this" "shared";
          new_ "priv" "Data" [];
          fwrite "priv" "val" "priv";
          ret None;
        ];
    ]

let program spec =
  let tw, tr = race_plan spec in
  let part i = (tw.(i), tr.(i)) in
  let threads =
    List.init spec.s_thread_classes (fun i ->
        let w, r = part i in
        thread_class spec ~idx:i ~writers:w ~readers:r)
  in
  let events =
    List.init spec.s_event_classes (fun i ->
        let w, r = part (spec.s_thread_classes + i) in
        event_class spec ~idx:i ~writers:w ~readers:r)
  in
  let helper = helper_classes spec in
  let shared_fields =
    List.init spec.s_shared_locked sf @ List.init spec.s_racy rf
  in
  let data = cls "Data" ~fields:[ "val"; "next"; "pval" ] [] in
  let shared = cls "SharedState" ~fields:shared_fields [] in
  let lockc = cls "Lk" ~fields:[ "held" ] [] in
  let wrapper =
    cls "Factory"
      [
        meth ~static:true "spawn" [ "s"; "l"; "h" ]
          [ new_ "t" "Worker0" [ "s"; "l"; "h" ]; start "t"; ret None ];
      ]
  in
  (* copy-cycle rings: 8 locals per ring assigned cyclically, so the PAG
     gains [8 * s_cyclic] copy edges all lying on variable cycles — enough
     rings cross the solver's SCC cadence threshold and make
     [pta.scc_collapsed] non-zero on a committed bench row *)
  let cyclic_rings =
    List.concat
      (List.init spec.s_cyclic (fun i ->
           let v j = Printf.sprintf "cy%d_%d" i (j mod 8) in
           new_ (v 0) "Data" []
           :: List.init 8 (fun j -> assign (v (j + 1)) (v j))))
  in
  let main_body =
    [
      new_ "s" "SharedState" [];
      new_ "l" "Lk" [];
      new_ "h" "Hlp0" [];
    ]
    @ cyclic_rings
    @ List.concat
        (List.init spec.s_thread_classes (fun i ->
             let cname = Printf.sprintf "Worker%d" i in
             if spec.s_wrapper && i = 0 then
               [
                 scall "Factory" "spawn" [ "s"; "l"; "h" ];
                 scall "Factory" "spawn" [ "s"; "l"; "h" ];
               ]
             else if spec.s_pool then
               [
                 while_
                   [
                     new_ (Printf.sprintf "t%d" i) cname [ "s"; "l"; "h" ];
                     start (Printf.sprintf "t%d" i);
                   ];
               ]
             else
               List.concat
                 (List.init spec.s_instances (fun j ->
                      let v = Printf.sprintf "t%d_%d" i j in
                      [ new_ v cname [ "s"; "l"; "h" ]; start v ]))))
    @ List.concat
        (List.init spec.s_event_classes (fun i ->
             let v = Printf.sprintf "e%d" i in
             [
               new_ v (Printf.sprintf "Evt%d" i) [ "s"; "l" ];
               post v [];
               post v [];
             ]))
    @ [ ret None ]
  in
  let mainc = cls "Main" [ meth ~static:true "main" [] main_body ] in
  prog ~main:"Main"
    ([ data; shared; lockc; nested_child ]
    @ helper @ threads @ events
    @ (if spec.s_wrapper then [ wrapper ] else [])
    @ [ mainc ])

(* ------------------------------------------------------------------ *)
(* named suites *)

let mk name ?(tc = 2) ?(inst = 1) ?(ev = 1) ?(depth = 4) ?(fan = 2) ?(allo = 2)
    ?(ld = 2) ?(lh = 1) ?(locked = 2) ?(racy = 2) ?priv ?(pool = false)
    ?(nested = false) ?(wrapper = false) ?(cyclic = 0) () =
  let priv = match priv with Some p -> p | None -> ld in
  {
    s_name = name;
    s_thread_classes = tc;
    s_instances = inst;
    s_event_classes = ev;
    s_helper_depth = depth;
    s_helper_fanout = fan;
    s_helper_alloc_sites = allo;
    s_locals_direct = ld;
    s_locals_helper = lh;
    s_shared_locked = locked;
    s_racy = racy;
    s_priv = priv;
    s_pool = pool;
    s_nested = nested;
    s_wrapper = wrapper;
    s_cyclic = cyclic;
  }

(* Dacapo-shaped: few origins (#O 3–9), deep library call chains, lots of
   local data that 0-ctx conflates (large Table 8 spread). *)
let dacapo =
  [
    mk "avrora" ~tc:2 ~inst:2 ~ev:0 ~depth:6 ~fan:3 ~allo:3 ~ld:18 ~lh:2
      ~locked:4 ~racy:3 ();
    mk "batik" ~tc:2 ~inst:2 ~ev:0 ~depth:7 ~fan:4 ~allo:4 ~ld:10 ~lh:2
      ~locked:3 ~racy:2 ();
    mk "eclipse" ~tc:2 ~inst:2 ~ev:0 ~depth:5 ~fan:2 ~allo:2 ~ld:8 ~lh:1
      ~locked:4 ~racy:1 ();
    mk "h2" ~tc:3 ~inst:1 ~ev:0 ~depth:8 ~fan:4 ~allo:4 ~ld:24 ~lh:3 ~locked:6
      ~racy:6 ~pool:true ();
    mk "jython" ~tc:2 ~inst:2 ~ev:0 ~depth:9 ~fan:4 ~allo:4 ~ld:30 ~lh:3
      ~locked:4 ~racy:8 ();
    mk "luindex" ~tc:3 ~inst:1 ~ev:0 ~depth:6 ~fan:3 ~allo:3 ~ld:16 ~lh:2
      ~locked:3 ~racy:4 ();
    mk "lusearch" ~tc:3 ~inst:1 ~ev:0 ~depth:4 ~fan:2 ~allo:2 ~ld:10 ~lh:1
      ~locked:2 ~racy:3 ();
    mk "pmd" ~tc:3 ~inst:1 ~ev:0 ~depth:4 ~fan:2 ~allo:2 ~ld:6 ~lh:1 ~locked:2
      ~racy:2 ();
    mk "sunflow" ~tc:3 ~inst:3 ~ev:0 ~depth:5 ~fan:3 ~allo:3 ~ld:20 ~lh:2
      ~locked:3 ~racy:5 ~pool:true ();
    mk "tomcat" ~tc:3 ~inst:2 ~ev:3 ~depth:5 ~fan:3 ~allo:4 ~ld:8 ~lh:1
      ~locked:4 ~racy:3 ~wrapper:true ();
    mk "tradebeans" ~tc:3 ~inst:1 ~ev:0 ~depth:4 ~fan:2 ~allo:2 ~ld:5 ~lh:1
      ~locked:3 ~racy:2 ();
    mk "tradesoap" ~tc:3 ~inst:1 ~ev:0 ~depth:4 ~fan:2 ~allo:2 ~ld:5 ~lh:1
      ~locked:3 ~racy:2 ();
    mk "xalan" ~tc:3 ~inst:1 ~ev:0 ~depth:6 ~fan:4 ~allo:3 ~ld:2 ~lh:1
      ~locked:4 ~racy:1 ();
  ]

(* Android-shaped: event-heavy, many origins, short handlers. *)
let android =
  [
    mk "connectbot" ~tc:3 ~inst:1 ~ev:8 ~depth:4 ~fan:3 ~allo:3 ~ld:6 ~lh:1
      ~locked:2 ~racy:2 ();
    mk "sipdroid" ~tc:4 ~inst:1 ~ev:11 ~depth:5 ~fan:3 ~allo:3 ~ld:8 ~lh:1
      ~locked:2 ~racy:3 ();
    mk "k9mail" ~tc:5 ~inst:2 ~ev:18 ~depth:5 ~fan:3 ~allo:3 ~ld:8 ~lh:1
      ~locked:3 ~racy:3 ();
    mk "tasks" ~tc:2 ~inst:1 ~ev:5 ~depth:5 ~fan:4 ~allo:4 ~ld:5 ~lh:1
      ~locked:2 ~racy:2 ();
    mk "fbreader" ~tc:4 ~inst:1 ~ev:11 ~depth:5 ~fan:3 ~allo:4 ~ld:6 ~lh:1
      ~locked:2 ~racy:2 ();
    mk "vlc" ~tc:2 ~inst:1 ~ev:2 ~depth:7 ~fan:4 ~allo:4 ~ld:6 ~lh:2 ~locked:2
      ~racy:2 ();
    mk "firefox_focus" ~tc:3 ~inst:1 ~ev:5 ~depth:5 ~fan:4 ~allo:4 ~ld:5 ~lh:1
      ~locked:2 ~racy:2 ();
    mk "telegram" ~tc:10 ~inst:4 ~ev:100 ~depth:5 ~fan:3 ~allo:3 ~ld:6 ~lh:1
      ~locked:4 ~racy:6 ~pool:true ();
    mk "zoom" ~tc:5 ~inst:1 ~ev:10 ~depth:6 ~fan:4 ~allo:4 ~ld:8 ~lh:1
      ~locked:3 ~racy:3 ();
    mk "chrome" ~tc:8 ~inst:2 ~ev:20 ~depth:6 ~fan:4 ~allo:4 ~ld:6 ~lh:1
      ~locked:4 ~racy:3 ~nested:true ();
  ]

(* Distributed-system-shaped: many threads and events, big shared state. *)
let distributed =
  [
    mk "hbase" ~tc:8 ~inst:2 ~ev:8 ~depth:8 ~fan:4 ~allo:4 ~ld:30 ~lh:3
      ~locked:10 ~racy:12 ~pool:true ~nested:true ();
    mk "hdfs" ~tc:6 ~inst:2 ~ev:6 ~depth:8 ~fan:4 ~allo:4 ~ld:34 ~lh:3
      ~locked:10 ~racy:14 ~pool:true ();
    mk "yarn" ~tc:7 ~inst:2 ~ev:7 ~depth:9 ~fan:4 ~allo:4 ~ld:38 ~lh:3
      ~locked:12 ~racy:16 ~pool:true ~nested:true ();
    mk "zookeeper" ~tc:12 ~inst:2 ~ev:28 ~depth:6 ~fan:3 ~allo:3 ~ld:22 ~lh:2
      ~locked:8 ~racy:10 ~pool:true ();
  ]

(* C-application-shaped (Table 6): memcached small event+thread mix, redis
   with nested spawning, sqlite3 large and nearly single-origin. *)
let capps =
  [
    mk "memcached" ~tc:4 ~inst:2 ~ev:4 ~depth:5 ~fan:3 ~allo:3 ~ld:10 ~lh:1
      ~locked:4 ~racy:3 ();
    mk "redis" ~tc:5 ~inst:2 ~ev:5 ~depth:8 ~fan:4 ~allo:4 ~ld:16 ~lh:2
      ~locked:6 ~racy:5 ~nested:true ();
    mk "sqlite3" ~tc:1 ~inst:2 ~ev:0 ~depth:12 ~fan:5 ~allo:5 ~ld:40 ~lh:4
      ~locked:8 ~racy:2 ();
  ]

(* Solver-stress shapes outside the paper's benchmark sets. [cyclic] seeds
   copy-cycle rings so the SCC collapse path is exercised (and gated) on a
   committed bench row, not only in unit tests. *)
let stress = [ mk "cyclic" ~tc:2 ~inst:1 ~ev:1 ~ld:4 ~racy:2 ~cyclic:160 () ]

let all_specs = dacapo @ android @ distributed @ capps @ stress

let find name =
  match List.find_opt (fun s -> s.s_name = name) all_specs with
  | Some s -> s
  | None -> raise Not_found

let scaling ~n =
  program
    (mk (Printf.sprintf "scale%d" n) ~tc:2 ~inst:1 ~ev:1
       ~depth:(max 1 n) ~fan:2 ~allo:2 ~ld:4 ~lh:2 ~locked:2 ~racy:2 ())
