(** Parameterised synthetic workload generators for the evaluation tables
    and the differential fuzzer.

    We cannot ship Tomcat or the Linux kernel; what Tables 5–9 measure is
    how each context abstraction scales and filters on particular code
    {e shapes}. The generator reproduces those shapes with explicit knobs:

    - {b deep helper chains with call fan-out} ([helper_depth] ×
      [helper_fanout] call sites per level, [helper_alloc_sites] receiver
      allocation sites per level): the k-CFA context count grows as
      fanout{^ k} per level and the k-obj count as alloc_sites{^ k},
      while 0-ctx visits each method once and OPA once per origin — the
      Table 5/6 performance story;
    - {b helper-allocated thread-local data}: merged across origins by
      every policy except OPA (the Figure 2 pattern) — false races for
      0-ctx/k-CFA/k-obj, none for O2;
    - {b direct-in-entry local data}: false races only under 0-ctx;
    - {b thread pools} ([pool = true] starts instances in a loop): OPA's
      loop doubling keeps per-origin locals separate, every other policy
      sees one self-parallel abstract thread — more Table 8 spread;
    - {b seeded true races} ([racy]): one pair of conflicting sites each,
      reported by every policy (and each pair deliberately spans a
      thread–event or thread–thread combination);
    - {b correctly locked shared state} ([shared_locked]): never racy;
    - {b wrapper-created threads} and {b nested spawns} for the §3.2
      extensions;
    - {b event chains} ([chain]): handlers that re-post the next handler
      cyclically — origins spawned from event origins;
    - {b post storms} ([storm]): each event instance posted that many
      times;
    - {b nested out-of-order locks} ([lock_depth] > 1): the locked region
      nests the locks in a per-participant rotated/reversed order;
    - {b adversarial degenerates}: self-posting handlers ([self_post]),
      empty entry bodies and method-less classes ([empty]), an
      unreachable helper method ([unreachable]). *)

type spec = {
  s_name : string;
  s_thread_classes : int;  (** distinct thread classes (≥0) *)
  s_instances : int;  (** instances per thread class (≥1) *)
  s_event_classes : int;  (** handler classes, [storm] posts each *)
  s_helper_depth : int;
  s_helper_fanout : int;
  s_helper_alloc_sites : int;
  s_locals_direct : int;  (** direct local Data per entry body *)
  s_locals_helper : int;  (** helper-local Data allocations per level *)
  s_shared_locked : int;  (** correctly-locked shared fields *)
  s_racy : int;  (** seeded true races *)
  s_priv : int;
      (** per-thread-class private objects reached through identically-named
          fields — never racy, but conflated by syntactic detectors (the
          RacerD false-positive pattern) *)
  s_pool : bool;  (** start thread instances in a loop *)
  s_nested : bool;  (** first thread class spawns a child thread *)
  s_wrapper : bool;  (** threads created through a shared wrapper *)
  s_cyclic : int;
      (** copy-cycle rings in main (8 cyclic assignments each) — stresses
          the solver's SCC collapse of variable cycles *)
  s_chain : int;
      (** cyclically-wired chain of handlers, each [handle] re-posting the
          next — deep event chains, origins spawned from event origins *)
  s_storm : int;  (** posts per event instance (≥1; the seed shape is 2) *)
  s_lock_depth : int;
      (** locks nested around the locked region (≥1; >1 rotates/reverses
          the acquisition order per participant) *)
  s_self_post : bool;  (** first handler class re-posts itself *)
  s_empty : bool;  (** add empty-bodied entries and a method-less class *)
  s_unreachable : bool;  (** add a helper method no one calls *)
  s_join : bool;
      (** main joins the last-started thread and then reads the racy
          fields — HB edges that must prune those pairs on the joined
          thread *)
  s_signal : bool;
      (** first thread class signals a shared semaphore after a flagged
          write; main waits on it and reads the flag — signal/wait HB
          edges *)
  s_arrays : int;  (** shared array fields with unlocked element races *)
  s_statics : int;  (** racy static fields on a [GlobalBox] class *)
  s_branch : bool;  (** wrap the racy accesses in an [if_] branch *)
}

val default : spec

(** [validate spec] checks every field against its floor and the
    cross-field constraints; raises [Invalid_argument] naming the
    offending field. [program] calls it, so an invalid spec can never
    silently generate an ill-formed program. *)
val validate : spec -> unit

(** [program spec] builds the synthetic program (deterministic).
    @raise Invalid_argument when {!validate} rejects [spec]. *)
val program : spec -> O2_ir.Program.t

(** Named suites mirroring the paper's benchmark sets. Sizes are tuned so
    the relative behaviour across policies matches the published tables'
    shape; EXPERIMENTS.md records measured vs published. *)

val dacapo : spec list
(** Avrora … Xalan (Table 5/7/8). *)

val android : spec list
(** ConnectBot … Chrome (Table 5): more events, many origins. *)

val distributed : spec list
(** HBase, HDFS, Yarn, ZooKeeper (Tables 5/9). *)

val capps : spec list
(** Memcached, Redis, Sqlite3-shaped C programs (Table 6). *)

val stress : spec list
(** Solver-stress shapes outside the paper's sets; ["cyclic"] seeds enough
    copy-cycle rings that the PTA's SCC collapse fires on a bench row,
    ["chainstorm"] combines event chains, post storms and nested
    out-of-order locks. *)

val find : string -> spec

(** [scaling ~n] builds a program whose statement count grows linearly in
    [n] (helper-chain depth scaled), for the Table 3 empirical complexity
    curves. *)
val scaling : n:int -> O2_ir.Program.t

(** {2 Fuzzing} *)

(** The shape-space generator behind [o2 fuzz]: every knob above is
    sampled, with rare heavy tails (hundred-handler post storms,
    origin counts in the thousands) and the adversarial degenerate
    flags. Generated specs always satisfy {!validate}. *)
val gen : spec QCheck2.Gen.t

(** [spec_of_seed ~seed ~index] draws deterministically: the same
    [(seed, index)] pair yields the same spec on every run and machine
    (the fuzzer's reproducibility contract). *)
val spec_of_seed : seed:int -> index:int -> spec

val pp_spec : Format.formatter -> spec -> unit
