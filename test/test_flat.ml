(* Flat-IR parity: the integer-indexed fast path is the ONLY default path
   through SHB construction, race detection and the OSA scan — the legacy
   AST walkers survive behind [~oracle:true] purely as test oracles. This
   suite pins the contract: byte-identical rendered reports and equal
   gated counters between the two paths, across every bundled model ×
   context policy × jobs, plus a QCheck sweep over random programs and
   unit coverage for the lowering invariants themselves. *)

open O2_pta

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* [O2_TEST_JOBS="1,2,8"] widens the matrix, e.g. on a many-core machine *)
let jobs_list =
  match Sys.getenv_opt "O2_TEST_JOBS" with
  | Some s ->
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map int_of_string
  | None -> [ 1; 2; 4 ]

let policies =
  [ Context.Insensitive; Context.Kcfa 2; Context.Kobj 2; Context.Korigin 1 ]

(* the post-PTA counters both paths set; PTA itself is shared, so the
   pta.* entries of {!O2_batch.key_counter_names} cannot diverge *)
let gated_counters =
  [
    "shb.nodes"; "shb.edges"; "race.pairs_checked"; "race.hb_pruned";
    "race.lock_pruned"; "race.class_pruned"; "race.candidates"; "race.races";
    "osa.stmts_scanned"; "osa.accesses"; "osa.locations";
    "osa.shared_locations";
  ]

(* one post-PTA pipeline over a shared solve: SHB build, detection, OSA
   scan, report rendering — flat by default, legacy walkers under
   [oracle] *)
let pipeline ?(jobs = 1) ~oracle a =
  let m = O2_util.Metrics.create () in
  let g = O2_shb.Graph.build ~oracle ~metrics:m a in
  let r = O2_race.Detect.run ~metrics:m ~jobs ~oracle g in
  let osa = O2_osa.Osa.run ~oracle ~metrics:m a in
  let res = { O2_race.Report.solver = a; graph = g; report = r } in
  let text = O2_race.Report.render res in
  let json = O2_race.Report.render ~format:`Json res in
  let counters = List.map (fun k -> (k, O2_util.Metrics.get m k)) gated_counters in
  (text, json, counters, osa)

let check_parity label a jobs =
  let t_o, j_o, c_o, osa_o = pipeline ~oracle:true a in
  let t_f, j_f, c_f, osa_f = pipeline ~jobs ~oracle:false a in
  check_str (label ^ " text") t_o t_f;
  check_str (label ^ " json") j_o j_f;
  List.iter2
    (fun (k, vo) (_, vf) -> check_int (label ^ " " ^ k) vo vf)
    c_o c_f;
  check_int
    (label ^ " shared_accesses")
    (O2_osa.Osa.n_shared_accesses osa_o)
    (O2_osa.Osa.n_shared_accesses osa_f)

(* ---------------- flat ≡ oracle across the model corpus ---------------- *)

let test_models_parity () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      List.iter
        (fun policy ->
          let a = Solver.analyze ~policy (m.program ()) in
          check_parity
            (Printf.sprintf "%s/%s" m.name (Context.policy_name policy))
            a 1)
        policies)
    O2_workloads.Models.all

(* the jobs axis on the heaviest distributed workload: the flat detection
   path fanned across domains must still match the serial oracle *)
let test_zookeeper_jobs_parity () =
  let p = O2_workloads.Synth.program (O2_workloads.Synth.find "zookeeper") in
  let a = Solver.analyze ~policy:(Context.Korigin 1) p in
  List.iter
    (fun jobs -> check_parity (Printf.sprintf "zookeeper/jobs=%d" jobs) a jobs)
    jobs_list

(* ---------------- random programs ---------------- *)

let prop_flat_parity =
  QCheck2.Test.make ~name:"flat pipeline = legacy oracles" ~count:40
    ~print:O2_test_helpers.Gen.print_spec O2_test_helpers.Gen.spec_gen
    (fun spec ->
      let p = O2_test_helpers.Gen.program_of_spec spec in
      let a = Solver.analyze ~policy:(Context.Korigin 1) p in
      let t_o, j_o, c_o, _ = pipeline ~oracle:true a in
      let t_f, j_f, c_f, _ = pipeline ~oracle:false a in
      String.equal t_o t_f && String.equal j_o j_f && c_o = c_f)

(* ---------------- lowering invariants ---------------- *)

let test_flat_check () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      let a = Solver.analyze (m.program ()) in
      let fl = a.Solver.flat in
      O2_ir.Flat.check fl;
      Alcotest.(check bool)
        (m.name ^ " footprint")
        true
        (O2_ir.Flat.footprint fl > 0))
    O2_workloads.Models.all

let test_tid_roundtrip () =
  let p = O2_workloads.Synth.program (O2_workloads.Synth.find "zookeeper") in
  let a = Solver.analyze p in
  let fl = a.Solver.flat in
  let n_objs = Pag.n_objs a.Solver.pag in
  (* instance-field tids: oid/fid survive the mixed-radix round trip and
     never collide with the static range *)
  for oid = 0 to min 40 (n_objs - 1) do
    for fid = 0 to O2_ir.Flat.n_fields fl - 1 do
      let tid = O2_ir.Flat.tid_field fl ~oid ~fid in
      Alcotest.(check bool) "field tid dynamic" false
        (O2_ir.Flat.tid_is_static fl tid);
      check_int "tid_oid" oid (O2_ir.Flat.tid_oid fl tid);
      check_int "tid_fid" fid (O2_ir.Flat.tid_fid fl tid)
    done
  done;
  for s = 0 to O2_ir.Flat.n_statics fl - 1 do
    let tid = O2_ir.Flat.tid_static fl s in
    Alcotest.(check bool) "static tid static" true
      (O2_ir.Flat.tid_is_static fl tid)
  done

let () =
  Alcotest.run "flat"
    [
      ( "parity",
        [
          Alcotest.test_case "models x policies" `Quick test_models_parity;
          Alcotest.test_case "zookeeper x jobs" `Quick
            test_zookeeper_jobs_parity;
          QCheck_alcotest.to_alcotest prop_flat_parity;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "Flat.check on corpus" `Quick test_flat_check;
          Alcotest.test_case "tid round trip" `Quick test_tid_roundtrip;
        ] );
    ]
