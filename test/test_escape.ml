open O2_ir.Builder
open O2_pta

let check_bool = Alcotest.(check bool)

let run ?(policy = Context.Korigin 1) p =
  let a = Solver.analyze ~policy p in
  (a, O2_escape.Escape.run a)

let classes_of a oids =
  List.map
    (fun oid -> (Pag.obj (a.Solver.pag) oid).Pag.ob_class)
    oids
  |> List.sort_uniq compare

(* a Data object stored in a thread field escapes; a purely local one
   does not *)
let test_thread_field_escapes () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "Local" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" []
              [ new_ "l" "Local" []; fwrite "l" "v" "l"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "d" "Data" []; new_ "w" "W" [ "d" ]; start "w" ];
          ];
      ]
  in
  let a, esc = run p in
  let escaped = classes_of a (O2_escape.Escape.escaped_objects esc) in
  check_bool "Data escapes" true (List.mem "Data" escaped);
  check_bool "thread object escapes" true (List.mem "W" escaped);
  check_bool "Local stays" false (List.mem "Local" escaped)

let test_static_escapes_transitively () =
  let p =
    prog ~main:"M"
      [
        cls "G" ~sfields:[ "root" ] [];
        cls "Data" ~fields:[ "next" ] [];
        cls "Inner" [];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "i" "Inner" [];
                fwrite "d" "next" "i";
                swrite "G" "root" "d";
              ];
          ];
      ]
  in
  let a, esc = run p in
  let escaped = classes_of a (O2_escape.Escape.escaped_objects esc) in
  check_bool "root escapes" true (List.mem "Data" escaped);
  check_bool "reachable-from-root escapes" true (List.mem "Inner" escaped)

(* §3.3's precision point: a static used by one origin only is "escaped"
   for escape analysis but NOT origin-shared for OSA *)
let test_osa_beats_escape_on_single_origin_static () =
  let p =
    prog ~main:"M"
      [
        cls "G" ~sfields:[ "s" ] [];
        cls "Data" [];
        cls "W" ~super:"Thread"
          [ meth "run" [] [ new_ "l" "Data" []; ret None ] ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                swrite "G" "s" "d";
                sread "r" "G" "s";
                new_ "w" "W" [];
                start "w";
              ];
          ];
      ]
  in
  let a, esc = run p in
  let osa = O2_osa.Osa.run a in
  check_bool "escape: accesses counted shared" true
    (O2_escape.Escape.n_escaped_accesses esc > 0);
  check_bool "OSA: not origin-shared" false
    (O2_osa.Osa.is_shared_target osa (Access.Tstatic ("G", "s")));
  check_bool "escape count > OSA count" true
    (O2_escape.Escape.n_escaped_accesses esc > O2_osa.Osa.n_shared_accesses osa)

(* OSA shared ⊆ escape shared: escape analysis over-approximates OSA *)
let prop_osa_subset_escape =
  QCheck2.Test.make ~name:"OSA shared accesses ≤ escaped accesses" ~count:60
    ~print:O2_test_helpers.Gen.print_spec O2_test_helpers.Gen.spec_gen
    (fun spec ->
      let p = O2_test_helpers.Gen.program_of_spec spec in
      let a = Solver.analyze ~policy:(Context.Korigin 1) p in
      let esc = O2_escape.Escape.run a in
      let osa = O2_osa.Osa.run a in
      O2_osa.Osa.n_shared_accesses osa
      <= O2_escape.Escape.n_escaped_accesses esc)

let () =
  Alcotest.run "escape"
    [
      ( "escape",
        [
          Alcotest.test_case "thread fields escape" `Quick
            test_thread_field_escapes;
          Alcotest.test_case "statics transitive" `Quick
            test_static_escapes_transitively;
          Alcotest.test_case "OSA more precise (§3.3)" `Quick
            test_osa_beats_escape_on_single_origin_static;
          QCheck_alcotest.to_alcotest prop_osa_subset_escape;
        ] );
    ]
