open O2_ir.Builder
open O2_pta

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_osa ?(policy = Context.Korigin 1) p =
  let a = Solver.analyze ~policy p in
  (a, O2_osa.Osa.run a)

(* two threads sharing one object, one thread-local object each *)
let shared_and_local () =
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "W" ~super:"Thread" ~fields:[ "sh" ]
        [
          meth "init" [ "s" ] [ fwrite "this" "sh" "s" ];
          meth "run" []
            [
              fread "s" "this" "sh";
              fwrite "s" "v" "s";  (* shared write *)
              new_ "loc" "Data" [];
              fwrite "loc" "v" "loc";  (* origin-local *)
              ret None;
            ];
        ];
      cls "M"
        [
          meth ~static:true "main" []
            [
              new_ "s" "Data" [];
              new_ "w1" "W" [ "s" ];
              new_ "w2" "W" [ "s" ];
              start "w1";
              start "w2";
            ];
        ];
    ]

let test_shared_detected () =
  let a, osa = run_osa (shared_and_local ()) in
  let shared = O2_osa.Osa.shared_locations osa in
  (* the shared Data.v plus the two W.sh fields written by main and read by
     each thread *)
  check_bool "some shared" true (List.length shared >= 1);
  let has_data_v =
    List.exists
      (fun (sh : O2_osa.Osa.sharing) ->
        match sh.sh_target with
        | Access.Tfield (oid, "v") ->
            (Pag.obj (a.Solver.pag) oid).Pag.ob_class = "Data"
        | _ -> false)
      shared
  in
  check_bool "Data.v shared" true has_data_v

let test_local_not_shared () =
  let a, osa = run_osa (shared_and_local ()) in
  (* the loc objects: each written by exactly one origin *)
  let local_shared =
    List.exists
      (fun (sh : O2_osa.Osa.sharing) ->
        match sh.sh_target with
        | Access.Tfield (oid, _) ->
            let o = Pag.obj (a.Solver.pag) oid in
            (* loc allocs are inside run(): their heap ctx is a thread
               origin, and they must not be shared *)
            o.Pag.ob_class = "Data"
            && (match o.Pag.ob_hctx with
               | Context.Corigin (og :: _) -> og <> 0
               | _ -> false)
        | _ -> false)
      (O2_osa.Osa.shared_locations osa)
  in
  check_bool "thread-local object not shared" false local_shared

let test_local_shared_under_0ctx () =
  (* the same program under 0-ctx conflates the two locs: falsely shared *)
  let _, osa = run_osa ~policy:Context.Insensitive (shared_and_local ()) in
  let _, osa_o2 = run_osa (shared_and_local ()) in
  check_bool "0-ctx reports more shared accesses" true
    (O2_osa.Osa.n_shared_accesses osa > O2_osa.Osa.n_shared_accesses osa_o2)

let test_readers_vs_writers () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "Writer" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "Reader" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fread "x" "d" "v"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "s" "Data" [];
                new_ "w" "Writer" [ "s" ];
                new_ "r" "Reader" [ "s" ];
                start "w";
                start "r";
              ];
          ];
      ]
  in
  let a, osa = run_osa p in
  let sh =
    List.find
      (fun (sh : O2_osa.Osa.sharing) ->
        match sh.sh_target with
        | Access.Tfield (oid, "v") ->
            (Pag.obj (a.Solver.pag) oid).Pag.ob_class = "Data"
        | _ -> false)
      (O2_osa.Osa.shared_locations osa)
  in
  check_int "one writer origin" 1 (List.length sh.sh_writers);
  check_int "one reader origin" 1 (List.length sh.sh_readers);
  check_bool "distinct" true (sh.sh_writers <> sh.sh_readers)

let test_read_only_not_shared () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "R" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fread "x" "d" "v"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "s" "Data" [];
                new_ "r1" "R" [ "s" ];
                new_ "r2" "R" [ "s" ];
                start "r1";
                start "r2";
              ];
          ];
      ]
  in
  let a, osa = run_osa p in
  let data_v_shared =
    List.exists
      (fun (sh : O2_osa.Osa.sharing) ->
        match sh.sh_target with
        | Access.Tfield (oid, "v") ->
            (Pag.obj (a.Solver.pag) oid).Pag.ob_class = "Data"
        | _ -> false)
      (O2_osa.Osa.shared_locations osa)
  in
  check_bool "read-only location is not origin-shared" false data_v_shared

(* statics: OSA distinguishes a static used by a single origin (§3.3's
   advantage over escape analysis) *)
let test_static_single_origin () =
  let p =
    prog ~main:"M"
      [
        cls "G" ~sfields:[ "only_main"; "both" ] [];
        cls "Data" [];
        cls "W" ~super:"Thread"
          [ meth "run" [] [ sread "x" "G" "both"; ret None ] ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                swrite "G" "only_main" "d";
                sread "r" "G" "only_main";
                swrite "G" "both" "d";
                new_ "w" "W" [];
                start "w";
              ];
          ];
      ]
  in
  let _, osa = run_osa p in
  check_bool "single-origin static not shared" false
    (O2_osa.Osa.is_shared_target osa (Access.Tstatic ("G", "only_main")));
  check_bool "cross-origin static shared" true
    (O2_osa.Osa.is_shared_target osa (Access.Tstatic ("G", "both")))

(* arrays share through the * field *)
let test_array_sharing () =
  let p =
    prog ~main:"M"
      [
        cls "Arr" [];
        cls "W" ~super:"Thread" ~fields:[ "a" ]
          [
            meth "init" [ "a" ] [ fwrite "this" "a" "a" ];
            meth "run" [] [ fread "a" "this" "a"; awrite "a" "a"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "arr" "Arr" [];
                new_ "w1" "W" [ "arr" ];
                new_ "w2" "W" [ "arr" ];
                start "w1";
                start "w2";
              ];
          ];
      ]
  in
  let a, osa = run_osa p in
  let star_shared =
    List.exists
      (fun (sh : O2_osa.Osa.sharing) ->
        match sh.sh_target with
        | Access.Tfield (oid, "*") ->
            (Pag.obj (a.Solver.pag) oid).Pag.ob_class = "Arr"
        | _ -> false)
      (O2_osa.Osa.shared_locations osa)
  in
  check_bool "array cell shared" true star_shared

let test_counts_figure2 () =
  let a, osa = run_osa (O2_workloads.Figures.figure2 ()) in
  ignore a;
  (* the T.s / T.op fields are written by main and read by the threads:
     shared; the Data y objects are origin-local *)
  check_bool "some shared accesses" true (O2_osa.Osa.n_shared_accesses osa > 0);
  check_bool "some shared objects" true (O2_osa.Osa.n_shared_objects osa > 0)

let test_origin_local_report () =
  let a, osa = run_osa (shared_and_local ()) in
  let sps = a.Solver.spawns in
  let thread_sp =
    Array.to_list sps |> List.find (fun (s : Solver.spawn) -> s.sp_kind = `Thread)
  in
  let locals = O2_osa.Osa.origin_local_objects osa thread_sp.sp_id in
  check_bool "thread has an origin-local object" true (List.length locals >= 1)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pp_output () =
  let a, osa = run_osa (shared_and_local ()) in
  let s = Format.asprintf "%a" (O2_osa.Osa.pp a) osa in
  check_bool "mentions the shared class" true (contains s "Data")

let () =
  Alcotest.run "osa"
    [
      ( "sharing",
        [
          Alcotest.test_case "shared detected" `Quick test_shared_detected;
          Alcotest.test_case "local not shared" `Quick test_local_not_shared;
          Alcotest.test_case "0-ctx over-shares" `Quick
            test_local_shared_under_0ctx;
          Alcotest.test_case "readers vs writers" `Quick
            test_readers_vs_writers;
          Alcotest.test_case "read-only not shared" `Quick
            test_read_only_not_shared;
          Alcotest.test_case "statics per-origin" `Quick
            test_static_single_origin;
          Alcotest.test_case "arrays" `Quick test_array_sharing;
          Alcotest.test_case "figure2 counts" `Quick test_counts_figure2;
          Alcotest.test_case "origin-local report" `Quick
            test_origin_local_report;
          Alcotest.test_case "pp output" `Quick test_pp_output;
        ] );
    ]
