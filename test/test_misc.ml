(* Cross-cutting coverage for corners the focused suites do not hit:
   every Table 1 builtin root, the origin-attributes API (the Figure 2
   view), cross-origin static and array flows, runtime semantics of posts
   with arguments and static calls, three-lock deadlock cycles, and the
   JSON serializer. *)

open O2_ir.Builder
open O2_pta

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------- Table 1 builtin roots ---------------- *)

let entry_prog root entry =
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "X" ~super:root ~fields:[ "s" ]
        [
          meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
          meth entry [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
        ];
      cls "M"
        [
          meth ~static:true "main" []
            [
              new_ "d" "Data" [];
              new_ "x1" "X" [ "d" ];
              new_ "x2" "X" [ "d" ];
              start "x1";
              start "x2";
            ];
        ];
    ]

let test_thread_roots () =
  List.iter
    (fun (root, entry) ->
      let p = entry_prog root entry in
      let _, _, r = O2_race.Detect.analyze p in
      check_int (root ^ " races") 1 (O2_race.Detect.n_races r))
    [ ("Thread", "run"); ("Runnable", "run"); ("Callable", "call") ]

let handler_prog root entry =
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "X" ~super:root ~fields:[ "s" ]
        [
          meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
          meth entry [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
        ];
      cls "W" ~super:"Thread" ~fields:[ "s" ]
        [
          meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
          meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
        ];
      cls "M"
        [
          meth ~static:true "main" []
            [
              new_ "d" "Data" [];
              new_ "x" "X" [ "d" ];
              new_ "w" "W" [ "d" ];
              post "x" [];
              start "w";
            ];
        ];
    ]

let test_handler_roots () =
  List.iter
    (fun (root, entry) ->
      let p = handler_prog root entry in
      let _, _, r = O2_race.Detect.analyze p in
      (* handler vs thread: 1 race; dispatcher prevents nothing here since
         the other side is a thread *)
      check_int (root ^ " handler race") 1 (O2_race.Detect.n_races r))
    [
      ("Handler", "handle");
      ("EventHandler", "handleEvent");
      ("Receiver", "onReceive");
      ("Listener", "actionPerformed");
    ]

(* ---------------- origin attributes (Figure 2 view) ---------------- *)

let test_origin_attributes () =
  let p = O2_workloads.Figures.figure2 () in
  let a = Solver.analyze ~policy:(Context.Korigin 1) p in
  let ogs = Solver.origins a in
  check_int "main + two thread origins" 3 (Array.length ogs);
  (* each non-main origin carries the shared Data plus its own Op *)
  let pag = a.Solver.pag in
  let classes_of i =
    List.map
      (fun oid -> (Pag.obj pag oid).Pag.ob_class)
      (Solver.origin_attrs a i)
    |> List.sort_uniq compare
  in
  let attrs = List.sort compare [ classes_of 1; classes_of 2 ] in
  Alcotest.(check (list (list string)))
    "attribute classes"
    [ [ "Data"; "Op1" ]; [ "Data"; "Op2" ] ]
    attrs

(* ---------------- cross-origin flows ---------------- *)

let test_static_cross_origin_flow () =
  (* a thread publishes an object via a static; another thread reads it and
     touches its field: the flow resolves and the race is on the published
     object *)
  let p =
    prog ~main:"M"
      [
        cls "G" ~sfields:[ "slot" ] [];
        cls "Data" ~fields:[ "v" ] [];
        cls "Pub" ~super:"Thread"
          [
            meth "run" []
              [ new_ "d" "Data" []; swrite "G" "slot" "d"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "Sub" ~super:"Thread"
          [
            meth "run" []
              [ sread "d" "G" "slot"; fread "x" "d" "v"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "p" "Pub" [];
                new_ "s" "Sub" [];
                start "p";
                start "s";
              ];
          ];
      ]
  in
  let _, _, r = O2_race.Detect.analyze p in
  (* races: the static slot itself (w/r) and the published Data.v (w/r) *)
  check_int "slot + payload races" 2 (O2_race.Detect.n_races r)

let test_array_cross_origin_flow () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "Arr" [];
        cls "Prod" ~super:"Thread" ~fields:[ "a" ]
          [
            meth "init" [ "a" ] [ fwrite "this" "a" "a" ];
            meth "run" []
              [
                fread "arr" "this" "a";
                new_ "d" "Data" [];
                awrite "arr" "d";
                ret None;
              ];
          ];
        cls "Cons" ~super:"Thread" ~fields:[ "a" ]
          [
            meth "init" [ "a" ] [ fwrite "this" "a" "a" ];
            meth "run" []
              [
                fread "arr" "this" "a";
                aread "d" "arr";
                fwrite "d" "v" "d";
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "arr" "Arr" [];
                new_ "p" "Prod" [ "arr" ];
                new_ "c" "Cons" [ "arr" ];
                start "p";
                start "c";
              ];
          ];
      ]
  in
  let a = Solver.analyze ~policy:(Context.Korigin 1) p in
  (* the producer's Data flows through the array into the consumer *)
  check_bool "payload crosses the array" true
    (Query.may_alias a ("Prod", "run", "d") ("Cons", "run", "d"));
  let _, _, r = O2_race.Detect.analyze p in
  check_bool "array-cell race found" true (O2_race.Detect.n_races r >= 1)

(* ---------------- runtime corners ---------------- *)

let test_post_args_runtime () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "H" ~super:"Handler"
          [
            meth "handle" [ "msg" ] [ fwrite "msg" "v" "msg"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "h" "H" []; new_ "m" "Data" []; post "h" [ "m" ] ];
          ];
      ]
  in
  let o = O2_runtime.Interp.run ~seed:0 p in
  check_bool "completed" true o.O2_runtime.Interp.completed;
  check_bool "the posted argument reached the handler" true
    (List.exists
       (function
         | O2_runtime.Interp.Ewrite { field = "v"; _ } -> true
         | _ -> false)
       o.O2_runtime.Interp.events)

let test_static_call_runtime () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "F"
          [
            meth ~static:true "mk" [] [ new_ "x" "Data" []; ret (Some "x") ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [ scall ~ret:"d" "F" "mk" []; fwrite "d" "v" "d" ];
          ];
      ]
  in
  check_bool "static call returns a value" true
    (O2_runtime.Interp.run p).O2_runtime.Interp.completed

let test_missing_method_runtime () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "M"
          [ meth ~static:true "main" [] [ new_ "a" "A" []; call "a" "nope" [] ] ];
      ]
  in
  match O2_runtime.Interp.run p with
  | exception O2_runtime.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected Runtime_error"

(* ---------------- three-lock deadlock cycle ---------------- *)

let test_deadlock_three_way () =
  let worker name l1 l2 =
    cls name ~super:"Thread" ~fields:[ "a"; "b" ]
      [
        meth "init" [ "a"; "b" ]
          [ fwrite "this" "a" "a"; fwrite "this" "b" "b" ];
        meth "run" []
          [
            fread "a" "this" "a";
            fread "b" "this" "b";
            sync "a" [ sync "b" [ fwrite "a" "v" "a" ] ];
            ret None;
          ];
      ]
    |> fun c -> (c, l1, l2)
  in
  let (c1, _, _), (c2, _, _), (c3, _, _) =
    (worker "W1" "x" "y", worker "W2" "y" "z", worker "W3" "z" "x")
  in
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        c1; c2; c3;
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "x" "Data" [];
                new_ "y" "Data" [];
                new_ "z" "Data" [];
                new_ "w1" "W1" [ "x"; "y" ];
                new_ "w2" "W2" [ "y"; "z" ];
                new_ "w3" "W3" [ "z"; "x" ];
                start "w1";
                start "w2";
                start "w3";
              ];
          ];
      ]
  in
  let r = O2_race.Deadlock.analyze p in
  check_bool "three-way cycle found" true (O2_race.Deadlock.n_deadlocks r >= 1)

(* ---------------- JSON ---------------- *)

let test_json_output () =
  let m = O2_workloads.Models.find "zookeeper" in
  let a, g, report = O2_race.Detect.analyze (m.program ()) in
  let json = O2_race.Report.to_json a g report in
  check_bool "has races array" true (contains json "\"races\":[");
  check_bool "has summary" true (contains json "\"n_races\":1");
  check_bool "escapes backslashes safely" true
    (not (contains json "\n"))

let test_json_escaping () =
  (* a file name with quotes and newlines must not break the document *)
  let src =
    "main M;\nclass D { field f; }\nclass T extends Thread { field s; method \
     init(s) { this.s = s; } method run() { local d; d = this.s; d.f = d; } \
     }\nclass M { static method main() { local d, t1, t2; d = new D(); t1 = \
     new T(d); t2 = new T(d); start t1; start t2; } }"
  in
  let p = O2_frontend.Parser.parse_string ~file:"we\"ird\\name.cir" src in
  let a, g, report = O2_race.Detect.analyze p in
  let json = O2_race.Report.to_json a g report in
  check_bool "quote escaped" true (contains json "we\\\"ird");
  check_bool "backslash escaped" true (contains json "\\\\name")


(* ---------------- policy parsing ---------------- *)

let test_policy_spellings () =
  List.iter
    (fun (s, expected) ->
      match Context.policy_of_string s with
      | Ok p ->
          check_bool (Printf.sprintf "%S parses as %s" s (Context.policy_name p))
            true (p = expected)
      | Error e -> Alcotest.fail (Printf.sprintf "%S rejected: %s" s e))
    [
      ("0-ctx", Context.Insensitive);
      ("0ctx", Context.Insensitive);
      ("insensitive", Context.Insensitive);
      ("INSENSITIVE", Context.Insensitive);
      ("o2", Context.Korigin 1);
      ("O2", Context.Korigin 1);
      ("origin", Context.Korigin 1);
      ("1-origin", Context.Korigin 1);
      ("2-origin", Context.Korigin 2);
      ("1-cfa", Context.Kcfa 1);
      ("2-CFA", Context.Kcfa 2);
      ("1-obj", Context.Kobj 1);
      ("3-obj", Context.Kobj 3);
    ]

let test_policy_round_trip () =
  List.iter
    (fun p ->
      let name = Context.policy_name p in
      match Context.policy_of_string name with
      | Ok p' -> check_bool (name ^ " round-trips") true (p = p')
      | Error e -> Alcotest.fail (Printf.sprintf "%s rejected: %s" name e))
    [
      Context.Insensitive;
      Context.Korigin 1;
      Context.Korigin 2;
      Context.Kcfa 1;
      Context.Kcfa 2;
      Context.Kobj 1;
      Context.Kobj 2;
    ]

let test_policy_rejections () =
  List.iter
    (fun s ->
      match Context.policy_of_string s with
      | Error msg -> check_bool (s ^ " error is non-empty") true (msg <> "")
      | Ok p ->
          Alcotest.fail
            (Printf.sprintf "%S wrongly accepted as %s" s (Context.policy_name p)))
    [ "0-origin"; "0-cfa"; "0-obj"; "-1-cfa"; "-2-origin"; "x-origin"; "garbage"; "" ];
  (* the k >= 1 rejection points at the insensitive spelling instead *)
  (match Context.policy_of_string "0-origin" with
  | Error msg -> check_bool "mentions 0-ctx" true (contains msg "0-ctx")
  | Ok _ -> Alcotest.fail "0-origin wrongly accepted")

let test_policy_entry_validation () =
  (* a non-positive k can still be constructed programmatically; entry and
     the solver must reject it instead of silently degrading *)
  List.iter
    (fun p ->
      (match Context.entry p with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "Context.entry accepted non-positive k");
      match Solver.analyze ~policy:p (entry_prog "Thread" "run") with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "Solver.analyze accepted non-positive k")
    [ Context.Korigin 0; Context.Kcfa 0; Context.Kobj (-1) ];
  (* valid policies still build an entry context *)
  List.iter
    (fun p -> ignore (Context.entry p))
    [ Context.Insensitive; Context.Korigin 1; Context.Kcfa 2; Context.Kobj 1 ]

(* ---------------- external calls (section 4.3) ---------------- *)

let test_external_call_anonymous_object () =
  (* calling a function with no body anywhere: the result is an anonymous
     object, so downstream accesses are still analyzed (section 4.3) *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "Libc" [];
        cls "W" ~super:"Thread" ~fields:[ "io" ]
          [
            meth "init" [ "io" ] [ fwrite "this" "io" "io" ];
            meth "run" []
              [
                fread "io" "this" "io";
                call ~ret:"buf" "io" "read_external" [];
                fwrite "buf" "v" "buf";
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "io" "Libc" [];
                new_ "w1" "W" [ "io" ];
                new_ "w2" "W" [ "io" ];
                start "w1";
                start "w2";
              ];
          ];
      ]
  in
  let a = Solver.analyze ~policy:(Context.Korigin 1) p in
  let objs = Query.points_to a ~cls:"W" ~meth:"run" ~var:"buf" in
  check_bool "anonymous object created" true (objs <> []);
  check_bool "marked external" true
    (List.for_all (fun oi -> oi.Query.oi_class = "<external>") objs);
  (* under the origin policy each origin's external result is its own
     object: no false race between the two workers *)
  let _, _, r = O2_race.Detect.analyze p in
  check_int "O2: per-origin external results" 0 (O2_race.Detect.n_races r)

let test_internal_unresolved_no_anon () =
  (* a name that exists on some class is not external: no anonymous object
     even if this receiver cannot dispatch it *)
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "B" [ meth "f" [] [ ret None ] ];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "a" "A" []; call ~ret:"r" "a" "f" [] ];
          ];
      ]
  in
  let a = Solver.analyze ~policy:(Context.Korigin 1) p in
  check_int "no anonymous object" 0
    (List.length (Query.points_to a ~cls:"M" ~meth:"main" ~var:"r"))

let () =
  Alcotest.run "misc"
    [
      ( "builtin-roots",
        [
          Alcotest.test_case "thread roots" `Quick test_thread_roots;
          Alcotest.test_case "handler roots" `Quick test_handler_roots;
        ] );
      ( "origins",
        [ Alcotest.test_case "figure2 attributes" `Quick test_origin_attributes ] );
      ( "flows",
        [
          Alcotest.test_case "static publication" `Quick
            test_static_cross_origin_flow;
          Alcotest.test_case "array channel" `Quick
            test_array_cross_origin_flow;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "post args" `Quick test_post_args_runtime;
          Alcotest.test_case "static call" `Quick test_static_call_runtime;
          Alcotest.test_case "missing method" `Quick
            test_missing_method_runtime;
        ] );
      ( "deadlock",
        [ Alcotest.test_case "three-way" `Quick test_deadlock_three_way ] );
      ( "external",
        [
          Alcotest.test_case "anonymous object" `Quick
            test_external_call_anonymous_object;
          Alcotest.test_case "internal unresolved" `Quick
            test_internal_unresolved_no_anon;
        ] );
      ( "policy",
        [
          Alcotest.test_case "spellings" `Quick test_policy_spellings;
          Alcotest.test_case "round-trip" `Quick test_policy_round_trip;
          Alcotest.test_case "rejections" `Quick test_policy_rejections;
          Alcotest.test_case "entry validation" `Quick
            test_policy_entry_validation;
        ] );
      ( "json",
        [
          Alcotest.test_case "structure" `Quick test_json_output;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
        ] );
    ]
