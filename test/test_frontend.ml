open O2_frontend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse src = Parser.parse_string src

let minimal = "main M;\nclass M { static method main() { } }"

(* ---------------- lexer ---------------- *)

let lex_all src =
  let lb = Lexing.from_string src in
  let rec go acc =
    match Lexer.token lb with
    | Token.EOF -> List.rev acc
    | t -> go (t :: acc)
  in
  go []

let test_lex_tokens () =
  let toks = lex_all "x = y.f; // comment\nstart t; [*] [ * ] ::" in
  Alcotest.(check int) "count" 12 (List.length toks);
  check_bool "star brackets" true
    (List.mem Token.STAR_BRACKETS toks && List.mem Token.COLONCOLON toks)

let test_lex_keywords_vs_idents () =
  Alcotest.(check bool)
    "sync is keyword" true
    (lex_all "sync" = [ Token.KW_SYNC ]);
  Alcotest.(check bool)
    "synchro is ident" true
    (lex_all "synchro" = [ Token.IDENT "synchro" ]);
  Alcotest.(check bool)
    "underscore ident" true
    (lex_all "_x9" = [ Token.IDENT "_x9" ])

let test_lex_block_comment () =
  Alcotest.(check bool)
    "block comment skipped" true
    (lex_all "a /* b \n c */ d" = [ Token.IDENT "a"; Token.IDENT "d" ])

let test_lex_unterminated_comment () =
  match lex_all "a /* never ends" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected Lex_error"

let test_lex_bad_char () =
  match lex_all "a $ b" with
  | exception Lexer.Lex_error (_, line) -> check_int "line" 1 line
  | _ -> Alcotest.fail "expected Lex_error"

(* ---------------- parser: statement forms ---------------- *)

let body_of src stmts_src =
  ignore src;
  let full =
    Printf.sprintf
      "main M;\nclass D { field f; }\nclass M { static method main() { local \
       x, y, a; y = new D(); a = new D(); %s } }"
      stmts_src
  in
  let p = parse full in
  let main = O2_ir.Program.main p in
  main.O2_ir.Program.m_body

let last_kind stmts_src =
  let body = body_of () stmts_src in
  (List.nth body (List.length body - 1)).O2_ir.Ast.sk

let test_parse_statements () =
  let open O2_ir.Ast in
  (match last_kind "x = y;" with Assign ("x", "y") -> () | _ -> Alcotest.fail "assign");
  (match last_kind "x = null;" with Null "x" -> () | _ -> Alcotest.fail "null");
  (match last_kind "x = new D(y, a);" with
  | New ("x", "D", [ "y"; "a" ]) -> ()
  | _ -> Alcotest.fail "new");
  (match last_kind "y.f = a;" with
  | FieldWrite ("y", "f", "a") -> ()
  | _ -> Alcotest.fail "fwrite");
  (match last_kind "x = y.f;" with
  | FieldRead ("x", "y", "f") -> ()
  | _ -> Alcotest.fail "fread");
  (match last_kind "y[*] = a;" with
  | ArrayWrite ("y", "a") -> ()
  | _ -> Alcotest.fail "awrite");
  (match last_kind "x = y[*];" with
  | ArrayRead ("x", "y") -> ()
  | _ -> Alcotest.fail "aread");
  (match last_kind "x = y.m(a);" with
  | Call (Some "x", "y", "m", [ "a" ]) -> ()
  | _ -> Alcotest.fail "call ret");
  (match last_kind "y.m();" with
  | Call (None, "y", "m", []) -> ()
  | _ -> Alcotest.fail "call");
  (match last_kind "x = M::sm(a);" with
  | StaticCall (Some "x", "M", "sm", [ "a" ]) -> ()
  | _ -> Alcotest.fail "scall ret");
  (match last_kind "M::sm();" with
  | StaticCall (None, "M", "sm", []) -> ()
  | _ -> Alcotest.fail "scall");
  (match last_kind "start y;" with Start "y" -> () | _ -> Alcotest.fail "start");
  (match last_kind "join y;" with Join "y" -> () | _ -> Alcotest.fail "join");
  (match last_kind "post y(a);" with
  | Post ("y", [ "a" ]) -> ()
  | _ -> Alcotest.fail "post");
  (match last_kind "return;" with Return None -> () | _ -> Alcotest.fail "ret");
  match last_kind "return y;" with
  | Return (Some "y") -> ()
  | _ -> Alcotest.fail "ret v"

let test_parse_static_access () =
  let src =
    "main M;\nclass G { static field g; }\nclass M { static method main() { \
     local x; x = G::g; G::g = x; } }"
  in
  let p = parse src in
  let main = O2_ir.Program.main p in
  match List.map (fun (s : O2_ir.Ast.stmt) -> s.sk) main.m_body with
  | [ O2_ir.Ast.StaticRead ("x", "G", "g"); O2_ir.Ast.StaticWrite ("G", "g", "x") ] -> ()
  | _ -> Alcotest.fail "static access forms"

let test_parse_nested_blocks () =
  let body =
    body_of ()
      "sync (y) { if { x = y; } else { while { x = a; } } } if { } x = y;"
  in
  check_int "top-level statements" 5 (List.length body);
  match (List.nth body 2).O2_ir.Ast.sk with
  | O2_ir.Ast.Sync ("y", [ { O2_ir.Ast.sk = O2_ir.Ast.If (_, _); _ } ]) -> ()
  | _ -> Alcotest.fail "nested structure"

let test_parse_if_no_else () =
  match last_kind "if { x = y; }" with
  | O2_ir.Ast.If ([ _ ], []) -> ()
  | _ -> Alcotest.fail "if without else"

let test_parse_positions () =
  let p = parse "main M;\nclass M { static method main() {\nlocal x;\nx = null;\n} }" in
  let main = O2_ir.Program.main p in
  match main.m_body with
  | [ s ] -> check_int "line" 4 s.O2_ir.Ast.pos.line
  | _ -> Alcotest.fail "one stmt"

let test_parse_main_as_ident () =
  (* "main" usable as a method name besides being the header keyword *)
  let p = parse minimal in
  Alcotest.(check string) "main name" "main" (O2_ir.Program.main p).m_name

let test_parse_class_members () =
  let p =
    parse
      "main M;\nclass C extends Thread { field a; static field s; method \
       run() { } static method mk() { } }\nclass M { static method main() { \
       } }"
  in
  match O2_ir.Program.find_class p "C" with
  | Some c ->
      Alcotest.(check (list string)) "fields" [ "a" ] c.c_fields;
      Alcotest.(check (list string)) "sfields" [ "s" ] c.c_sfields;
      check_bool "static method" true
        (O2_ir.Program.static_method p "C" "mk" <> None)
  | None -> Alcotest.fail "class C"

(* ---------------- parse errors ---------------- *)

let expect_parse_error src =
  match parse src with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_parse_errors () =
  expect_parse_error "class M { }";  (* missing main header *)
  expect_parse_error "main M\nclass M {}";  (* missing semicolon *)
  expect_parse_error "main M;\nclass M { static method main() { x = ; } }";
  expect_parse_error "main M;\nclass M { static method main() { x y; } }";
  expect_parse_error "main M;\nclass M { static method main() { sync x { } } }";
  expect_parse_error "main M;\nclass M { banana; }";
  expect_parse_error "main M;\nclass M { static method main() { start; } }"

let test_parse_error_line () =
  match parse "main M;\nclass M {\nstatic method main() {\n???\n} }" with
  | exception Lexer.Lex_error (_, line) -> check_int "line" 4 line
  | exception Parser.Parse_error (_, line) -> check_int "line" 4 line
  | _ -> Alcotest.fail "expected error"

let test_parse_file () =
  let tmp = Filename.temp_file "o2test" ".cir" in
  let oc = open_out tmp in
  output_string oc minimal;
  close_out oc;
  let p = Parser.parse_file tmp in
  Sys.remove tmp;
  Alcotest.(check string) "main" "M" (O2_ir.Program.main p).m_class

let test_parse_models_and_figures () =
  (* every embedded CIR source must parse and lint clean *)
  let programs =
    [
      O2_workloads.Figures.figure2 ();
      O2_workloads.Figures.figure3 ();
    ]
    @ List.concat_map
        (fun (m : O2_workloads.Models.model) -> [ m.program (); m.fixed () ])
        O2_workloads.Models.all
  in
  List.iter
    (fun p ->
      Alcotest.(check int) "lints clean" 0
        (List.length (O2_ir.Wellformed.check p)))
    programs

(* render → parse → render must be byte-identical across the full fuzz
   shape space (chains, storms, nested sync, degenerate empty bodies) —
   the printer/parser contract the differential harness's stage 1 rests
   on. The test_ir round trip covers the older helper generator; this one
   covers Synth.gen. *)
let prop_synth_roundtrip =
  QCheck2.Test.make ~name:"synth render→parse→render byte-identical"
    ~count:120
    ~print:(fun s -> Format.asprintf "%a" O2_workloads.Synth.pp_spec s)
    O2_workloads.Synth.gen
    (fun spec ->
      let p = O2_workloads.Synth.program spec in
      let src = O2_ir.Pp.program_to_string p in
      let p2 = parse src in
      String.equal src (O2_ir.Pp.program_to_string p2))

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lex_tokens;
          Alcotest.test_case "keywords" `Quick test_lex_keywords_vs_idents;
          Alcotest.test_case "block comment" `Quick test_lex_block_comment;
          Alcotest.test_case "unterminated comment" `Quick
            test_lex_unterminated_comment;
          Alcotest.test_case "bad char" `Quick test_lex_bad_char;
        ] );
      ( "parser",
        [
          Alcotest.test_case "statement forms" `Quick test_parse_statements;
          Alcotest.test_case "static access" `Quick test_parse_static_access;
          Alcotest.test_case "nested blocks" `Quick test_parse_nested_blocks;
          Alcotest.test_case "if no else" `Quick test_parse_if_no_else;
          Alcotest.test_case "positions" `Quick test_parse_positions;
          Alcotest.test_case "main as ident" `Quick test_parse_main_as_ident;
          Alcotest.test_case "class members" `Quick test_parse_class_members;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error line" `Quick test_parse_error_line;
          Alcotest.test_case "parse_file" `Quick test_parse_file;
          Alcotest.test_case "models+figures parse" `Quick
            test_parse_models_and_figures;
          QCheck_alcotest.to_alcotest prop_synth_roundtrip;
        ] );
    ]
