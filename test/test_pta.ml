open O2_ir
open O2_ir.Builder
open O2_pta

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let analyze ?(policy = Context.Korigin 1) p = Solver.analyze ~policy p

(* points-to of a local in a reached method instance, searching all
   contexts the method was reached under *)
let pts_classes a mname v =
  let out = ref [] in
  List.iter
    (fun ((m : Program.meth), ctx) ->
      if m.Program.m_name = mname || m.Program.m_class ^ "." ^ m.Program.m_name = mname
      then
        O2_util.Bitset.iter
          (fun oid ->
            let o = Pag.obj (a.Solver.pag) oid in
            out := o.Pag.ob_class :: !out)
          (Solver.pts_var a m ctx v))
    (Solver.reached a);
  List.sort_uniq compare !out

let pts_count a mname v =
  let p = ref [] in
  List.iter
    (fun ((m : Program.meth), ctx) ->
      if m.Program.m_name = mname then
        O2_util.Bitset.iter
          (fun oid -> p := oid :: !p)
          (Solver.pts_var a m ctx v))
    (Solver.reached a);
  List.length (List.sort_uniq compare !p)

(* ---------------- Table 2 rules, one by one ---------------- *)

(* ❶/❷: allocation and copy *)
let test_rule_alloc_copy () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "B" [];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "x" "A" []; assign "y" "x"; new_ "z" "B" [] ];
          ];
      ]
  in
  let a = analyze p in
  Alcotest.(check (list string)) "x:A" [ "A" ] (pts_classes a "main" "x");
  Alcotest.(check (list string)) "y=x" [ "A" ] (pts_classes a "main" "y");
  Alcotest.(check (list string)) "z:B" [ "B" ] (pts_classes a "main" "z")

(* ❸/❹: field store and load *)
let test_rule_field () =
  let p =
    prog ~main:"M"
      [
        cls "Box" ~fields:[ "f" ] [];
        cls "A" [];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "b" "Box" [];
                new_ "v" "A" [];
                fwrite "b" "f" "v";
                fread "r" "b" "f";
              ];
          ];
      ]
  in
  let a = analyze p in
  Alcotest.(check (list string)) "load sees store" [ "A" ]
    (pts_classes a "main" "r")

(* field-sensitivity: different fields do not leak *)
let test_rule_field_sensitive () =
  let p =
    prog ~main:"M"
      [
        cls "Box" ~fields:[ "f"; "g" ] [];
        cls "A" [];
        cls "B" [];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "b" "Box" [];
                new_ "va" "A" [];
                new_ "vb" "B" [];
                fwrite "b" "f" "va";
                fwrite "b" "g" "vb";
                fread "rf" "b" "f";
              ];
          ];
      ]
  in
  let a = analyze p in
  Alcotest.(check (list string)) "only f" [ "A" ] (pts_classes a "main" "rf")

(* ❺/❻: arrays via the * field *)
let test_rule_array () =
  let p =
    prog ~main:"M"
      [
        cls "Arr" [];
        cls "A" [];
        cls "B" [];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "arr" "Arr" [];
                new_ "va" "A" [];
                new_ "vb" "B" [];
                awrite "arr" "va";
                awrite "arr" "vb";
                aread "r" "arr";
              ];
          ];
      ]
  in
  let a = analyze p in
  Alcotest.(check (list string)) "both elems" [ "A"; "B" ]
    (pts_classes a "main" "r")

(* statics *)
let test_rule_static () =
  let p =
    prog ~main:"M"
      [
        cls "G" ~sfields:[ "s" ] [];
        cls "A" [];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "v" "A" []; swrite "G" "s" "v"; sread "r" "G" "s" ];
          ];
      ]
  in
  let a = analyze p in
  Alcotest.(check (list string)) "via static" [ "A" ] (pts_classes a "main" "r")

(* ❼: virtual dispatch by receiver class; params and returns flow *)
let test_rule_call () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "Base" [ meth "id" [ "p" ] [ ret (Some "p") ] ];
        cls "Sub" ~super:"Base"
          [ meth "id" [ "p" ] [ new_ "q" "A" []; ret (Some "q") ] ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "b" "Base" [];
                new_ "s" "Sub" [];
                new_ "v" "A" [];
                call ~ret:"r1" "b" "id" [ "v" ];
                call ~ret:"r2" "s" "id" [ "v" ];
              ];
          ];
      ]
  in
  let a = analyze p in
  Alcotest.(check (list string)) "base id" [ "A" ] (pts_classes a "main" "r1");
  Alcotest.(check (list string)) "sub returns fresh" [ "A" ]
    (pts_classes a "main" "r2");
  (* `this` flows into the callee *)
  check_bool "this bound" true (pts_classes a "id" "this" <> [])

(* static calls *)
let test_rule_static_call () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "F" [ meth ~static:true "mk" [] [ new_ "x" "A" []; ret (Some "x") ] ];
        cls "M"
          [ meth ~static:true "main" [] [ scall ~ret:"r" "F" "mk" [] ] ];
      ]
  in
  let a = analyze p in
  Alcotest.(check (list string)) "static ret" [ "A" ] (pts_classes a "main" "r")

(* ❽/❾: origin allocation + entry *)
let test_rule_origin_entry () =
  let p =
    prog ~main:"M"
      [
        cls "W" ~super:"Thread" ~fields:[ "d" ]
          [
            meth "init" [ "d" ] [ fwrite "this" "d" "d" ];
            meth "run" [] [ fread "x" "this" "d"; ret None ];
          ];
        cls "A" [];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "a" "A" []; new_ "w" "W" [ "a" ]; start "w" ];
          ];
      ]
  in
  let a = analyze p in
  (* the entry body is reached and sees the constructor argument *)
  Alcotest.(check (list string)) "attr flows" [ "A" ] (pts_classes a "run" "x");
  let sps = a.Solver.spawns in
  check_int "spawns" 2 (Array.length sps);
  check_bool "thread spawn" true
    (Array.exists (fun (s : Solver.spawn) -> s.sp_kind = `Thread) sps);
  check_int "#O" 1 (Solver.n_origins a)

(* Figure 3: context switch at origin allocation removes false aliasing *)
let test_figure3_no_false_alias () =
  let p = O2_workloads.Figures.figure3 () in
  let a = analyze p in
  (* each thread's f is a distinct abstract object *)
  check_int "two objects for f" 2 (pts_count a "run" "f");
  let a0 = analyze ~policy:Context.Insensitive p in
  check_int "0-ctx collapses them" 1 (pts_count a0 "run" "f")

(* Figure 2: origin attributes select the right util implementation *)
let test_figure2_dispatch () =
  let p = O2_workloads.Figures.figure2 () in
  let a = analyze p in
  check_int "two y objects under OPA" 2 (pts_count a "subN" "y");
  let a0 = analyze ~policy:Context.Insensitive p in
  check_int "one y object under 0-ctx" 1 (pts_count a0 "subN" "y")

(* k-CFA distinguishes by call site, up to depth k *)
let test_kcfa_depth () =
  let deep =
    prog ~main:"M"
      [
        cls "A" [];
        cls "H"
          [
            meth "l1" [] [ call ~ret:"r" "this" "l2" []; ret (Some "r") ];
            meth "l2" [] [ new_ "x" "A" []; ret (Some "x") ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "h" "H" [];
                call ~ret:"a" "h" "l1" [];
                call ~ret:"b" "h" "l1" [];
              ];
          ];
      ]
  in
  (* the alloc is 2 calls deep: 1-CFA merges the two paths, 2-CFA splits *)
  let a1 = analyze ~policy:(Context.Kcfa 1) deep in
  check_int "1-CFA merges" 1 (pts_count a1 "l2" "x");
  let a2 = analyze ~policy:(Context.Kcfa 2) deep in
  check_int "2-CFA splits the alloc" 2 (pts_count a2 "l2" "x")

(* k-obj: receiver objects are the context *)
let test_kobj () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "H" [ meth "mk" [] [ new_ "x" "A" []; ret (Some "x") ] ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "h1" "H" [];
                new_ "h2" "H" [];
                call ~ret:"a" "h1" "mk" [];
                call ~ret:"b" "h2" "mk" [];
              ];
          ];
      ]
  in
  let a1 = analyze ~policy:(Context.Kobj 1) p in
  check_int "1-obj splits by receiver" 2 (pts_count a1 "mk" "x");
  let a0 = analyze ~policy:Context.Insensitive p in
  check_int "0-ctx merges" 1 (pts_count a0 "mk" "x")

(* OPA rule ❼: a method called on a shared object still runs in the
   caller's origin (no context explosion inside an origin) *)
let test_origin_call_keeps_context () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "Svc" [ meth "mk" [] [ new_ "x" "A" []; ret (Some "x") ] ];
        cls "W" ~super:"Thread" ~fields:[ "svc" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "svc" "s" ];
            meth "run" []
              [ fread "s" "this" "svc"; call ~ret:"r" "s" "mk" []; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "s" "Svc" [];
                new_ "w1" "W" [ "s" ];
                new_ "w2" "W" [ "s" ];
                start "w1";
                start "w2";
              ];
          ];
      ]
  in
  let a = analyze p in
  (* svc is shared, but mk is analyzed once per origin: two A objects *)
  check_int "per-origin allocation in shared callee" 2 (pts_count a "mk" "x")

(* loop doubling: an origin allocated in a loop becomes two origins *)
let test_loop_doubling () =
  let p =
    prog ~main:"M"
      [
        cls "W" ~super:"Thread" [ meth "run" [] [ ret None ] ];
        cls "M"
          [
            meth ~static:true "main" []
              [ while_ [ new_ "w" "W" []; start "w" ] ];
          ];
      ]
  in
  let a = analyze p in
  check_int "#O doubled" 2 (Solver.n_origins a);
  check_int "two spawned origins" 3 (Array.length (a.Solver.spawns));
  (* outside a loop: one *)
  let p1 =
    prog ~main:"M"
      [
        cls "W" ~super:"Thread" [ meth "run" [] [ ret None ] ];
        cls "M"
          [ meth ~static:true "main" [] [ new_ "w" "W" []; start "w" ] ];
      ]
  in
  check_int "#O single" 1 (Solver.n_origins (analyze p1))

(* wrapper k=1 extension: one wrapper called from two sites = two origins *)
let test_wrapper_extension () =
  let p =
    prog ~main:"M"
      [
        cls "W" ~super:"Thread" [ meth "run" [] [ ret None ] ];
        cls "F"
          [
            meth ~static:true "spawn" []
              [ new_ "t" "W" []; start "t"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [ scall "F" "spawn" []; scall "F" "spawn" [] ];
          ];
      ]
  in
  let a = analyze p in
  check_int "two origins through the wrapper" 2 (Solver.n_origins a)

(* origin identity: each allocation instance gets a unique origin ("a new
   and unique origin Oj is created for this new allocation") — two parent
   origins allocating the same inner thread class get distinct inner
   origins even at k=1 *)
let test_origin_identity_per_parent () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "Inner" ~super:"Thread"
          [ meth "run" [] [ new_ "x" "A" []; ret None ] ];
        cls "Outer" ~super:"Thread"
          [
            meth "run" [] [ new_ "i" "Inner" []; start "i"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "o1" "Outer" [];
                new_ "o2" "Outer" [];
                start "o1";
                start "o2";
              ];
          ];
      ]
  in
  let a1 = analyze ~policy:(Context.Korigin 1) p in
  (* 2 outers + one inner per outer = 4 origins *)
  check_int "origins unique per parent" 4 (Solver.n_origins a1);
  check_int "inner x per inner origin" 2 (pts_count a1 "run" "x")

(* k-origin: recursive spawn chains are collapsed at the repeated site for
   identity, but longer context chains still separate the first levels'
   data (the Redis nested-creation pattern of §3.2) *)
let test_k_origin_recursion () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "R" ~super:"Thread"
          [
            meth "run" []
              [
                new_ "x" "A" [];
                if_ [ new_ "r" "R" []; start "r" ] [];
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "r0" "R" []; start "r0" ];
          ];
      ]
  in
  (* both terminate despite unbounded runtime recursion *)
  let a1 = analyze ~policy:(Context.Korigin 1) p in
  let a2 = analyze ~policy:(Context.Korigin 2) p in
  check_bool "finite origins at k=1" true (Solver.n_origins a1 <= 4);
  check_bool "finite origins at k=2" true (Solver.n_origins a2 <= 6);
  (* deeper chains give the deeper levels their own data *)
  check_bool "k=2 refines recursion levels" true
    (pts_count a2 "run" "x" >= pts_count a1 "run" "x")

(* events: post triggers the handler entry with arguments *)
let test_post_event () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "H" ~super:"Handler"
          [ meth "handle" [ "msg" ] [ assign "m" "msg"; ret None ] ];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "h" "H" []; new_ "msg" "A" []; post "h" [ "msg" ] ];
          ];
      ]
  in
  let a = analyze p in
  Alcotest.(check (list string)) "event arg flows" [ "A" ]
    (pts_classes a "handle" "m");
  check_bool "event spawn" true
    (Array.exists
       (fun (s : Solver.spawn) -> s.sp_kind = `Event)
       (a.Solver.spawns))

(* start on a non-thread object is ignored, no crash *)
let test_start_non_thread () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "M"
          [ meth ~static:true "main" [] [ new_ "a" "A" []; start "a" ] ];
      ]
  in
  let a = analyze p in
  check_int "only main spawn" 1 (Array.length (a.Solver.spawns))

(* recursion terminates under every policy *)
let test_recursion_terminates () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "R"
          [
            meth "rec_" [ "n" ]
              [ new_ "x" "A" []; call ~ret:"r" "this" "rec_" [ "x" ]; ret (Some "r") ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "r" "R" []; new_ "a" "A" []; call "r" "rec_" [ "a" ] ];
          ];
      ]
  in
  List.iter
    (fun policy -> ignore (analyze ~policy p))
    [ Context.Insensitive; Context.Kcfa 2; Context.Kobj 2; Context.Korigin 2 ]

(* joins are recorded with resolvable targets *)
let test_joins_recorded () =
  let p =
    prog ~main:"M"
      [
        cls "W" ~super:"Thread" [ meth "run" [] [ ret None ] ];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "w" "W" []; start "w"; join "w" ];
          ];
      ]
  in
  let a = analyze p in
  check_int "one join" 1 (List.length (a.Solver.joins))

(* precision refinement: OPA points-to ⊆ 0-ctx points-to, per class set *)
let prop_opa_refines_0ctx =
  QCheck2.Test.make ~name:"OPA never sees classes 0-ctx doesn't" ~count:60
    ~print:O2_test_helpers.Gen.print_spec O2_test_helpers.Gen.spec_gen
    (fun spec ->
      let p = O2_test_helpers.Gen.program_of_spec spec in
      let a_opa = analyze ~policy:(Context.Korigin 1) p in
      let a_0 = analyze ~policy:Context.Insensitive p in
      (* compare the set of (method, var, class) triples *)
      let facts a =
        List.concat_map
          (fun ((m : Program.meth), ctx) ->
            List.concat_map
              (fun v ->
                O2_util.Bitset.fold
                  (fun oid acc ->
                    let o = Pag.obj (a.Solver.pag) oid in
                    (m.Program.m_class, m.Program.m_name, v, o.Pag.ob_class)
                    :: acc)
                  (Solver.pts_var a m ctx v)
                  [])
              (("this" :: m.Program.m_params) @ m.Program.m_locals))
          (Solver.reached a)
        |> List.sort_uniq compare
      in
      let fo = facts a_opa and f0 = facts a_0 in
      List.for_all (fun f -> List.mem f f0) fo)

(* determinism *)
let prop_deterministic =
  QCheck2.Test.make ~name:"solver deterministic" ~count:40
    ~print:O2_test_helpers.Gen.print_spec O2_test_helpers.Gen.spec_gen
    (fun spec ->
      let p = O2_test_helpers.Gen.program_of_spec spec in
      let run () =
        let a = analyze p in
        ( Pag.n_nodes (a.Solver.pag),
          Pag.n_objs (a.Solver.pag),
          Pag.n_edges (a.Solver.pag),
          Array.length (a.Solver.spawns),
          Solver.n_origins a )
      in
      run () = run ())

let () =
  Alcotest.run "pta"
    [
      ( "table2-rules",
        [
          Alcotest.test_case "alloc+copy (1,2)" `Quick test_rule_alloc_copy;
          Alcotest.test_case "field store/load (3,4)" `Quick test_rule_field;
          Alcotest.test_case "field sensitivity" `Quick
            test_rule_field_sensitive;
          Alcotest.test_case "arrays (5,6)" `Quick test_rule_array;
          Alcotest.test_case "statics" `Quick test_rule_static;
          Alcotest.test_case "virtual call (7)" `Quick test_rule_call;
          Alcotest.test_case "static call" `Quick test_rule_static_call;
          Alcotest.test_case "origin alloc+entry (8,9)" `Quick
            test_rule_origin_entry;
        ] );
      ( "origins",
        [
          Alcotest.test_case "figure3 no false alias" `Quick
            test_figure3_no_false_alias;
          Alcotest.test_case "figure2 per-origin data" `Quick
            test_figure2_dispatch;
          Alcotest.test_case "call keeps origin (rule 7)" `Quick
            test_origin_call_keeps_context;
          Alcotest.test_case "loop doubling" `Quick test_loop_doubling;
          Alcotest.test_case "wrapper k=1" `Quick test_wrapper_extension;
          Alcotest.test_case "origin identity per parent" `Quick
            test_origin_identity_per_parent;
          Alcotest.test_case "k-origin recursion" `Quick
            test_k_origin_recursion;
          Alcotest.test_case "post event" `Quick test_post_event;
          Alcotest.test_case "start non-thread" `Quick test_start_non_thread;
        ] );
      ( "policies",
        [
          Alcotest.test_case "k-CFA depth" `Quick test_kcfa_depth;
          Alcotest.test_case "k-obj receivers" `Quick test_kobj;
          Alcotest.test_case "recursion terminates" `Quick
            test_recursion_terminates;
          Alcotest.test_case "joins recorded" `Quick test_joins_recorded;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_opa_refines_0ctx;
          QCheck_alcotest.to_alcotest prop_deterministic;
        ] );
    ]
