(* Corpus batch driver: fault isolation (ok + parse-error + over-budget
   files in one run), per-file byte-identity with serial `o2 analyze`,
   rerun cache hits keyed by source digest, and jobs>1 determinism of the
   aggregate report. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------- corpus fixtures ---------------- *)

let racy_src =
  "main M;\n\
   class D { field f; }\n\
   class T extends Thread {\n\
  \  field s;\n\
  \  method init(s) { this.s = s; }\n\
  \  method run() { local d; d = this.s; d.f = d; }\n\
   }\n\
   class M {\n\
  \  static method main() {\n\
  \    local d, t1, t2;\n\
  \    d = new D();\n\
  \    t1 = new T(d);\n\
  \    t2 = new T(d);\n\
  \    start t1;\n\
  \    start t2;\n\
  \  }\n\
   }\n"

let clean_src =
  "main M;\n\
   class D { field f; }\n\
   class M {\n\
  \  static method main() { local d; d = new D(); d.f = d; }\n\
   }\n"

let bad_src = "this is not a CIR program at all {\n"

(* a long copy chain: every assignment is a PTA worklist push, so this file
   needs far more worklist steps than the small fixtures — a per-file step
   ceiling between the two separates them within one corpus run *)
let heavy_src =
  let b = Buffer.create 8192 in
  Buffer.add_string b "main M;\nclass D { field f; }\nclass M {\n";
  Buffer.add_string b "  static method main() {\n    local x0";
  for i = 1 to 2000 do
    Buffer.add_string b (Printf.sprintf ", x%d" i)
  done;
  Buffer.add_string b ";\n    x0 = new D();\n";
  for i = 1 to 2000 do
    Buffer.add_string b (Printf.sprintf "    x%d = x%d;\n" i (i - 1))
  done;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "o2_batch_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let write_file dir name content =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let find_entry r file =
  List.find
    (fun (e : O2_batch.entry) -> Filename.basename e.O2_batch.e_file = file)
    r.O2_batch.b_entries

(* ---------------- enumeration ---------------- *)

let test_enumerate () =
  let dir = fresh_dir () in
  let a = write_file dir "a.cir" clean_src in
  let b = write_file dir "b.cir" racy_src in
  ignore (write_file dir "notes.txt" "not a corpus member");
  (match O2_batch.enumerate [ dir ] with
  | Ok files -> Alcotest.(check (list string)) "only sorted .cir" [ a; b ] files
  | Error e -> Alcotest.fail e);
  (match O2_batch.enumerate [ dir; b ] with
  | Ok files -> Alcotest.(check (list string)) "deduplicated" [ a; b ] files
  | Error e -> Alcotest.fail e);
  match O2_batch.enumerate [ Filename.concat dir "missing.cir" ] with
  | Error msg -> check_bool "missing path reported" true (contains msg "missing.cir")
  | Ok _ -> Alcotest.fail "expected Error for a missing path"

(* ---------------- fault isolation ---------------- *)

let test_mixed_corpus () =
  let dir = fresh_dir () in
  ignore (write_file dir "clean.cir" clean_src);
  ignore (write_file dir "racy.cir" racy_src);
  ignore (write_file dir "broken.cir" bad_src);
  ignore (write_file dir "heavy.cir" heavy_src);
  let cfg =
    { O2_batch.default with O2_batch.jobs = 2; max_steps = Some 200 }
  in
  let files =
    match O2_batch.enumerate [ dir ] with Ok f -> f | Error e -> Alcotest.fail e
  in
  let r = O2_batch.run cfg files in
  check_int "all four files have entries" 4 (List.length r.O2_batch.b_entries);
  (* the malformed and over-budget files fail structurally... *)
  (match (find_entry r "broken.cir").O2_batch.e_status with
  | `Error msg -> check_bool "parse error captured" true (contains msg "parse error")
  | _ -> Alcotest.fail "broken.cir should be an error entry");
  (match (find_entry r "heavy.cir").O2_batch.e_status with
  | `Timeout msg -> check_bool "step ceiling named" true (contains msg "ceiling")
  | _ -> Alcotest.fail "heavy.cir should be a timeout entry");
  (* ...while every other file still completes *)
  let clean = find_entry r "clean.cir" and racy = find_entry r "racy.cir" in
  check_bool "clean ok" true (clean.O2_batch.e_status = `Ok);
  check_bool "racy ok" true (racy.O2_batch.e_status = `Ok);
  check_int "clean races" 0 clean.O2_batch.e_races;
  check_int "racy races" 1 racy.O2_batch.e_races;
  check_int "two failures" 2 (O2_batch.n_failed r);
  check_int "exit code 1" 1 (O2_batch.exit_code r);
  check_int "race total over ok entries" 1 (O2_batch.total_races r);
  let open O2_util in
  check_int "batch.files" 4 (Metrics.get r.O2_batch.b_metrics "batch.files");
  check_int "batch.ok" 2 (Metrics.get r.O2_batch.b_metrics "batch.ok");
  check_int "batch.errors" 1 (Metrics.get r.O2_batch.b_metrics "batch.errors");
  check_int "batch.timeouts" 1
    (Metrics.get r.O2_batch.b_metrics "batch.timeouts")

let test_wall_deadline () =
  let dir = fresh_dir () in
  ignore (write_file dir "racy.cir" racy_src);
  let cfg = { O2_batch.default with O2_batch.wall = Some 0.0 } in
  let r = O2_batch.run cfg [ Filename.concat dir "racy.cir" ] in
  match (find_entry r "racy.cir").O2_batch.e_status with
  | `Timeout msg -> check_bool "deadline named" true (contains msg "deadline")
  | _ -> Alcotest.fail "expected a wall-clock timeout entry"

(* ---------------- per-file byte-identity with serial analyze ---------------- *)

let serial_report format file =
  let p = O2_frontend.Parser.parse_file file in
  let r = O2.run O2.Config.default p in
  O2.render ~format r

let test_byte_identical_reports () =
  let dir = fresh_dir () in
  ignore (write_file dir "clean.cir" clean_src);
  ignore (write_file dir "racy.cir" racy_src);
  let files =
    match O2_batch.enumerate [ dir ] with Ok f -> f | Error e -> Alcotest.fail e
  in
  List.iter
    (fun format ->
      let cfg = { O2_batch.default with O2_batch.jobs = 2; format } in
      let r = O2_batch.run cfg files in
      List.iter
        (fun (e : O2_batch.entry) ->
          check_string
            ("byte-identical: " ^ Filename.basename e.O2_batch.e_file)
            (serial_report format e.O2_batch.e_file)
            e.O2_batch.e_report)
        r.O2_batch.b_entries)
    [ `Text; `Json ]

(* ---------------- rerun cache ---------------- *)

let test_cache_rerun () =
  let dir = fresh_dir () in
  ignore (write_file dir "clean.cir" clean_src);
  ignore (write_file dir "racy.cir" racy_src);
  let cache = Filename.concat dir "results.cache" in
  let cfg = { O2_batch.default with O2_batch.cache_file = Some cache } in
  let files =
    match O2_batch.enumerate [ dir ] with Ok f -> f | Error e -> Alcotest.fail e
  in
  let r1 = O2_batch.run cfg files in
  check_bool "first run analyzes everything" true
    (List.for_all (fun e -> not e.O2_batch.e_cached) r1.O2_batch.b_entries);
  let r2 = O2_batch.run cfg files in
  check_bool "second run is all cache hits" true
    (List.for_all (fun e -> e.O2_batch.e_cached) r2.O2_batch.b_entries);
  List.iter2
    (fun (a : O2_batch.entry) (b : O2_batch.entry) ->
      check_string "cached report identical" a.O2_batch.e_report
        b.O2_batch.e_report;
      check_int "cached races identical" a.O2_batch.e_races b.O2_batch.e_races)
    r1.O2_batch.b_entries r2.O2_batch.b_entries;
  (* touching one file's content invalidates only that file *)
  ignore (write_file dir "racy.cir" (racy_src ^ "// changed\n"));
  let r3 = O2_batch.run cfg files in
  check_bool "unchanged file still cached" true
    (find_entry r3 "clean.cir").O2_batch.e_cached;
  check_bool "changed file re-analyzed" false
    (find_entry r3 "racy.cir").O2_batch.e_cached;
  (* a different analysis configuration must not reuse the cached result *)
  let cfg' = { cfg with O2_batch.policy = O2_pta.Context.Insensitive } in
  let r4 = O2_batch.run cfg' files in
  check_bool "other policy bypasses the cache" true
    (List.for_all (fun e -> not e.O2_batch.e_cached) r4.O2_batch.b_entries);
  (* a corrupt cache file degrades to an empty cache, never an error *)
  let oc = open_out cache in
  output_string oc "garbage";
  close_out oc;
  let r5 = O2_batch.run cfg files in
  check_bool "corrupt cache ignored" true
    (List.for_all (fun e -> not e.O2_batch.e_cached) r5.O2_batch.b_entries)

(* an old-format cache file (v2 magic, statusless payloads) must be
   invalidated wholesale: no Marshal decode crash, everything re-analyzed,
   and the rerun then hits under the current version *)
let test_cache_version_bump () =
  let dir = fresh_dir () in
  ignore (write_file dir "clean.cir" clean_src);
  ignore (write_file dir "racy.cir" racy_src);
  let cache = Filename.concat dir "results.cache" in
  (* forge a v2 file: same outer (magic, table) tuple, older payload shape
     (no status field); the magic compare rejects it before any payload
     field is inspected, so the shape mismatch never matters *)
  let v2_tbl : (string, int * string * int array) Hashtbl.t =
    Hashtbl.create 4
  in
  Hashtbl.add v2_tbl "deadbeef|origin1|true|true|auto|text"
    (7, "stale report", [| 3; 7 |]);
  let oc = open_out_bin cache in
  Marshal.to_channel oc ("o2-batch-cache/v2", v2_tbl) [];
  close_out oc;
  let cfg = { O2_batch.default with O2_batch.cache_file = Some cache } in
  let files =
    match O2_batch.enumerate [ dir ] with Ok f -> f | Error e -> Alcotest.fail e
  in
  let r1 = O2_batch.run cfg files in
  check_bool "v2 cache invalidated, all recomputed" true
    (List.for_all (fun e -> not e.O2_batch.e_cached) r1.O2_batch.b_entries);
  check_bool "no stale results leaked" true
    (List.for_all
       (fun e -> e.O2_batch.e_status = `Ok && e.O2_batch.e_report <> "stale report")
       r1.O2_batch.b_entries);
  let r2 = O2_batch.run cfg files in
  check_bool "rewritten cache hits under current version" true
    (List.for_all (fun e -> e.O2_batch.e_cached) r2.O2_batch.b_entries)

(* a `Wall/`Steps timeout is budget-relative: rerunning under the same
   budget serves the cached timeout (no point burning the wall clock
   again), but raising the budget must re-analyze — the seed bug was a
   cached timeout being replayed as if terminal regardless of budget *)
let test_cache_timeout_budget () =
  let dir = fresh_dir () in
  ignore (write_file dir "heavy.cir" heavy_src);
  let cache = Filename.concat dir "results.cache" in
  let files = [ Filename.concat dir "heavy.cir" ] in
  let tight =
    {
      O2_batch.default with
      O2_batch.cache_file = Some cache;
      max_steps = Some 200;
    }
  in
  let r1 = O2_batch.run tight files in
  let e1 = find_entry r1 "heavy.cir" in
  (match e1.O2_batch.e_status with
  | `Timeout _ -> ()
  | _ -> Alcotest.fail "tight budget should time out");
  check_bool "first timeout is a live run" false e1.O2_batch.e_cached;
  (* same budget: the timeout itself is served from the cache *)
  let r2 = O2_batch.run tight files in
  let e2 = find_entry r2 "heavy.cir" in
  (match e2.O2_batch.e_status with
  | `Timeout _ -> ()
  | _ -> Alcotest.fail "same budget should replay the cached timeout");
  check_bool "same-budget rerun hits" true e2.O2_batch.e_cached;
  (* larger budget: the stale timeout must NOT be served as terminal *)
  let roomy = { tight with O2_batch.max_steps = None } in
  let r3 = O2_batch.run roomy files in
  let e3 = find_entry r3 "heavy.cir" in
  check_bool "larger budget re-analyzes" false e3.O2_batch.e_cached;
  check_bool "and completes" true (e3.O2_batch.e_status = `Ok);
  (* the terminal result now hits, even under the tight budget's key
     space (a terminal result is budget-independent) *)
  let r4 = O2_batch.run roomy files in
  check_bool "terminal result cached" true
    (find_entry r4 "heavy.cir").O2_batch.e_cached;
  let r5 = O2_batch.run tight files in
  let e5 = find_entry r5 "heavy.cir" in
  check_bool "tight rerun prefers the terminal result" true
    (e5.O2_batch.e_cached && e5.O2_batch.e_status = `Ok)

(* ---------------- jobs>1 determinism ---------------- *)

let entry_key (e : O2_batch.entry) =
  ( e.O2_batch.e_file,
    e.O2_batch.e_digest,
    O2_batch.(
      match e.e_status with
      | `Ok -> "ok"
      | `Error m -> "error:" ^ m
      | `Timeout m -> "timeout:" ^ m),
    e.O2_batch.e_races,
    e.O2_batch.e_cached,
    e.O2_batch.e_report,
    e.O2_batch.e_counters )

let test_jobs_determinism () =
  let dir = fresh_dir () in
  ignore (write_file dir "clean.cir" clean_src);
  ignore (write_file dir "racy.cir" racy_src);
  ignore (write_file dir "broken.cir" bad_src);
  ignore (write_file dir "fig2.cir" racy_src);
  ignore (write_file dir "more.cir" clean_src);
  let files =
    match O2_batch.enumerate [ dir ] with Ok f -> f | Error e -> Alcotest.fail e
  in
  let run jobs = O2_batch.run { O2_batch.default with O2_batch.jobs } files in
  let serial = run 1 and parallel = run 4 in
  check_int "same entry count"
    (List.length serial.O2_batch.b_entries)
    (List.length parallel.O2_batch.b_entries);
  List.iter2
    (fun a b ->
      check_bool "entry identical modulo elapsed" true
        (entry_key a = entry_key b))
    serial.O2_batch.b_entries parallel.O2_batch.b_entries;
  (* the aggregate race totals agree too *)
  check_int "same race total" (O2_batch.total_races serial)
    (O2_batch.total_races parallel)

(* ---------------- rendering ---------------- *)

let test_render () =
  let dir = fresh_dir () in
  ignore (write_file dir "racy.cir" racy_src);
  ignore (write_file dir "broken.cir" bad_src);
  let files =
    match O2_batch.enumerate [ dir ] with Ok f -> f | Error e -> Alcotest.fail e
  in
  let r =
    O2_batch.run { O2_batch.default with O2_batch.format = `Json } files
  in
  let json = O2_batch.render r in
  check_bool "schema tag" true (contains json {|"schema":"o2_batch/v1"|});
  check_bool "status ok present" true (contains json {|"status":"ok"|});
  check_bool "status error present" true (contains json {|"status":"error"|});
  check_bool "summary block" true
    (contains json {|"summary":{"total":2,"ok":1,"errors":1,"timeouts":0|});
  check_bool "aggregate metrics" true (contains json {|"batch.files":2|});
  let rt = O2_batch.run O2_batch.default files in
  let text = O2_batch.render ~per_file:true rt in
  check_bool "per-file header" true (contains text "==> ");
  check_bool "summary line" true (contains text "2 file(s): 1 ok, 1 error(s)")

let () =
  Alcotest.run "batch"
    [
      ("enumerate", [ Alcotest.test_case "corpus listing" `Quick test_enumerate ]);
      ( "fault-isolation",
        [
          Alcotest.test_case "mixed corpus" `Quick test_mixed_corpus;
          Alcotest.test_case "wall deadline" `Quick test_wall_deadline;
        ] );
      ( "byte-identity",
        [
          Alcotest.test_case "matches serial analyze" `Quick
            test_byte_identical_reports;
        ] );
      ( "cache",
        [
          Alcotest.test_case "rerun hits" `Quick test_cache_rerun;
          Alcotest.test_case "version bump invalidates" `Quick
            test_cache_version_bump;
          Alcotest.test_case "timeouts keyed by budget" `Quick
            test_cache_timeout_budget;
        ] );
      ( "determinism",
        [ Alcotest.test_case "jobs>1 aggregate" `Quick test_jobs_determinism ] );
      ("render", [ Alcotest.test_case "json + text" `Quick test_render ]);
    ]
