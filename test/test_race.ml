open O2_ir.Builder
open O2_pta

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let o2_races ?(policy = Context.Korigin 1) ?(serial_events = true) p =
  let _, _, r = O2_race.Detect.analyze ~policy ~serial_events p in
  O2_race.Detect.n_races r

(* two threads, shared field, no lock: 1 race *)
let race1 () =
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "W" ~super:"Thread" ~fields:[ "s" ]
        [
          meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
          meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
        ];
      cls "M"
        [
          meth ~static:true "main" []
            [
              new_ "d" "Data" [];
              new_ "w1" "W" [ "d" ];
              new_ "w2" "W" [ "d" ];
              start "w1";
              start "w2";
            ];
        ];
    ]

let test_basic_race () = check_int "1 race" 1 (o2_races (race1 ()))

let test_lock_prevents () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s"; "l" ]
          [
            meth "init" [ "s"; "l" ]
              [ fwrite "this" "s" "s"; fwrite "this" "l" "l" ];
            meth "run" []
              [
                fread "d" "this" "s";
                fread "l" "this" "l";
                sync "l" [ fwrite "d" "v" "d" ];
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "l" "Data" [];
                new_ "w1" "W" [ "d"; "l" ];
                new_ "w2" "W" [ "d"; "l" ];
                start "w1";
                start "w2";
              ];
          ];
      ]
  in
  check_int "no race" 0 (o2_races p)

let test_different_locks_race () =
  (* each thread has its own lock: not protected *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s"; "l" ]
          [
            meth "init" [ "s"; "l" ]
              [ fwrite "this" "s" "s"; fwrite "this" "l" "l" ];
            meth "run" []
              [
                fread "d" "this" "s";
                fread "l" "this" "l";
                sync "l" [ fwrite "d" "v" "d" ];
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "l1" "Data" [];
                new_ "l2" "Data" [];
                new_ "w1" "W" [ "d"; "l1" ];
                new_ "w2" "W" [ "d"; "l2" ];
                start "w1";
                start "w2";
              ];
          ];
      ]
  in
  check_int "distinct locks: race" 1 (o2_races p)

let test_join_prevents () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "w" "W" [ "d" ];
                start "w";
                join "w";
                fwrite "d" "v" "d";  (* ordered after the thread *)
              ];
          ];
      ]
  in
  check_int "joined: no race" 0 (o2_races p)

let test_read_read_no_race () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "R" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fread "x" "d" "v"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "r1" "R" [ "d" ];
                new_ "r2" "R" [ "d" ];
                start "r1";
                start "r2";
              ];
          ];
      ]
  in
  check_int "reads never race" 0 (o2_races p)

let test_event_thread_race_but_not_event_event () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "H" ~super:"Handler" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "handle" []
              [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "h1" "H" [ "d" ];
                new_ "h2" "H" [ "d" ];
                post "h1" [];
                post "h2" [];
              ];
          ];
      ]
  in
  check_int "handlers serialized" 0 (o2_races p);
  check_bool "without dispatcher: races" true
    (o2_races ~serial_events:false p > 0)

let test_self_parallel_race () =
  (* one thread class started in a loop, unprotected write to shared *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                while_ [ new_ "w" "W" [ "d" ]; start "w" ];
              ];
          ];
      ]
  in
  (* both policies must find it: 0-ctx via self-parallelism, OPA via the
     loop-doubled origin pair *)
  check_bool "0-ctx finds" true (o2_races ~policy:Context.Insensitive p >= 1);
  check_bool "O2 finds" true (o2_races p >= 1)

let test_figure2_false_positive_only_under_0ctx () =
  let p = O2_workloads.Figures.figure2 () in
  check_int "O2 clean" 0 (o2_races p);
  check_bool "0-ctx has the false positive" true
    (o2_races ~policy:Context.Insensitive p > 0)

let test_figure3_false_positive_only_under_0ctx () =
  let p = O2_workloads.Figures.figure3 () in
  check_int "O2 clean" 0 (o2_races p);
  check_bool "0-ctx false positive" true
    (o2_races ~policy:Context.Insensitive p > 0)

(* wrapper-created threads: the k=1 wrapper extension makes the two
   threads distinct origins, so their mutual race is found *)
let test_wrapper_threads_race () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "F"
          [
            meth ~static:true "spawn" [ "d" ]
              [ new_ "t" "W" [ "d" ]; start "t"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                scall "F" "spawn" [ "d" ];
                scall "F" "spawn" [ "d" ];
              ];
          ];
      ]
  in
  check_bool "wrapper race found" true (o2_races p >= 1)

(* regression: a child thread spawned from inside a thread pool must race
   with its siblings — the parent's multiplicity carries to the child.
   Under the origin policy the doubled parent copies get distinct child
   origins; under other policies self-parallelism propagates along spawn
   edges. *)
let test_nested_spawn_from_pool () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "Kid" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "Pool" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" []
              [
                fread "d" "this" "s";
                new_ "k" "Kid" [ "d" ];
                start "k";
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                while_ [ new_ "t" "Pool" [ "d" ]; start "t" ];
              ];
          ];
      ]
  in
  check_bool "O2 finds the sibling-kid race" true (o2_races p >= 1);
  check_bool "0-ctx finds it too (transitive self-par)" true
    (o2_races ~policy:Context.Insensitive p >= 1);
  (* dynamic confirmation *)
  check_bool "dynamically real" true
    (List.length (O2_runtime.Dynrace.check p) >= 1)

(* regression: two posts to one handler object are ONE origin (rule ❾
   attaches the origin at the allocation): OSA must not count the two
   deliveries as two sharing origins for the handler's own locals, and
   under the §4.2 dispatcher model no race is reported *)
let test_double_post_one_origin () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "H" ~super:"Handler"
          [
            meth "handle" []
              [ new_ "mine" "Data" []; fwrite "mine" "v" "mine"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "h" "H" []; post "h" []; post "h" [] ];
          ];
      ]
  in
  check_int "no race under the dispatcher model" 0 (o2_races p);
  let a = Solver.analyze ~policy:(Context.Korigin 1) p in
  let osa = O2_osa.Osa.run a in
  (* the handler's local Data has exactly one accessing origin *)
  let mine_shared =
    List.exists
      (fun (sh : O2_osa.Osa.sharing) ->
        match sh.sh_target with
        | Access.Tfield (oid, "v") ->
            (Pag.obj (a.Solver.pag) oid).Pag.ob_class = "Data"
        | _ -> false)
      (O2_osa.Osa.shared_locations osa)
  in
  check_bool "handler locals not origin-shared in OSA" false mine_shared

(* Table 10 models *)
let test_models_expected_counts () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      let _, _, r = O2_race.Detect.analyze (m.program ()) in
      check_int (m.name ^ " count") m.expected_races (O2_race.Detect.n_races r))
    O2_workloads.Models.all

let test_models_fixed_clean () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      let _, _, r = O2_race.Detect.analyze (m.fixed ()) in
      check_int (m.name ^ " fixed") 0 (O2_race.Detect.n_races r))
    O2_workloads.Models.all

(* report invariants *)
let test_report_dedup_and_order () =
  let _, _, r = O2_race.Detect.analyze (race1 ()) in
  let keys =
    List.map
      (fun (race : O2_race.Detect.race) ->
        (race.r_a.O2_shb.Graph.n_sid, race.r_b.O2_shb.Graph.n_sid))
      r.races
  in
  check_bool "no duplicate site pairs" true
    (List.length keys = List.length (List.sort_uniq compare keys));
  List.iter
    (fun (race : O2_race.Detect.race) ->
      check_bool "a before b" true
        (race.r_a.O2_shb.Graph.n_id <= race.r_b.O2_shb.Graph.n_id))
    r.races

let test_prune_counters () =
  let _, _, r = O2_race.Detect.analyze (race1 ()) in
  check_bool "pairs counted" true (r.n_pairs_checked > 0);
  check_bool "hb pruning happened (ctor writes)" true (r.n_hb_pruned > 0)

(* naive agrees with optimized everywhere *)
let prop_naive_equals_optimized =
  QCheck2.Test.make ~name:"naive detector = optimized detector" ~count:60
    ~print:O2_test_helpers.Gen.print_spec O2_test_helpers.Gen.spec_gen
    (fun spec ->
      let p = O2_test_helpers.Gen.program_of_spec spec in
      List.for_all
        (fun policy ->
          (* compare on the same merging configuration *)
          let a = Solver.analyze ~policy p in
          let g = O2_shb.Graph.build ~lock_region:false a in
          let fast = O2_race.Detect.run g in
          let slow = O2_race.Naive.run g in
          let key (x : O2_race.Detect.race) =
            ( min x.r_a.O2_shb.Graph.n_sid x.r_b.O2_shb.Graph.n_sid,
              max x.r_a.O2_shb.Graph.n_sid x.r_b.O2_shb.Graph.n_sid )
          in
          List.sort_uniq compare (List.map key fast.races)
          = List.sort_uniq compare (List.map key slow.races))
        [ Context.Insensitive; Context.Korigin 1 ])

(* lock-region merging is sound: merging may collapse same-region repeats
   to a representative pair, so the merged report is a subset of the
   unmerged one at the site-pair level but must cover the same (target
   field, origin pair) race population *)
let prop_lock_region_sound =
  QCheck2.Test.make ~name:"lock-region merging preserves races" ~count:60
    ~print:O2_test_helpers.Gen.print_spec O2_test_helpers.Gen.spec_gen
    (fun spec ->
      let p = O2_test_helpers.Gen.program_of_spec spec in
      let a = Solver.analyze ~policy:(Context.Korigin 1) p in
      let field_of (x : O2_race.Detect.race) =
        match x.r_target with
        | Access.Tfield (_, f) -> f
        | Access.Tstatic (c, f) -> c ^ "::" ^ f
      in
      let pair_key (x : O2_race.Detect.race) =
        ( min x.r_a.O2_shb.Graph.n_sid x.r_b.O2_shb.Graph.n_sid,
          max x.r_a.O2_shb.Graph.n_sid x.r_b.O2_shb.Graph.n_sid,
          field_of x )
      in
      let races lock_region =
        let g = O2_shb.Graph.build ~lock_region a in
        (O2_race.Detect.run g).O2_race.Detect.races
      in
      let merged = races true and unmerged = races false in
      let upairs = List.sort_uniq compare (List.map pair_key unmerged) in
      let mfields = List.sort_uniq compare (List.map field_of merged) in
      let ufields = List.sort_uniq compare (List.map field_of unmerged) in
      (* merged pairs are a subset of the unmerged ones, and no racy field
         disappears entirely *)
      List.for_all (fun r -> List.mem (pair_key r) upairs) merged
      && mfields = ufields)

(* O2 ⊆ 0-ctx at the site-pair level: origins only remove false alarms *)
let prop_o2_subset_0ctx =
  QCheck2.Test.make ~name:"O2 races ⊆ 0-ctx races" ~count:60
    ~print:O2_test_helpers.Gen.print_spec O2_test_helpers.Gen.spec_gen
    (fun spec ->
      let p = O2_test_helpers.Gen.program_of_spec spec in
      let key (x : O2_race.Detect.race) =
        ( min x.r_a.O2_shb.Graph.n_sid x.r_b.O2_shb.Graph.n_sid,
          max x.r_a.O2_shb.Graph.n_sid x.r_b.O2_shb.Graph.n_sid )
      in
      let races policy =
        let _, _, r = O2_race.Detect.analyze ~policy p in
        List.sort_uniq compare (List.map key r.O2_race.Detect.races)
      in
      let o2 = races (Context.Korigin 1) in
      let z = races Context.Insensitive in
      List.for_all (fun k -> List.mem k z) o2)


(* ---------------- parallel determinism ---------------- *)

(* --jobs N must be byte-identical to serial: same witnesses in the same
   order and the same counters, on every workload model *)
let test_jobs_deterministic () =
  let check_program name p =
    let a = Solver.analyze ~policy:(Context.Korigin 1) p in
    let g = O2_shb.Graph.build a in
    let serial = O2_race.Detect.run g in
    List.iter
      (fun jobs ->
        let par = O2_race.Detect.run ~jobs g in
        check_bool (Printf.sprintf "%s: jobs=%d = serial" name jobs) true
          (par = serial))
      [ 2; 4 ]
  in
  List.iter
    (fun (m : O2_workloads.Models.model) -> check_program m.name (m.program ()))
    O2_workloads.Models.all;
  List.iter
    (fun n ->
      check_program n (O2_workloads.Synth.program (O2_workloads.Synth.find n)))
    [ "lusearch"; "memcached"; "zookeeper"; "redis" ];
  (* and through the facade: rendered output is byte-identical *)
  let p = O2_workloads.Models.(find "zookeeper").program () in
  let render jobs =
    O2.render (O2.run { O2.Config.default with jobs } p)
  in
  check_bool "facade --jobs 4 output identical" true (render 4 = render 1)

(* class-based accounting: one check per class pair must cover exactly the
   node pairs the naive O(n²) loop counts, and the parallel path must agree
   with serial on arbitrary programs *)
let prop_class_accounting =
  QCheck2.Test.make ~name:"pairs+class_pruned = naive pairs; jobs = serial"
    ~count:60 ~print:O2_test_helpers.Gen.print_spec O2_test_helpers.Gen.spec_gen
    (fun spec ->
      let p = O2_test_helpers.Gen.program_of_spec spec in
      List.for_all
        (fun policy ->
          let a = Solver.analyze ~policy p in
          let g = O2_shb.Graph.build ~lock_region:false a in
          let fast = O2_race.Detect.run g in
          let slow = O2_race.Naive.run g in
          let par = O2_race.Detect.run ~jobs:3 g in
          slow.O2_race.Detect.n_pairs_checked
          = fast.O2_race.Detect.n_pairs_checked
            + fast.O2_race.Detect.n_class_pruned
          && par = fast)
        [ Context.Insensitive; Context.Korigin 1 ])

(* ---------------- differential reporting ---------------- *)

let test_diff_self_is_unchanged () =
  let p = race1 () in
  let d = O2_race.Diff.diff p p in
  check_int "no introduced" 0 (List.length d.O2_race.Diff.introduced);
  check_int "no fixed" 0 (List.length d.O2_race.Diff.fixed);
  check_bool "unchanged nonempty" true (d.O2_race.Diff.unchanged <> []);
  (* a rebuilt copy gets fresh synthetic line numbers: still aligned, as
     moved rather than introduced/fixed *)
  let d2 = O2_race.Diff.diff p (race1 ()) in
  check_int "rebuild introduces nothing" 0
    (List.length d2.O2_race.Diff.introduced);
  check_int "rebuild fixes nothing" 0 (List.length d2.O2_race.Diff.fixed)

let test_diff_model_fix () =
  let m = O2_workloads.Models.find "zookeeper" in
  let d = O2_race.Diff.diff (m.program ()) (m.fixed ()) in
  check_int "fix introduces nothing" 0 (List.length d.O2_race.Diff.introduced);
  check_bool "fix removes the race" true (List.length d.O2_race.Diff.fixed >= 1);
  (* and the reverse direction reports it as introduced *)
  let d' = O2_race.Diff.diff (m.fixed ()) (m.program ()) in
  check_bool "regression detected" true
    (List.length d'.O2_race.Diff.introduced >= 1)

let test_diff_moved_code () =
  (* the same race after inserting unrelated statements above it: aligned
     as moved, not introduced+fixed *)
  let mk pad =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" []
              (List.init pad (fun i -> null (Printf.sprintf "pad%d" i))
              @ [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ]);
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "w1" "W" [ "d" ];
                new_ "w2" "W" [ "d" ];
                start "w1";
                start "w2";
              ];
          ];
      ]
  in
  let d = O2_race.Diff.diff (mk 0) (mk 5) in
  check_int "nothing introduced" 0 (List.length d.O2_race.Diff.introduced);
  check_int "nothing fixed" 0 (List.length d.O2_race.Diff.fixed);
  check_bool "aligned as moved or unchanged" true
    (List.length d.O2_race.Diff.moved + List.length d.O2_race.Diff.unchanged
    >= 1)

let () =
  Alcotest.run "race"
    [
      ( "scenarios",
        [
          Alcotest.test_case "basic race" `Quick test_basic_race;
          Alcotest.test_case "common lock" `Quick test_lock_prevents;
          Alcotest.test_case "different locks" `Quick
            test_different_locks_race;
          Alcotest.test_case "join orders" `Quick test_join_prevents;
          Alcotest.test_case "read-read" `Quick test_read_read_no_race;
          Alcotest.test_case "event vs thread" `Quick
            test_event_thread_race_but_not_event_event;
          Alcotest.test_case "self-parallel pool" `Quick
            test_self_parallel_race;
          Alcotest.test_case "figure2 FP only 0-ctx" `Quick
            test_figure2_false_positive_only_under_0ctx;
          Alcotest.test_case "figure3 FP only 0-ctx" `Quick
            test_figure3_false_positive_only_under_0ctx;
          Alcotest.test_case "wrapper threads" `Quick
            test_wrapper_threads_race;
          Alcotest.test_case "nested spawn from pool" `Quick
            test_nested_spawn_from_pool;
          Alcotest.test_case "double post one origin" `Quick
            test_double_post_one_origin;
        ] );
      ( "models (Table 10)",
        [
          Alcotest.test_case "expected counts" `Quick
            test_models_expected_counts;
          Alcotest.test_case "fixed variants clean" `Quick
            test_models_fixed_clean;
        ] );
      ( "diff",
        [
          Alcotest.test_case "self unchanged" `Quick test_diff_self_is_unchanged;
          Alcotest.test_case "model fix" `Quick test_diff_model_fix;
          Alcotest.test_case "moved code" `Quick test_diff_moved_code;
        ] );
      ( "report",
        [
          Alcotest.test_case "dedup+order" `Quick test_report_dedup_and_order;
          Alcotest.test_case "prune counters" `Quick test_prune_counters;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "jobs deterministic" `Quick
            test_jobs_deterministic;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_class_accounting;
          QCheck_alcotest.to_alcotest prop_naive_equals_optimized;
          QCheck_alcotest.to_alcotest prop_lock_region_sound;
          QCheck_alcotest.to_alcotest prop_o2_subset_0ctx;
        ] );
    ]
