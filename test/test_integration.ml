(* Cross-cutting integration tests: dynamic ⇒ static soundness, the full O2
   pipeline on the models and synthetic benchmarks, and the precision
   relations across policies that the paper's tables rest on. *)

open O2_pta

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Site-pair soundness is checked against the unmerged SHB graph:
   lock-region merging (soundly) collapses same-region repeats into one
   representative access, so the merged report covers a dynamic race by
   field but not necessarily by exact site pair. *)
let static_pairs ?(policy = Context.Korigin 1) p =
  let _, _, r = O2_race.Detect.analyze ~policy ~lock_region:false p in
  List.map
    (fun (race : O2_race.Detect.race) ->
      ( min race.r_a.O2_shb.Graph.n_sid race.r_b.O2_shb.Graph.n_sid,
        max race.r_a.O2_shb.Graph.n_sid race.r_b.O2_shb.Graph.n_sid ))
    r.O2_race.Detect.races
  |> List.sort_uniq compare

let static_fields ?(policy = Context.Korigin 1) p =
  let _, _, r = O2_race.Detect.analyze ~policy p in
  List.map
    (fun (race : O2_race.Detect.race) ->
      match race.r_target with
      | Access.Tfield (_, f) -> f
      | Access.Tstatic (c, f) -> c ^ "::" ^ f)
    r.O2_race.Detect.races
  |> List.sort_uniq compare

let dynamic_covered p =
  let stat = static_pairs p in
  let fields = static_fields p in
  List.for_all
    (fun (d : O2_runtime.Dynrace.race) ->
      List.mem (d.d_sid_a, d.d_sid_b) stat && List.mem d.d_field fields)
    (O2_runtime.Dynrace.check ~seeds:[ 0; 1; 2; 3; 4; 5 ] p)

(* every dynamically-observed race in every Table 10 model is statically
   reported: the static analysis is sound on the explored schedules *)
let test_models_dynamic_soundness () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      check_bool (m.name ^ " sound") true (dynamic_covered (m.program ())))
    O2_workloads.Models.all

(* fixed models are dynamically race-free too *)
let test_fixed_models_dynamically_clean () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      check_int
        (m.name ^ " fixed dyn")
        0
        (List.length (O2_runtime.Dynrace.check ~seeds:[ 0; 1; 2 ] (m.fixed ()))))
    O2_workloads.Models.all

(* the fixed models still execute to completion (the locks don't deadlock) *)
let test_fixed_models_run () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      let o = O2_runtime.Interp.run ~seed:1 (m.fixed ()) in
      check_bool (m.name ^ " fixed runs") true
        (o.O2_runtime.Interp.completed && not o.O2_runtime.Interp.deadlocked))
    O2_workloads.Models.all

(* systematic exploration: every race in any explored schedule is in the
   static report — a stronger ground truth than random sampling *)
let test_models_explore_soundness () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      let p = m.program () in
      let stat = static_pairs p in
      let fields = static_fields p in
      let r = O2_runtime.Explore.explore ~max_runs:400 p in
      List.iter
        (fun (d : O2_runtime.Dynrace.race) ->
          check_bool
            (Printf.sprintf "%s explored race (%d,%d) reported" m.name
               d.d_sid_a d.d_sid_b)
            true
            (List.mem (d.d_sid_a, d.d_sid_b) stat && List.mem d.d_field fields))
        r.O2_runtime.Explore.races)
    O2_workloads.Models.all

(* the capstone validation: on every Table 10 model, systematic
   exploration (with partial-order reduction) dynamically realizes exactly
   the races O2 reports statically — which are exactly the paper's counts.
   Static = dynamic = published, per model. *)
let test_models_races_dynamically_realizable () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      let r = O2_runtime.Explore.explore ~max_runs:6000 (m.program ()) in
      check_int
        (m.name ^ " dynamic confirmations")
        m.expected_races
        (List.length r.O2_runtime.Explore.races))
    O2_workloads.Models.all

(* POR preserves the observable behaviours: on a small program the reduced
   exploration finds the same race set as the unreduced one *)
let test_por_equivalent () =
  let m = O2_workloads.Models.find "hbase" in
  let p = m.program () in
  let keyset (r : O2_runtime.Explore.report) =
    List.map
      (fun (d : O2_runtime.Dynrace.race) -> (d.d_sid_a, d.d_sid_b, d.d_field))
      r.O2_runtime.Explore.races
    |> List.sort_uniq compare
  in
  let reduced = O2_runtime.Explore.explore ~max_runs:50_000 p in
  check_bool "reduced is exhaustive" true reduced.O2_runtime.Explore.exhaustive;
  (* unreduced: drive Interp directly with the same DFS but visible_only off
     is not exposed by Explore; compare against broad random sampling *)
  let sampled =
    O2_runtime.Dynrace.check ~seeds:(List.init 64 (fun i -> i)) p
  in
  let sampled_keys =
    List.map
      (fun (d : O2_runtime.Dynrace.race) -> (d.d_sid_a, d.d_sid_b, d.d_field))
      sampled
    |> List.sort_uniq compare
  in
  check_bool "sampling finds nothing the reduced DFS missed" true
    (List.for_all (fun k -> List.mem k (keyset reduced)) sampled_keys)

(* random programs: dynamic ⇒ static, under both O2 and 0-ctx *)
let prop_dynamic_implies_static =
  QCheck2.Test.make ~name:"dynamic race ⇒ static race (O2)" ~count:40
    ~print:O2_test_helpers.Gen.print_spec O2_test_helpers.Gen.spec_gen
    (fun spec ->
      dynamic_covered (O2_test_helpers.Gen.program_of_spec spec))

(* every model analyzes cleanly under every policy, and the origin policy
   never reports more than the 0-ctx baseline *)
let test_models_policy_matrix () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      let p = m.program () in
      let counts =
        List.map
          (fun policy ->
            let _, _, r = O2_race.Detect.analyze ~policy p in
            O2_race.Detect.n_races r)
          [
            Context.Insensitive; Context.Kcfa 1; Context.Kcfa 2;
            Context.Kobj 1; Context.Kobj 2; Context.Korigin 1;
            Context.Korigin 2;
          ]
      in
      let zero_ctx = List.hd counts in
      let o2 = List.nth counts 5 in
      check_bool (m.name ^ " O2 <= 0-ctx") true (o2 <= zero_ctx);
      check_int (m.name ^ " O2 exact") m.expected_races o2)
    O2_workloads.Models.all

(* synthetic suite invariants that the benchmark harness relies on *)
let test_synth_policy_spread () =
  let spec = O2_workloads.Synth.find "avrora" in
  let p = O2_workloads.Synth.program spec in
  let races policy =
    let _, _, r = O2_race.Detect.analyze ~policy p in
    O2_race.Detect.n_races r
  in
  let r0 = races Context.Insensitive in
  let r1 = races (Context.Kcfa 1) in
  let ro = races (Context.Korigin 1) in
  check_bool "0-ctx noisiest" true (r0 > r1);
  check_bool "O2 most precise" true (ro < r1);
  check_bool "O2 still finds the seeded races" true (ro > 0)

let test_synth_all_resolve () =
  List.iter
    (fun (s : O2_workloads.Synth.spec) ->
      let p = O2_workloads.Synth.program s in
      check_int (s.s_name ^ " lints") 0
        (List.length (O2_ir.Wellformed.check p)))
    O2_workloads.Synth.(dacapo @ android @ distributed @ capps)

let test_synth_origin_counts () =
  (* #O grows with the spec's thread/event counts; telegram is the most
     origin-heavy app as in Table 5 *)
  let n name =
    let p = O2_workloads.Synth.program (O2_workloads.Synth.find name) in
    Solver.n_origins (Solver.analyze ~policy:(Context.Korigin 1) p)
  in
  check_bool "telegram >> avrora" true (n "telegram" > 10 * n "avrora");
  check_bool "zookeeper large" true (n "zookeeper" > n "lusearch")

let test_scaling_generator_linear () =
  let stmts n = O2_ir.Program.n_stmts (O2_workloads.Synth.scaling ~n) in
  let s10 = stmts 10 and s20 = stmts 20 in
  check_bool "monotone" true (s20 > s10);
  (* roughly linear: doubling depth shouldn't quadruple size *)
  check_bool "sub-quadratic" true (s20 < 3 * s10)

(* the full pipeline via the O2 facade *)
let test_o2_facade () =
  let m = O2_workloads.Models.find "memcached" in
  let r = O2.run O2.Config.default (m.program ()) in
  check_int "races via facade" 3 (O2.n_races r);
  check_bool "elapsed recorded" true (r.O2.elapsed >= 0.0);
  check_bool "origins" true (O2.n_origins r >= 3);
  check_bool "shared locations nonempty" true (O2.shared_locations r <> []);
  let report = Format.asprintf "%a" (O2.pp_report r) () in
  check_bool "printable" true (String.length report > 0)

(* the whole pipeline agrees between a parsed .cir round-trip and the
   original program *)
let test_roundtrip_same_races () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      let p = m.program () in
      let src = O2_ir.Pp.program_to_string p in
      let p2 = O2_frontend.Parser.parse_string src in
      let n p =
        let _, _, r = O2_race.Detect.analyze p in
        O2_race.Detect.n_races r
      in
      check_int (m.name ^ " roundtrip") (n p) (n p2))
    O2_workloads.Models.all

let () =
  Alcotest.run "integration"
    [
      ( "soundness",
        [
          Alcotest.test_case "models: dynamic ⇒ static" `Slow
            test_models_dynamic_soundness;
          Alcotest.test_case "fixed models dyn clean" `Slow
            test_fixed_models_dynamically_clean;
          Alcotest.test_case "fixed models run" `Quick test_fixed_models_run;
          Alcotest.test_case "models: explored ⇒ static" `Slow
            test_models_explore_soundness;
          Alcotest.test_case "models: all races dynamically realizable" `Slow
            test_models_races_dynamically_realizable;
          Alcotest.test_case "POR equivalence" `Slow test_por_equivalent;
          Alcotest.test_case "models: policy matrix" `Quick
            test_models_policy_matrix;
          QCheck_alcotest.to_alcotest prop_dynamic_implies_static;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "policy spread" `Quick test_synth_policy_spread;
          Alcotest.test_case "all specs resolve" `Quick test_synth_all_resolve;
          Alcotest.test_case "origin counts" `Quick test_synth_origin_counts;
          Alcotest.test_case "scaling linear" `Quick
            test_scaling_generator_linear;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "facade" `Quick test_o2_facade;
          Alcotest.test_case "parse round-trip races" `Quick
            test_roundtrip_same_races;
        ] );
    ]
