(* Differential fuzzer: spec validation of the new generator knobs,
   sweep determinism and cleanliness, shrinker fixpoint behaviour,
   reproducer emission, and the minimized regression programs the corpus
   sweeps forced into the repo. *)

open O2_workloads
open O2_fuzz

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let raises_field field f =
  match f () with
  | () -> Alcotest.failf "expected Invalid_argument naming %s" field
  | exception Invalid_argument msg ->
      check_bool
        (Printf.sprintf "message %S names %s" msg field)
        true (contains msg field)

(* ---------------- validation ---------------- *)

let test_validate_new_knobs () =
  let d = Synth.default in
  raises_field "s_arrays" (fun () ->
      Synth.validate { d with Synth.s_arrays = -1 });
  raises_field "s_statics" (fun () ->
      Synth.validate { d with Synth.s_statics = -2 });
  raises_field "s_join" (fun () ->
      Synth.validate { d with Synth.s_thread_classes = 0; s_join = true });
  raises_field "s_signal" (fun () ->
      Synth.validate { d with Synth.s_thread_classes = 0; s_signal = true });
  (* the combined stress spec exercises every new knob and must be valid *)
  Synth.validate (Synth.find "hbmix")

(* ---------------- differential cleanliness ---------------- *)

let outcome_clean name o =
  check_int
    (name ^ " divergences")
    0
    (List.length o.Differential.o_divergences)

let test_named_specs_clean () =
  List.iter
    (fun name ->
      let o = Differential.check (Synth.program (Synth.find name)) in
      outcome_clean name o;
      check_bool (name ^ " found races") true (o.Differential.o_races > 0))
    [ "hbmix"; "chainstorm"; "memcached" ]

let test_hbmix_exercises_everything () =
  (* the stress spec must drive every engine: naive in range, must-race
     pairs non-vacuous, dynamic witnesses observed *)
  let o = Differential.check (Synth.program (Synth.find "hbmix")) in
  check_bool "naive ran" true o.Differential.o_naive_ran;
  check_bool "must pairs" true (o.Differential.o_must_pairs > 0);
  match o.Differential.o_dynamic with
  | `Ran n -> check_bool "dynamic races" true (n > 0)
  | `Skipped -> Alcotest.fail "dynamic stage skipped on hbmix"
  | `Runtime_error e -> Alcotest.failf "dynamic stage errored: %s" e

(* ---------------- sweep ---------------- *)

let test_sweep_deterministic () =
  let fingerprint r =
    List.map
      (fun e ->
        ( e.Fuzz.f_index,
          e.Fuzz.f_races,
          e.Fuzz.f_stmts,
          e.Fuzz.f_origins,
          Fuzz.divergence_classes e.Fuzz.f_status ))
      r.Fuzz.r_entries
  in
  let a = Fuzz.sweep ~seed:5 ~count:6 () in
  let b = Fuzz.sweep ~seed:5 ~count:6 () in
  check_bool "same fingerprint" true (fingerprint a = fingerprint b);
  let ok, timeouts, divergent = Fuzz.counts a in
  check_int "all ok" 6 ok;
  check_int "no timeouts" 0 timeouts;
  check_int "no divergences" 0 divergent;
  check_int "exit code" 0 (Fuzz.exit_code a);
  check_int "entries in index order" 5
    (List.nth a.Fuzz.r_entries 5).Fuzz.f_index

let test_render_formats () =
  let r = Fuzz.sweep ~seed:11 ~count:2 () in
  let text = Fuzz.render r in
  check_bool "text mentions seed" true (contains text "seed 11");
  let json = Fuzz.render ~format:`Json r in
  check_bool "json schema" true (contains json "o2_fuzz/v1");
  check_bool "json seed" true (contains json "\"seed\":11")

(* ---------------- shrinker ---------------- *)

let test_shrink_fixpoint_on_clean_spec () =
  (* a spec that never diverges shrinks to itself: every candidate fails
     [still_fails], so the greedy loop stops at the original *)
  let s = Synth.spec_of_seed ~seed:5 ~index:0 in
  let shrunk = Fuzz.shrink ~max_checks:40 ~classes:[ "oracle" ] s in
  check_string "unchanged" (Format.asprintf "%a" Synth.pp_spec s)
    (Format.asprintf "%a" Synth.pp_spec shrunk);
  Synth.validate shrunk

(* ---------------- reproducers ---------------- *)

let test_write_reproducer () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "o2-fuzz-test-%d" (Unix.getpid ()))
  in
  let entry =
    {
      Fuzz.f_index = 3;
      f_spec = { Synth.default with Synth.s_name = "repro" };
      f_status =
        `Divergent
          [ { Differential.dv_class = "naive"; dv_detail = "site mismatch" } ];
      f_races = 1;
      f_stmts = 10;
      f_origins = 2;
      f_elapsed = 0.0;
    }
  in
  let path = Fuzz.write_reproducer ~dir ~seed:9 entry in
  check_bool "named by class" true (contains path "seed9-i3-naive.cir");
  let src = In_channel.with_open_text path In_channel.input_all in
  check_bool "spec header" true (contains src "repro");
  check_bool "divergence header" true (contains src "site mismatch");
  (* the body below the header comments must parse back *)
  let p = O2_frontend.Parser.parse_string ~file:path src in
  check_bool "parses" true (O2_ir.Program.n_stmts p > 0);
  Sys.remove path;
  Unix.rmdir dir

(* ---------------- regression: fuzz-found divergences ---------------- *)

(* Minimized from `o2 fuzz --seed 42 --policy 0-ctx` (index 9), also
   committed as test/golden/wrapper-selfpar.cir: a spawn wrapper called
   twice collapses to one abstract origin under 0-ctx, which must be
   self-parallel or the dynamically-witnessed self-race goes unreported. *)
let wrapper_selfpar_src =
  "main Main;\n\
   class SharedState { field race0; }\n\
   class Worker extends Thread {\n\
  \  field shared;\n\
  \  method init(s) { this.shared = s; }\n\
  \  method run() {\n\
  \    local sh, r;\n\
  \    sh = this.shared;\n\
  \    sh.race0 = sh;\n\
  \    r = sh.race0;\n\
  \    return;\n\
  \  }\n\
   }\n\
   class Factory {\n\
  \  static method spawn(s) {\n\
  \    local t;\n\
  \    t = new Worker(s);\n\
  \    start t;\n\
  \    return;\n\
  \  }\n\
   }\n\
   class Main {\n\
  \  static method main() {\n\
  \    local s;\n\
  \    s = new SharedState();\n\
  \    Factory::spawn(s);\n\
  \    Factory::spawn(s);\n\
  \    return;\n\
  \  }\n\
   }\n"

let test_wrapper_selfpar_regression () =
  let p =
    O2_frontend.Parser.parse_string ~file:"wrapper-selfpar.cir"
      wrapper_selfpar_src
  in
  (* used to diverge with [dynamic]: the interpreter witnessed the
     write-write race on race0 that 0-ctx failed to report *)
  List.iter
    (fun policy ->
      let o = Differential.check ~policy p in
      outcome_clean (O2_pta.Context.policy_name policy) o)
    [
      O2_pta.Context.Insensitive;
      O2_pta.Context.Kcfa 2;
      O2_pta.Context.Kobj 2;
      O2_pta.Context.Korigin 1;
    ];
  let o = Differential.check ~policy:O2_pta.Context.Insensitive p in
  check_int "0-ctx reports the self-races" 3 o.Differential.o_races

let () =
  Alcotest.run "fuzz"
    [
      ( "validate",
        [
          Alcotest.test_case "new knobs" `Quick test_validate_new_knobs;
        ] );
      ( "differential",
        [
          Alcotest.test_case "named specs clean" `Quick test_named_specs_clean;
          Alcotest.test_case "hbmix exercises everything" `Quick
            test_hbmix_exercises_everything;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "deterministic" `Quick test_sweep_deterministic;
          Alcotest.test_case "render formats" `Quick test_render_formats;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "fixpoint on clean spec" `Quick
            test_shrink_fixpoint_on_clean_spec;
        ] );
      ( "reproducer",
        [
          Alcotest.test_case "write + reparse" `Quick test_write_reproducer;
        ] );
      ( "regression",
        [
          Alcotest.test_case "wrapper self-parallel (0-ctx)" `Quick
            test_wrapper_selfpar_regression;
        ] );
    ]
