(* The parallel solver's contract: for ANY shard count, the round-based
   difference-propagation engine computes byte-for-byte the facts of the
   serial reference solver (Oracle), and the whole pipeline's output is
   byte-identical across [jobs]. Plus unit coverage for the cycle-collapsing
   and difference-propagation primitives the engine is built on. *)

open O2_pta

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* [O2_TEST_JOBS="1,2,8"] widens the matrix, e.g. on a many-core machine *)
let jobs_list =
  match Sys.getenv_opt "O2_TEST_JOBS" with
  | Some s ->
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map int_of_string
  | None -> [ 1; 2; 4 ]

let policies =
  [
    Context.Insensitive;
    Context.Kcfa 2;
    Context.Kobj 2;
    Context.Korigin 1;
  ]

(* ---------------- engine ≡ oracle, for every jobs value ---------------- *)

let test_oracle_equivalence () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      List.iter
        (fun (name, program) ->
          List.iter
            (fun policy ->
              let p = program () in
              let want = Oracle.fingerprint (Oracle.analyze ~policy p) in
              List.iter
                (fun jobs ->
                  let got =
                    Solver.fingerprint (Solver.analyze ~policy ~jobs p)
                  in
                  check_str
                    (Printf.sprintf "%s/%s/jobs=%d" name
                       (Context.policy_name policy) jobs)
                    want got)
                jobs_list)
            policies)
        [ (m.name, m.program); (m.name ^ "_fixed", m.fixed) ])
    O2_workloads.Models.all

(* internal ids — not just facts — must be jobs-independent: interning
   happens only at serial barriers in deterministic task order *)
let test_id_determinism () =
  let m = O2_workloads.Models.find "zookeeper" in
  let base = Solver.analyze ~jobs:1 (m.program ()) in
  List.iter
    (fun jobs ->
      let r = Solver.analyze ~jobs (m.program ()) in
      check_int
        (Printf.sprintf "n_nodes jobs=%d" jobs)
        (Pag.n_nodes base.Solver.pag)
        (Pag.n_nodes r.Solver.pag);
      check_int
        (Printf.sprintf "n_objs jobs=%d" jobs)
        (Pag.n_objs base.Solver.pag)
        (Pag.n_objs r.Solver.pag);
      check_int
        (Printf.sprintf "pts_adds jobs=%d" jobs)
        (Pag.n_pts_adds base.Solver.pag)
        (Pag.n_pts_adds r.Solver.pag);
      Pag.iter_nodes
        (fun id n _ ->
          if Pag.node r.Solver.pag id <> n then
            Alcotest.failf "node id %d differs under jobs=%d" id jobs)
        base.Solver.pag)
    jobs_list

(* the full pipeline — solve, SHB, detection, OSA, rendering — is
   byte-identical across jobs *)
let test_pipeline_byte_identity () =
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      let render jobs =
        let r =
          O2.run { O2.Config.default with O2.Config.jobs } (m.program ())
        in
        O2.render ~format:`Json r
      in
      let want = render 1 in
      List.iter
        (fun jobs ->
          if jobs <> 1 then
            check_str
              (Printf.sprintf "%s jobs=%d" m.name jobs)
              want (render jobs))
        jobs_list)
    O2_workloads.Models.all

(* ---------------- cycle collapsing ---------------- *)

let nvar v = Pag.NVar ("C", "m", v, Context.Cempty)
let mkobj g site = Pag.obj_id g { Pag.ob_site = site; ob_class = "O"; ob_hctx = Context.Cempty }

let test_scc_collapse () =
  let g = Pag.create () in
  let a = Pag.node_id g (nvar "a") in
  let b = Pag.node_id g (nvar "b") in
  let c = Pag.node_id g (nvar "c") in
  let d = Pag.node_id g (nvar "d") in
  (* a -> b -> c -> a cycle, with an exit edge c -> d *)
  Pag.add_copy g ~src:a ~dst:b;
  Pag.add_copy g ~src:b ~dst:c;
  Pag.add_copy g ~src:c ~dst:a;
  Pag.add_copy g ~src:c ~dst:d;
  let o1 = mkobj g 1 in
  Pag.add_obj g a o1;
  Pag.solve g;
  let merged = Pag.collapse_sccs g in
  check_int "two members aliased onto the rep" 2 merged;
  check_int "n_collapsed counter" 2 (Pag.n_collapsed g);
  let rep = Pag.find g a in
  check_int "b joins a's class" rep (Pag.find g b);
  check_int "c joins a's class" rep (Pag.find g c);
  check_bool "d stays out" true (Pag.find g d <> rep);
  (* aliased ids keep answering pts queries *)
  List.iter
    (fun n -> check_int "cycle member sees o1" 1 (O2_util.Bitset.cardinal (Pag.pts g n)))
    [ a; b; c; d ];
  (* propagation through the collapsed class still reaches the exit *)
  let o2 = mkobj g 2 in
  Pag.add_obj g b o2;
  Pag.solve g;
  List.iter
    (fun n -> check_int "new obj flows everywhere" 2 (O2_util.Bitset.cardinal (Pag.pts g n)))
    [ a; b; c; d ]

let test_scc_watched_excluded () =
  let g = Pag.create () in
  let a = Pag.node_id g (nvar "a") in
  let b = Pag.node_id g (nvar "b") in
  Pag.add_copy g ~src:a ~dst:b;
  Pag.add_copy g ~src:b ~dst:a;
  let fired = ref [] in
  Pag.add_watcher g a (fun o -> fired := o :: !fired);
  let merged = Pag.collapse_sccs g in
  (* the only unwatched member is [b]: nothing to merge *)
  check_int "watched cycle left alone" 0 merged;
  check_bool "a not aliased" true (Pag.find g a = a);
  check_bool "b not aliased" true (Pag.find g b = b);
  let o1 = mkobj g 1 in
  Pag.add_obj g b o1;
  Pag.solve g;
  check_int "watcher saw the object" 1 (List.length !fired)

(* a cycle closed by a new edge and collapsed BEFORE that edge's delta
   propagates: the merge must not mark in-flight candidates as confirmed,
   or facts silently vanish downstream of the collapsed class *)
let test_scc_collapse_inflight_delta () =
  let g = Pag.create () in
  let a = Pag.node_id g (nvar "a") in
  let b = Pag.node_id g (nvar "b") in
  let d = Pag.node_id g (nvar "d") in
  Pag.add_copy g ~src:a ~dst:b;
  Pag.add_copy g ~src:a ~dst:d;
  let o = mkobj g 1 in
  Pag.add_obj g b o;
  Pag.solve g;
  (* pts(b) = {o} is confirmed; a and d are empty *)
  check_bool "d empty before the cycle closes" true
    (O2_util.Bitset.is_empty (Pag.pts g d));
  (* close the cycle: add_copy parks pts(b) in delta(a); collapse while
     the delta is still in flight *)
  Pag.add_copy g ~src:b ~dst:a;
  check_int "one member aliased" 1 (Pag.collapse_sccs g);
  Pag.solve g;
  List.iter
    (fun x ->
      check_bool "o survives the collapse" true
        (O2_util.Bitset.mem (Pag.pts g x) o))
    [ a; b; d ]

(* collapsing rewrites the edge table onto canonical keys: a later add_copy
   of an edge the representative already carries must dedup, and n_edges
   must track the live canonical count *)
let test_scc_edges_canonicalized () =
  let g = Pag.create () in
  let a = Pag.node_id g (nvar "a") in
  let b = Pag.node_id g (nvar "b") in
  let c = Pag.node_id g (nvar "c") in
  let d = Pag.node_id g (nvar "d") in
  Pag.add_copy g ~src:a ~dst:b;
  Pag.add_copy g ~src:b ~dst:c;
  Pag.add_copy g ~src:c ~dst:a;
  Pag.add_copy g ~src:b ~dst:d;
  Pag.add_copy g ~src:c ~dst:d;
  check_int "five edges before collapse" 5 (Pag.n_edges g);
  check_int "two members aliased" 2 (Pag.collapse_sccs g);
  (* the three cycle edges become self-loops and the two exits merge *)
  check_int "one canonical edge after collapse" 1 (Pag.n_edges g);
  Pag.add_copy g ~src:b ~dst:d;
  check_int "canonical re-add dedups" 1 (Pag.n_edges g);
  let o = mkobj g 1 in
  Pag.add_obj g a o;
  Pag.solve g;
  check_bool "exit still reached" true (O2_util.Bitset.mem (Pag.pts g d) o)

(* ---------------- difference-propagation primitive ---------------- *)

let test_take_fresh () =
  let pts = O2_util.Bitset.create () in
  let delta = O2_util.Bitset.create () in
  ignore (O2_util.Bitset.add pts 3);
  ignore (O2_util.Bitset.add delta 3);
  (* redundant candidate *)
  ignore (O2_util.Bitset.add delta 65);
  (* fresh, in a higher word *)
  (match O2_util.Bitset.take_fresh ~pts ~delta with
  | None -> Alcotest.fail "expected fresh objects"
  | Some fresh ->
      check_int "one fresh bit" 1 (O2_util.Bitset.cardinal fresh);
      check_bool "the fresh bit is 65" true (O2_util.Bitset.mem fresh 65));
  check_bool "fresh committed to pts" true (O2_util.Bitset.mem pts 65);
  check_bool "delta drained" true (O2_util.Bitset.is_empty delta);
  (* a fully redundant delta pops to nothing *)
  ignore (O2_util.Bitset.add delta 3);
  ignore (O2_util.Bitset.add delta 65);
  check_bool "no fresh on redundant pop" true
    (O2_util.Bitset.take_fresh ~pts ~delta = None)

let () =
  Alcotest.run "parallel"
    [
      ( "oracle",
        [
          Alcotest.test_case "fingerprints: engine = oracle" `Quick
            test_oracle_equivalence;
          Alcotest.test_case "ids independent of jobs" `Quick
            test_id_determinism;
          Alcotest.test_case "pipeline byte-identity" `Quick
            test_pipeline_byte_identity;
        ] );
      ( "scc",
        [
          Alcotest.test_case "copy cycle collapses" `Quick test_scc_collapse;
          Alcotest.test_case "watched nodes excluded" `Quick
            test_scc_watched_excluded;
          Alcotest.test_case "in-flight delta survives collapse" `Quick
            test_scc_collapse_inflight_delta;
          Alcotest.test_case "edge table canonicalized" `Quick
            test_scc_edges_canonicalized;
        ] );
      ( "delta",
        [ Alcotest.test_case "take_fresh dedups" `Quick test_take_fresh ] );
    ]
