(* Assert that `o2 analyze --stats --json` output carries the observability
   payload. Timer values vary run to run, so this is a key-presence check
   rather than a golden diff: every counter the --stats table documents must
   appear in the "metrics" object, along with the stage trace spans. *)

let required =
  [
    {|"metrics":{"counters":|};
    (* PAG / solver *)
    {|"pta.pointers":|}; {|"pta.objects":|}; {|"pta.edges":|};
    {|"pta.reached_methods":|}; {|"pta.call_edges":|};
    {|"pta.worklist_iters":|};
    {|"pta.worklist_pushes":|}; {|"pta.pts_adds":|}; {|"pta.pts_facts":|};
    {|"pta.origins":|};
    (* OSA *)
    {|"osa.stmts_scanned":|}; {|"osa.accesses":|}; {|"osa.locations":|};
    {|"osa.shared_locations":|};
    (* SHB *)
    {|"shb.nodes":|}; {|"shb.access_nodes":|}; {|"shb.edges":|};
    {|"shb.locksets":|}; {|"shb.lockset_cache_hits":|};
    {|"shb.lockset_cache_misses":|};
    {|"shb.hb_closure_size":|}; {|"shb.hb_queries":|};
    (* detection *)
    {|"race.pairs_checked":|}; {|"race.hb_pruned":|}; {|"race.lock_pruned":|};
    {|"race.class_pruned":|}; {|"race.candidates":|}; {|"race.races":|};
    {|"race.jobs":|};
    (* worklist gauge and the stage trace *)
    {|"pta.worklist_peak":{"current":|};
    {|"path":"analyze/pta"|}; {|"path":"analyze/shb"|};
    {|"path":"analyze/race"|}; {|"path":"analyze/osa"|};
  ]

let contains haystack needle =
  let ln = String.length needle and lh = String.length haystack in
  let rec go i =
    i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1))
  in
  go 0

let () =
  let path = Sys.argv.(1) in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let missing = List.filter (fun k -> not (contains s k)) required in
  match missing with
  | [] -> print_endline "stats json: all metric keys present"
  | ks ->
      Printf.eprintf "missing metric keys in %s:\n" path;
      List.iter (fun k -> Printf.eprintf "  %s\n" k) ks;
      exit 1
