(* The observability layer: Metrics primitives, pipeline instrumentation
   coverage, and the O2.Config / render API around it. *)

open O2_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------------- primitives ---------------- *)

let test_counters () =
  let m = Metrics.create () in
  check_int "absent reads 0" 0 (Metrics.get m "x");
  Metrics.incr m "x";
  Metrics.add m "x" 4;
  check_int "incr+add" 5 (Metrics.get m "x");
  Metrics.set m "x" 2;
  check_int "set overwrites" 2 (Metrics.get m "x");
  (* the pre-resolved ref is the same cell *)
  let r = Metrics.counter m "x" in
  incr r;
  check_int "ref aliases counter" 3 (Metrics.get m "x");
  Metrics.incr m "a";
  Alcotest.(check (list (pair string int)))
    "sorted listing"
    [ ("a", 1); ("x", 3) ]
    (Metrics.counters m)

let test_timers () =
  let m = Metrics.create () in
  check "untouched timer is 0" true (Metrics.get_time m "t" = 0.);
  let v = Metrics.time m "t" (fun () -> 41 + 1) in
  check_int "returns result" 42 v;
  let t1 = Metrics.get_time m "t" in
  check "accumulated >= 0" true (t1 >= 0.);
  ignore (Metrics.time m "t" (fun () -> ()));
  check "accumulates across calls" true (Metrics.get_time m "t" >= t1);
  (* exception safety: duration still recorded, exception propagates *)
  (try Metrics.time m "boom" (fun () -> failwith "x") with Failure _ -> ());
  check "timer exists after raise" true
    (List.mem_assoc "boom" (Metrics.timers m))

let test_gauges () =
  let m = Metrics.create () in
  Metrics.gauge_set m "wl" 3;
  Metrics.gauge_add m "wl" 7;
  Metrics.gauge_add m "wl" (-6);
  check_int "peak survives drops" 10 (Metrics.gauge_peak m "wl");
  Alcotest.(check (list (triple string int int)))
    "current and peak"
    [ ("wl", 4, 10) ]
    (Metrics.gauges m)

let test_spans () =
  let m = Metrics.create () in
  let v =
    Metrics.span m "outer" (fun () ->
        Metrics.span m "inner" (fun () -> ());
        Metrics.span m "inner2" (fun () -> ());
        7)
  in
  check_int "returns result" 7 v;
  (try
     Metrics.span m "fails" (fun () ->
         Metrics.span m "child" (fun () -> failwith "x"))
   with Failure _ -> ());
  let paths = List.map (fun s -> s.Metrics.sp_path) (Metrics.spans m) in
  Alcotest.(check (list string))
    "nested slash paths, start order"
    [ "outer"; "outer/inner"; "outer/inner2"; "fails"; "fails/child" ]
    paths;
  List.iter
    (fun s ->
      check ("closed: " ^ s.Metrics.sp_path) true (s.Metrics.sp_elapsed >= 0.))
    (Metrics.spans m);
  let depth p =
    let s = List.find (fun s -> s.Metrics.sp_path = p) (Metrics.spans m) in
    s.Metrics.sp_depth
  in
  check_int "root depth" 0 (depth "outer");
  check_int "child depth" 1 (depth "outer/inner")

let test_json_export () =
  let m = Metrics.create () in
  Metrics.set m "n" 3;
  Metrics.gauge_set m "g" 2;
  ignore (Metrics.time m "t" (fun () -> ()));
  Metrics.span m {|sp"1|} (fun () -> ());
  let j = Metrics.to_json m in
  let has needle =
    let ln = String.length needle and lj = String.length j in
    let rec go i = i + ln <= lj && (String.sub j i ln = needle || go (i + 1)) in
    go 0
  in
  check "counters object" true (has {|"counters":{"n":3}|});
  check "gauge carries peak" true (has {|"g":{"current":2,"peak":2}|});
  check "quote escaped in span path" true (has {|sp\"1|});
  (* JSON lines: every line stands alone and is tagged *)
  let lines = String.split_on_char '\n' (String.trim (Metrics.to_json_lines m)) in
  check_int "one line per metric" 4 (List.length lines);
  List.iter
    (fun l ->
      check ("object: " ^ l) true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  (* the human table mentions everything too *)
  let table = Format.asprintf "%a" Metrics.pp m in
  check "table nonempty" true (String.length table > 0)

(* Stats remains a source-compatible alias of Metrics. *)
let test_stats_alias () =
  let s : Stats.t = Metrics.create () in
  Stats.incr s "k";
  check_int "shared representation" 1 (Metrics.get s "k")

(* ---------------- pipeline instrumentation ---------------- *)

(* Every stage of an instrumented run must land its counters and span in
   the shared sink — the keys the --stats table and Tables 6/7 rely on. *)
let expected_counters =
  [
    "pta.pointers"; "pta.objects"; "pta.edges"; "pta.reached_methods";
    "pta.call_edges"; "pta.worklist_iters"; "pta.worklist_pushes";
    "pta.pts_adds"; "pta.pts_facts"; "pta.origins";
    "osa.stmts_scanned"; "osa.accesses"; "osa.locations";
    "osa.shared_locations";
    "shb.nodes"; "shb.access_nodes"; "shb.edges"; "shb.locksets";
    "shb.lockset_cache_hits"; "shb.lockset_cache_misses";
    "shb.hb_closure_size"; "shb.hb_queries";
    "race.pairs_checked"; "race.hb_pruned"; "race.lock_pruned";
    "race.class_pruned"; "race.candidates"; "race.races"; "race.jobs";
    "o2.races"; "o2.origins";
  ]

let instrumented_run () =
  let p = O2_workloads.Figures.figure2 () in
  let cfg = O2.Config.with_metrics O2.Config.default in
  let r = O2.run cfg p in
  let m =
    match r.O2.config.O2.Config.metrics with
    | Some m -> m
    | None -> Alcotest.fail "with_metrics did not attach a sink"
  in
  (r, m)

let test_pipeline_counters () =
  let _, m = instrumented_run () in
  let present = List.map fst (Metrics.counters m) in
  List.iter
    (fun k -> check ("counter recorded: " ^ k) true (List.mem k present))
    expected_counters;
  check "some pointers" true (Metrics.get m "pta.pointers" > 0);
  check "some SHB nodes" true (Metrics.get m "shb.nodes" > 0);
  check "pairs were checked" true (Metrics.get m "race.pairs_checked" > 0);
  check "worklist peaked above 0" true
    (Metrics.gauge_peak m "pta.worklist_peak" > 0)

let test_pipeline_spans () =
  let _, m = instrumented_run () in
  let paths = List.map (fun s -> s.Metrics.sp_path) (Metrics.spans m) in
  List.iter
    (fun p -> check ("span traced: " ^ p) true (List.mem p paths))
    [
      "analyze"; "analyze/pta"; "analyze/pta/pta.solve"; "analyze/shb";
      "analyze/shb/shb.build"; "analyze/race"; "analyze/race/race.detect";
      "analyze/osa"; "analyze/osa/osa.scan";
    ]

(* Counters agree with the result the caller sees. *)
let test_counters_match_result () =
  let r, m = instrumented_run () in
  check_int "o2.races = n_races" (O2.n_races r) (Metrics.get m "o2.races");
  check_int "o2.origins = n_origins" (O2.n_origins r)
    (Metrics.get m "o2.origins");
  check_int "osa.shared_locations = |shared_locations|"
    (List.length (O2.shared_locations r))
    (Metrics.get m "osa.shared_locations")

(* ---------------- the Config / render API ---------------- *)

(* Attaching a metrics sink never changes what is detected. *)
let test_metrics_inert () =
  let p = O2_workloads.Figures.figure2 () in
  let new_r =
    O2.run
      { O2.Config.default with O2.Config.policy = O2_pta.Context.Insensitive }
      p
  in
  let instr =
    O2.run
      (O2.Config.with_metrics
         { O2.Config.default with
           O2.Config.policy = O2_pta.Context.Insensitive
         })
      p
  in
  check_int "metrics do not perturb detection" (O2.n_races new_r)
    (O2.n_races instr);
  check_str "renders identically modulo metrics" (O2.render new_r)
    (O2.render { instr with O2.config = O2.Config.default })

let test_render_formats () =
  let p = O2_workloads.Figures.figure2 () in
  let r, _ = instrumented_run () in
  let text = O2.render r in
  let json = O2.render ~format:`Json r in
  let has s needle =
    let ln = String.length needle and ls = String.length s in
    let rec go i = i + ln <= ls && (String.sub s i ln = needle || go (i + 1)) in
    go 0
  in
  check "text includes metrics table" true (has text "--- metrics ---");
  check "text includes a counter" true (has text "pta.pointers");
  check "json is an object" true (json.[0] = '{');
  check "json embeds metrics" true (has json {|"metrics":{"counters":|});
  check "json embeds spans" true (has json {|"path":"analyze/pta"|});
  (* without a sink, render output carries no metrics section *)
  let bare = O2.run O2.Config.default p in
  check "no table without sink" false (has (O2.render bare) "--- metrics ---");
  check "no json field without sink" false
    (has (O2.render ~format:`Json bare) {|"metrics"|})

let () =
  Alcotest.run "metrics"
    [
      ( "primitives",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "timers" `Quick test_timers;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "spans" `Quick test_spans;
          Alcotest.test_case "json export" `Quick test_json_export;
          Alcotest.test_case "stats alias" `Quick test_stats_alias;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "stage counters" `Quick test_pipeline_counters;
          Alcotest.test_case "stage spans" `Quick test_pipeline_spans;
          Alcotest.test_case "counters match result" `Quick
            test_counters_match_result;
        ] );
      ( "api",
        [
          Alcotest.test_case "metrics inert" `Quick test_metrics_inert;
          Alcotest.test_case "render formats" `Quick test_render_formats;
        ] );
    ]
