open O2_ir.Builder
open O2_pta
open O2_shb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build ?(serial_events = true) ?(lock_region = true)
    ?(policy = Context.Korigin 1) p =
  let a = Solver.analyze ~policy p in
  (a, Graph.build ~serial_events ~lock_region a)

(* ---------------- Lockset ---------------- *)

let test_lockset_canonical () =
  let env = Lockset.create () in
  check_int "empty is 0" 0 (Lockset.empty env);
  let a = Lockset.id env [ 3; 1; 2 ] in
  let b = Lockset.id env [ 1; 2; 3; 3 ] in
  check_int "canonical: order/dups irrelevant" a b;
  let c = Lockset.id env [ 1; 2 ] in
  check_bool "distinct sets distinct ids" true (a <> c);
  Alcotest.(check (list int)) "elements sorted" [ 1; 2; 3 ] (Lockset.elements env a)

let test_lockset_acquire () =
  let env = Lockset.create () in
  let ls = Lockset.acquire env (Lockset.empty env) 5 in
  Alcotest.(check (list int)) "acquire" [ 5 ] (Lockset.elements env ls);
  let ls2 = Lockset.acquire env ls 5 in
  check_int "reentrant acquire is identity" ls ls2;
  let ls3 = Lockset.acquire env ls 9 in
  Alcotest.(check (list int)) "nested" [ 5; 9 ] (Lockset.elements env ls3)

let test_lockset_disjoint_cache () =
  let env = Lockset.create () in
  let a = Lockset.id env [ 1; 2 ] in
  let b = Lockset.id env [ 2; 3 ] in
  let c = Lockset.id env [ 4 ] in
  check_bool "overlap" false (Lockset.disjoint env a b);
  check_bool "disjoint" true (Lockset.disjoint env a c);
  check_bool "empty always disjoint" true (Lockset.disjoint env 0 a);
  let misses0 = Lockset.cache_misses env in
  ignore (Lockset.disjoint env a b);
  ignore (Lockset.disjoint env b a);
  check_int "cache hit on repeat (symmetric)" misses0 (Lockset.cache_misses env);
  check_bool "hits counted" true (Lockset.cache_hits env >= 2)

let prop_lockset_id_iff_set =
  QCheck2.Test.make ~name:"lockset id equal iff set equal" ~count:200
    QCheck2.Gen.(pair (list (int_bound 10)) (list (int_bound 10)))
    (fun (xs, ys) ->
      let env = Lockset.create () in
      let a = Lockset.id env xs and b = Lockset.id env ys in
      a = b = (List.sort_uniq compare xs = List.sort_uniq compare ys))

let prop_lockset_disjoint_model =
  QCheck2.Test.make ~name:"disjoint = no common element" ~count:200
    QCheck2.Gen.(pair (list (int_bound 10)) (list (int_bound 10)))
    (fun (xs, ys) ->
      let env = Lockset.create () in
      let a = Lockset.id env xs and b = Lockset.id env ys in
      Lockset.disjoint env a b
      = not (List.exists (fun x -> List.mem x ys) xs))

(* ---------------- graph construction (Table 4) ---------------- *)

let simple_locked () =
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "W" ~super:"Thread" ~fields:[ "s"; "l" ]
        [
          meth "init" [ "s"; "l" ]
            [ fwrite "this" "s" "s"; fwrite "this" "l" "l" ];
          meth "run" []
            [
              fread "s" "this" "s";
              fread "l" "this" "l";
              sync "l" [ fwrite "s" "v" "s" ];
              fread "x" "s" "v";
              ret None;
            ];
        ];
      cls "M"
        [
          meth ~static:true "main" []
            [
              new_ "s" "Data" [];
              new_ "l" "Data" [];
              new_ "w1" "W" [ "s"; "l" ];
              new_ "w2" "W" [ "s"; "l" ];
              start "w1";
              start "w2";
              join "w1";
              join "w2";
            ];
        ];
    ]

(* access-node kinds carry int location ids now; decode for field checks *)
let is_field g t f =
  match Graph.target_of g t with
  | Access.Tfield (_, x) -> x = f
  | Access.Tstatic _ -> false

let kinds g =
  Array.to_list (Graph.nodes g) |> List.map (fun n -> n.Graph.n_kind)

let test_nodes_emitted () =
  let _, g = build (simple_locked ()) in
  let ks = kinds g in
  check_bool "acq" true
    (List.exists (function Graph.Acq _ -> true | _ -> false) ks);
  check_bool "rel" true
    (List.exists (function Graph.Rel _ -> true | _ -> false) ks);
  check_bool "spawn" true
    (List.exists (function Graph.SpawnTo _ -> true | _ -> false) ks);
  check_bool "join" true
    (List.exists (function Graph.JoinOf _ -> true | _ -> false) ks);
  check_int "spawn edges" 2 (List.length (Graph.spawn_edges g));
  check_int "join edges" 2 (List.length (Graph.join_edges g))

let test_ids_monotone () =
  let _, g = build (simple_locked ()) in
  let prev = ref (-1) in
  Array.iter
    (fun (n : Graph.node) ->
      check_bool "strictly increasing" true (n.Graph.n_id > !prev);
      prev := n.Graph.n_id)
    (Graph.nodes g)

let test_lockset_on_access () =
  let _, g = build (simple_locked ()) in
  let locks = Graph.locks g in
  let writes, reads =
    Array.to_list (Graph.accesses g)
    |> List.partition (fun n ->
           match n.Graph.n_kind with Graph.Write _ -> true | _ -> false)
  in
  (* the Data.v write inside sync holds a lock; the Data.v read after it
     holds none *)
  let locked_writes =
    List.filter
      (fun (n : Graph.node) ->
        match n.Graph.n_kind with
        | Graph.Write t when is_field g t "v" ->
            Lockset.elements locks n.Graph.n_lockset <> []
        | _ -> false)
      writes
  in
  check_bool "locked v-write exists" true (locked_writes <> []);
  let unlocked_v_reads =
    List.filter
      (fun (n : Graph.node) ->
        match n.Graph.n_kind with
        | Graph.Read t when is_field g t "v" ->
            Lockset.elements locks n.Graph.n_lockset = []
        | _ -> false)
      reads
  in
  check_bool "unlocked v-read exists" true (unlocked_v_reads <> [])

let test_multi_pts_lock_is_not_must () =
  (* a lock variable pointing to two objects is not a must-lock *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "M"
          [
            meth ~static:true "main" []
              [
                if_ [ new_ "l" "Data" [] ] [ new_ "l" "Data" [] ];
                new_ "s" "Data" [];
                sync "l" [ fwrite "s" "v" "s" ];
              ];
          ];
      ]
  in
  let _, g = build p in
  let locks = Graph.locks g in
  Array.iter
    (fun (n : Graph.node) ->
      match n.Graph.n_kind with
      | Graph.Write _ ->
          Alcotest.(check (list int))
            "ambiguous lock dropped" []
            (Lockset.elements locks n.Graph.n_lockset)
      | _ -> ())
    (Graph.accesses g)

(* ---------------- happens-before ---------------- *)

let find_access g ~write ~field =
  Array.to_list (Graph.accesses g)
  |> List.find (fun (n : Graph.node) ->
         match n.Graph.n_kind with
         | Graph.Write t -> write && is_field g t field
         | Graph.Read t -> (not write) && is_field g t field
         | _ -> false)

let test_hb_intra_origin () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "a"; "b" ] [];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "d" "Data" []; fwrite "d" "a" "d"; fwrite "d" "b" "d" ];
          ];
      ]
  in
  let _, g = build p in
  let wa = find_access g ~write:true ~field:"a" in
  let wb = find_access g ~write:true ~field:"b" in
  check_bool "program order" true (Graph.hb g wa wb);
  check_bool "not backwards" false (Graph.hb g wb wa)

let test_hb_spawn_edge () =
  (* main writes before start; thread reads: ordered. *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fread "x" "d" "v"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                fwrite "d" "v" "d";  (* before the spawn *)
                new_ "w" "W" [ "d" ];
                start "w";
              ];
          ];
      ]
  in
  let _, g = build p in
  let w = find_access g ~write:true ~field:"v" in
  let r = find_access g ~write:false ~field:"v" in
  check_bool "write hb read (spawn)" true (Graph.hb g w r);
  check_bool "read not hb write" false (Graph.hb g r w)

let test_hb_after_spawn_not_ordered () =
  (* main writes AFTER start: unordered with the thread's read *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fread "x" "d" "v"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "w" "W" [ "d" ];
                start "w";
                fwrite "d" "v" "d";  (* after the spawn *)
              ];
          ];
      ]
  in
  let _, g = build p in
  let w = find_access g ~write:true ~field:"v" in
  let r = find_access g ~write:false ~field:"v" in
  check_bool "no hb w->r" false (Graph.hb g w r);
  check_bool "no hb r->w" false (Graph.hb g r w)

let test_hb_join_edge () =
  (* thread writes; main reads after join: ordered *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "w" "W" [ "d" ];
                start "w";
                join "w";
                fread "x" "d" "v";
              ];
          ];
      ]
  in
  let _, g = build p in
  let w = find_access g ~write:true ~field:"v" in
  let r = find_access g ~write:false ~field:"v" in
  check_bool "thread write hb post-join read" true (Graph.hb g w r)

let test_hb_transitive_spawn_chain () =
  (* main -> outer -> inner; main's pre-spawn write hb inner's read *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "Inner" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fread "x" "d" "v"; ret None ];
          ];
        cls "Outer" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" []
              [
                fread "d" "this" "s";
                new_ "i" "Inner" [ "d" ];
                start "i";
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                fwrite "d" "v" "d";
                new_ "o" "Outer" [ "d" ];
                start "o";
              ];
          ];
      ]
  in
  let _, g = build p in
  let w = find_access g ~write:true ~field:"v" in
  let r = find_access g ~write:false ~field:"v" in
  check_bool "transitive over two spawns" true (Graph.hb g w r)

(* ---------------- events & dispatcher ---------------- *)

let event_prog () =
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "H" ~super:"Handler" ~fields:[ "s" ]
        [
          meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
          meth "handle" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
        ];
      cls "M"
        [
          meth ~static:true "main" []
            [
              new_ "d" "Data" [];
              new_ "h1" "H" [ "d" ];
              new_ "h2" "H" [ "d" ];
              post "h1" [];
              post "h2" [];
            ];
        ];
    ]

let test_dispatcher_lock () =
  (* only the handler-body writes (field v) carry the dispatcher lock; the
     constructor writes run in main *)
  let v_writes g =
    Array.to_list (Graph.accesses g)
    |> List.filter (fun (n : Graph.node) ->
           match n.Graph.n_kind with
           | Graph.Write t -> is_field g t "v"
           | _ -> false)
  in
  let _, g = build ~serial_events:true (event_prog ()) in
  let locks = Graph.locks g in
  check_bool "handler writes exist" true (v_writes g <> []);
  List.iter
    (fun (n : Graph.node) ->
      check_bool "handler holds dispatcher lock" true
        (List.mem Lockset.dispatcher_lock
           (Lockset.elements locks n.Graph.n_lockset)))
    (v_writes g);
  let _, g2 = build ~serial_events:false (event_prog ()) in
  List.iter
    (fun (n : Graph.node) ->
      Alcotest.(check (list int))
        "no dispatcher lock when disabled" []
        (Lockset.elements (Graph.locks g2) n.Graph.n_lockset))
    (v_writes g2)

(* ---------------- lock regions ---------------- *)

let region_prog () =
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "M"
        [
          meth ~static:true "main" []
            [
              new_ "d" "Data" [];
              new_ "l" "Data" [];
              sync "l"
                [
                  fwrite "d" "v" "d";
                  fwrite "d" "v" "d";
                  fwrite "d" "v" "d";
                ];
            ];
        ];
    ]

let count_writes g =
  Array.to_list (Graph.accesses g)
  |> List.filter (fun (n : Graph.node) ->
         match n.Graph.n_kind with Graph.Write _ -> true | _ -> false)
  |> List.length

let test_lock_region_merging () =
  let _, g = build ~lock_region:true (region_prog ()) in
  check_int "merged to one" 1 (count_writes g);
  let _, g2 = build ~lock_region:false (region_prog ()) in
  check_int "unmerged keeps all" 3 (count_writes g2)

let test_lock_region_reset_at_spawn () =
  (* a spawn between two identical accesses changes their HB position: they
     must NOT merge *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" [ meth "run" [] [ ret None ] ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                fwrite "d" "v" "d";
                new_ "w" "W" [];
                start "w";
                fwrite "d" "v" "d";
              ];
          ];
      ]
  in
  let _, g = build ~lock_region:true p in
  check_int "not merged across spawn" 2 (count_writes g)

let test_self_parallel_loop_spawn () =
  let p =
    prog ~main:"M"
      [
        cls "W" ~super:"Thread" [ meth "run" [] [ ret None ] ];
        cls "M"
          [
            meth ~static:true "main" []
              [ while_ [ new_ "w" "W" []; start "w" ] ];
          ];
      ]
  in
  (* under 0-ctx: one abstract origin, self-parallel *)
  let _, g0 = build ~policy:Context.Insensitive p in
  let self_par_exists =
    Array.length ((Graph.solver g0).Solver.spawns) > 1
    && Graph.self_parallel g0 1
  in
  check_bool "0-ctx marks loop spawn self-parallel" true self_par_exists;
  (* under OPA: doubled instead *)
  let _, gO = build ~policy:(Context.Korigin 1) p in
  check_int "origin policy doubles" 3
    (Array.length ((Graph.solver gO).Solver.spawns));
  check_bool "copies not self-parallel" false
    (Graph.self_parallel gO 1 || Graph.self_parallel gO 2)

(* the closure-based hb must agree with the legacy BFS oracle on every node
   pair of a randomized graph (and hb_state with both, at the node's
   intervals) *)
let prop_hb_closure_matches_bfs =
  QCheck2.Test.make ~name:"HB closure = BFS oracle" ~count:60
    ~print:O2_test_helpers.Gen.print_spec O2_test_helpers.Gen.spec_gen
    (fun spec ->
      let p = O2_test_helpers.Gen.program_of_spec spec in
      List.for_all
        (fun policy ->
          let a = Solver.analyze ~policy p in
          let g = Graph.build a in
          let ns = Graph.nodes g in
          let len = Array.length ns in
          let stride = max 1 (len / 60) in
          let ok = ref true in
          let i = ref 0 in
          while !ok && !i < len do
            let j = ref 0 in
            while !ok && !j < len do
              let x = ns.(!i) and y = ns.(!j) in
              let hb = Graph.hb g x y in
              ok := hb = Graph.hb_bfs g x y;
              if !ok && x.Graph.n_origin <> y.Graph.n_origin then begin
                let t, _ = Graph.hb_interval g x in
                let _, q = Graph.hb_interval g y in
                ok :=
                  Graph.hb_state g ~src:x.Graph.n_origin ~t_idx:t
                    ~dst:y.Graph.n_origin ~q_idx:q
                  = hb
              end;
              j := !j + stride
            done;
            i := !i + stride
          done;
          !ok)
        [ Context.Insensitive; Context.Korigin 1 ])

let () =
  Alcotest.run "shb"
    [
      ( "lockset",
        [
          Alcotest.test_case "canonical ids" `Quick test_lockset_canonical;
          Alcotest.test_case "acquire" `Quick test_lockset_acquire;
          Alcotest.test_case "disjoint+cache" `Quick test_lockset_disjoint_cache;
          QCheck_alcotest.to_alcotest prop_lockset_id_iff_set;
          QCheck_alcotest.to_alcotest prop_lockset_disjoint_model;
        ] );
      ( "graph",
        [
          Alcotest.test_case "nodes emitted (Table 4)" `Quick
            test_nodes_emitted;
          Alcotest.test_case "ids monotone" `Quick test_ids_monotone;
          Alcotest.test_case "locksets on accesses" `Quick
            test_lockset_on_access;
          Alcotest.test_case "ambiguous lock not must" `Quick
            test_multi_pts_lock_is_not_must;
        ] );
      ( "happens-before",
        [
          Alcotest.test_case "intra-origin order" `Quick test_hb_intra_origin;
          Alcotest.test_case "spawn edge" `Quick test_hb_spawn_edge;
          Alcotest.test_case "post-spawn unordered" `Quick
            test_hb_after_spawn_not_ordered;
          Alcotest.test_case "join edge" `Quick test_hb_join_edge;
          Alcotest.test_case "transitive spawns" `Quick
            test_hb_transitive_spawn_chain;
          QCheck_alcotest.to_alcotest prop_hb_closure_matches_bfs;
        ] );
      ( "events",
        [ Alcotest.test_case "dispatcher lock" `Quick test_dispatcher_lock ] );
      ( "lock-region",
        [
          Alcotest.test_case "merging" `Quick test_lock_region_merging;
          Alcotest.test_case "reset at spawn" `Quick
            test_lock_region_reset_at_spawn;
          Alcotest.test_case "self-parallel policies" `Quick
            test_self_parallel_loop_spawn;
        ] );
    ]
