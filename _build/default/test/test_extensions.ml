(* Tests for the paper-motivated extensions: semaphore happens-before rules
   (§4.3 future work), explicit origin annotations (§3.1), and the
   "beyond races" clients — deadlock and over-synchronization (§3). *)

open O2_ir.Builder
open O2_pta

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let o2_races ?(policy = Context.Korigin 1) p =
  let _, _, r = O2_race.Detect.analyze ~policy p in
  O2_race.Detect.n_races r

(* ---------------- semaphores ---------------- *)

(* the classic init handshake: main writes, signals; thread waits, reads.
   Without the semaphore HB rule this is a race; with it, ordered. *)
let handshake ~with_signal =
  let run_body =
    [ fread "d" "this" "s"; fread "sem" "this" "sem" ]
    @ (if with_signal then [ wait "sem" ] else [])
    @ [ fread "x" "d" "v"; ret None ]
  in
  let main_body =
    [
      new_ "d" "Data" [];
      new_ "sem" "Data" [];
      new_ "w" "W" [ "d"; "sem" ];
      start "w";
      fwrite "d" "v" "d";  (* after start: unordered unless signalled *)
    ]
    @ (if with_signal then [ signal "sem" ] else [])
  in
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "W" ~super:"Thread" ~fields:[ "s"; "sem" ]
        [
          meth "init" [ "s"; "sem" ]
            [ fwrite "this" "s" "s"; fwrite "this" "sem" "sem" ];
          meth "run" [] run_body;
        ];
      cls "M" [ meth ~static:true "main" [] main_body ];
    ]

let test_semaphore_orders_statically () =
  check_int "without handshake: race" 1 (o2_races (handshake ~with_signal:false));
  check_int "with handshake: ordered" 0 (o2_races (handshake ~with_signal:true))

let test_semaphore_naive_agrees () =
  let _, _, r = O2_race.Naive.analyze ~policy:(Context.Korigin 1)
      (handshake ~with_signal:true)
  in
  check_int "naive sees the sem edge too" 0 (O2_race.Detect.n_races r)

let test_semaphore_two_signals_no_edge () =
  (* two static signal sites: no must-HB, the race must be kept (sound) *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s"; "sem" ]
          [
            meth "init" [ "s"; "sem" ]
              [ fwrite "this" "s" "s"; fwrite "this" "sem" "sem" ];
            meth "run" []
              [
                fread "d" "this" "s";
                fread "sem" "this" "sem";
                wait "sem";
                fread "x" "d" "v";
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "sem" "Data" [];
                new_ "w" "W" [ "d"; "sem" ];
                start "w";
                if_ [ signal "sem" ] [];
                fwrite "d" "v" "d";
                signal "sem";
              ];
          ];
      ]
  in
  check_bool "ambiguous signals keep the race" true (o2_races p >= 1)

let test_semaphore_dynamic () =
  (* the interpreter blocks waits until signalled, and the dynamic detector
     sees the ordering *)
  let o = O2_runtime.Interp.run ~seed:3 (handshake ~with_signal:true) in
  check_bool "completes" true o.O2_runtime.Interp.completed;
  check_bool "signal event" true
    (List.exists
       (function O2_runtime.Interp.Esignal _ -> true | _ -> false)
       o.O2_runtime.Interp.events);
  check_int "no dynamic race" 0
    (List.length (O2_runtime.Dynrace.check (handshake ~with_signal:true)));
  check_bool "dynamic race without handshake" true
    (List.length (O2_runtime.Dynrace.check (handshake ~with_signal:false)) >= 1)

let test_semaphore_parser_roundtrip () =
  let src =
    "main M;\nclass M { static method main() { local s; s = new M(); signal \
     s; wait s; } }"
  in
  let p = O2_frontend.Parser.parse_string src in
  let src2 = O2_ir.Pp.program_to_string p in
  let p2 = O2_frontend.Parser.parse_string src2 in
  Alcotest.(check string) "fixpoint" src2 (O2_ir.Pp.program_to_string p2)

(* ---------------- origin annotations ---------------- *)

let test_annotation_thread_class () =
  (* a custom user-level thread marked with the annotation, no builtin
     inheritance *)
  let src =
    {|main M;
class Data { field v; }
thread class Fiber {
  field s;
  method init(s) { this.s = s; }
  method run() { local d; d = this.s; d.v = d; }
}
class M {
  static method main() {
    local d, f1, f2;
    d = new Data();
    f1 = new Fiber(d);
    f2 = new Fiber(d);
    start f1;
    start f2;
  }
}
|}
  in
  let p = O2_frontend.Parser.parse_string src in
  (match O2_ir.Program.kind_of p "Fiber" with
  | O2_ir.Program.Kthread "run" -> ()
  | _ -> Alcotest.fail "annotation should make Fiber a thread");
  check_int "annotated threads race" 1 (o2_races p)

let test_annotation_custom_entry () =
  let src =
    {|main M;
class Data { field v; }
thread(step) class Coroutine {
  field s;
  method init(s) { this.s = s; }
  method step() { local d; d = this.s; d.v = d; }
}
class M {
  static method main() {
    local d, c1, c2;
    d = new Data();
    c1 = new Coroutine(d);
    c2 = new Coroutine(d);
    start c1;
    start c2;
  }
}
|}
  in
  let p = O2_frontend.Parser.parse_string src in
  (match O2_ir.Program.kind_of p "Coroutine" with
  | O2_ir.Program.Kthread "step" -> ()
  | _ -> Alcotest.fail "custom entry name");
  check_int "custom-entry threads analyzed" 1 (o2_races p)

let test_annotation_handler () =
  let src =
    {|main M;
class Data { field v; }
handler class Cb {
  field s;
  method init(s) { this.s = s; }
  method handle() { local d; d = this.s; d.v = d; }
}
class M {
  static method main() {
    local d, c;
    d = new Data();
    c = new Cb(d);
    post c();
    post c();
  }
}
|}
  in
  let p = O2_frontend.Parser.parse_string src in
  (match O2_ir.Program.kind_of p "Cb" with
  | O2_ir.Program.Khandler "handle" -> ()
  | _ -> Alcotest.fail "annotation should make Cb a handler");
  (* serialized by the dispatcher: no race *)
  check_int "annotated handlers serialized" 0 (o2_races p)

let test_annotation_builder_and_pp () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "F" ~origin:(O2_ir.Ast.Athread "go")
          [ meth "go" [] [ ret None ] ];
        cls "M"
          [ meth ~static:true "main" [] [ new_ "f" "F" []; start "f" ] ];
      ]
  in
  let src = O2_ir.Pp.program_to_string p in
  let p2 = O2_frontend.Parser.parse_string src in
  match O2_ir.Program.kind_of p2 "F" with
  | O2_ir.Program.Kthread "go" -> ()
  | _ -> Alcotest.fail "annotation survives pp/parse"

(* ---------------- deadlock detection ---------------- *)

let ab_ba ~consistent =
  let order1 = [ sync "a" [ sync "b" [ fwrite "a" "v" "a" ] ] ] in
  let order2 =
    if consistent then [ sync "a" [ sync "b" [ fwrite "b" "v" "b" ] ] ]
    else [ sync "b" [ sync "a" [ fwrite "b" "v" "b" ] ] ]
  in
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "T1" ~super:"Thread" ~fields:[ "a"; "b" ]
        [
          meth "init" [ "a"; "b" ]
            [ fwrite "this" "a" "a"; fwrite "this" "b" "b" ];
          meth "run" []
            ([ fread "a" "this" "a"; fread "b" "this" "b" ] @ order1
            @ [ ret None ]);
        ];
      cls "T2" ~super:"Thread" ~fields:[ "a"; "b" ]
        [
          meth "init" [ "a"; "b" ]
            [ fwrite "this" "a" "a"; fwrite "this" "b" "b" ];
          meth "run" []
            ([ fread "a" "this" "a"; fread "b" "this" "b" ] @ order2
            @ [ ret None ]);
        ];
      cls "M"
        [
          meth ~static:true "main" []
            [
              new_ "l1" "Data" [];
              new_ "l2" "Data" [];
              new_ "t1" "T1" [ "l1"; "l2" ];
              new_ "t2" "T2" [ "l1"; "l2" ];
              start "t1";
              start "t2";
            ];
        ];
    ]

let test_deadlock_ab_ba () =
  let r = O2_race.Deadlock.analyze (ab_ba ~consistent:false) in
  check_bool "AB/BA flagged" true (O2_race.Deadlock.n_deadlocks r >= 1)

let test_deadlock_consistent_order_clean () =
  let r = O2_race.Deadlock.analyze (ab_ba ~consistent:true) in
  check_int "consistent order clean" 0 (O2_race.Deadlock.n_deadlocks r)

let test_deadlock_single_origin_not_flagged () =
  (* one thread acquiring in both orders sequentially cannot deadlock *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "a" "Data" [];
                new_ "b" "Data" [];
                sync "a" [ sync "b" [ fwrite "a" "v" "a" ] ];
                sync "b" [ sync "a" [ fwrite "b" "v" "b" ] ];
              ];
          ];
      ]
  in
  let r = O2_race.Deadlock.analyze p in
  check_int "single origin clean" 0 (O2_race.Deadlock.n_deadlocks r)

let test_deadlock_matches_interpreter () =
  (* the statically-flagged program actually deadlocks in some schedule *)
  let p = ab_ba ~consistent:false in
  let deadlocked = ref false in
  for seed = 0 to 30 do
    if (O2_runtime.Interp.run ~seed p).O2_runtime.Interp.deadlocked then
      deadlocked := true
  done;
  check_bool "interpreter confirms" true !deadlocked;
  let q = ab_ba ~consistent:true in
  for seed = 0 to 30 do
    check_bool "consistent order never deadlocks" false
      (O2_runtime.Interp.run ~seed q).O2_runtime.Interp.deadlocked
  done

(* ---------------- over-synchronization ---------------- *)

let test_oversync_local_lock_flagged () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "l" ]
          [
            meth "init" [ "l" ] [ fwrite "this" "l" "l" ];
            meth "run" []
              [
                fread "l" "this" "l";
                new_ "mine" "Data" [];
                sync "l" [ fwrite "mine" "v" "mine" ];  (* useless lock *)
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "l" "Data" [];
                new_ "w" "W" [ "l" ];
                start "w";
              ];
          ];
      ]
  in
  let r = O2_race.Oversync.analyze p in
  check_int "useless lock flagged" 1 (O2_race.Oversync.n_findings r)

let test_oversync_shared_lock_not_flagged () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s"; "l" ]
          [
            meth "init" [ "s"; "l" ]
              [ fwrite "this" "s" "s"; fwrite "this" "l" "l" ];
            meth "run" []
              [
                fread "s" "this" "s";
                fread "l" "this" "l";
                sync "l" [ fwrite "s" "v" "s" ];  (* lock earns its keep *)
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "s" "Data" [];
                new_ "l" "Data" [];
                new_ "w1" "W" [ "s"; "l" ];
                new_ "w2" "W" [ "s"; "l" ];
                start "w1";
                start "w2";
              ];
          ];
      ]
  in
  let r = O2_race.Oversync.analyze p in
  check_int "needed lock kept" 0 (O2_race.Oversync.n_findings r)

let test_oversync_0ctx_misses () =
  (* under 0-ctx, the two threads' local data merge and look shared, hiding
     the over-synchronization — the precision argument again *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "l" ]
          [
            meth "init" [ "l" ] [ fwrite "this" "l" "l" ];
            meth "run" []
              [
                fread "l" "this" "l";
                new_ "mine" "Data" [];
                sync "l" [ fwrite "mine" "v" "mine" ];
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "l" "Data" [];
                new_ "w1" "W" [ "l" ];
                new_ "w2" "W" [ "l" ];
                start "w1";
                start "w2";
              ];
          ];
      ]
  in
  let ro = O2_race.Oversync.analyze ~policy:(Context.Korigin 1) p in
  let r0 = O2_race.Oversync.analyze ~policy:Context.Insensitive p in
  check_int "O2 finds it" 1 (O2_race.Oversync.n_findings ro);
  check_int "0-ctx blind" 0 (O2_race.Oversync.n_findings r0)


(* ---------------- Android lifecycle harness (§4.2) ---------------- *)

let newsreader_src =
  {|
class ArticleCache { field entries; field etag; }

class Fetcher extends Thread {
  field cache;
  method init(cache) { this.cache = cache; }
  method run() {
    local cache;
    cache = this.cache;
    cache.entries = cache;
  }
}

class RefreshReceiver extends Receiver {
  field cache;
  method init(cache) { this.cache = cache; }
  method onReceive(intent) {
    local cache, snapshot;
    cache = this.cache;
    snapshot = cache.entries;
  }
}

class MainActivity extends Activity {
  field cache;
  method onCreate() {
    local cache, rx, fetcher, intent;
    cache = new ArticleCache();
    this.cache = cache;
    rx = new RefreshReceiver(cache);
    intent = new ArticleCache();
    post rx(intent);
    fetcher = new Fetcher(cache);
    start fetcher;
  }
  method onPause() {
    local cache;
    cache = this.cache;
    cache.etag = cache;
  }
  method onDestroy() {
    local cache;
    cache = this.cache;
    cache.etag = cache;
  }
}

class SettingsActivity extends Activity {
  field prefs;
  method onCreate() {
    local p;
    p = new ArticleCache();
    this.prefs = p;
  }
}
|}

let parse_app () =
  O2_frontend.Parser.parse_classes ~file:"newsreader.cir" newsreader_src

let test_harness_generation () =
  let classes = parse_app () in
  Alcotest.(check (list string))
    "activities found"
    [ "MainActivity"; "SettingsActivity" ]
    (O2_ir.Harness.activity_classes classes);
  let p = O2_ir.Harness.android classes in
  let main = O2_ir.Program.main p in
  Alcotest.(check string) "harness main" "O2AndroidHarness" main.m_class;
  (* the AndroidRt starters exist for every activity *)
  check_bool "starter for MainActivity" true
    (O2_ir.Program.static_method p "AndroidRt" "start_MainActivity" <> None);
  check_bool "starter for SettingsActivity" true
    (O2_ir.Program.static_method p "AndroidRt" "start_SettingsActivity" <> None);
  check_int "harness lints clean" 0
    (List.length (O2_ir.Wellformed.check p))

let test_harness_detects_the_race () =
  let p = O2_ir.Harness.android (parse_app ()) in
  let _, _, r = O2_race.Detect.analyze p in
  (* exactly the fetcher/receiver race; lifecycle writes are same-origin *)
  check_int "one race through the harness" 1 (O2_race.Detect.n_races r)

let test_harness_lifecycle_is_ordered () =
  (* onPause and onDestroy both write etag but run as ordered calls on the
     harness origin: no race between lifecycle handlers, as §4.2 specifies *)
  let p = O2_ir.Harness.android (parse_app ()) in
  let _, _, r = O2_race.Detect.analyze p in
  check_bool "no etag race" true
    (List.for_all
       (fun (race : O2_race.Detect.race) ->
         match race.r_target with
         | Access.Tfield (_, f) -> f <> "etag"
         | _ -> true)
       r.O2_race.Detect.races)

let test_harness_explicit_activity () =
  let p =
    O2_ir.Harness.android ~main_activity:"SettingsActivity" (parse_app ())
  in
  (* driving only SettingsActivity reaches neither the fetcher nor the
     receiver: no races *)
  let _, _, r = O2_race.Detect.analyze p in
  check_int "settings-only harness is clean" 0 (O2_race.Detect.n_races r)

let test_harness_no_activity () =
  match O2_ir.Harness.android [] with
  | exception O2_ir.Harness.No_activity _ -> ()
  | _ -> Alcotest.fail "expected No_activity"

let test_harness_runs_on_interpreter () =
  let p = O2_ir.Harness.android (parse_app ()) in
  let o = O2_runtime.Interp.run ~seed:1 p in
  check_bool "harnessed app executes" true o.O2_runtime.Interp.completed

let () =
  Alcotest.run "extensions"
    [
      ( "semaphores",
        [
          Alcotest.test_case "static handshake" `Quick
            test_semaphore_orders_statically;
          Alcotest.test_case "naive agrees" `Quick test_semaphore_naive_agrees;
          Alcotest.test_case "ambiguous signals" `Quick
            test_semaphore_two_signals_no_edge;
          Alcotest.test_case "dynamic" `Quick test_semaphore_dynamic;
          Alcotest.test_case "parser roundtrip" `Quick
            test_semaphore_parser_roundtrip;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "thread class" `Quick test_annotation_thread_class;
          Alcotest.test_case "custom entry" `Quick test_annotation_custom_entry;
          Alcotest.test_case "handler class" `Quick test_annotation_handler;
          Alcotest.test_case "builder+pp" `Quick test_annotation_builder_and_pp;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "AB/BA" `Quick test_deadlock_ab_ba;
          Alcotest.test_case "consistent order" `Quick
            test_deadlock_consistent_order_clean;
          Alcotest.test_case "single origin" `Quick
            test_deadlock_single_origin_not_flagged;
          Alcotest.test_case "interpreter confirms" `Quick
            test_deadlock_matches_interpreter;
        ] );
      ( "android-harness",
        [
          Alcotest.test_case "generation" `Quick test_harness_generation;
          Alcotest.test_case "finds the race" `Quick
            test_harness_detects_the_race;
          Alcotest.test_case "lifecycle ordered" `Quick
            test_harness_lifecycle_is_ordered;
          Alcotest.test_case "explicit activity" `Quick
            test_harness_explicit_activity;
          Alcotest.test_case "no activity" `Quick test_harness_no_activity;
          Alcotest.test_case "interpreter" `Quick
            test_harness_runs_on_interpreter;
        ] );
      ( "oversync",
        [
          Alcotest.test_case "local lock flagged" `Quick
            test_oversync_local_lock_flagged;
          Alcotest.test_case "shared lock kept" `Quick
            test_oversync_shared_lock_not_flagged;
          Alcotest.test_case "0-ctx blind" `Quick test_oversync_0ctx_misses;
        ] );
    ]
