open O2_ir
open O2_ir.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let tiny () =
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "W" ~super:"Thread" ~fields:[ "d" ]
        [
          meth "init" [ "d" ] [ fwrite "this" "d" "d" ];
          meth "run" []
            [ fread "d" "this" "d"; fwrite "d" "v" "d"; ret None ];
        ];
      cls "M"
        [
          meth ~static:true "main" []
            [ new_ "d" "Data" []; new_ "w" "W" [ "d" ]; start "w"; join "w" ];
        ];
    ]

(* ---------------- resolution ---------------- *)

let test_resolve_basic () =
  let p = tiny () in
  check_bool "has W" true (Program.find_class p "W" <> None);
  check_bool "no Z" true (Program.find_class p "Z" = None);
  let main = Program.main p in
  check_str "main class" "M" main.Program.m_class;
  check_bool "main static" true main.Program.m_static

let test_kinds () =
  let p = tiny () in
  (match Program.kind_of p "W" with
  | Program.Kthread e -> check_str "entry" "run" e
  | _ -> Alcotest.fail "W should be a thread");
  (match Program.kind_of p "Data" with
  | Program.Kplain -> ()
  | _ -> Alcotest.fail "Data should be plain");
  check_bool "entry method" true (Program.entry_method p "W" <> None);
  check_bool "no entry for plain" true (Program.entry_method p "Data" = None)

let test_kind_inheritance () =
  let p =
    prog ~main:"M"
      [
        cls "Base" ~super:"Thread" [ meth "run" [] [ ret None ] ];
        cls "Derived" ~super:"Base" [];
        cls "H" ~super:"EventHandler" [ meth "handleEvent" [] [ ret None ] ];
        cls "M" [ meth ~static:true "main" [] [ ret None ] ];
      ]
  in
  (match Program.kind_of p "Derived" with
  | Program.Kthread "run" -> ()
  | _ -> Alcotest.fail "Derived inherits thread kind");
  (match Program.kind_of p "H" with
  | Program.Khandler "handleEvent" -> ()
  | _ -> Alcotest.fail "H is an EventHandler");
  (* Derived's entry dispatches to Base.run *)
  match Program.entry_method p "Derived" with
  | Some m -> check_str "dispatched to Base" "Base" m.Program.m_class
  | None -> Alcotest.fail "entry method missing"

let test_dispatch_override () =
  let p =
    prog ~main:"M"
      [
        cls "A" [ meth "f" [] [ ret None ]; meth "g" [] [ ret None ] ];
        cls "B" ~super:"A" [ meth "f" [] [ ret None ] ];
        cls "M" [ meth ~static:true "main" [] [ ret None ] ];
      ]
  in
  (match Program.dispatch p "B" "f" with
  | Some m -> check_str "override wins" "B" m.Program.m_class
  | None -> Alcotest.fail "dispatch f");
  (match Program.dispatch p "B" "g" with
  | Some m -> check_str "inherited" "A" m.Program.m_class
  | None -> Alcotest.fail "dispatch g");
  check_bool "missing method" true (Program.dispatch p "B" "nope" = None);
  check_bool "static not virtual" true
    (Program.static_method p "B" "f" = None)

let test_subclass_of () =
  let p =
    prog ~main:"M"
      [
        cls "A" [];
        cls "B" ~super:"A" [];
        cls "C" ~super:"B" [];
        cls "M" [ meth ~static:true "main" [] [ ret None ] ];
      ]
  in
  check_bool "C<:A" true (Program.subclass_of p "C" "A");
  check_bool "A not <:C" false (Program.subclass_of p "A" "C");
  check_bool "refl" true (Program.subclass_of p "B" "B")

let test_inherited_fields () =
  let p =
    prog ~main:"M"
      [
        cls "A" ~fields:[ "x" ] [];
        cls "B" ~super:"A" ~fields:[ "y" ] [];
        cls "M" [ meth ~static:true "main" [] [ ret None ] ];
      ]
  in
  match Program.find_class p "B" with
  | Some b -> Alcotest.(check (list string)) "fields" [ "x"; "y" ] b.Program.c_fields
  | None -> Alcotest.fail "no B"

let test_sid_unique_and_indexed () =
  let p = tiny () in
  let n = Program.n_stmts p in
  check_bool "nonzero" true (n > 0);
  for sid = 0 to n - 1 do
    let s, _m = Program.stmt p sid in
    check_int "sid round-trips" sid s.Ast.sid
  done

let test_in_loop () =
  let p =
    prog ~main:"M"
      [
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "a" "M" [];
                while_ [ new_ "b" "M" []; if_ [ new_ "c" "M" [] ] [] ];
                new_ "d" "M" [];
              ];
          ];
      ]
  in
  let find_alloc v =
    let found = ref (-1) in
    for sid = 0 to Program.n_stmts p - 1 do
      match Program.stmt p sid with
      | { Ast.sk = Ast.New (x, _, _); _ }, _ when x = v -> found := sid
      | _ -> ()
    done;
    !found
  in
  check_bool "a outside" false (Program.stmt_in_loop p (find_alloc "a"));
  check_bool "b inside" true (Program.stmt_in_loop p (find_alloc "b"));
  check_bool "c nested inside" true (Program.stmt_in_loop p (find_alloc "c"));
  check_bool "d after" false (Program.stmt_in_loop p (find_alloc "d"))

(* ---------------- ill-formedness ---------------- *)

let expect_ill f =
  match f () with
  | exception Program.Ill_formed _ -> ()
  | _ -> Alcotest.fail "expected Ill_formed"

let test_duplicate_class () =
  expect_ill (fun () ->
      prog ~main:"M" [ cls "A" []; cls "A" []; cls "M" [ meth ~static:true "main" [] [] ] ])

let test_unknown_super () =
  expect_ill (fun () ->
      prog ~main:"M"
        [ cls "A" ~super:"Ghost" []; cls "M" [ meth ~static:true "main" [] [] ] ])

let test_cycle () =
  expect_ill (fun () ->
      prog ~main:"M"
        [
          cls "A" ~super:"B" [];
          cls "B" ~super:"A" [];
          cls "M" [ meth ~static:true "main" [] [] ];
        ])

let test_missing_main () =
  expect_ill (fun () -> prog ~main:"M" [ cls "M" [] ]);
  expect_ill (fun () ->
      (* non-static main *)
      prog ~main:"M" [ cls "M" [ meth "main" [] [] ] ])

let test_shadow_builtin () =
  expect_ill (fun () ->
      prog ~main:"M" [ cls "Thread" []; cls "M" [ meth ~static:true "main" [] [] ] ])

(* ---------------- wellformed lint ---------------- *)

let test_lint_clean () =
  Alcotest.(check int) "no issues" 0 (List.length (Wellformed.check (tiny ())))

let test_lint_unknown_var () =
  let p =
    prog ~main:"M"
      [ cls "M" [ meth ~static:true "main" [] [ assign "x" "ghost" ] ] ]
  in
  check_bool "flags ghost" true
    (List.exists
       (fun (i : Wellformed.issue) ->
         String.length i.msg > 0 && String.sub i.msg 0 8 = "variable")
       (Wellformed.check p))

let test_lint_unknown_class_and_sfield () =
  let p =
    prog ~main:"M"
      [
        cls "G" ~sfields:[ "s" ] [];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "x" "Nope" []; swrite "G" "missing" "x" ];
          ];
      ]
  in
  let issues = Wellformed.check p in
  check_bool "unknown class" true
    (List.exists (fun (i : Wellformed.issue) -> i.msg = "unknown class Nope") issues);
  check_bool "missing static field" true
    (List.exists
       (fun (i : Wellformed.issue) ->
         i.msg = "class G has no static field missing")
       issues)

let test_lint_exn () =
  let p =
    prog ~main:"M"
      [ cls "M" [ meth ~static:true "main" [] [ assign "x" "ghost" ] ] ]
  in
  match Wellformed.check_exn p with
  | exception Program.Ill_formed _ -> ()
  | () -> Alcotest.fail "expected Ill_formed"

(* ---------------- builder ---------------- *)

let test_builder_locals_inferred () =
  let md =
    meth "m" [ "p" ]
      [ new_ "a" "Data" []; assign "b" "a"; assign "p" "a"; fwrite "this" "f" "a" ]
  in
  Alcotest.(check (list string)) "locals" [ "a"; "b" ] md.Ast.md_locals

let test_defined_vars_nested () =
  let body =
    [
      if_ [ new_ "x" "C" [] ] [ assign "y" "x" ];
      while_ [ sync "l" [ fread "z" "x" "f" ] ];
    ]
  in
  Alcotest.(check (list string)) "defined" [ "x"; "y"; "z" ]
    (Ast.defined_vars body)

(* ---------------- pretty-printing round trip ---------------- *)

let test_pp_roundtrip () =
  let p = tiny () in
  let src = Pp.program_to_string p in
  let p2 = O2_frontend.Parser.parse_string src in
  let src2 = Pp.program_to_string p2 in
  check_str "fixpoint" src src2;
  check_int "same statements" (Program.n_stmts p) (Program.n_stmts p2)

let test_pp_roundtrip_figures () =
  List.iter
    (fun p ->
      let src = Pp.program_to_string p in
      let p2 = O2_frontend.Parser.parse_string src in
      check_str "fixpoint" src (Pp.program_to_string p2))
    [ O2_workloads.Figures.figure2 (); O2_workloads.Figures.figure3 () ]

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"pp/parse round-trip on random programs" ~count:100
    ~print:O2_test_helpers.Gen.print_spec O2_test_helpers.Gen.spec_gen
    (fun spec ->
      let p = O2_test_helpers.Gen.program_of_spec spec in
      let src = Pp.program_to_string p in
      let p2 = O2_frontend.Parser.parse_string src in
      Pp.program_to_string p2 = src)

let () =
  Alcotest.run "ir"
    [
      ( "resolution",
        [
          Alcotest.test_case "basic" `Quick test_resolve_basic;
          Alcotest.test_case "kinds" `Quick test_kinds;
          Alcotest.test_case "kind inheritance" `Quick test_kind_inheritance;
          Alcotest.test_case "dispatch" `Quick test_dispatch_override;
          Alcotest.test_case "subclass_of" `Quick test_subclass_of;
          Alcotest.test_case "inherited fields" `Quick test_inherited_fields;
          Alcotest.test_case "sids" `Quick test_sid_unique_and_indexed;
          Alcotest.test_case "loop flags" `Quick test_in_loop;
        ] );
      ( "ill-formed",
        [
          Alcotest.test_case "duplicate class" `Quick test_duplicate_class;
          Alcotest.test_case "unknown super" `Quick test_unknown_super;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "missing main" `Quick test_missing_main;
          Alcotest.test_case "shadow builtin" `Quick test_shadow_builtin;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean" `Quick test_lint_clean;
          Alcotest.test_case "unknown var" `Quick test_lint_unknown_var;
          Alcotest.test_case "unknown class/sfield" `Quick
            test_lint_unknown_class_and_sfield;
          Alcotest.test_case "check_exn" `Quick test_lint_exn;
        ] );
      ( "builder",
        [
          Alcotest.test_case "locals inferred" `Quick
            test_builder_locals_inferred;
          Alcotest.test_case "defined_vars nested" `Quick
            test_defined_vars_nested;
        ] );
      ( "pp",
        [
          Alcotest.test_case "round trip" `Quick test_pp_roundtrip;
          Alcotest.test_case "figures round trip" `Quick
            test_pp_roundtrip_figures;
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
        ] );
    ]
