(* dev helper: write the embedded example sources as .cir files *)
let () =
  let out name src =
    let oc = open_out (Filename.concat Sys.argv.(1) (name ^ ".cir")) in
    output_string oc src;
    close_out oc
  in
  out "figure2" O2_workloads.Figures.figure2_src;
  out "figure3" O2_workloads.Figures.figure3_src;
  out "memcached" O2_workloads.Models.memcached_src;
  out "zookeeper" O2_workloads.Models.zookeeper_src;
  out "firefox" O2_workloads.Models.firefox_src;
  out "linux" O2_workloads.Models.linux_src
