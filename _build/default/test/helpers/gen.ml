(* QCheck generators of small well-formed CIR programs, used by the
   property tests: random thread/event classes whose entry bodies mix
   shared-state accesses (locked and unlocked), thread-local allocations,
   loops, helper calls and semaphore waits; main may start threads in
   loops (pools), join them, post events with arguments and signal the
   semaphore. Every generated program resolves and lints clean by
   construction, and every loop the interpreter executes is bounded by its
   choice-driven continuation, so programs terminate under exploration. *)

open O2_ir.Builder

type op =
  | OSharedWrite of int  (* field index *)
  | OSharedRead of int
  | OLockedWrite of int
  | OLocalData  (* new + write + read on a local object *)
  | OLoopLocal  (* the same, but inside a while loop *)
  | OArray  (* array write on the shared object *)
  | OStaticAcc of bool  (* write? on a global static *)
  | OHelperCall
  | OSemWait  (* wait on the global semaphore *)
  | ONestedSpawn  (* start a nested child thread on the shared object *)

let n_fields = 3

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        (3, map (fun i -> OSharedWrite (abs i mod n_fields)) small_int);
        (3, map (fun i -> OSharedRead (abs i mod n_fields)) small_int);
        (3, map (fun i -> OLockedWrite (abs i mod n_fields)) small_int);
        (2, return OLocalData);
        (1, return OLoopLocal);
        (1, return OArray);
        (2, map (fun b -> OStaticAcc b) bool);
        (2, return OHelperCall);
        (1, return OSemWait);
        (1, return ONestedSpawn);
      ])

type spec = {
  g_threads : (op list * bool * bool) list;
      (* body ops, joined?, pooled (started in a loop)? *)
  g_events : op list list;
  g_signal : bool;  (* main signals the semaphore after its writes *)
  g_seed : int;
}

let spec_gen =
  QCheck2.Gen.(
    let body = list_size (int_range 1 6) op_gen in
    let* threads = list_size (int_range 1 3) (triple body bool bool) in
    let* events = list_size (int_range 0 2) body in
    let* signal_ = bool in
    let* seed = small_int in
    return { g_threads = threads; g_events = events; g_signal = signal_; g_seed = seed })

let field i = Printf.sprintf "f%d" i

let stmts_of_op idx i op =
  let v suffix = Printf.sprintf "v%d_%d_%s" idx i suffix in
  match op with
  | OSharedWrite f -> [ fwrite "sh" (field f) "sh" ]
  | OSharedRead f -> [ fread (v "r") "sh" (field f) ]
  | OLockedWrite f -> [ sync "lk" [ fwrite "sh" (field f) "sh" ] ]
  | OLocalData ->
      [ new_ (v "d") "GData" []; fwrite (v "d") "f0" "sh"; fread (v "t") (v "d") "f0" ]
  | OLoopLocal ->
      [
        while_
          [ new_ (v "ld") "GData" []; fwrite (v "ld") "f1" "sh" ];
      ]
  | OArray -> [ fread (v "a") "sh" "arr"; awrite (v "a") "sh" ]
  | OStaticAcc true -> [ swrite "Globals" "g" "sh" ]
  | OStaticAcc false -> [ sread (v "s") "Globals" "g" ]
  | OHelperCall -> [ call "hl" "touch" [ "sh" ] ]
  | OSemWait -> [ wait "sem" ]
  | ONestedSpawn -> [ new_ (v "k") "GNested" [ "sh" ]; start (v "k") ]

let entry_body idx ops =
  [ fread "sh" "this" "shared"; fread "lk" "this" "lock";
    fread "hl" "this" "helper"; fread "sem" "this" "sem" ]
  @ List.concat (List.mapi (fun i op -> stmts_of_op idx i op) ops)
  @ [ ret None ]

let concurrency_fields = [ "shared"; "lock"; "helper"; "sem" ]

let init_body =
  [
    fwrite "this" "shared" "s";
    fwrite "this" "lock" "l";
    fwrite "this" "helper" "h";
    fwrite "this" "sem" "q";
  ]

let program_of_spec spec =
  let data = cls "GData" ~fields:[ "f0"; "f1"; "f2"; "arr" ] [] in
  let globals = cls "Globals" ~sfields:[ "g" ] [] in
  let helper =
    cls "GHelper"
      [
        meth "touch" [ "d" ]
          [ fwrite "d" "f1" "d"; fread "x" "d" "f1"; ret None ];
      ]
  in
  let nested =
    cls "GNested" ~super:"Thread" ~fields:[ "shared" ]
      [
        meth "init" [ "s" ] [ fwrite "this" "shared" "s" ];
        meth "run" []
          [
            fread "sh" "this" "shared";
            fwrite "sh" "f2" "sh";
            new_ "own" "GData" [];
            fwrite "own" "f0" "own";
            ret None;
          ];
      ]
  in
  let params = [ "s"; "l"; "h"; "q" ] in
  let threads =
    List.mapi
      (fun idx (ops, _joined, _pooled) ->
        cls
          (Printf.sprintf "GT%d" idx)
          ~super:"Thread" ~fields:concurrency_fields
          [ meth "init" params init_body; meth "run" [] (entry_body idx ops) ])
      spec.g_threads
  in
  let events =
    List.mapi
      (fun idx ops ->
        cls
          (Printf.sprintf "GE%d" idx)
          ~super:"Handler" ~fields:concurrency_fields
          [
            meth "init" params init_body;
            meth "handle" [ "msg" ] (entry_body (100 + idx) ops);
          ])
      spec.g_events
  in
  let main_body =
    [
      new_ "s" "GData" [];
      new_ "a" "GData" [];
      fwrite "s" "arr" "a";
      new_ "l" "GData" [];
      new_ "h" "GHelper" [];
      new_ "q" "GData" [];
    ]
    @ List.concat
        (List.mapi
           (fun idx (_, joined, pooled) ->
             let v = Printf.sprintf "t%d" idx in
             let mk_and_start =
               [ new_ v (Printf.sprintf "GT%d" idx) [ "s"; "l"; "h"; "q" ];
                 start v ]
             in
             if pooled then [ while_ mk_and_start ]
             else mk_and_start @ if joined then [ join v ] else [])
           spec.g_threads)
    @ List.concat
        (List.mapi
           (fun idx _ ->
             let v = Printf.sprintf "e%d" idx in
             [
               new_ v (Printf.sprintf "GE%d" idx) [ "s"; "l"; "h"; "q" ];
               post v [ "a" ];
             ])
           spec.g_events)
    @ (if spec.g_signal then [ fwrite "s" "f2" "s"; signal "q" ]
       else [ signal "q" ])
    @ [ ret None ]
  in
  let mainc = cls "GMain" [ meth ~static:true "main" [] main_body ] in
  prog ~main:"GMain"
    ([ data; globals; helper; nested ] @ threads @ events @ [ mainc ])

let program_gen = QCheck2.Gen.map program_of_spec spec_gen

(* printers for failure reporting *)
let print_spec spec =
  Format.asprintf "%a" O2_ir.Pp.pp_program (program_of_spec spec)
