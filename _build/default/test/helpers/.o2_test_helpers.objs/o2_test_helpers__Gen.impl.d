test/helpers/gen.ml: Format List O2_ir Printf QCheck2
