open O2_ir.Builder
open O2_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run ?(seed = 0) p = Interp.run ~seed p

(* ---------------- vector clocks ---------------- *)

let test_vclock () =
  let vc = Vclock.empty in
  check_int "absent is 0" 0 (Vclock.get vc 3);
  let vc = Vclock.tick vc 3 in
  check_int "tick" 1 (Vclock.get vc 3);
  let a = Vclock.set Vclock.empty 1 5 in
  let b = Vclock.set Vclock.empty 2 7 in
  let j = Vclock.join a b in
  check_int "join a" 5 (Vclock.get j 1);
  check_int "join b" 7 (Vclock.get j 2);
  check_bool "leq" true (Vclock.leq a j);
  check_bool "not leq" false (Vclock.leq j a);
  check_bool "refl" true (Vclock.leq j j)

(* ---------------- interpreter semantics ---------------- *)

let test_basic_execution () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "d" "Data" []; fwrite "d" "v" "d"; fread "x" "d" "v" ];
          ];
      ]
  in
  let o = run p in
  check_bool "completes" true o.Interp.completed;
  check_bool "has events" true (List.length o.Interp.events >= 2)

let test_field_roundtrip_via_events () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "M"
          [
            meth ~static:true "main" []
              [ new_ "d" "Data" []; fwrite "d" "v" "d"; fread "x" "d" "v" ];
          ];
      ]
  in
  let o = run p in
  let writes =
    List.filter (function Interp.Ewrite _ -> true | _ -> false) o.Interp.events
  in
  let reads =
    List.filter (function Interp.Eread _ -> true | _ -> false) o.Interp.events
  in
  check_int "one write" 1 (List.length writes);
  check_int "one read" 1 (List.length reads)

let test_null_deref () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "M"
          [
            meth ~static:true "main" []
              [ null "d"; fwrite "d" "v" "d" ];
          ];
      ]
  in
  match run p with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected Runtime_error"

let test_calls_and_returns () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "F"
          [
            meth "id" [ "x" ] [ ret (Some "x") ];
            meth "mk" [] [ new_ "n" "Data" []; ret (Some "n") ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "f" "F" [];
                call ~ret:"a" "f" "mk" [];
                call ~ret:"b" "f" "id" [ "a" ];
                fwrite "b" "v" "a";  (* works only if b is a ref *)
              ];
          ];
      ]
  in
  check_bool "completes" true (run p).Interp.completed

let test_virtual_dispatch_runtime () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "from_base"; "from_sub" ] [];
        cls "Base" [ meth "tag" [ "d" ] [ fwrite "d" "from_base" "d" ] ];
        cls "Sub" ~super:"Base" [ meth "tag" [ "d" ] [ fwrite "d" "from_sub" "d" ] ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "s" "Sub" [];
                call "s" "tag" [ "d" ];
              ];
          ];
      ]
  in
  let o = run p in
  let wrote_sub =
    List.exists
      (function
        | Interp.Ewrite { field = "from_sub"; _ } -> true
        | _ -> false)
      o.Interp.events
  in
  check_bool "override executed" true wrote_sub

let test_threads_run_and_join () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "w" "W" [ "d" ];
                start "w";
                join "w";
                fread "x" "d" "v";
              ];
          ];
      ]
  in
  let o = run p in
  check_bool "completed" true o.Interp.completed;
  check_bool "spawn evt" true
    (List.exists (function Interp.Espawn _ -> true | _ -> false) o.Interp.events);
  check_bool "join evt" true
    (List.exists (function Interp.Ejoin _ -> true | _ -> false) o.Interp.events);
  (* the join orders: the thread's write precedes main's read in the
     event list *)
  let rec check_order = function
    | Interp.Ewrite { field = "v"; _ } :: rest ->
        List.exists (function Interp.Eread { field = "v"; _ } -> true | _ -> false) rest
    | _ :: rest -> check_order rest
    | [] -> false
  in
  check_bool "write before read" true (check_order o.Interp.events)

let test_monitor_mutual_exclusion () =
  (* two threads increment under the same lock; acquire/release events must
     be properly nested per lock *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s"; "l" ]
          [
            meth "init" [ "s"; "l" ]
              [ fwrite "this" "s" "s"; fwrite "this" "l" "l" ];
            meth "run" []
              [
                fread "d" "this" "s";
                fread "l" "this" "l";
                sync "l" [ fwrite "d" "v" "d"; fread "x" "d" "v" ];
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "l" "Data" [];
                new_ "w1" "W" [ "d"; "l" ];
                new_ "w2" "W" [ "d"; "l" ];
                start "w1";
                start "w2";
                join "w1";
                join "w2";
              ];
          ];
      ]
  in
  List.iter
    (fun seed ->
      let o = run ~seed p in
      check_bool "completed" true o.Interp.completed;
      (* no interleaving of the two critical sections: between an acquire
         and its release by task t, no event from another task on the same
         lock-protected data *)
      let owner = ref None in
      List.iter
        (fun e ->
          match e with
          | Interp.Eacquire { task; _ } ->
              check_bool "lock free on acquire" true (!owner = None);
              owner := Some task
          | Interp.Erelease { task; _ } ->
              check_bool "owner releases" true (!owner = Some task);
              owner := None
          | Interp.Ewrite { task; field = "v"; _ } ->
              check_bool "write under lock by owner" true (!owner = Some task)
          | _ -> ())
        o.Interp.events)
    [ 0; 1; 2; 3; 4 ]

let test_reentrant_monitor () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "l" "Data" [];
                sync "l" [ sync "l" [ fwrite "l" "v" "l" ] ];
              ];
          ];
      ]
  in
  check_bool "reentrancy works" true (run p).Interp.completed

let test_events_serialized () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "H" ~super:"Handler" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "handle" []
              [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "h" "H" [ "d" ];
                post "h" [];
                post "h" [];
              ];
          ];
      ]
  in
  let o = run p in
  check_bool "completed" true o.Interp.completed;
  (* both deliveries execute on the same dispatcher task *)
  let handler_tasks =
    List.filter_map
      (function
        | Interp.Ewrite { task; field = "v"; _ } -> Some task
        | _ -> None)
      o.Interp.events
    |> List.sort_uniq compare
  in
  check_int "one dispatcher task" 1 (List.length handler_tasks)

let test_deadlock_detection () =
  (* thread A: sync(l1){sync(l2)}, thread B: sync(l2){sync(l1)} — some
     schedule deadlocks; all schedules either complete or report deadlock *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "AB" ~super:"Thread" ~fields:[ "a"; "b" ]
          [
            meth "init" [ "a"; "b" ]
              [ fwrite "this" "a" "a"; fwrite "this" "b" "b" ];
            meth "run" []
              [
                fread "a" "this" "a";
                fread "b" "this" "b";
                sync "a" [ sync "b" [ fwrite "a" "v" "a" ] ];
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "l1" "Data" [];
                new_ "l2" "Data" [];
                new_ "t1" "AB" [ "l1"; "l2" ];
                new_ "t2" "AB" [ "l2"; "l1" ];
                start "t1";
                start "t2";
              ];
          ];
      ]
  in
  let saw_deadlock = ref false and saw_completion = ref false in
  for seed = 0 to 30 do
    let o = run ~seed p in
    if o.Interp.deadlocked then saw_deadlock := true;
    if o.Interp.completed then saw_completion := true
  done;
  check_bool "some schedule completes" true !saw_completion;
  check_bool "some schedule deadlocks" true !saw_deadlock

let test_determinism_per_seed () =
  let p = O2_workloads.Models.find "memcached" in
  let o1 = run ~seed:42 (p.program ()) in
  let o2 = run ~seed:42 (p.program ()) in
  check_int "same steps" o1.Interp.steps o2.Interp.steps;
  check_int "same events" (List.length o1.Interp.events)
    (List.length o2.Interp.events)

(* ---------------- dynamic race detection ---------------- *)

let racy_prog () =
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "W" ~super:"Thread" ~fields:[ "s" ]
        [
          meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
          meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
        ];
      cls "M"
        [
          meth ~static:true "main" []
            [
              new_ "d" "Data" [];
              new_ "w1" "W" [ "d" ];
              new_ "w2" "W" [ "d" ];
              start "w1";
              start "w2";
            ];
        ];
    ]

let test_dynrace_finds_race () =
  let races = Dynrace.check (racy_prog ()) in
  check_bool "dynamic race observed" true (List.length races >= 1)

let test_dynrace_clean_when_locked () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s"; "l" ]
          [
            meth "init" [ "s"; "l" ]
              [ fwrite "this" "s" "s"; fwrite "this" "l" "l" ];
            meth "run" []
              [
                fread "d" "this" "s";
                fread "l" "this" "l";
                sync "l" [ fwrite "d" "v" "d" ];
                ret None;
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "l" "Data" [];
                new_ "w1" "W" [ "d"; "l" ];
                new_ "w2" "W" [ "d"; "l" ];
                start "w1";
                start "w2";
              ];
          ];
      ]
  in
  check_int "no dynamic race under lock" 0 (List.length (Dynrace.check p))

let test_dynrace_join_ordered () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "w" "W" [ "d" ];
                start "w";
                join "w";
                fwrite "d" "v" "d";
              ];
          ];
      ]
  in
  check_int "join removes the race" 0 (List.length (Dynrace.check p))

let test_dynrace_event_vs_thread () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "H" ~super:"Handler" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "handle" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "h" "H" [ "d" ];
                new_ "w" "W" [ "d" ];
                post "h" [];
                start "w";
              ];
          ];
      ]
  in
  let races = Dynrace.check p in
  check_bool "thread-event race observed dynamically" true
    (List.length races >= 1)

(* ---------------- systematic exploration ---------------- *)

let tiny_racy () =
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "W" ~super:"Thread" ~fields:[ "s" ]
        [
          meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
          meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d" ];
        ];
      cls "M"
        [
          meth ~static:true "main" []
            [
              new_ "d" "Data" [];
              new_ "w" "W" [ "d" ];
              start "w";
              fwrite "d" "v" "d";
            ];
        ];
    ]

let test_explore_exhaustive_small () =
  let r = Explore.explore ~max_runs:100_000 (tiny_racy ()) in
  check_bool "small tree fully explored" true r.Explore.exhaustive;
  check_bool "race found" true (List.length r.Explore.races >= 1);
  check_int "no deadlock" 0 r.Explore.deadlocks

let test_explore_clean_program () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "W" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d" ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "w" "W" [ "d" ];
                start "w";
                join "w";
                fwrite "d" "v" "d";
              ];
          ];
      ]
  in
  let r = Explore.explore ~max_runs:100_000 p in
  check_bool "exhaustive" true r.Explore.exhaustive;
  check_int "no race in any schedule" 0 (List.length r.Explore.races)

let test_explore_finds_deadlock_schedules () =
  (* AB/BA: exploration must hit both deadlocking and completing runs *)
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "AB" ~super:"Thread" ~fields:[ "a"; "b" ]
          [
            meth "init" [ "a"; "b" ]
              [ fwrite "this" "a" "a"; fwrite "this" "b" "b" ];
            meth "run" []
              [
                fread "a" "this" "a";
                fread "b" "this" "b";
                sync "a" [ sync "b" [ fwrite "a" "v" "a" ] ];
              ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "l1" "Data" [];
                new_ "l2" "Data" [];
                new_ "t1" "AB" [ "l1"; "l2" ];
                new_ "t2" "AB" [ "l2"; "l1" ];
                start "t1";
                start "t2";
              ];
          ];
      ]
  in
  let r = Explore.explore ~max_runs:100_000 p in
  check_bool "deadlocking schedules found" true (r.Explore.deadlocks > 0);
  check_bool "but not all deadlock" true (r.Explore.deadlocks < r.Explore.runs)

let test_explore_beats_random_sampling () =
  (* a race that needs a precise interleaving: the window is one statement
     wide, so random seeds often miss it while DFS provably covers it *)
  let r = Explore.explore ~max_runs:100_000 (tiny_racy ()) in
  check_bool "explorer finds the narrow race" true
    (List.length r.Explore.races >= 1)


let () =
  Alcotest.run "runtime"
    [
      ("vclock", [ Alcotest.test_case "ops" `Quick test_vclock ]);
      ( "interp",
        [
          Alcotest.test_case "basic" `Quick test_basic_execution;
          Alcotest.test_case "events" `Quick test_field_roundtrip_via_events;
          Alcotest.test_case "null deref" `Quick test_null_deref;
          Alcotest.test_case "calls/returns" `Quick test_calls_and_returns;
          Alcotest.test_case "virtual dispatch" `Quick
            test_virtual_dispatch_runtime;
          Alcotest.test_case "threads+join" `Quick test_threads_run_and_join;
          Alcotest.test_case "monitors" `Quick test_monitor_mutual_exclusion;
          Alcotest.test_case "reentrancy" `Quick test_reentrant_monitor;
          Alcotest.test_case "events serialized" `Quick test_events_serialized;
          Alcotest.test_case "deadlock detection" `Quick
            test_deadlock_detection;
          Alcotest.test_case "determinism per seed" `Quick
            test_determinism_per_seed;
        ] );
      ( "dynrace",
        [
          Alcotest.test_case "finds race" `Quick test_dynrace_finds_race;
          Alcotest.test_case "clean when locked" `Quick
            test_dynrace_clean_when_locked;
          Alcotest.test_case "join ordered" `Quick test_dynrace_join_ordered;
          Alcotest.test_case "event vs thread" `Quick
            test_dynrace_event_vs_thread;
        ] );
      ( "explore",
        [
          Alcotest.test_case "exhaustive small" `Quick
            test_explore_exhaustive_small;
          Alcotest.test_case "clean program" `Quick test_explore_clean_program;
          Alcotest.test_case "deadlock schedules" `Quick
            test_explore_finds_deadlock_schedules;
          Alcotest.test_case "narrow window" `Quick
            test_explore_beats_random_sampling;
        ] );
    ]

