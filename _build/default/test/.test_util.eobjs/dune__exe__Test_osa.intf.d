test/test_osa.mli:
