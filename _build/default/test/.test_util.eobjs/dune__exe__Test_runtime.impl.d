test/test_runtime.ml: Alcotest Dynrace Explore Interp List O2_ir O2_runtime O2_workloads Vclock
