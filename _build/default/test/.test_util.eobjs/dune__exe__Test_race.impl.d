test/test_race.ml: Access Alcotest Context List O2_ir O2_osa O2_pta O2_race O2_runtime O2_shb O2_test_helpers O2_workloads Pag Printf QCheck2 QCheck_alcotest Solver
