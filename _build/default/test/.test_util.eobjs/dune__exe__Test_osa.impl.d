test/test_osa.ml: Access Alcotest Array Context Format List O2_ir O2_osa O2_pta O2_workloads Pag Solver String
