test/test_pta.ml: Alcotest Array Context List O2_ir O2_pta O2_test_helpers O2_util O2_workloads Pag Program QCheck2 QCheck_alcotest Solver
