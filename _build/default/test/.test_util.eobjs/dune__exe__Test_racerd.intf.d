test/test_racerd.mli:
