test/test_misc.ml: Alcotest Array Context List O2_frontend O2_ir O2_pta O2_race O2_runtime O2_workloads Pag Query Solver String
