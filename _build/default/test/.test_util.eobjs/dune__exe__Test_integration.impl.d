test/test_integration.ml: Access Alcotest Context Format List O2 O2_frontend O2_ir O2_pta O2_race O2_runtime O2_shb O2_test_helpers O2_workloads Printf QCheck2 QCheck_alcotest Solver String
