test/test_racerd.ml: Alcotest List O2_ir O2_race O2_racerd O2_workloads Racerd
