test/test_escape.ml: Access Alcotest Context List O2_escape O2_ir O2_osa O2_pta O2_test_helpers Pag QCheck2 QCheck_alcotest Solver
