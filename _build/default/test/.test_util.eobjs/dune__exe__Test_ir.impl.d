test/test_ir.ml: Alcotest Ast List O2_frontend O2_ir O2_test_helpers O2_workloads Pp Program QCheck2 QCheck_alcotest String Wellformed
