test/test_shb.mli:
