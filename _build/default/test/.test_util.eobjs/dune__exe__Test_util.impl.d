test/test_util.ml: Alcotest Bitset Hashtbl Idgen Intern List O2_util QCheck2 QCheck_alcotest Stats String
