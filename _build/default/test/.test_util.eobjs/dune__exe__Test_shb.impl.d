test/test_shb.ml: Access Alcotest Array Context Graph List Lockset O2_ir O2_pta O2_shb QCheck2 QCheck_alcotest Solver
