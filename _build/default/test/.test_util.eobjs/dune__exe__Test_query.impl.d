test/test_query.ml: Alcotest Context Format List O2_ir O2_pta O2_shb O2_workloads Query Solver String
