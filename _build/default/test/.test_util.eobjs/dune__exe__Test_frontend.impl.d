test/test_frontend.ml: Alcotest Filename Lexer Lexing List O2_frontend O2_ir O2_workloads Parser Printf Sys Token
