test/test_extensions.ml: Access Alcotest Context List O2_frontend O2_ir O2_pta O2_race O2_runtime
