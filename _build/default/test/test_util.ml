open O2_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- Bitset ---------------- *)

let test_bitset_basic () =
  let s = Bitset.create () in
  check "empty" true (Bitset.is_empty s);
  check "add new" true (Bitset.add s 5);
  check "add dup" false (Bitset.add s 5);
  check "mem" true (Bitset.mem s 5);
  check "not mem" false (Bitset.mem s 6);
  check_int "cardinal" 1 (Bitset.cardinal s);
  check "mem beyond capacity" false (Bitset.mem s 10_000)

let test_bitset_growth () =
  let s = Bitset.create () in
  List.iter (fun i -> ignore (Bitset.add s i)) [ 0; 63; 64; 65; 1000; 4096 ];
  check_int "cardinal" 6 (Bitset.cardinal s);
  Alcotest.(check (list int))
    "elements sorted" [ 0; 63; 64; 65; 1000; 4096 ] (Bitset.elements s)

let test_bitset_union () =
  let a = Bitset.create () and b = Bitset.create () in
  List.iter (fun i -> ignore (Bitset.add a i)) [ 1; 2; 3 ];
  List.iter (fun i -> ignore (Bitset.add b i)) [ 3; 4; 200 ];
  check "union changes" true (Bitset.union_into ~into:a b);
  check "union idempotent" false (Bitset.union_into ~into:a b);
  Alcotest.(check (list int)) "result" [ 1; 2; 3; 4; 200 ] (Bitset.elements a)

let test_bitset_diff_new () =
  let a = Bitset.create () and b = Bitset.create () in
  List.iter (fun i -> ignore (Bitset.add a i)) [ 1; 2; 3; 70 ];
  List.iter (fun i -> ignore (Bitset.add b i)) [ 2; 70 ];
  Alcotest.(check (list int)) "delta" [ 1; 3 ] (Bitset.diff_new ~from:a ~minus:b)

let test_bitset_inter () =
  let a = Bitset.singleton 100 and b = Bitset.singleton 100 in
  check "overlap" true (Bitset.inter_nonempty a b);
  let c = Bitset.singleton 101 in
  check "disjoint" false (Bitset.inter_nonempty a c);
  check "empty vs empty" false
    (Bitset.inter_nonempty (Bitset.create ()) (Bitset.create ()))

let test_bitset_subset_equal () =
  let a = Bitset.create () and b = Bitset.create () in
  List.iter (fun i -> ignore (Bitset.add a i)) [ 1; 2 ];
  List.iter (fun i -> ignore (Bitset.add b i)) [ 1; 2; 3 ];
  check "subset" true (Bitset.subset a b);
  check "not subset" false (Bitset.subset b a);
  check "not equal" false (Bitset.equal a b);
  ignore (Bitset.add a 3);
  check "equal" true (Bitset.equal a b);
  (* equality must ignore trailing capacity differences *)
  let big = Bitset.create () in
  ignore (Bitset.add big 5000);
  let small = Bitset.singleton 1 in
  check "different sizes" false (Bitset.equal big small)

let test_bitset_copy_independent () =
  let a = Bitset.singleton 7 in
  let b = Bitset.copy a in
  ignore (Bitset.add b 8);
  check "original untouched" false (Bitset.mem a 8);
  check "copy has both" true (Bitset.mem b 7 && Bitset.mem b 8)

let test_bitset_negative_add () =
  Alcotest.check_raises "negative add" (Invalid_argument "Bitset.add: negative")
    (fun () -> ignore (Bitset.add (Bitset.create ()) (-1)))

(* qcheck: bitset behaves like a set of ints *)
let prop_bitset_model =
  QCheck2.Test.make ~name:"bitset agrees with list-set model" ~count:200
    QCheck2.Gen.(list (int_bound 500))
    (fun xs ->
      let s = Bitset.create () in
      List.iter (fun i -> ignore (Bitset.add s i)) xs;
      let model = List.sort_uniq compare xs in
      Bitset.elements s = model
      && Bitset.cardinal s = List.length model
      && List.for_all (Bitset.mem s) model)

let prop_bitset_union_commutes =
  QCheck2.Test.make ~name:"union_into = set union" ~count:200
    QCheck2.Gen.(pair (list (int_bound 300)) (list (int_bound 300)))
    (fun (xs, ys) ->
      let a = Bitset.create () and b = Bitset.create () in
      List.iter (fun i -> ignore (Bitset.add a i)) xs;
      List.iter (fun i -> ignore (Bitset.add b i)) ys;
      ignore (Bitset.union_into ~into:a b);
      Bitset.elements a = List.sort_uniq compare (xs @ ys))

let prop_bitset_diff =
  QCheck2.Test.make ~name:"diff_new = set difference" ~count:200
    QCheck2.Gen.(pair (list (int_bound 300)) (list (int_bound 300)))
    (fun (xs, ys) ->
      let a = Bitset.create () and b = Bitset.create () in
      List.iter (fun i -> ignore (Bitset.add a i)) xs;
      List.iter (fun i -> ignore (Bitset.add b i)) ys;
      Bitset.diff_new ~from:a ~minus:b
      = List.filter (fun x -> not (List.mem x ys)) (List.sort_uniq compare xs))

(* ---------------- Intern ---------------- *)

module SIntern = Intern.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

let test_intern_dense_ids () =
  let t = SIntern.create () in
  check_int "first" 0 (SIntern.intern t "a");
  check_int "second" 1 (SIntern.intern t "b");
  check_int "repeat" 0 (SIntern.intern t "a");
  check_int "count" 2 (SIntern.count t);
  Alcotest.(check string) "value" "b" (SIntern.value t 1);
  Alcotest.(check (option int)) "find" (Some 0) (SIntern.find_opt t "a");
  Alcotest.(check (option int)) "find missing" None (SIntern.find_opt t "z")

let test_intern_value_bad_id () =
  let t = SIntern.create () in
  ignore (SIntern.intern t "a");
  Alcotest.check_raises "bad id"
    (Invalid_argument "Intern.value: unknown id") (fun () ->
      ignore (SIntern.value t 7))

let test_intern_many () =
  let t = SIntern.create () in
  for i = 0 to 999 do
    check_int "id" i (SIntern.intern t (string_of_int i))
  done;
  check_int "count" 1000 (SIntern.count t);
  let seen = ref 0 in
  SIntern.iter (fun id v -> if string_of_int id = v then incr seen) t;
  check_int "iter consistent" 1000 !seen

(* ---------------- Stats / Idgen ---------------- *)

let test_stats () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 5;
  Stats.set s "c" 7;
  check_int "a" 2 (Stats.get s "a");
  check_int "b" 5 (Stats.get s "b");
  check_int "c" 7 (Stats.get s "c");
  check_int "missing" 0 (Stats.get s "zzz");
  let x = Stats.time s "t" (fun () -> 41 + 1) in
  check_int "time result" 42 x;
  check "timer recorded" true (Stats.get_time s "t" >= 0.0);
  Alcotest.(check (list string))
    "counters sorted" [ "a"; "b"; "c" ]
    (List.map fst (Stats.counters s))

let test_idgen () =
  let g = Idgen.create () in
  check_int "0" 0 (Idgen.next g);
  check_int "1" 1 (Idgen.next g);
  check_int "current" 2 (Idgen.current g);
  let g2 = Idgen.create () in
  check_int "independent" 0 (Idgen.next g2)

let () =
  Alcotest.run "util"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "growth" `Quick test_bitset_growth;
          Alcotest.test_case "union" `Quick test_bitset_union;
          Alcotest.test_case "diff_new" `Quick test_bitset_diff_new;
          Alcotest.test_case "intersection" `Quick test_bitset_inter;
          Alcotest.test_case "subset/equal" `Quick test_bitset_subset_equal;
          Alcotest.test_case "copy" `Quick test_bitset_copy_independent;
          Alcotest.test_case "negative" `Quick test_bitset_negative_add;
          QCheck_alcotest.to_alcotest prop_bitset_model;
          QCheck_alcotest.to_alcotest prop_bitset_union_commutes;
          QCheck_alcotest.to_alcotest prop_bitset_diff;
        ] );
      ( "intern",
        [
          Alcotest.test_case "dense ids" `Quick test_intern_dense_ids;
          Alcotest.test_case "bad id" `Quick test_intern_value_bad_id;
          Alcotest.test_case "many" `Quick test_intern_many;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters/timers" `Quick test_stats;
          Alcotest.test_case "idgen" `Quick test_idgen;
        ] );
    ]
