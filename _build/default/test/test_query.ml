open O2_ir.Builder
open O2_pta

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample () =
  prog ~main:"M"
    [
      cls "Data" ~fields:[ "v" ] [];
      cls "Mk"
        [ meth "fresh" [] [ new_ "n" "Data" []; ret (Some "n") ] ];
      cls "W" ~super:"Thread" ~fields:[ "s" ]
        [
          meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
          meth "run" []
            [
              fread "d" "this" "s";
              new_ "mk" "Mk" [];
              call ~ret:"own" "mk" "fresh" [];
              ret None;
            ];
        ];
      cls "M"
        [
          meth ~static:true "main" []
            [
              new_ "shared" "Data" [];
              new_ "w1" "W" [ "shared" ];
              new_ "w2" "W" [ "shared" ];
              start "w1";
              start "w2";
            ];
        ];
    ]

let analyze ?(policy = Context.Korigin 1) () = Solver.analyze ~policy (sample ())

(* ---------------- Query ---------------- *)

let test_points_to () =
  let a = analyze () in
  let objs = Query.points_to a ~cls:"W" ~meth:"run" ~var:"d" in
  check_int "d points to one Data" 1 (List.length objs);
  let oi = List.hd objs in
  Alcotest.(check string) "class" "Data" oi.Query.oi_class;
  check_bool "has a real site" true (oi.Query.oi_site >= 0);
  check_int "unknown var empty" 0
    (List.length (Query.points_to a ~cls:"W" ~meth:"run" ~var:"ghost"))

let test_points_to_origin_split () =
  let a = analyze () in
  (* `own` is the per-origin Data from Mk.fresh: two objects under OPA *)
  check_int "own split by origin" 2
    (List.length (Query.points_to a ~cls:"W" ~meth:"run" ~var:"own"));
  let a0 = analyze ~policy:Context.Insensitive () in
  check_int "own merged under 0-ctx" 1
    (List.length (Query.points_to a0 ~cls:"W" ~meth:"run" ~var:"own"))

let test_may_alias () =
  let a = analyze () in
  check_bool "d aliases shared" true
    (Query.may_alias a ("W", "run", "d") ("M", "main", "shared"));
  check_bool "own does not alias shared" false
    (Query.may_alias a ("W", "run", "own") ("M", "main", "shared"))

let test_objects_of_class () =
  let a = analyze () in
  (* shared + 2×fresh (per-origin) = 3 Data objects *)
  check_int "Data objects" 3 (List.length (Query.objects_of_class a "Data"));
  check_int "W objects" 2 (List.length (Query.objects_of_class a "W"));
  check_int "none of unknown class" 0
    (List.length (Query.objects_of_class a "Ghost"))

let test_call_graph () =
  let a = analyze () in
  let edges = Query.call_graph_edges a in
  check_bool "run -> fresh edge" true
    (List.exists (fun (c, e, _) -> c = "W.run" && e = "Mk.fresh") edges);
  check_bool "main -> init edge" true
    (List.exists (fun (c, e, _) -> c = "M.main" && e = "W.init") edges);
  let ms = Query.reachable_methods a in
  check_bool "reaches run" true (List.mem "W.run" ms);
  check_bool "reaches fresh" true (List.mem "Mk.fresh" ms)

(* figure 2's origin-sensitive call graph: both Op1.util and Op2.util are
   reachable, but each only from its own origin's subN *)
let test_figure2_callgraph () =
  let a = Solver.analyze ~policy:(Context.Korigin 1) (O2_workloads.Figures.figure2 ()) in
  let edges = Query.call_graph_edges a in
  check_bool "subN -> Op1.util" true
    (List.exists (fun (c, e, _) -> c = "T.subN" && e = "Op1.util") edges);
  check_bool "subN -> Op2.util" true
    (List.exists (fun (c, e, _) -> c = "T.subN" && e = "Op2.util") edges)

(* ---------------- Dot exporters ---------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_dot_shb () =
  let a = analyze () in
  let g = O2_shb.Graph.build a in
  let s = Format.asprintf "%a" O2_shb.Dot.shb g in
  check_bool "digraph header" true (contains s "digraph shb");
  check_bool "has clusters" true (contains s "subgraph cluster_");
  check_bool "has spawn edges" true (contains s "color=blue")

let test_dot_origins () =
  let a = analyze () in
  let g = O2_shb.Graph.build a in
  let s = Format.asprintf "%a" O2_shb.Dot.origins g in
  check_bool "three origins" true
    (contains s "o0" && contains s "o1" && contains s "o2");
  check_bool "spawn labels" true (contains s "label=spawn")

let test_dot_callgraph () =
  let a = analyze () in
  let s = Format.asprintf "%a" O2_shb.Dot.callgraph a in
  check_bool "edge rendered" true (contains s "\"W.run\" -> \"Mk.fresh\"")

let () =
  Alcotest.run "query"
    [
      ( "query",
        [
          Alcotest.test_case "points_to" `Quick test_points_to;
          Alcotest.test_case "origin split" `Quick test_points_to_origin_split;
          Alcotest.test_case "may_alias" `Quick test_may_alias;
          Alcotest.test_case "objects_of_class" `Quick test_objects_of_class;
          Alcotest.test_case "call graph" `Quick test_call_graph;
          Alcotest.test_case "figure2 call graph" `Quick
            test_figure2_callgraph;
        ] );
      ( "dot",
        [
          Alcotest.test_case "shb" `Quick test_dot_shb;
          Alcotest.test_case "origins" `Quick test_dot_origins;
          Alcotest.test_case "callgraph" `Quick test_dot_callgraph;
        ] );
    ]
