open O2_ir.Builder
open O2_racerd

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let warnings p = Racerd.n_warnings (Racerd.analyze p)

(* two thread classes, same field name, one unlocked write: flagged *)
let test_basic_warning () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "A" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "B" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fread "x" "d" "v"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "a" "A" [ "d" ];
                new_ "b" "B" [ "d" ];
                start "a";
                start "b";
              ];
          ];
      ]
  in
  check_bool "warned" true (warnings p > 0)

(* ownership: a freshly allocated object's accesses are never reported *)
let test_ownership_suppresses () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "A" ~super:"Thread"
          [
            meth "run" []
              [ new_ "d" "Data" []; fwrite "d" "v" "d"; ret None ];
          ];
        cls "B" ~super:"Thread"
          [
            meth "run" []
              [ new_ "d" "Data" []; fread "x" "d" "v"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "a" "A" [];
                new_ "b" "B" [];
                start "a";
                start "b";
              ];
          ];
      ]
  in
  check_int "owned: silent" 0 (warnings p)

(* reassignment from a field kills ownership *)
let test_ownership_lost_on_reassign () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "A" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" []
              [
                new_ "d" "Data" [];
                fread "d" "this" "s";  (* d no longer owned *)
                fwrite "d" "v" "d";
                ret None;
              ];
          ];
        cls "B" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fread "x" "d" "v"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "a" "A" [ "d" ];
                new_ "b" "B" [ "d" ];
                start "a";
                start "b";
              ];
          ];
      ]
  in
  check_bool "reported after ownership lost" true (warnings p > 0)

(* both sides locked: quiet; one side unlocked: unprotected-write warning *)
let test_lock_consistency () =
  let mk_b locked =
    let acc = fwrite "d" "v" "d" in
    let body =
      [ fread "d" "this" "s"; fread "l" "this" "l" ]
      @ (if locked then [ sync "l" [ acc ] ] else [ acc ])
      @ [ ret None ]
    in
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "A" ~super:"Thread" ~fields:[ "s"; "l" ]
          [
            meth "init" [ "s"; "l" ]
              [ fwrite "this" "s" "s"; fwrite "this" "l" "l" ];
            meth "run" []
              [
                fread "d" "this" "s";
                fread "l" "this" "l";
                sync "l" [ fwrite "d" "v" "d" ];
                ret None;
              ];
          ];
        cls "B" ~super:"Thread" ~fields:[ "s"; "l" ]
          [
            meth "init" [ "s"; "l" ]
              [ fwrite "this" "s" "s"; fwrite "this" "l" "l" ];
            meth "run" [] body;
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d" "Data" [];
                new_ "l" "Data" [];
                new_ "a" "A" [ "d"; "l" ];
                new_ "b" "B" [ "d"; "l" ];
                start "a";
                start "b";
              ];
          ];
      ]
  in
  check_int "both locked: quiet" 0 (warnings (mk_b true));
  check_bool "unlocked write flagged" true (warnings (mk_b false) > 0)

(* no pointer reasoning: two DISTINCT objects with the same field name are
   conflated — a false positive O2 does not make *)
let test_false_positive_from_no_aliasing () =
  let p =
    prog ~main:"M"
      [
        cls "Data" ~fields:[ "v" ] [];
        cls "A" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "B" ~super:"Thread" ~fields:[ "s" ]
          [
            meth "init" [ "s" ] [ fwrite "this" "s" "s" ];
            meth "run" [] [ fread "d" "this" "s"; fwrite "d" "v" "d"; ret None ];
          ];
        cls "M"
          [
            meth ~static:true "main" []
              [
                new_ "d1" "Data" [];
                new_ "d2" "Data" [];  (* disjoint objects! *)
                new_ "a" "A" [ "d1" ];
                new_ "b" "B" [ "d2" ];
                start "a";
                start "b";
              ];
          ];
      ]
  in
  check_bool "RacerD flags the non-race" true (warnings p > 0);
  let _, _, r = O2_race.Detect.analyze p in
  check_int "O2 does not" 0 (O2_race.Detect.n_races r)

(* Table 10 models: "RacerD either fails to find the races or cannot run" —
   with no pointer or thread-instance reasoning it misses races O2 finds
   (e.g. all of cpqueue's same-class pair races), and on the synthetic
   Dacapo workloads its field-name conflation makes it far noisier. *)
let test_models_racerd_vs_o2 () =
  let misses_somewhere =
    List.exists
      (fun (m : O2_workloads.Models.model) ->
        let p = m.program () in
        let rd = Racerd.n_warnings (Racerd.analyze p) in
        let _, _, r = O2_race.Detect.analyze p in
        rd < O2_race.Detect.n_races r)
      O2_workloads.Models.all
  in
  check_bool "RacerD misses races on at least one model" true misses_somewhere;
  let p = O2_workloads.Synth.program (O2_workloads.Synth.find "avrora") in
  let rd = Racerd.n_warnings (Racerd.analyze p) in
  let _, _, r = O2_race.Detect.analyze p in
  check_bool "RacerD noisier than O2 on the Dacapo-shaped workload" true
    (rd > O2_race.Detect.n_races r)

let test_fixed_models_quiet_enough () =
  (* on the repaired code, consistent locking keeps RacerD mostly quiet *)
  let m = O2_workloads.Models.find "zookeeper" in
  check_int "fixed zookeeper quiet" 0 (warnings (m.fixed ()))

let () =
  Alcotest.run "racerd"
    [
      ( "racerd",
        [
          Alcotest.test_case "basic warning" `Quick test_basic_warning;
          Alcotest.test_case "ownership" `Quick test_ownership_suppresses;
          Alcotest.test_case "ownership lost" `Quick
            test_ownership_lost_on_reassign;
          Alcotest.test_case "lock consistency" `Quick test_lock_consistency;
          Alcotest.test_case "no-alias false positive" `Quick
            test_false_positive_from_no_aliasing;
          Alcotest.test_case "models vs O2" `Quick test_models_racerd_vs_o2;
          Alcotest.test_case "fixed model quiet" `Quick
            test_fixed_models_quiet_enough;
        ] );
    ]
