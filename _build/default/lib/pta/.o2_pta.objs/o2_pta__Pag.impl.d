lib/pta/pag.ml: Array Bitset Context Hashtbl Intern List O2_ir O2_util Types
