lib/pta/access.mli: Ast Context Format O2_ir Program Solver Types
