lib/pta/context.ml: Fmt Format Hashtbl Printf
