lib/pta/query.ml: Ast Context Format List O2_ir O2_util Pag Program Solver Types
