lib/pta/pag.mli: Context O2_ir O2_util Types
