lib/pta/access.ml: Ast Format O2_ir O2_util Pag Solver Types
