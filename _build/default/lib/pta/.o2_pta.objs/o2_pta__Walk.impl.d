lib/pta/walk.ml: Ast Hashtbl List O2_ir Program Solver
