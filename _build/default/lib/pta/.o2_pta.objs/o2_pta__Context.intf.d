lib/pta/context.mli: Format
