lib/pta/walk.mli: Ast Context O2_ir Program Solver
