lib/pta/solver.mli: Context O2_ir O2_util Pag Program Types
