lib/pta/solver.ml: Array Ast Bitset Context Hashtbl Intern List O2_ir O2_util Option Pag Program Stats Types
