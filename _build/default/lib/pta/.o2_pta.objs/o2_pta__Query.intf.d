lib/pta/query.mli: Format O2_ir Solver Types
