open O2_ir

let iter_origin a (sp : Solver.spawn) f =
  let visited = Hashtbl.create 64 in
  let rec visit (m : Program.meth) ctx =
    let key = (m.Program.m_class, m.Program.m_name, ctx) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      body m ctx m.Program.m_body
    end
  and body m ctx stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        f m ctx s;
        match s.Ast.sk with
        | Ast.Call _ | Ast.StaticCall _ | Ast.New _ ->
            List.iter
              (fun (callee, cctx) -> visit callee cctx)
              (Solver.callees a ~site:s.Ast.sid ~ctx)
        | Ast.Sync (_, b) | Ast.While b -> body m ctx b
        | Ast.If (b1, b2) ->
            body m ctx b1;
            body m ctx b2
        | _ -> ())
      stmts
  in
  visit sp.Solver.sp_entry sp.Solver.sp_ectx
