open O2_shb

type cycle = {
  dl_locks : int list;
  dl_origins : int list;
  dl_sites : int list;
}

type report = { cycles : cycle list }

let n_deadlocks r = List.length r.cycles

(* an edge l1 -> l2 with provenance *)
type edge = { e_from : int; e_to : int; e_origin : int; e_site : int }

let collect_edges g =
  (* replay each origin's trace; Acq/Rel nodes appear in id order *)
  let held : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let edges = ref [] in
  Array.iter
    (fun (n : Graph.node) ->
      let stack =
        match Hashtbl.find_opt held n.Graph.n_origin with
        | Some s -> s
        | None ->
            let s = ref [] in
            Hashtbl.add held n.Graph.n_origin s;
            s
      in
      match n.Graph.n_kind with
      | Graph.Acq l ->
          List.iter
            (fun h ->
              if h <> l then
                edges :=
                  {
                    e_from = h;
                    e_to = l;
                    e_origin = n.Graph.n_origin;
                    e_site = n.Graph.n_sid;
                  }
                  :: !edges)
            !stack;
          stack := l :: !stack
      | Graph.Rel l -> (
          match !stack with
          | h :: rest when h = l -> stack := rest
          | _ -> stack := List.filter (fun h -> h <> l) !stack)
      | _ -> ())
    (Graph.nodes g);
  List.rev !edges

(* find simple 2-cycles and longer cycles via DFS on the lock-order graph;
   a cycle counts only if its edges come from >= 2 distinct origins (one
   origin acquiring in both orders deadlocks only with a second instance,
   which self-parallelism also covers) *)
let run g =
  let edges = collect_edges g in
  (* dedup edges by (from, to, origin) keeping first site *)
  let seen = Hashtbl.create 32 in
  let edges =
    List.filter
      (fun e ->
        let k = (e.e_from, e.e_to, e.e_origin) in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      edges
  in
  let succs l = List.filter (fun e -> e.e_from = l) edges in
  let cycles = ref [] in
  let reported = Hashtbl.create 8 in
  (* bounded DFS from each lock looking for a path back to the start *)
  let rec dfs start path_edges visited l depth =
    if depth <= 4 then
      List.iter
        (fun e ->
          if e.e_to = start then begin
            let cyc = List.rev (e :: path_edges) in
            let origins =
              List.sort_uniq compare (List.map (fun e -> e.e_origin) cyc)
            in
            let self_par_ok =
              match origins with
              | [ o ] -> Graph.self_parallel g o
              | _ -> true
            in
            let locks = List.map (fun e -> e.e_from) cyc in
            let key = List.sort compare locks in
            if
              List.length origins >= 2 || self_par_ok && List.length origins = 1
            then
              if not (Hashtbl.mem reported key) then begin
                Hashtbl.add reported key ();
                cycles :=
                  {
                    dl_locks = locks;
                    dl_origins = origins;
                    dl_sites = List.map (fun e -> e.e_site) cyc;
                  }
                  :: !cycles
              end
          end
          else if not (List.mem e.e_to visited) then
            dfs start (e :: path_edges) (e.e_to :: visited) e.e_to (depth + 1))
        (succs l)
  in
  let locks =
    List.sort_uniq compare
      (List.concat_map (fun e -> [ e.e_from; e.e_to ]) edges)
  in
  List.iter (fun l -> dfs l [] [ l ] l 1) locks;
  { cycles = List.rev !cycles }

let analyze ?(policy = O2_pta.Context.Korigin 1) p =
  let a = O2_pta.Solver.analyze ~policy p in
  let g = Graph.build a in
  run g

let pp_cycle ppf c =
  Format.fprintf ppf "potential deadlock: locks [%s] acquired in a cycle by origins [%s] at stmts [%s]"
    (String.concat " -> " (List.map (fun l -> "o" ^ string_of_int l) c.dl_locks))
    (String.concat "," (List.map string_of_int c.dl_origins))
    (String.concat "," (List.map string_of_int c.dl_sites))
