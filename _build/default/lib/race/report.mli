(** Rendering of race reports for the CLI and examples. *)

open O2_pta
open O2_shb

(** [pp_race a g ppf r] prints one race with both access sites, their
    origins and locksets, in the style of the paper's §5.4 listings. *)
val pp_race : Solver.t -> Graph.t -> Format.formatter -> Detect.race -> unit

(** [pp a g ppf report] prints the full report with a summary line. *)
val pp : Solver.t -> Graph.t -> Format.formatter -> Detect.report -> unit

(** [summary a report] is a one-line summary: #races, #pairs, pruning. *)
val summary : Solver.t -> Detect.report -> string

(** [origin_name a id] renders an origin (spawn) for messages, e.g.
    ["Thread Worker.run() started at input.cir:12"]. *)
val origin_name : Solver.t -> int -> string

(** [to_json a g report] serializes the report as a stable JSON document
    (for CI integration); no external JSON dependency. *)
val to_json : Solver.t -> Graph.t -> Detect.report -> string
