lib/race/deadlock.mli: Format Graph O2_ir O2_pta O2_shb
