lib/race/diff.ml: Access Detect Format Graph List O2_ir O2_pta O2_shb Pag Solver
