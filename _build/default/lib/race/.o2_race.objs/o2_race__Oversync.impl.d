lib/race/oversync.ml: Access Array Ast Context Format Hashtbl List O2_ir O2_osa O2_pta Program Solver Types
