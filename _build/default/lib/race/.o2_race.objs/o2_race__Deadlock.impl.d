lib/race/deadlock.ml: Array Format Graph Hashtbl List O2_pta O2_shb String
