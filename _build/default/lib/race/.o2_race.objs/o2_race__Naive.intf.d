lib/race/naive.mli: Detect Graph O2_ir O2_pta O2_shb
