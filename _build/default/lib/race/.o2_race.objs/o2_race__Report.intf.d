lib/race/report.mli: Detect Format Graph O2_pta O2_shb Solver
