lib/race/detect.ml: Access Array Context Graph Hashtbl List Lockset O2_pta O2_shb Solver
