lib/race/report.ml: Access Array Ast Buffer Char Detect Format Graph List Lockset O2_ir O2_pta O2_shb Printf Program Solver String Types
