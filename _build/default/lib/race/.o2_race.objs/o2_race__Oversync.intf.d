lib/race/oversync.mli: Format O2_ir O2_osa O2_pta
