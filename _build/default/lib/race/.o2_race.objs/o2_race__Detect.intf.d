lib/race/detect.mli: Access Context Graph O2_ir O2_pta O2_shb Solver
