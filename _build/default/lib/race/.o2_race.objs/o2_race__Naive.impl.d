lib/race/naive.ml: Access Array Context Detect Graph Hashtbl List Lockset O2_pta O2_shb Solver
