lib/race/diff.mli: Detect Format O2_ir O2_pta
