(** Static deadlock detection over the SHB graph — one of the §3 analyses
    origins enable beyond race detection.

    Builds the lock-order graph: an edge [l₁ → l₂] whenever some origin
    acquires abstract lock [l₂] while holding [l₁]. A cycle among locks
    whose edges come from at least two different origins that may run in
    parallel (no happens-before between their acquisitions, no common
    guard) is a potential deadlock — the classic AB/BA pattern. The same
    OPA precision that drives race detection drives this analysis: a
    context-insensitive points-to merges per-instance locks and fabricates
    cycles that origins rule out. *)

open O2_shb

type cycle = {
  dl_locks : int list;  (** the abstract lock objects in acquisition order *)
  dl_origins : int list;  (** spawn ids contributing edges to the cycle *)
  dl_sites : int list;  (** acquisition statement ids, one per edge *)
}

type report = { cycles : cycle list }

val n_deadlocks : report -> int

(** [run g] analyzes a built SHB graph. *)
val run : Graph.t -> report

(** [analyze ?policy p] is the convenience pipeline. *)
val analyze : ?policy:O2_pta.Context.policy -> O2_ir.Program.t -> report

val pp_cycle : Format.formatter -> cycle -> unit
