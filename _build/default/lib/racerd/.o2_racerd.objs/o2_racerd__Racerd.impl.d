lib/racerd/racerd.ml: Array Ast Format Hashtbl List O2_ir Program Types
