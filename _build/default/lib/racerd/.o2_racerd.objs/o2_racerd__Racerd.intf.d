lib/racerd/racerd.mli: Format O2_ir Program Types
