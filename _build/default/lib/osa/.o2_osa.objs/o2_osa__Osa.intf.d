lib/osa/osa.mli: Access Format O2_pta Solver
