lib/osa/osa.ml: Access Array Format Hashtbl List O2_ir O2_pta Option Pag Printf Solver String Walk
