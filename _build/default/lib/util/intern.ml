module Make (H : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (H)

  type t = { ids : int Tbl.t; mutable values : H.t array; mutable next : int }

  let create () = { ids = Tbl.create 64; values = [||]; next = 0 }

  let intern t v =
    match Tbl.find_opt t.ids v with
    | Some id -> id
    | None ->
        let id = t.next in
        t.next <- id + 1;
        Tbl.add t.ids v id;
        let cap = Array.length t.values in
        if id >= cap then begin
          let a = Array.make (max 8 (cap * 2)) v in
          Array.blit t.values 0 a 0 cap;
          t.values <- a
        end;
        t.values.(id) <- v;
        id

  let find_opt t v = Tbl.find_opt t.ids v

  let value t id =
    if id < 0 || id >= t.next then invalid_arg "Intern.value: unknown id";
    t.values.(id)

  let count t = t.next

  let iter f t =
    for id = 0 to t.next - 1 do
      f id t.values.(id)
    done
end
