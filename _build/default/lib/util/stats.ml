type t = {
  counters : (string, int ref) Hashtbl.t;
  timers : (string, float ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; timers = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter t name)

let add t name n =
  let r = counter t name in
  r := !r + n

let set t name n = counter t name := n

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let timer t name =
  match Hashtbl.find_opt t.timers name with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.add t.timers name r;
      r

let time t name f =
  let r = timer t name in
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> r := !r +. (Unix.gettimeofday () -. t0)) f

let get_time t name =
  match Hashtbl.find_opt t.timers name with Some r -> !r | None -> 0.0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-24s %d@." k v) (counters t);
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.timers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (k, v) -> Format.fprintf ppf "%-24s %.6fs@." k v)
