(** Monotone integer id generators.

    The SHB graph assigns each node a monotonically increasing id during
    construction so that intra-origin happens-before reduces to an integer
    comparison (§4.1 of the paper); this module supplies those streams. *)

type t

(** [create ()] starts a fresh stream at 0. *)
val create : unit -> t

(** [next t] returns the next id, starting at 0 and increasing by 1. *)
val next : t -> int

(** [current t] is the number of ids handed out so far. *)
val current : t -> int
