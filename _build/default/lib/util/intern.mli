(** Generic interning (hash-consing) tables.

    Contexts, abstract heap objects and locksets are interned to dense
    integer identifiers so that equality is [(==)]-cheap and the analyses can
    use them as bitset indices and array offsets. *)

module Make (H : Hashtbl.HashedType) : sig
  type t

  (** [create ()] is a fresh table with no interned values. *)
  val create : unit -> t

  (** [intern t v] returns the unique dense id of [v], assigning the next
      fresh id on first sight. Ids start at 0. *)
  val intern : t -> H.t -> int

  (** [find_opt t v] is the id of [v] if already interned. *)
  val find_opt : t -> H.t -> int option

  (** [value t id] recovers the interned value. @raise Invalid_argument on an
      id never returned by [intern]. *)
  val value : t -> int -> H.t

  (** [count t] is the number of interned values, i.e. the next fresh id. *)
  val count : t -> int

  (** [iter f t] applies [f id value] for every interned value. *)
  val iter : (int -> H.t -> unit) -> t -> unit
end
