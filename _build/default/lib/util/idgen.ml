type t = int ref

let create () = ref 0

let next t =
  let v = !t in
  incr t;
  v

let current t = !t
