lib/util/intern.mli: Hashtbl
