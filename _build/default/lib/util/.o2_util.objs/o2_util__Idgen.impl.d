lib/util/idgen.ml:
