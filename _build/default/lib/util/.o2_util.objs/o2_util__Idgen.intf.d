lib/util/idgen.mli:
