type t = { mutable words : int array }

let word_bits = Sys.int_size

let create () = { words = Array.make 4 0 }

let ensure s i =
  let w = i / word_bits in
  let n = Array.length s.words in
  if w >= n then begin
    let n' = ref (max 4 n) in
    while w >= !n' do
      n' := !n' * 2
    done;
    let a = Array.make !n' 0 in
    Array.blit s.words 0 a 0 n;
    s.words <- a
  end

let add s i =
  if i < 0 then invalid_arg "Bitset.add: negative";
  ensure s i;
  let w = i / word_bits and b = i mod word_bits in
  let old = s.words.(w) in
  let nw = old lor (1 lsl b) in
  if nw = old then false
  else begin
    s.words.(w) <- nw;
    true
  end

let singleton i =
  let s = create () in
  ignore (add s i);
  s

let copy s = { words = Array.copy s.words }

let mem s i =
  if i < 0 then false
  else
    let w = i / word_bits in
    w < Array.length s.words && s.words.(w) land (1 lsl (i mod word_bits)) <> 0

let union_into ~into src =
  ensure into ((Array.length src.words * word_bits) - 1 |> max 0);
  let changed = ref false in
  Array.iteri
    (fun w sw ->
      if sw <> 0 then begin
        let old = into.words.(w) in
        let nw = old lor sw in
        if nw <> old then begin
          into.words.(w) <- nw;
          changed := true
        end
      end)
    src.words;
  !changed

let iter_word f w base =
  if w <> 0 then
    for b = 0 to word_bits - 1 do
      if w land (1 lsl b) <> 0 then f (base + b)
    done

let iter f s = Array.iteri (fun wi w -> iter_word f w (wi * word_bits)) s.words

let fold f s acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i l -> i :: l) s [])

let diff_new ~from ~minus =
  let out = ref [] in
  Array.iteri
    (fun wi w ->
      let mw = if wi < Array.length minus.words then minus.words.(wi) else 0 in
      let d = w land lnot mw in
      iter_word (fun i -> out := i :: !out) d (wi * word_bits))
    from.words;
  List.rev !out

let popcount w =
  let c = ref 0 and w = ref w in
  while !w <> 0 do
    incr c;
    w := !w land (!w - 1)
  done;
  !c

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words
let is_empty s = Array.for_all (fun w -> w = 0) s.words

let exists p s =
  try
    iter (fun i -> if p i then raise Exit) s;
    false
  with Exit -> true

let inter_nonempty a b =
  let n = min (Array.length a.words) (Array.length b.words) in
  let rec go i = i < n && (a.words.(i) land b.words.(i) <> 0 || go (i + 1)) in
  go 0

let subset a b =
  let nb = Array.length b.words in
  let ok = ref true in
  Array.iteri
    (fun wi w ->
      let bw = if wi < nb then b.words.(wi) else 0 in
      if w land lnot bw <> 0 then ok := false)
    a.words;
  !ok

let equal a b = subset a b && subset b a

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements s)
