lib/shb/dot.mli: Format Graph O2_pta
