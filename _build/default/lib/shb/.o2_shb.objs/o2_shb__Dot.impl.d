lib/shb/dot.ml: Access Array Format Graph List O2_ir O2_pta Printf Query Solver String
