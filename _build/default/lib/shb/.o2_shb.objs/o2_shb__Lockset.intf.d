lib/shb/lockset.mli:
