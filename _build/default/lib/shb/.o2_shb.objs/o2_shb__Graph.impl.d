lib/shb/graph.ml: Access Array Ast Context Format Hashtbl List Lockset O2_ir O2_pta O2_util Pag Program Queue Solver Types
