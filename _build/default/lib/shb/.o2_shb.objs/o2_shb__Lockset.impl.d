lib/shb/lockset.ml: Hashtbl List O2_util
