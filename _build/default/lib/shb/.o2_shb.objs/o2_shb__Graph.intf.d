lib/shb/graph.mli: Access Format Lockset O2_ir O2_pta Solver Types
