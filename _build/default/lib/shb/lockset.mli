(** Canonical lockset identifiers (§4.1, "Check Lockset").

    Each distinct combination of mutexes (a set of abstract lock objects,
    possibly empty) is assigned a canonical integer id; access nodes carry
    the id, so the disjointness check between two accesses is a cached
    lookup keyed by the id pair instead of a set intersection.

    Lock elements are interned abstract-object ids; the reserved element
    {!dispatcher_lock} models the single-threaded event dispatcher of §4.2
    (all event handlers of one dispatcher implicitly hold it, so
    handler–handler pairs never race while handler–thread pairs can). *)

type t

val create : unit -> t

(** The implicit global lock held by all serialized event handlers. *)
val dispatcher_lock : int

(** [empty env] is the canonical id of the empty lockset (always 0). *)
val empty : t -> int

(** [id env locks] interns the lockset holding exactly [locks]
    (duplicates ignored). *)
val id : t -> int list -> int

(** [acquire env ls l] is the canonical id of [ls ∪ {l}]. *)
val acquire : t -> int -> int -> int

(** [elements env ls] lists the locks of canonical set [ls], sorted. *)
val elements : t -> int -> int list

(** [disjoint env a b] is true iff the two canonical locksets share no
    lock — i.e. the accesses they guard are {e not} mutually excluded.
    Results are cached per id pair. *)
val disjoint : t -> int -> int -> bool

(** [n_distinct env] is the number of canonical locksets interned. *)
val n_distinct : t -> int

(** [cache_hits env] / [cache_misses env] expose the intersection cache
    behaviour for the ablation benchmark. *)
val cache_hits : t -> int

val cache_misses : t -> int
