module LsIntern = O2_util.Intern.Make (struct
  type t = int list  (* sorted, deduped *)

  let equal = ( = )
  let hash = Hashtbl.hash
end)

type t = {
  intern : LsIntern.t;
  disjoint_cache : (int * int, bool) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let dispatcher_lock = -1

let create () =
  let t =
    {
      intern = LsIntern.create ();
      disjoint_cache = Hashtbl.create 64;
      hits = 0;
      misses = 0;
    }
  in
  ignore (LsIntern.intern t.intern []);
  t

let empty _t = 0
let id t locks = LsIntern.intern t.intern (List.sort_uniq compare locks)
let elements t ls = LsIntern.value t.intern ls

let acquire t ls l =
  let cur = elements t ls in
  if List.mem l cur then ls else id t (l :: cur)

let disjoint t a b =
  if a = 0 || b = 0 then true
  else
    let key = if a <= b then (a, b) else (b, a) in
    match Hashtbl.find_opt t.disjoint_cache key with
    | Some v ->
        t.hits <- t.hits + 1;
        v
    | None ->
        t.misses <- t.misses + 1;
        let la = elements t a and lb = elements t b in
        let v = not (List.exists (fun l -> List.mem l lb) la) in
        Hashtbl.add t.disjoint_cache key v;
        v

let n_distinct t = LsIntern.count t.intern
let cache_hits t = t.hits
let cache_misses t = t.misses
