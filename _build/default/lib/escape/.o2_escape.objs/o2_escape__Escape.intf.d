lib/escape/escape.mli: O2_pta Solver
