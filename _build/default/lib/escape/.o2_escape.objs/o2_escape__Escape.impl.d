lib/escape/escape.ml: Access Array Ast Hashtbl List O2_ir O2_pta O2_util Pag Program Solver Walk
