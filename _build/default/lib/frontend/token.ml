(** Tokens shared between the ocamllex lexer and the parser. *)

type t =
  | IDENT of string
  | KW_MAIN
  | KW_CLASS
  | KW_EXTENDS
  | KW_FIELD
  | KW_STATIC
  | KW_METHOD
  | KW_LOCAL
  | KW_NEW
  | KW_NULL
  | KW_START
  | KW_JOIN
  | KW_SIGNAL
  | KW_WAIT
  | KW_THREAD
  | KW_HANDLER
  | KW_POST
  | KW_SYNC
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | DOT
  | EQ
  | COLONCOLON
  | STAR_BRACKETS  (** the array-access marker "[*]" *)
  | EOF

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_MAIN -> "'main'"
  | KW_CLASS -> "'class'"
  | KW_EXTENDS -> "'extends'"
  | KW_FIELD -> "'field'"
  | KW_STATIC -> "'static'"
  | KW_METHOD -> "'method'"
  | KW_LOCAL -> "'local'"
  | KW_NEW -> "'new'"
  | KW_NULL -> "'null'"
  | KW_START -> "'start'"
  | KW_JOIN -> "'join'"
  | KW_SIGNAL -> "'signal'"
  | KW_WAIT -> "'wait'"
  | KW_THREAD -> "'thread'"
  | KW_HANDLER -> "'handler'"
  | KW_POST -> "'post'"
  | KW_SYNC -> "'sync'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_RETURN -> "'return'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | EQ -> "'='"
  | COLONCOLON -> "'::'"
  | STAR_BRACKETS -> "'[*]'"
  | EOF -> "end of input"
