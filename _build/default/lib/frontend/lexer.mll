{
(* Lexer for CIR concrete syntax. Line comments start with "//"; block
   comments are C-style and may not nest. *)
open Token

exception Lex_error of string * int  (* message, line *)

let keywords = [
  "main", KW_MAIN; "class", KW_CLASS; "extends", KW_EXTENDS;
  "field", KW_FIELD; "static", KW_STATIC; "method", KW_METHOD;
  "local", KW_LOCAL; "new", KW_NEW; "null", KW_NULL;
  "start", KW_START; "join", KW_JOIN; "post", KW_POST;
  "signal", KW_SIGNAL; "wait", KW_WAIT;
  "thread", KW_THREAD; "handler", KW_HANDLER;
  "sync", KW_SYNC; "if", KW_IF; "else", KW_ELSE;
  "while", KW_WHILE; "return", KW_RETURN;
]
}

let ident = ['a'-'z' 'A'-'Z' '_'] ['a'-'z' 'A'-'Z' '0'-'9' '_']*
let ws = [' ' '\t' '\r']

rule token = parse
  | ws+            { token lexbuf }
  | '\n'           { Lexing.new_line lexbuf; token lexbuf }
  | "//" [^ '\n']* { token lexbuf }
  | "/*"           { comment lexbuf; token lexbuf }
  | "[*]"          { STAR_BRACKETS }
  | "[" ws* "*" ws* "]" { STAR_BRACKETS }
  | "::"           { COLONCOLON }
  | "("            { LPAREN }
  | ")"            { RPAREN }
  | "{"            { LBRACE }
  | "}"            { RBRACE }
  | ";"            { SEMI }
  | ","            { COMMA }
  | "."            { DOT }
  | "="            { EQ }
  | ident as s     { match List.assoc_opt s keywords with
                     | Some kw -> kw
                     | None -> IDENT s }
  | eof            { EOF }
  | _ as c         { raise (Lex_error (Printf.sprintf "unexpected character %C" c,
                                       lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum)) }

and comment = parse
  | "*/"           { () }
  | '\n'           { Lexing.new_line lexbuf; comment lexbuf }
  | eof            { raise (Lex_error ("unterminated comment",
                                       lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum)) }
  | _              { comment lexbuf }
