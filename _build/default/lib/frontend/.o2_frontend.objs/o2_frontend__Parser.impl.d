lib/frontend/parser.ml: Ast Format Fun Lexer Lexing List O2_ir Program Token Types
