lib/frontend/lexer.ml: Lexing List Printf Token
