lib/frontend/parser.mli: O2_ir
