(** Recursive-descent parser for CIR concrete syntax.

    The grammar (see README §"The CIR language") is LL(2); the parser works
    on the ocamllex token stream with one token of buffered lookahead.
    Parsed declarations still carry [sid = -1]; resolution happens in
    {!O2_ir.Program.of_decls} via {!parse_string} / {!parse_file}. *)

exception Parse_error of string * int  (** message, line *)

(** [parse_decls ~file src] parses a whole program declaration.
    @raise Parse_error on syntax errors
    @raise Lexer.Lex_error on lexical errors *)
val parse_decls : file:string -> string -> O2_ir.Ast.program_decl

(** [parse_string ?file src] parses and resolves.
    @raise O2_ir.Program.Ill_formed on resolution errors. *)
val parse_string : ?file:string -> string -> O2_ir.Program.t

(** [parse_file path] reads and parses [path]. *)
val parse_file : string -> O2_ir.Program.t

(** [parse_classes ~file src] parses a bare list of class declarations (no
    [main C;] header) — the Android-app form, to be wrapped by
    {!O2_ir.Harness.android}. *)
val parse_classes : file:string -> string -> O2_ir.Ast.class_decl list
