type result = {
  solver : O2_pta.Solver.t;
  graph : O2_shb.Graph.t;
  report : O2_race.Detect.report;
  osa : O2_osa.Osa.t;
  elapsed : float;
}

let analyze ?(policy = O2_pta.Context.Korigin 1) ?(serial_events = true)
    ?(lock_region = true) p =
  let t0 = Unix.gettimeofday () in
  let solver = O2_pta.Solver.analyze ~policy p in
  let graph = O2_shb.Graph.build ~serial_events ~lock_region solver in
  let report = O2_race.Detect.run graph in
  let osa = O2_osa.Osa.run solver in
  { solver; graph; report; osa; elapsed = Unix.gettimeofday () -. t0 }

let races r = r.report.O2_race.Detect.races
let n_races r = O2_race.Detect.n_races r.report
let n_origins r = O2_pta.Solver.n_origins r.solver
let shared_locations r = O2_osa.Osa.shared_locations r.osa
let pp_race r ppf race = O2_race.Report.pp_race r.solver r.graph ppf race
let pp_report r ppf () = O2_race.Report.pp r.solver r.graph ppf r.report
let pp_sharing r ppf () = O2_osa.Osa.pp r.solver ppf r.osa
