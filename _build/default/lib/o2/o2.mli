(** O2 — static race detection with origins (top-level pipeline).

    The one-call API tying the reproduction together: origin-sensitive
    pointer analysis (OPA), origin-sharing analysis (OSA), SHB-graph
    construction and hybrid lockset/happens-before race detection, as
    described in "When Threads Meet Events: Efficient and Precise Static
    Race Detection with Origins" (PLDI 2021).

    {[
      let program = O2_frontend.Parser.parse_file "app.cir" in
      let r = O2.analyze program in
      List.iter (fun race -> Format.printf "%a@." (O2.pp_race r) race)
        (O2.races r)
    ]} *)

open O2_ir

type result = {
  solver : O2_pta.Solver.t;  (** points-to facts, call graph, origins *)
  graph : O2_shb.Graph.t;  (** the static happens-before graph *)
  report : O2_race.Detect.report;  (** detected races *)
  osa : O2_osa.Osa.t;  (** origin-sharing classification *)
  elapsed : float;  (** total wall-clock seconds *)
}

(** [analyze p] runs the full O2 pipeline with the paper's defaults:
    1-origin-sensitive pointer analysis, serialized event dispatcher,
    lock-region merging.

    @param policy pointer-analysis context policy (default [Korigin 1])
    @param serial_events Android-style single event dispatcher (§4.2)
    @param lock_region lock-region access merging (§4.1) *)
val analyze :
  ?policy:O2_pta.Context.policy ->
  ?serial_events:bool ->
  ?lock_region:bool ->
  Program.t ->
  result

(** [races r] is the deduplicated race list. *)
val races : result -> O2_race.Detect.race list

(** [n_races r] is the race count the paper's tables report. *)
val n_races : result -> int

(** [n_origins r] is the paper's #O. *)
val n_origins : result -> int

(** [shared_locations r] lists the origin-shared abstract locations. *)
val shared_locations : result -> O2_osa.Osa.sharing list

val pp_race : result -> Format.formatter -> O2_race.Detect.race -> unit

(** [pp_report r ppf ()] prints the full race report. *)
val pp_report : result -> Format.formatter -> unit -> unit

(** [pp_sharing r ppf ()] prints the OSA report (Figure 2(d) style). *)
val pp_sharing : result -> Format.formatter -> unit -> unit
