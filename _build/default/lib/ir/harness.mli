(** Android-style analysis-harness generation (§4.2).

    Android apps have no [main]; O2 "automatically generate[s] an analysis
    harness from the main Activity" (identified in the manifest — here,
    chosen explicitly or heuristically). The harness drives the activity's
    lifecycle handlers ([onCreate] → [onStart] → [onResume] → [onPause] →
    [onStop] → [onDestroy]) {e as ordinary method calls}, while the normal
    event handlers the app [post]s remain origin entries — exactly the
    paper's treatment. For [startActivity], a generated [AndroidRt] class
    exposes one static starter per activity class that runs the callee
    activity's lifecycle, modelling "once we hit a startActivity(), we
    create a harness for the activity being started". *)

exception No_activity of string

(** The lifecycle methods, in the order the harness calls them. *)
val lifecycle : Types.mname list

(** [android ?main_activity classes] wraps activity classes (those
    extending the builtin root [Activity]) with a generated harness main
    and the [AndroidRt] starters, and resolves the result.

    @param main_activity the activity to drive (default: the unique class
    named ["MainActivity"], else the first Activity subclass declared)
    @raise No_activity if no class extends [Activity]
    @raise Program.Ill_formed on resolution errors *)
val android : ?main_activity:Types.cname -> Ast.class_decl list -> Program.t

(** [activity_classes classes] lists the declared activity subclasses. *)
val activity_classes : Ast.class_decl list -> Types.cname list
