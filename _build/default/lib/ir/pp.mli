(** Concrete-syntax printer for CIR.

    Output parses back with {!O2_frontend.Parser}; used by the CLI's
    [dump] command and by the parser round-trip tests. *)

val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_meth_decl : Format.formatter -> Ast.meth_decl -> unit
val pp_class_decl : Format.formatter -> Ast.class_decl -> unit
val pp_program_decl : Format.formatter -> Ast.program_decl -> unit

(** [pp_program] prints a resolved program back as concrete syntax. *)
val pp_program : Format.formatter -> Program.t -> unit

val program_to_string : Program.t -> string
