lib/ir/builder.ml: Ast List Program Types
