lib/ir/wellformed.ml: Ast Format Hashtbl List Option Program Types
