lib/ir/harness.ml: Ast Hashtbl List Program
