lib/ir/program.ml: Array Ast Format Hashtbl List O2_util Types
