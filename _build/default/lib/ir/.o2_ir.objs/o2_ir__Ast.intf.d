lib/ir/ast.mli: Types
