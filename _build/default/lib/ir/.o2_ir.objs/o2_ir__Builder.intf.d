lib/ir/builder.mli: Ast Program Types
