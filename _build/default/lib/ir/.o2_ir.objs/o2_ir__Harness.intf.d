lib/ir/harness.mli: Ast Program Types
