lib/ir/ast.ml: Hashtbl List Types
