lib/ir/wellformed.mli: Format Program Types
