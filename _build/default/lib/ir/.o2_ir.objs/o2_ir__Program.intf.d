lib/ir/program.mli: Ast Types
