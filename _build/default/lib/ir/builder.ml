open Types

let line_counter = ref 0

let auto_pos () =
  incr line_counter;
  { file = "<builder>"; line = !line_counter }

let mk ?pos sk =
  let pos = match pos with Some p -> p | None -> auto_pos () in
  Ast.mk ~pos sk

let new_ ?pos x c args = mk ?pos (Ast.New (x, c, args))
let assign ?pos x y = mk ?pos (Ast.Assign (x, y))
let null ?pos x = mk ?pos (Ast.Null x)
let fwrite ?pos x f y = mk ?pos (Ast.FieldWrite (x, f, y))
let fread ?pos x y f = mk ?pos (Ast.FieldRead (x, y, f))
let awrite ?pos x y = mk ?pos (Ast.ArrayWrite (x, y))
let aread ?pos x y = mk ?pos (Ast.ArrayRead (x, y))
let swrite ?pos c f y = mk ?pos (Ast.StaticWrite (c, f, y))
let sread ?pos x c f = mk ?pos (Ast.StaticRead (x, c, f))
let call ?pos ?ret y m args = mk ?pos (Ast.Call (ret, y, m, args))
let scall ?pos ?ret c m args = mk ?pos (Ast.StaticCall (ret, c, m, args))
let start ?pos x = mk ?pos (Ast.Start x)
let join ?pos x = mk ?pos (Ast.Join x)
let signal ?pos x = mk ?pos (Ast.Signal x)
let wait ?pos x = mk ?pos (Ast.Wait x)
let post ?pos x args = mk ?pos (Ast.Post (x, args))
let sync ?pos x body = mk ?pos (Ast.Sync (x, body))
let if_ ?pos a b = mk ?pos (Ast.If (a, b))
let while_ ?pos body = mk ?pos (Ast.While body)
let ret ?pos v = mk ?pos (Ast.Return v)

let meth ?(static = false) name params body =
  let assigned = Ast.defined_vars body in
  let locals =
    List.filter (fun v -> (not (List.mem v params)) && v <> "this") assigned
  in
  {
    Ast.md_name = name;
    md_static = static;
    md_params = params;
    md_locals = locals;
    md_body = body;
  }

let cls ?super ?origin ?(fields = []) ?(sfields = []) name ms =
  {
    Ast.cd_name = name;
    cd_super = super;
    cd_origin = origin;
    cd_fields = fields;
    cd_sfields = sfields;
    cd_methods = ms;
  }

let prog ~main classes =
  Program.of_decls { Ast.pd_classes = classes; pd_main = main }
