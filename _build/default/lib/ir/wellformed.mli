(** Well-formedness lint over resolved programs.

    {!Program.of_decls} already rejects structurally broken programs
    (duplicate classes, unknown supers, missing main). This module performs
    the deeper per-method checks: every used variable is in scope, [this] is
    not used in static methods, statically-named classes in
    [new]/static-access/static-call statements exist, and [start]/[post]
    receivers can plausibly be of thread/handler kind. *)

type issue = { meth : string; pos : Types.pos; msg : string }

val pp_issue : Format.formatter -> issue -> unit

(** [check p] is the list of lint issues, empty for clean programs. *)
val check : Program.t -> issue list

(** [check_exn p] raises [Program.Ill_formed] listing all issues if any. *)
val check_exn : Program.t -> unit
