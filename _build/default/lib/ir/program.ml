open Types

type kind = Kthread of mname | Khandler of mname | Kplain

type meth = {
  m_name : mname;
  m_class : cname;
  m_static : bool;
  m_params : vname list;
  m_locals : vname list;
  m_body : Ast.stmt list;
}

type cls = {
  c_name : cname;
  c_super : cname option;
  c_fields : fname list;
  c_sfields : fname list;
  c_kind : kind;
  c_annot : Ast.origin_annot option;
}

type t = {
  cls_tbl : (cname, cls) Hashtbl.t;
  cls_order : cname list;
  meth_tbl : (cname * mname, meth) Hashtbl.t;
  meths_by_class : (cname, meth list) Hashtbl.t;
  main_m : meth;
  stmts : (Ast.stmt * meth) array;
  in_loop : bool array;
}

exception Ill_formed of string

let ill fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let builtin_roots =
  [
    ("Thread", Kthread "run");
    ("Runnable", Kthread "run");
    ("Callable", Kthread "call");
    ("Handler", Khandler "handle");
    ("EventHandler", Khandler "handleEvent");
    ("Receiver", Khandler "onReceive");
    ("Listener", Khandler "actionPerformed");
    (* Activities are not origins themselves: their lifecycle handlers are
       treated as method calls from the generated harness (§4.2) *)
    ("Activity", Kplain);
  ]

let is_builtin c = c = "Object" || List.mem_assoc c builtin_roots

(* -- statement-id renumbering ------------------------------------------- *)

let renumber_body counter body =
  let rec stmt (s : Ast.stmt) =
    let sid = O2_util.Idgen.next counter in
    let sk =
      match s.Ast.sk with
      | Ast.Sync (x, b) -> Ast.Sync (x, List.map stmt b)
      | Ast.While b -> Ast.While (List.map stmt b)
      | Ast.If (a, b) -> Ast.If (List.map stmt a, List.map stmt b)
      | sk -> sk
    in
    { s with Ast.sid; sk }
  in
  List.map stmt body

(* -- resolution --------------------------------------------------------- *)

let of_decls (d : Ast.program_decl) =
  let counter = O2_util.Idgen.create () in
  (* class table, pass 1: skeletons *)
  let decl_tbl = Hashtbl.create 64 in
  List.iter
    (fun (cd : Ast.class_decl) ->
      if Hashtbl.mem decl_tbl cd.Ast.cd_name then
        ill "duplicate class %s" cd.Ast.cd_name;
      if is_builtin cd.Ast.cd_name then
        ill "class %s shadows a builtin root" cd.Ast.cd_name;
      Hashtbl.add decl_tbl cd.Ast.cd_name cd)
    d.Ast.pd_classes;
  (* super chains: detect unknown supers and cycles; compute kind + fields *)
  let kind_cache = Hashtbl.create 64 in
  let fields_cache = Hashtbl.create 64 in
  let rec chain_info seen c =
    if List.mem c seen then ill "inheritance cycle through %s" c;
    match List.assoc_opt c builtin_roots with
    | Some k -> (k, [])
    | None when c = "Object" -> (Kplain, [])
    | None -> (
        match Hashtbl.find_opt decl_tbl c with
        | None -> ill "unknown class %s" c
        | Some cd ->
            let k, inherited =
              match cd.Ast.cd_super with
              | None -> (Kplain, [])
              | Some s -> chain_info (c :: seen) s
            in
            (* an explicit origin annotation (§3.1) wins over inheritance *)
            let k =
              match cd.Ast.cd_origin with
              | Some (Ast.Athread e) -> Kthread e
              | Some (Ast.Ahandler e) -> Khandler e
              | None -> k
            in
            Hashtbl.replace kind_cache c k;
            let fields = inherited @ cd.Ast.cd_fields in
            Hashtbl.replace fields_cache c fields;
            (k, fields))
  in
  List.iter
    (fun (cd : Ast.class_decl) -> ignore (chain_info [] cd.Ast.cd_name))
    d.Ast.pd_classes;
  (* build resolved classes and methods *)
  let cls_tbl = Hashtbl.create 64 in
  let meth_tbl = Hashtbl.create 256 in
  let meths_by_class = Hashtbl.create 64 in
  List.iter
    (fun (cd : Ast.class_decl) ->
      let c_name = cd.Ast.cd_name in
      let c_kind =
        match Hashtbl.find_opt kind_cache c_name with
        | Some k -> k
        | None -> Kplain
      in
      let cls =
        {
          c_name;
          c_super = cd.Ast.cd_super;
          c_fields = Hashtbl.find fields_cache c_name;
          c_sfields = cd.Ast.cd_sfields;
          c_kind;
          c_annot = cd.Ast.cd_origin;
        }
      in
      Hashtbl.add cls_tbl c_name cls;
      let ms =
        List.map
          (fun (md : Ast.meth_decl) ->
            if Hashtbl.mem meth_tbl (c_name, md.Ast.md_name) then
              ill "duplicate method %s.%s" c_name md.Ast.md_name;
            let m =
              {
                m_name = md.Ast.md_name;
                m_class = c_name;
                m_static = md.Ast.md_static;
                m_params = md.Ast.md_params;
                m_locals = md.Ast.md_locals;
                m_body = renumber_body counter md.Ast.md_body;
              }
            in
            Hashtbl.add meth_tbl (c_name, md.Ast.md_name) m;
            m)
          cd.Ast.cd_methods
      in
      Hashtbl.add meths_by_class c_name ms)
    d.Ast.pd_classes;
  let main_m =
    match Hashtbl.find_opt meth_tbl (d.Ast.pd_main, "main") with
    | Some m when m.m_static -> m
    | Some _ -> ill "main method of %s must be static" d.Ast.pd_main
    | None -> ill "no static main in class %s" d.Ast.pd_main
  in
  (* statement index + loop-nesting flags *)
  let n = O2_util.Idgen.current counter in
  let stmts = Array.make (max n 1) (Ast.mk (Ast.Return None), main_m) in
  let in_loop = Array.make (max n 1) false in
  let index_meth m =
    let rec go ~loop body =
      List.iter
        (fun (s : Ast.stmt) ->
          stmts.(s.Ast.sid) <- (s, m);
          in_loop.(s.Ast.sid) <- loop;
          match s.Ast.sk with
          | Ast.Sync (_, b) -> go ~loop b
          | Ast.If (a, b) ->
              go ~loop a;
              go ~loop b
          | Ast.While b -> go ~loop:true b
          | _ -> ())
        body
    in
    go ~loop:false m.m_body
  in
  Hashtbl.iter (fun _ ms -> List.iter index_meth ms) meths_by_class;
  let p =
    {
      cls_tbl;
      cls_order = List.map (fun (cd : Ast.class_decl) -> cd.Ast.cd_name) d.Ast.pd_classes;
      meth_tbl;
      meths_by_class;
      main_m;
      stmts;
      in_loop;
    }
  in
  p

(* -- queries ------------------------------------------------------------ *)

let main p = p.main_m
let find_class p c = Hashtbl.find_opt p.cls_tbl c

let classes p =
  List.filter_map (fun c -> Hashtbl.find_opt p.cls_tbl c) p.cls_order

let rec lookup_method p c m =
  match Hashtbl.find_opt p.meth_tbl (c, m) with
  | Some meth -> Some meth
  | None -> (
      match Hashtbl.find_opt p.cls_tbl c with
      | Some { c_super = Some s; _ } when not (is_builtin s) ->
          lookup_method p s m
      | _ -> None)

let dispatch p c m =
  match lookup_method p c m with
  | Some meth when not meth.m_static -> Some meth
  | _ -> None

let static_method p c m =
  match lookup_method p c m with
  | Some meth when meth.m_static -> Some meth
  | _ -> None

let kind_of p c =
  match List.assoc_opt c builtin_roots with
  | Some k -> k
  | None -> (
      match Hashtbl.find_opt p.cls_tbl c with
      | Some cls -> cls.c_kind
      | None -> Kplain)

let entry_method p c =
  match kind_of p c with
  | Kplain -> None
  | Kthread m | Khandler m -> dispatch p c m

let rec subclass_of p c root =
  c = root
  ||
  match Hashtbl.find_opt p.cls_tbl c with
  | Some { c_super = Some s; _ } -> subclass_of p s root
  | _ -> false

let n_stmts p = Array.length p.stmts

let stmt p sid =
  if sid < 0 || sid >= Array.length p.stmts then
    invalid_arg "Program.stmt: bad sid";
  p.stmts.(sid)

let stmt_in_loop p sid =
  sid >= 0 && sid < Array.length p.in_loop && p.in_loop.(sid)

let iter_methods f p =
  List.iter
    (fun c ->
      match Hashtbl.find_opt p.meths_by_class c with
      | Some ms -> List.iter f ms
      | None -> ())
    p.cls_order

let methods_of p c =
  match Hashtbl.find_opt p.meths_by_class c with Some ms -> ms | None -> []

let any_method_named p name =
  Hashtbl.fold
    (fun _ ms acc ->
      acc || List.exists (fun m -> m.m_name = name) ms)
    p.meths_by_class false

let all_static_fields p =
  List.concat_map
    (fun cls -> List.map (fun f -> (cls.c_name, f)) cls.c_sfields)
    (classes p)
