(** Abstract syntax of CIR.

    Statements carry a unique statement id [sid] assigned during program
    resolution ({!Program.of_decls}); the parser and builder create
    statements with [sid = -1]. The [sid] identifies allocation sites, call
    sites and access sites throughout the analyses. *)

open Types

type stmt = { sid : int; pos : pos; sk : stmt_kind }

and stmt_kind =
  | New of vname * cname * vname list
      (** [x = new C(a1, …, an)] — allocates and runs [C]'s [init] method
          (if any) with the given arguments. Statement ❶/❽ of Table 2:
          allocating a thread/handler class is an origin allocation. *)
  | Assign of vname * vname  (** [x = y] — statement ❷. *)
  | Null of vname  (** [x = null]. *)
  | FieldWrite of vname * fname * vname  (** [x.f = y] — statement ❸. *)
  | FieldRead of vname * vname * fname  (** [x = y.f] — statement ❹. *)
  | ArrayWrite of vname * vname  (** [x[*] = y] — statement ❺. *)
  | ArrayRead of vname * vname  (** [x = y[*]] — statement ❻. *)
  | StaticWrite of cname * fname * vname  (** [C.f = y]. *)
  | StaticRead of vname * cname * fname  (** [x = C.f]. *)
  | Call of vname option * vname * mname * vname list
      (** [x = y.m(a1, …, an)] — virtual call, statement ❼. *)
  | StaticCall of vname option * cname * mname * vname list
      (** [x = C.m(a1, …, an)] — static call. *)
  | Start of vname  (** [start x] — origin entry call, statement ❾. *)
  | Join of vname  (** [join x] — Table 4 statement ⑱. *)
  | Signal of vname
      (** [signal x] — semaphore post on the object(s) [x] points to. The
          §4.3 future-work extension: the SHB graph adds a happens-before
          edge from a program-wide-unique signal to the matching waits. *)
  | Wait of vname  (** [wait x] — semaphore wait (blocks until signalled). *)
  | Post of vname * vname list
      (** [post x(a1, …, an)] — dispatches the event-handler entry of the
          object(s) [x] points to, starting a new origin. *)
  | Sync of vname * stmt list
      (** [sync (x) { … }] — monitor region, Table 4 statement ⑯. *)
  | If of stmt list * stmt list
      (** Nondeterministic branch; the static analyses visit both arms, the
          interpreter picks one. CIR has no data-dependent control flow —
          branch conditions are irrelevant to the analyses reproduced. *)
  | While of stmt list  (** Nondeterministic loop (0+ iterations). *)
  | Return of vname option

type meth_decl = {
  md_name : mname;
  md_static : bool;
  md_params : vname list;
  md_locals : vname list;
  md_body : stmt list;
}

(** §3.1's explicit origin annotations: [thread class C]/[handler class C]
    mark [C] as an origin root without inheriting from a builtin — for the
    "customized user-level threads" the automatic patterns cannot see. The
    payload is the entry-method name ([run]/[handle] by default). *)
type origin_annot = Athread of mname | Ahandler of mname

type class_decl = {
  cd_name : cname;
  cd_super : cname option;
  cd_origin : origin_annot option;  (** explicit origin annotation *)
  cd_fields : fname list;
  cd_sfields : fname list;  (** static fields *)
  cd_methods : meth_decl list;
}

type program_decl = { pd_classes : class_decl list; pd_main : cname }
(** [pd_main] names the class whose static [main] method is the entry. *)

val mk : ?pos:pos -> stmt_kind -> stmt
(** [mk sk] wraps a statement kind with [sid = -1]. *)

(** [iter_stmts f body] applies [f] to every statement of [body], including
    those nested in [Sync]/[If]/[While], in program order. *)
val iter_stmts : (stmt -> unit) -> stmt list -> unit

(** [defined_vars body] is the set of variables assigned anywhere in
    [body] (no duplicates, in first-definition order). *)
val defined_vars : stmt list -> vname list
