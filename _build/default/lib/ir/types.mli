(** Base identifiers and source positions for CIR.

    CIR (Concurrent IR) is the analyzable substrate of this reproduction: a
    small concurrent object-oriented language providing exactly the statement
    algebra of Table 2 / Table 4 of the paper — allocation, copy, field and
    array accesses, static accesses, virtual calls, thread start/join, event
    post, and synchronized regions. *)

type cname = string
(** Class names. *)

type mname = string
(** Method names. *)

type fname = string
(** Field names. *)

type vname = string
(** Local-variable / parameter names. ["this"] is the implicit receiver. *)

type pos = { file : string; line : int }
(** Source position of a statement; synthetic programs use line numbers
    assigned by the builder. *)

val dummy_pos : pos

val pp_pos : Format.formatter -> pos -> unit
