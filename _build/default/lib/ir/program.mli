(** Resolved CIR programs.

    {!of_decls} turns a parsed/built {!Ast.program_decl} into a resolved
    program: statements receive unique ids, classes receive their origin
    {!kind} (computed from the builtin root they inherit from — the CIR
    counterpart of the paper's Table 1 entry-point table), and lookup tables
    for dispatch are built. *)

open Types

(** The origin kind of a class, mirroring Table 1 of the paper. A
    [Kthread m] class starts a new thread origin whose entry method is [m]
    when [start]ed; a [Khandler m] class starts a new event origin with
    entry [m] when [post]ed to. *)
type kind = Kthread of mname | Khandler of mname | Kplain

type meth = {
  m_name : mname;
  m_class : cname;
  m_static : bool;
  m_params : vname list;  (** formals, excluding [this] *)
  m_locals : vname list;
  m_body : Ast.stmt list;
}

type cls = {
  c_name : cname;
  c_super : cname option;
  c_fields : fname list;  (** declared + inherited instance fields *)
  c_sfields : fname list;  (** declared static fields *)
  c_kind : kind;
  c_annot : Ast.origin_annot option;  (** explicit §3.1 origin annotation *)
}

type t

exception Ill_formed of string
(** Raised by {!of_decls} on resolution errors (duplicate class, unknown
    super, undefined variable use, missing main, …). *)

(** Builtin root classes and the entry method their subclasses use, i.e.
    the Table 1 analogue:
    [Thread → run], [Runnable → run], [Callable → call],
    [Handler → handle], [EventHandler → handleEvent],
    [Receiver → onReceive], [Listener → actionPerformed]. *)
val builtin_roots : (cname * kind) list

(** [of_decls d] resolves [d].
    @raise Ill_formed if [d] is not a well-formed program. *)
val of_decls : Ast.program_decl -> t

(** [main p] is the entry method: the static [main] of the declared main
    class. *)
val main : t -> meth

(** [find_class p c] looks up a user-declared class. *)
val find_class : t -> cname -> cls option

(** [classes p] lists user classes in declaration order. *)
val classes : t -> cls list

(** [dispatch p c m] resolves a virtual call to method [m] on an object of
    run-time class [c], walking up the superclass chain. *)
val dispatch : t -> cname -> mname -> meth option

(** [static_method p c m] resolves [C.m] for a static call (also walks
    supers). *)
val static_method : t -> cname -> mname -> meth option

(** [kind_of p c] is the origin kind of class [c] ([Kplain] for unknown). *)
val kind_of : t -> cname -> kind

(** [entry_method p c] resolves the origin entry method of thread/handler
    class [c] (e.g. its [run]); [None] for plain classes or when the class
    never overrides the entry. *)
val entry_method : t -> cname -> meth option

(** [subclass_of p c root] is true iff [c] transitively extends [root]
    (user class or builtin root). *)
val subclass_of : t -> cname -> cname -> bool

(** [n_stmts p] is the number of statements; statement ids are
    [0 … n_stmts - 1]. *)
val n_stmts : t -> int

(** [stmt p sid] recovers a statement and its enclosing method by id. *)
val stmt : t -> int -> Ast.stmt * meth

(** [stmt_in_loop p sid] is [true] iff the statement is syntactically nested
    in a [While]; origin allocations inside loops are doubled (§3.2). *)
val stmt_in_loop : t -> int -> bool

(** [iter_methods f p] applies [f] to every method of every user class, and
    to [main] last. *)
val iter_methods : (meth -> unit) -> t -> unit

(** [methods_of p c] lists methods declared directly on class [c]. *)
val methods_of : t -> cname -> meth list

(** [any_method_named p m] is true iff some class declares a method named
    [m] — used to distinguish unresolvable-but-internal calls from truly
    external functions (§4.3). *)
val any_method_named : t -> mname -> bool

(** [all_static_fields p] lists every declared [(class, static field)]. *)
val all_static_fields : t -> (cname * fname) list
