exception No_activity of string

let lifecycle =
  [ "onCreate"; "onStart"; "onResume"; "onPause"; "onStop"; "onDestroy" ]

(* syntactic super-chain walk over the raw declarations *)
let extends_activity classes c =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (cd : Ast.class_decl) -> Hashtbl.replace tbl cd.Ast.cd_name cd) classes;
  let rec go c =
    c = "Activity"
    ||
    match Hashtbl.find_opt tbl c with
    | Some { Ast.cd_super = Some s; _ } -> go s
    | _ -> false
  in
  go c

let activity_classes classes =
  List.filter_map
    (fun (cd : Ast.class_decl) ->
      if cd.Ast.cd_name <> "Activity" && extends_activity classes cd.Ast.cd_name
      then Some cd.Ast.cd_name
      else None)
    classes

let defined_lifecycle classes c =
  (* methods defined anywhere on the chain, in lifecycle order *)
  let tbl = Hashtbl.create 16 in
  List.iter (fun (cd : Ast.class_decl) -> Hashtbl.replace tbl cd.Ast.cd_name cd) classes;
  let rec defines c m =
    match Hashtbl.find_opt tbl c with
    | Some cd ->
        List.exists (fun (md : Ast.meth_decl) -> md.Ast.md_name = m) cd.Ast.cd_methods
        || (match cd.Ast.cd_super with Some s -> defines s m | None -> false)
    | None -> false
  in
  List.filter (fun m -> defines c m) lifecycle

let android ?main_activity classes =
  let activities = activity_classes classes in
  let main_act =
    match main_activity with
    | Some c ->
        if List.mem c activities then c
        else raise (No_activity (c ^ " is not an Activity subclass"))
    | None -> (
        match List.find_opt (fun c -> c = "MainActivity") activities with
        | Some c -> c
        | None -> (
            match activities with
            | c :: _ -> c
            | [] -> raise (No_activity "no class extends Activity")))
  in
  (* AndroidRt: one static starter per activity, running its lifecycle —
     the per-activity harness of §4.2 *)
  let starter c =
    let body =
      List.map
        (fun m -> Ast.mk (Ast.Call (None, "a", m, [])))
        (defined_lifecycle classes c)
      @ [ Ast.mk (Ast.Return None) ]
    in
    {
      Ast.md_name = "start_" ^ c;
      md_static = true;
      md_params = [ "a" ];
      md_locals = [];
      md_body = body;
    }
  in
  let android_rt =
    {
      Ast.cd_name = "AndroidRt";
      cd_super = None;
      cd_origin = None;
      cd_fields = [];
      cd_sfields = [];
      cd_methods = List.map starter activities;
    }
  in
  (* the harness main: allocate the main activity and drive its
     lifecycle. Handlers the app posts from onCreate etc. become origins as
     usual. *)
  let main_body =
    Ast.mk (Ast.New ("act", main_act, []))
    :: List.map
         (fun m -> Ast.mk (Ast.Call (None, "act", m, [])))
         (defined_lifecycle classes main_act)
    @ [ Ast.mk (Ast.Return None) ]
  in
  let harness_main =
    {
      Ast.cd_name = "O2AndroidHarness";
      cd_super = None;
      cd_origin = None;
      cd_fields = [];
      cd_sfields = [];
      cd_methods =
        [
          {
            Ast.md_name = "main";
            md_static = true;
            md_params = [];
            md_locals = [ "act" ];
            md_body = main_body;
          };
        ];
    }
  in
  Program.of_decls
    {
      Ast.pd_classes = classes @ [ android_rt; harness_main ];
      pd_main = "O2AndroidHarness";
    }
