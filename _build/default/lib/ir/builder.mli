(** Programmatic construction of CIR programs.

    The synthetic workload generators and the real-world race models build
    programs through this DSL rather than the concrete syntax; locals are
    inferred from assignments, and synthetic source lines are assigned
    automatically so race reports can cite distinct sites. *)

open Types

val new_ : ?pos:pos -> vname -> cname -> vname list -> Ast.stmt
val assign : ?pos:pos -> vname -> vname -> Ast.stmt
val null : ?pos:pos -> vname -> Ast.stmt
val fwrite : ?pos:pos -> vname -> fname -> vname -> Ast.stmt
val fread : ?pos:pos -> vname -> vname -> fname -> Ast.stmt
val awrite : ?pos:pos -> vname -> vname -> Ast.stmt
val aread : ?pos:pos -> vname -> vname -> Ast.stmt
val swrite : ?pos:pos -> cname -> fname -> vname -> Ast.stmt
val sread : ?pos:pos -> vname -> cname -> fname -> Ast.stmt
val call : ?pos:pos -> ?ret:vname -> vname -> mname -> vname list -> Ast.stmt
val scall : ?pos:pos -> ?ret:vname -> cname -> mname -> vname list -> Ast.stmt
val start : ?pos:pos -> vname -> Ast.stmt
val join : ?pos:pos -> vname -> Ast.stmt
val signal : ?pos:pos -> vname -> Ast.stmt
val wait : ?pos:pos -> vname -> Ast.stmt
val post : ?pos:pos -> vname -> vname list -> Ast.stmt
val sync : ?pos:pos -> vname -> Ast.stmt list -> Ast.stmt
val if_ : ?pos:pos -> Ast.stmt list -> Ast.stmt list -> Ast.stmt
val while_ : ?pos:pos -> Ast.stmt list -> Ast.stmt
val ret : ?pos:pos -> vname option -> Ast.stmt

(** [meth name params body] declares an instance method; locals are the
    variables assigned in [body] that are neither parameters nor [this]. *)
val meth : ?static:bool -> mname -> vname list -> Ast.stmt list -> Ast.meth_decl

(** [cls name ms] declares a class; [?origin] is the explicit origin
    annotation ([thread class] / [handler class] in concrete syntax). *)
val cls :
  ?super:cname ->
  ?origin:Ast.origin_annot ->
  ?fields:fname list ->
  ?sfields:fname list ->
  cname ->
  Ast.meth_decl list ->
  Ast.class_decl

(** [prog ~main classes] resolves a whole program.
    @raise Program.Ill_formed on resolution errors. *)
val prog : main:cname -> Ast.class_decl list -> Program.t
