open Types

type issue = { meth : string; pos : pos; msg : string }

let pp_issue ppf i =
  Format.fprintf ppf "%a: in %s: %s" pp_pos i.pos i.meth i.msg

let check p =
  let issues = ref [] in
  let push m pos fmt =
    Format.kasprintf
      (fun msg ->
        issues :=
          { meth = m.Program.m_class ^ "." ^ m.Program.m_name; pos; msg }
          :: !issues)
      fmt
  in
  let check_meth (m : Program.meth) =
    let scope = Hashtbl.create 16 in
    if not m.m_static then Hashtbl.replace scope "this" ();
    List.iter (fun v -> Hashtbl.replace scope v ()) m.m_params;
    List.iter (fun v -> Hashtbl.replace scope v ()) m.m_locals;
    let use pos v =
      if not (Hashtbl.mem scope v) then
        push m pos "variable %s used out of scope" v
    in
    let def pos v =
      if not (Hashtbl.mem scope v) then
        push m pos "variable %s assigned but not declared" v
    in
    let known_class pos c =
      if
        Program.find_class p c = None
        && (not (List.mem_assoc c Program.builtin_roots))
        && c <> "Object"
      then push m pos "unknown class %s" c
    in
    Ast.iter_stmts
      (fun s ->
        let pos = s.Ast.pos in
        match s.Ast.sk with
        | Ast.New (x, c, args) ->
            def pos x;
            known_class pos c;
            List.iter (use pos) args
        | Ast.Assign (x, y) ->
            def pos x;
            use pos y
        | Ast.Null x -> def pos x
        | Ast.FieldWrite (x, _, y) ->
            use pos x;
            use pos y
        | Ast.FieldRead (x, y, _) ->
            def pos x;
            use pos y
        | Ast.ArrayWrite (x, y) ->
            use pos x;
            use pos y
        | Ast.ArrayRead (x, y) ->
            def pos x;
            use pos y
        | Ast.StaticWrite (c, f, y) ->
            known_class pos c;
            use pos y;
            (match Program.find_class p c with
            | Some cls when not (List.mem f cls.c_sfields) ->
                push m pos "class %s has no static field %s" c f
            | _ -> ())
        | Ast.StaticRead (x, c, f) ->
            def pos x;
            known_class pos c;
            (match Program.find_class p c with
            | Some cls when not (List.mem f cls.c_sfields) ->
                push m pos "class %s has no static field %s" c f
            | _ -> ())
        | Ast.Call (ret, y, _, args) ->
            Option.iter (def pos) ret;
            use pos y;
            List.iter (use pos) args
        | Ast.StaticCall (ret, c, mn, args) ->
            Option.iter (def pos) ret;
            known_class pos c;
            List.iter (use pos) args;
            if Program.static_method p c mn = None then
              push m pos "no static method %s.%s" c mn
        | Ast.Start x | Ast.Join x | Ast.Signal x | Ast.Wait x ->
            use pos x
        | Ast.Post (x, args) ->
            use pos x;
            List.iter (use pos) args
        | Ast.Sync (x, _) -> use pos x
        | Ast.If _ | Ast.While _ -> ()
        | Ast.Return (Some v) -> use pos v
        | Ast.Return None -> ())
      m.m_body
  in
  Program.iter_methods check_meth p;
  List.rev !issues

let check_exn p =
  match check p with
  | [] -> ()
  | issues ->
      let msg =
        Format.asprintf "%a"
          (Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_issue)
          issues
      in
      raise (Program.Ill_formed msg)
