open Types

type stmt = { sid : int; pos : pos; sk : stmt_kind }

and stmt_kind =
  | New of vname * cname * vname list
  | Assign of vname * vname
  | Null of vname
  | FieldWrite of vname * fname * vname
  | FieldRead of vname * vname * fname
  | ArrayWrite of vname * vname
  | ArrayRead of vname * vname
  | StaticWrite of cname * fname * vname
  | StaticRead of vname * cname * fname
  | Call of vname option * vname * mname * vname list
  | StaticCall of vname option * cname * mname * vname list
  | Start of vname
  | Join of vname
  | Signal of vname
  | Wait of vname
  | Post of vname * vname list
  | Sync of vname * stmt list
  | If of stmt list * stmt list
  | While of stmt list
  | Return of vname option

type meth_decl = {
  md_name : mname;
  md_static : bool;
  md_params : vname list;
  md_locals : vname list;
  md_body : stmt list;
}

type origin_annot = Athread of mname | Ahandler of mname

type class_decl = {
  cd_name : cname;
  cd_super : cname option;
  cd_origin : origin_annot option;
  cd_fields : fname list;
  cd_sfields : fname list;
  cd_methods : meth_decl list;
}

type program_decl = { pd_classes : class_decl list; pd_main : cname }

let mk ?(pos = dummy_pos) sk = { sid = -1; pos; sk }

let rec iter_stmts f body =
  List.iter
    (fun s ->
      f s;
      match s.sk with
      | Sync (_, b) | While b -> iter_stmts f b
      | If (a, b) ->
          iter_stmts f a;
          iter_stmts f b
      | _ -> ())
    body

let defined_vars body =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let def v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  iter_stmts
    (fun s ->
      match s.sk with
      | New (x, _, _)
      | Assign (x, _)
      | Null x
      | FieldRead (x, _, _)
      | ArrayRead (x, _)
      | StaticRead (x, _, _) ->
          def x
      | Call (Some x, _, _, _) | StaticCall (Some x, _, _, _) -> def x
      | _ -> ())
    body;
  List.rev !out
