type cname = string
type mname = string
type fname = string
type vname = string
type pos = { file : string; line : int }

let dummy_pos = { file = "<synthetic>"; line = 0 }
let pp_pos ppf p = Format.fprintf ppf "%s:%d" p.file p.line
