let pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Format.pp_print_string ppf args

let rec pp_stmt ppf (s : Ast.stmt) =
  match s.Ast.sk with
  | Ast.New (x, c, args) -> Format.fprintf ppf "%s = new %s(%a);" x c pp_args args
  | Ast.Assign (x, y) -> Format.fprintf ppf "%s = %s;" x y
  | Ast.Null x -> Format.fprintf ppf "%s = null;" x
  | Ast.FieldWrite (x, f, y) -> Format.fprintf ppf "%s.%s = %s;" x f y
  | Ast.FieldRead (x, y, f) -> Format.fprintf ppf "%s = %s.%s;" x y f
  | Ast.ArrayWrite (x, y) -> Format.fprintf ppf "%s[*] = %s;" x y
  | Ast.ArrayRead (x, y) -> Format.fprintf ppf "%s = %s[*];" x y
  | Ast.StaticWrite (c, f, y) -> Format.fprintf ppf "%s::%s = %s;" c f y
  | Ast.StaticRead (x, c, f) -> Format.fprintf ppf "%s = %s::%s;" x c f
  | Ast.Call (ret, y, m, args) ->
      (match ret with
      | Some x -> Format.fprintf ppf "%s = %s.%s(%a);" x y m pp_args args
      | None -> Format.fprintf ppf "%s.%s(%a);" y m pp_args args)
  | Ast.StaticCall (ret, c, m, args) ->
      (match ret with
      | Some x -> Format.fprintf ppf "%s = %s::%s(%a);" x c m pp_args args
      | None -> Format.fprintf ppf "%s::%s(%a);" c m pp_args args)
  | Ast.Start x -> Format.fprintf ppf "start %s;" x
  | Ast.Join x -> Format.fprintf ppf "join %s;" x
  | Ast.Signal x -> Format.fprintf ppf "signal %s;" x
  | Ast.Wait x -> Format.fprintf ppf "wait %s;" x
  | Ast.Post (x, args) -> Format.fprintf ppf "post %s(%a);" x pp_args args
  | Ast.Sync (x, body) ->
      Format.fprintf ppf "@[<v 2>sync (%s) {%a@]@,}" x pp_block body
  | Ast.If (a, b) ->
      Format.fprintf ppf "@[<v 2>if {%a@]@,@[<v 2>} else {%a@]@,}" pp_block a
        pp_block b
  | Ast.While body ->
      Format.fprintf ppf "@[<v 2>while {%a@]@,}" pp_block body
  | Ast.Return (Some v) -> Format.fprintf ppf "return %s;" v
  | Ast.Return None -> Format.fprintf ppf "return;"

and pp_block ppf body =
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) body

let pp_meth_decl ppf (md : Ast.meth_decl) =
  Format.fprintf ppf "@[<v 2>%smethod %s(%a) {"
    (if md.Ast.md_static then "static " else "")
    md.Ast.md_name pp_args md.Ast.md_params;
  if md.Ast.md_locals <> [] then
    Format.fprintf ppf "@,local %a;" pp_args md.Ast.md_locals;
  pp_block ppf md.Ast.md_body;
  Format.fprintf ppf "@]@,}"

let pp_class_decl ppf (cd : Ast.class_decl) =
  (match cd.Ast.cd_origin with
  | Some (Ast.Athread "run") -> Format.fprintf ppf "thread "
  | Some (Ast.Athread e) -> Format.fprintf ppf "thread(%s) " e
  | Some (Ast.Ahandler "handle") -> Format.fprintf ppf "handler "
  | Some (Ast.Ahandler e) -> Format.fprintf ppf "handler(%s) " e
  | None -> ());
  Format.fprintf ppf "@[<v 2>class %s%s {" cd.Ast.cd_name
    (match cd.Ast.cd_super with Some s -> " extends " ^ s | None -> "");
  List.iter (fun f -> Format.fprintf ppf "@,field %s;" f) cd.Ast.cd_fields;
  List.iter (fun f -> Format.fprintf ppf "@,static field %s;" f) cd.Ast.cd_sfields;
  List.iter (fun m -> Format.fprintf ppf "@,%a" pp_meth_decl m) cd.Ast.cd_methods;
  Format.fprintf ppf "@]@,}"

let pp_program_decl ppf (pd : Ast.program_decl) =
  Format.fprintf ppf "@[<v>main %s;@,@," pd.Ast.pd_main;
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
    pp_class_decl ppf pd.Ast.pd_classes;
  Format.fprintf ppf "@]@."

let decl_of_program p =
  let classes =
    List.map
      (fun (cls : Program.cls) ->
        let declared_fields =
          (* c_fields includes inherited fields; recover the declared ones by
             dropping the inherited prefix. *)
          match cls.Program.c_super with
          | Some s -> (
              match Program.find_class p s with
              | Some sup ->
                  let n = List.length sup.Program.c_fields in
                  List.filteri (fun i _ -> i >= n) cls.Program.c_fields
              | None -> cls.Program.c_fields)
          | None -> cls.Program.c_fields
        in
        {
          Ast.cd_name = cls.Program.c_name;
          cd_super = cls.Program.c_super;
          cd_origin = cls.Program.c_annot;
          cd_fields = declared_fields;
          cd_sfields = cls.Program.c_sfields;
          cd_methods =
            List.map
              (fun (m : Program.meth) ->
                {
                  Ast.md_name = m.Program.m_name;
                  md_static = m.Program.m_static;
                  md_params = m.Program.m_params;
                  md_locals = m.Program.m_locals;
                  md_body = m.Program.m_body;
                })
              (Program.methods_of p cls.Program.c_name);
        })
      (Program.classes p)
  in
  { Ast.pd_classes = classes; pd_main = (Program.main p).Program.m_class }

let pp_program ppf p = pp_program_decl ppf (decl_of_program p)
let program_to_string p = Format.asprintf "%a" pp_program p
