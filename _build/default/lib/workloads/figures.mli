(** The paper's expository example programs (Figures 2 and 3) in CIR.

    Figure 2: two instances of the same thread class [T], with attribute
    objects [op1]/[op2] selecting different [util] behaviours; the threads'
    local [Data] objects must not be conflated — OPA distinguishes them by
    origin, 0-ctx does not.

    Figure 3: two thread classes [TA]/[TB] sharing a super-constructor that
    allocates field [f]; without the context switch at origin allocations
    both threads' [f] would alias ([⟨o_f, Tmain⟩]), with it they get
    per-origin objects. *)

val figure2 : unit -> O2_ir.Program.t
val figure3 : unit -> O2_ir.Program.t

(** Concrete sources, used by the quickstart example and parser tests. *)
val figure2_src : string

val figure3_src : string
