lib/workloads/figures.mli: O2_ir
