lib/workloads/synth.mli: O2_ir
