lib/workloads/synth.ml: Array List O2_ir Printf
