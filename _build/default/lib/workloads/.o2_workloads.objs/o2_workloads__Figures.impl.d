lib/workloads/figures.ml: O2_frontend
