lib/workloads/models.mli: O2_ir
