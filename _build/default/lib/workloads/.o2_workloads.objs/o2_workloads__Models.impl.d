lib/workloads/models.ml: List O2_frontend O2_ir
