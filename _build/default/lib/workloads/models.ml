type model = {
  name : string;
  expected_races : int;
  program : unit -> O2_ir.Program.t;
  fixed : unit -> O2_ir.Program.t;
  describe : string;
}

let parse name src () = O2_frontend.Parser.parse_string ~file:(name ^ ".cir") src

(* ===================================================================== *)
(* Linux kernel (6 confirmed races). Origins: concurrent system calls
   (modeled as two instances of the same syscall class, exactly as the
   paper creates "two origins representing concurrent calls of the same
   system call"), driver file-operation threads, interrupt handlers, and a
   kernel thread created by the driver (nested origin). *)

let linux_src =
  {|main Kernel;

class VdsoData { field cells; }
class SysTzData { field minuteswest; field dsttime; }
class GpioChip { field events; }
class KBuffer { field buf; }
class KStats { field count; field total; }
class JiffiesTimer { field ticks; }
class SpinLock { field held; }

// __x64_sys_settimeofday: writes the vsyscall time zone data without
// holding the vsyscall sequence lock; two origins model concurrent calls
// of the same system call (exactly as the paper configures Linux).
class SysSettimeofday extends Thread {
  field vdata; field timer;
  method init(vdata, timer) {
    this.vdata = vdata; this.timer = timer;
  }
  method run() {
    local vdata, timer, t, cells;
    vdata = this.vdata;
    timer = this.timer;
    cells = vdata.cells;
    cells[*] = vdata;           // RACE 1: concurrent update_vsyscall_tz
    t = timer.ticks;            // RACE 2: vs irq tick write
  }
}

// __x64_sys_mincore: two concurrent calls of the same syscall.
class SysMincore extends Thread {
  field tz; field stats; field lock;
  method init(tz, stats, lock) {
    this.tz = tz; this.stats = stats; this.lock = lock;
  }
  method run() {
    local tz, stats, t;
    tz = this.tz;
    stats = this.stats;
    t = tz.minuteswest;         // RACE 3: vs irq handler tz write
    stats.count = stats;        // RACE 4: self-race of concurrent mincore
    this.locked_update();
  }
  method locked_update() {
    local lock, stats;
    lock = this.lock;
    stats = this.stats;
    sync (lock) {
      stats.total = stats;      // correctly protected sibling update:
    }                           // locked vs locked never reported
  }
}

// gpiolib driver read path (file_operations.read), racing with the
// threaded irq handler it requested; also spawns a kernel worker.
class DriverRead extends Thread {
  field gpio; field kbuf;
  method init(gpio, kbuf) { this.gpio = gpio; this.kbuf = kbuf; }
  method run() {
    local gpio, kbuf, e, worker;
    gpio = this.gpio;
    kbuf = this.kbuf;
    worker = new KWorker(kbuf); // drivers may create kernel threads
    start worker;
    e = gpio.events;            // RACE 5: vs irq handler write
    kbuf.buf = kbuf;            // RACE 6: vs the kthread's write
  }
}

// request_threaded_irq handler: concurrent with everything.
class IrqHandler extends Thread {
  field gpio; field timer; field tz;
  method init(gpio, timer, tz) {
    this.gpio = gpio; this.timer = timer; this.tz = tz;
  }
  method run() {
    local gpio, timer, tz;
    gpio = this.gpio;
    timer = this.timer;
    tz = this.tz;
    gpio.events = gpio;         // RACE 5 (writer side)
    timer.ticks = timer;        // RACE 2 (writer side)
    tz.minuteswest = tz;        // RACE 3 (writer side)
  }
}

// kthread_create_on_node worker spawned by the driver (nested origin).
class KWorker extends Thread {
  field kbuf;
  method init(kbuf) { this.kbuf = kbuf; }
  method run() {
    local kbuf;
    kbuf = this.kbuf;
    kbuf.buf = kbuf;            // RACE 6 (writer side)
  }
}

class Kernel {
  static method main() {
    local vdata, tz, gpio, kbuf, stats, timer, lock, cellsArr;
    local s1, s2, m1, m2, d, irq;
    vdata = new VdsoData();
    cellsArr = new VdsoData();
    vdata.cells = cellsArr;
    tz = new SysTzData();
    gpio = new GpioChip();
    kbuf = new KBuffer();
    stats = new KStats();
    timer = new JiffiesTimer();
    lock = new SpinLock();
    s1 = new SysSettimeofday(vdata, timer);
    s2 = new SysSettimeofday(vdata, timer);
    m1 = new SysMincore(tz, stats, lock);
    m2 = new SysMincore(tz, stats, lock);
    d = new DriverRead(gpio, kbuf);
    irq = new IrqHandler(gpio, timer, tz);
    start s1;
    start s2;
    start m1;
    start m2;
    start d;
    start irq;
  }
}
|}

let linux_fixed_src =
  {|main Kernel;

class VdsoData { field cells; }
class SysTzData { field minuteswest; field dsttime; }
class GpioChip { field events; }
class KBuffer { field buf; }
class KStats { field count; }
class JiffiesTimer { field ticks; }
class SpinLock { field held; }

class SysSettimeofday extends Thread {
  field vdata; field timer; field lock;
  method init(vdata, timer, lock) {
    this.vdata = vdata; this.timer = timer; this.lock = lock;
  }
  method run() {
    local vdata, timer, t, cells, lock;
    vdata = this.vdata;
    timer = this.timer;
    lock = this.lock;
    cells = vdata.cells;
    sync (lock) {
      cells[*] = vdata;
      t = timer.ticks;
    }
  }
}

class SysMincore extends Thread {
  field tz; field stats; field lock;
  method init(tz, stats, lock) {
    this.tz = tz; this.stats = stats; this.lock = lock;
  }
  method run() {
    local tz, stats, t, lock;
    tz = this.tz;
    stats = this.stats;
    lock = this.lock;
    sync (lock) {
      t = tz.minuteswest;
      stats.count = stats;
    }
  }
}

class DriverRead extends Thread {
  field gpio; field kbuf; field lock;
  method init(gpio, kbuf, lock) {
    this.gpio = gpio; this.kbuf = kbuf; this.lock = lock;
  }
  method run() {
    local gpio, kbuf, e, worker, lock;
    gpio = this.gpio;
    kbuf = this.kbuf;
    lock = this.lock;
    worker = new KWorker(kbuf, lock);
    start worker;
    sync (lock) {
      e = gpio.events;
      kbuf.buf = kbuf;
    }
  }
}

class IrqHandler extends Thread {
  field gpio; field timer; field tz; field lock;
  method init(gpio, timer, tz, lock) {
    this.gpio = gpio; this.timer = timer; this.tz = tz; this.lock = lock;
  }
  method run() {
    local gpio, timer, tz, lock;
    gpio = this.gpio;
    timer = this.timer;
    tz = this.tz;
    lock = this.lock;
    sync (lock) {
      gpio.events = gpio;
      timer.ticks = timer;
      tz.minuteswest = tz;
    }
  }
}

class KWorker extends Thread {
  field kbuf; field lock;
  method init(kbuf, lock) { this.kbuf = kbuf; this.lock = lock; }
  method run() {
    local kbuf, lock;
    kbuf = this.kbuf;
    lock = this.lock;
    sync (lock) {
      kbuf.buf = kbuf;
    }
  }
}

class Kernel {
  static method main() {
    local vdata, tz, gpio, kbuf, stats, timer, lock, cellsArr;
    local s1, s2, m1, m2, d, irq;
    vdata = new VdsoData();
    cellsArr = new VdsoData();
    vdata.cells = cellsArr;
    tz = new SysTzData();
    gpio = new GpioChip();
    kbuf = new KBuffer();
    stats = new KStats();
    timer = new JiffiesTimer();
    lock = new SpinLock();
    s1 = new SysSettimeofday(vdata, timer, lock);
    s2 = new SysSettimeofday(vdata, timer, lock);
    m1 = new SysMincore(tz, stats, lock);
    m2 = new SysMincore(tz, stats, lock);
    d = new DriverRead(gpio, kbuf, lock);
    irq = new IrqHandler(gpio, timer, tz, lock);
    start s1;
    start s2;
    start m1;
    start m2;
    start d;
    start irq;
  }
}
|}

(* ===================================================================== *)
(* Memcached (3 confirmed races): the slab-reassign maintenance event
   reads slabclass state without the slabs lock while worker threads grow
   the slab list under it; plus stats updates from concurrent workers and
   the stop_main_loop flag written by main while workers poll it. *)

let memcached_src =
  {|main Memcached;

class SlabClass { field slabs; field list; }
class Stats { field total; }
class Settings { field stop; }
class Mutex { field held; }

// do_slabs_reassign: the slab maintainer runs as an event
class SlabReassign extends Handler {
  field sc;
  method init(sc) { this.sc = sc; }
  method handle() {
    local sc, cur;
    sc = this.sc;
    cur = sc.slabs;        // RACE 1: missing slabs_lock
  }
}

// worker thread: do_slabs_newslab under pthread_mutex
class Worker extends Thread {
  field sc; field stats; field settings; field lock;
  method init(sc, stats, settings, lock) {
    this.sc = sc; this.stats = stats;
    this.settings = settings; this.lock = lock;
  }
  method run() {
    local sc, stats, settings, lock, stop, item;
    sc = this.sc;
    stats = this.stats;
    settings = this.settings;
    lock = this.lock;
    sync (lock) {
      sc.slabs = sc;       // RACE 1 (writer side, correctly locked)
      sc.list = sc;        // protected slab list growth (no race)
    }
    stats.total = stats;   // RACE 2: unlocked stats update
    stop = settings.stop;  // RACE 3: polls stop_main_loop
    item = new SlabClass();// thread-local allocation: never shared
    item.slabs = item;
  }
}

class Memcached {
  static method main() {
    local sc, stats, settings, lock, w1, w2, ev;
    sc = new SlabClass();
    stats = new Stats();
    settings = new Settings();
    lock = new Mutex();
    w1 = new Worker(sc, stats, settings, lock);
    w2 = new Worker(sc, stats, settings, lock);
    ev = new SlabReassign(sc);
    start w1;
    start w2;
    post ev();
    settings.stop = settings;  // RACE 3: stop_main_loop write
  }
}
|}

let memcached_fixed_src =
  {|main Memcached;

class SlabClass { field slabs; field list; }
class Stats { field total; }
class Settings { field stop; }
class Mutex { field held; }

class SlabReassign extends Handler {
  field sc; field lock;
  method init(sc, lock) { this.sc = sc; this.lock = lock; }
  method handle() {
    local sc, cur, lock;
    sc = this.sc;
    lock = this.lock;
    sync (lock) {
      cur = sc.slabs;
    }
  }
}

class Worker extends Thread {
  field sc; field stats; field settings; field lock;
  method init(sc, stats, settings, lock) {
    this.sc = sc; this.stats = stats;
    this.settings = settings; this.lock = lock;
  }
  method run() {
    local sc, stats, settings, lock, stop, item;
    sc = this.sc;
    stats = this.stats;
    settings = this.settings;
    lock = this.lock;
    sync (lock) {
      sc.slabs = sc;
      sc.list = sc;
      stats.total = stats;
      stop = settings.stop;
    }
    item = new SlabClass();
    item.slabs = item;
  }
}

class Memcached {
  static method main() {
    local sc, stats, settings, lock, w1, w2, ev;
    sc = new SlabClass();
    stats = new Stats();
    settings = new Settings();
    lock = new Mutex();
    w1 = new Worker(sc, stats, settings, lock);
    w2 = new Worker(sc, stats, settings, lock);
    ev = new SlabReassign(sc, lock);
    start w1;
    start w2;
    post ev();
    sync (lock) {
      settings.stop = settings;
    }
  }
}
|}

(* ===================================================================== *)
(* ZooKeeper 3.5.4, ZOOKEEPER-3819 (1 race): DataTree.createNode adds a
   path to the session's ephemerals list under sync(list) while
   deserialize adds without the lock. *)

let zookeeper_src =
  {|main ZooKeeper;

class DataTree { field ephemerals; }
class PathList { field paths; }

// request handled by one server thread: DataTree.createNode
class CreateNodeWorker extends Thread {
  field tree;
  method init(tree) { this.tree = tree; }
  method run() {
    local tree, list;
    tree = this.tree;
    list = tree.ephemerals;
    sync (list) {
      list.paths = list;  // RACE: add under sync(list)...
    }
  }
}

// concurrent request on another server thread: DataTree.deserialize
class DeserializeWorker extends Thread {
  field tree;
  method init(tree) { this.tree = tree; }
  method run() {
    local tree, list;
    tree = this.tree;
    list = tree.ephemerals;
    list.paths = list;    // RACE: ...vs add with the lock missing
  }
}

class ZooKeeper {
  static method main() {
    local tree, list, c, d;
    tree = new DataTree();
    list = new PathList();
    tree.ephemerals = list;
    c = new CreateNodeWorker(tree);
    d = new DeserializeWorker(tree);
    start c;
    start d;
    join c;
    join d;
  }
}
|}

let zookeeper_fixed_src =
  {|main ZooKeeper;

class DataTree { field ephemerals; }
class PathList { field paths; }

class CreateNodeWorker extends Thread {
  field tree;
  method init(tree) { this.tree = tree; }
  method run() {
    local tree, list;
    tree = this.tree;
    list = tree.ephemerals;
    sync (list) {
      list.paths = list;
    }
  }
}

class DeserializeWorker extends Thread {
  field tree;
  method init(tree) { this.tree = tree; }
  method run() {
    local tree, list;
    tree = this.tree;
    list = tree.ephemerals;
    sync (list) {
      list.paths = list;
    }
  }
}

class ZooKeeper {
  static method main() {
    local tree, list, c, d;
    tree = new DataTree();
    list = new PathList();
    tree.ephemerals = list;
    c = new CreateNodeWorker(tree);
    d = new DeserializeWorker(tree);
    start c;
    start d;
    join c;
    join d;
  }
}
|}

(* ===================================================================== *)
(* Firefox Focus 8.0.15, Bug-1581940 (2 races): GeckoAppShell's global
   application context is set from the UI thread's onCreate event while
   the Gecko background thread reads it twice in bind() without
   synchronization. *)

let firefox_src =
  {|main Focus;

class GeckoAppShell {
  static field appCtx;
}
class Context { field app; }
class GeckoLock { field held; }

// Gecko engine background thread: IChildProcess.bind()
class GeckoBinder extends Thread {
  field geckoLock;
  method init(geckoLock) { this.geckoLock = geckoLock; }
  method run() {
    local ctx, again, geckoLock;
    geckoLock = this.geckoLock;
    ctx = GeckoAppShell::appCtx;     // RACE A: read vs UI-thread write
    sync (geckoLock) {
      // bind() holds Gecko's own monitor — but the UI thread does not
      // take it, so this read races all the same (the second bug)
      again = GeckoAppShell::appCtx; // RACE B
    }
  }
}

// MainActivity.onCreate, dispatched on the UI thread
class OnCreate extends Handler {
  field ctx;
  method init(ctx) { this.ctx = ctx; }
  method handle() {
    local ctx;
    ctx = this.ctx;
    GeckoAppShell::appCtx = ctx;   // RACE A+B (writer side)
  }
}

class Focus {
  static method main() {
    local ctx, binder, oncreate, geckoLock;
    ctx = new Context();
    geckoLock = new GeckoLock();
    binder = new GeckoBinder(geckoLock);
    oncreate = new OnCreate(ctx);
    start binder;
    post oncreate();
  }
}
|}

let firefox_fixed_src =
  {|main Focus;

class GeckoAppShell {
  static field appCtx;
  static field initLock;
}
class Context { field app; }
class Lock { field held; }

class GeckoBinder extends Thread {
  field lock;
  method init(lock) { this.lock = lock; }
  method run() {
    local ctx, again, lock;
    lock = this.lock;
    sync (lock) {
      ctx = GeckoAppShell::appCtx;
      again = GeckoAppShell::appCtx;
    }
  }
}

class OnCreate extends Handler {
  field ctx; field lock;
  method init(ctx, lock) { this.ctx = ctx; this.lock = lock; }
  method handle() {
    local ctx, lock;
    ctx = this.ctx;
    lock = this.lock;
    sync (lock) {
      GeckoAppShell::appCtx = ctx;
    }
  }
}

class Focus {
  static method main() {
    local ctx, binder, oncreate, lock;
    ctx = new Context();
    lock = new Lock();
    binder = new GeckoBinder(lock);
    oncreate = new OnCreate(ctx, lock);
    start binder;
    post oncreate();
  }
}
|}

(* ===================================================================== *)
(* Redis / RedisGraph (5 races): background-I/O threads are started from
   the main thread, and module threads are started from a bio thread —
   nested thread creation, the pattern §3.2 motivates k-origin with. *)

let redis_src =
  {|main Redis;

class Server {
  field dirty; field lruclock; field loading; field statnet; field aofstate;
}
class Mutex { field held; }

// bio.c background thread, itself spawning a lazy-free helper
class BioThread extends Thread {
  field srv; field lock;
  method init(srv, lock) { this.srv = srv; this.lock = lock; }
  method run() {
    local srv, lock, helper, v;
    srv = this.srv;
    lock = this.lock;
    srv.dirty = srv;          // RACE 1: vs serverCron in main-like thread
    v = srv.loading;          // RACE 3: unprotected loading check
    helper = new LazyFree(srv);
    start helper;             // nested origin (Redis pattern)
    sync (lock) {
      srv.aofstate = srv;     // protected here...
    }
  }
}

class LazyFree extends Thread {
  field srv;
  method init(srv) { this.srv = srv; }
  method run() {
    local srv;
    srv = this.srv;
    srv.statnet = srv;        // RACE 4: vs cron stat reader
    srv.aofstate = srv;       // RACE 5: ...but unprotected here
  }
}

// serverCron, modeled as the event it is in Redis' ae event loop
class ServerCron extends Handler {
  field srv;
  method init(srv) { this.srv = srv; }
  method handle() {
    local srv, v;
    srv = this.srv;
    srv.dirty = srv;          // RACE 1 (other side)
    srv.lruclock = srv;       // RACE 2: vs module thread read
    v = srv.statnet;          // RACE 4 (reader side)
  }
}

// RedisGraph module worker
class ModuleWorker extends Thread {
  field srv;
  method init(srv) { this.srv = srv; }
  method run() {
    local srv, v;
    srv = this.srv;
    v = srv.lruclock;         // RACE 2 (reader side)
    srv.loading = srv;        // RACE 3 (writer side)
  }
}

class Redis {
  static method main() {
    local srv, lock, bio, cron, mod;
    srv = new Server();
    lock = new Mutex();
    bio = new BioThread(srv, lock);
    cron = new ServerCron(srv);
    mod = new ModuleWorker(srv);
    start bio;
    start mod;
    post cron();
  }
}
|}

(* ===================================================================== *)
(* Open vSwitch (3 races): handler threads vs revalidator threads on the
   shared udpif state. *)

let ovs_src =
  {|main Ovs;

class Udpif { field nflows; field dumpseq; field reval; }
class Mutex { field held; }

class HandlerThread extends Thread {
  field u; field lock;
  method init(u, lock) { this.u = u; this.lock = lock; }
  method run() {
    local u, lock, v;
    u = this.u;
    lock = this.lock;
    u.nflows = u;           // RACE 1: flow counter, no lock
    v = u.dumpseq;          // RACE 2: seq read vs revalidator bump
    sync (lock) {
      u.reval = u;          // properly locked
    }
  }
}

class Revalidator extends Thread {
  field u; field lock;
  method init(u, lock) { this.u = u; this.lock = lock; }
  method run() {
    local u, lock, v;
    u = this.u;
    lock = this.lock;
    v = u.nflows;           // RACE 1 (reader side)
    u.dumpseq = u;          // RACE 2 (writer side)
    u.reval = u;            // RACE 3: missing lock on this path
  }
}

class Ovs {
  static method main() {
    local u, lock, h, r;
    u = new Udpif();
    lock = new Mutex();
    h = new HandlerThread(u, lock);
    r = new Revalidator(u, lock);
    start h;
    start r;
  }
}
|}

(* ===================================================================== *)
(* cpqueue (7 races): a buggy "concurrent" priority queue where the
   author protected only the enqueue path; two identical worker threads
   exercise every unprotected structure field. *)

let cpqueue_src =
  {|main CpQueue;

class Queue {
  field head; field tail; field size; field cap; field flags; field gen;
  field waiters; field prio;
}
class Node { field next; field value; }
class Mutex { field held; }

class QWorker extends Thread {
  field q; field lock;
  method init(q, lock) { this.q = q; this.lock = lock; }
  method run() {
    local q, lock, n;
    q = this.q;
    lock = this.lock;
    n = new Node();            // thread-local node: fine
    n.value = n;
    sync (lock) {
      q.prio = q;              // the one access path the author protected
    }
    q.head = q;                // RACE 1: head written lock-free
    q.tail = q;                // RACE 2
    q.size = q;                // RACE 3
    q.cap = q;                 // RACE 4: resize without lock
    q.flags = q;               // RACE 5
    q.gen = q;                 // RACE 6
    q.waiters = q;             // RACE 7
  }
}

class CpQueue {
  static method main() {
    local q, lock, w1, w2;
    q = new Queue();
    lock = new Mutex();
    w1 = new QWorker(q, lock);
    w2 = new QWorker(q, lock);
    start w1;
    start w2;
  }
}
|}

(* ===================================================================== *)
(* mrlock (5 races): a multi-resource lock whose bitmap manipulation is
   itself unsynchronized. *)

let mrlock_src =
  {|main MrLock;

class LockState { field bitmap; field holders; field nextticket; field serving; field spin; }
class Mutex { field held; }

class Acquirer extends Thread {
  field st; field guard;
  method init(st, guard) { this.st = st; this.guard = guard; }
  method run() {
    local st, guard, v;
    st = this.st;
    guard = this.guard;
    st.bitmap = st;          // RACE 1
    st.holders = st;         // RACE 2
    st.nextticket = st;      // RACE 3: ticket bump, unprotected
    v = st.serving;          // RACE 4 (reader side)
    sync (guard) {
      st.spin = st;          // protected
    }
  }
}

class Releaser extends Thread {
  field st; field guard;
  method init(st, guard) { this.st = st; this.guard = guard; }
  method run() {
    local st, guard, v;
    st = this.st;
    guard = this.guard;
    v = st.bitmap;           // RACE 1 (reader)
    v = st.holders;          // RACE 2 (reader)
    v = st.nextticket;       // RACE 3 (reader side)
    st.serving = st;         // RACE 4: serving bump without order
    st.spin = st;            // RACE 5: forgot the guard on release
  }
}

class MrLock {
  static method main() {
    local st, guard, a, r;
    st = new LockState();
    guard = new Mutex();
    a = new Acquirer(st, guard);
    r = new Releaser(st, guard);
    start a;
    start r;
  }
}
|}

(* ===================================================================== *)
(* TDengine (6 races): vnode write threads, an http event handler and the
   sync/replication thread on the shared dnode state. *)

let tdengine_src =
  {|main TDengine;

class DnodeState {
  field vstatus; field qcount; field connections; field score; field role; field dropping;
}
class Mutex { field held; }

class VnodeWriter extends Thread {
  field st; field lock;
  method init(st, lock) { this.st = st; this.lock = lock; }
  method run() {
    local st, lock, v;
    st = this.st;
    lock = this.lock;
    st.vstatus = st;        // RACE 1
    st.qcount = st;         // RACE 2
    v = st.dropping;        // RACE 6: drop-flag poll
    sync (lock) {
      st.role = st;         // properly locked role change
    }
  }
}

class HttpHandler extends Handler {
  field st;
  method init(st) { this.st = st; }
  method handle() {
    local st, v;
    st = this.st;
    st.connections = st;    // RACE 3: vs monitor thread read
    v = st.vstatus;         // RACE 1 (reader side)
    v = st.score;           // RACE 4
  }
}

class SyncThread extends Thread {
  field st; field lock;
  method init(st, lock) { this.st = st; this.lock = lock; }
  method run() {
    local st, lock, v;
    st = this.st;
    lock = this.lock;
    v = st.connections;     // RACE 3 (reader side)
    st.score = st;          // RACE 4 (writer side)
    v = st.qcount;          // RACE 2 (reader side)
    st.role = st;           // RACE 5: role write missing the lock
    st.dropping = st;       // RACE 6 (writer side)
  }
}

class TDengine {
  static method main() {
    local st, lock, w, h, s;
    st = new DnodeState();
    lock = new Mutex();
    w = new VnodeWriter(st, lock);
    h = new HttpHandler(st);
    s = new SyncThread(st, lock);
    start w;
    start s;
    post h();
  }
}
|}

(* ===================================================================== *)
(* HBase 2.8.0, HBASE-24374 (1 race): Encryption.getKeyProvider reads and
   populates keyProviderCache without synchronization. *)

let hbase_src =
  {|main HBase;

class Encryption {
  static field keyProviderCache;
}
class Cache { field entries; }

class RegionOpener extends Thread {
  method run() {
    local fresh;
    fresh = new Cache();
    // getKeyProvider(): concurrent unsynchronized cache population —
    // both region openers may install their own provider, losing one
    Encryption::keyProviderCache = fresh;  // RACE
  }
}

class HBase {
  static method main() {
    local r1, r2, seed;
    seed = new Cache();
    Encryption::keyProviderCache = seed;   // before threads: ordered by spawn
    r1 = new RegionOpener();
    r2 = new RegionOpener();
    start r1;
    start r2;
  }
}
|}

(* ===================================================================== *)
(* Tomcat (1 race): the connector's running flag is written by the
   lifecycle event while acceptor threads poll it unlocked. *)

let tomcat_src =
  {|main Tomcat;

class Endpoint { field running; field paused; }
class Mutex { field held; }

class Acceptor extends Thread {
  field ep; field lock;
  method init(ep, lock) { this.ep = ep; this.lock = lock; }
  method run() {
    local ep, lock, v;
    ep = this.ep;
    lock = this.lock;
    v = ep.running;        // RACE: poll without the state lock
    sync (lock) {
      v = ep.paused;       // the paused flag is read correctly
    }
  }
}

class StopEvent extends Handler {
  field ep; field lock;
  method init(ep, lock) { this.ep = ep; this.lock = lock; }
  method handle() {
    local ep, lock;
    ep = this.ep;
    lock = this.lock;
    ep.running = ep;       // RACE (writer side)
    sync (lock) {
      ep.paused = ep;
    }
  }
}

class Tomcat {
  static method main() {
    local ep, lock, a, stop;
    ep = new Endpoint();
    lock = new Mutex();
    a = new Acceptor(ep, lock);
    stop = new StopEvent(ep, lock);
    start a;
    post stop();
  }
}
|}

(* ===================================================================== *)
(* Fixed variants: the developers' repairs — every previously-racy access
   is placed under the common lock (or, for hbase, the openers are
   serialized by joining the first before starting the second). *)

let redis_fixed_src =
  {|main Redis;

class Server {
  field dirty; field lruclock; field loading; field statnet; field aofstate;
}
class Mutex { field held; }

class BioThread extends Thread {
  field srv; field lock;
  method init(srv, lock) { this.srv = srv; this.lock = lock; }
  method run() {
    local srv, lock, helper, v;
    srv = this.srv;
    lock = this.lock;
    helper = new LazyFree(srv, lock);
    start helper;
    sync (lock) {
      srv.dirty = srv;
      v = srv.loading;
      srv.aofstate = srv;
    }
  }
}

class LazyFree extends Thread {
  field srv; field lock;
  method init(srv, lock) { this.srv = srv; this.lock = lock; }
  method run() {
    local srv, lock;
    srv = this.srv;
    lock = this.lock;
    sync (lock) {
      srv.statnet = srv;
      srv.aofstate = srv;
    }
  }
}

class ServerCron extends Handler {
  field srv; field lock;
  method init(srv, lock) { this.srv = srv; this.lock = lock; }
  method handle() {
    local srv, lock, v;
    srv = this.srv;
    lock = this.lock;
    sync (lock) {
      srv.dirty = srv;
      srv.lruclock = srv;
      v = srv.statnet;
    }
  }
}

class ModuleWorker extends Thread {
  field srv; field lock;
  method init(srv, lock) { this.srv = srv; this.lock = lock; }
  method run() {
    local srv, lock, v;
    srv = this.srv;
    lock = this.lock;
    sync (lock) {
      v = srv.lruclock;
      srv.loading = srv;
    }
  }
}

class Redis {
  static method main() {
    local srv, lock, bio, cron, mod;
    srv = new Server();
    lock = new Mutex();
    bio = new BioThread(srv, lock);
    cron = new ServerCron(srv, lock);
    mod = new ModuleWorker(srv, lock);
    start bio;
    start mod;
    post cron();
  }
}
|}

let ovs_fixed_src =
  {|main Ovs;

class Udpif { field nflows; field dumpseq; field reval; }
class Mutex { field held; }

class HandlerThread extends Thread {
  field u; field lock;
  method init(u, lock) { this.u = u; this.lock = lock; }
  method run() {
    local u, lock, v;
    u = this.u;
    lock = this.lock;
    sync (lock) {
      u.nflows = u;
      v = u.dumpseq;
      u.reval = u;
    }
  }
}

class Revalidator extends Thread {
  field u; field lock;
  method init(u, lock) { this.u = u; this.lock = lock; }
  method run() {
    local u, lock, v;
    u = this.u;
    lock = this.lock;
    sync (lock) {
      v = u.nflows;
      u.dumpseq = u;
      u.reval = u;
    }
  }
}

class Ovs {
  static method main() {
    local u, lock, h, r;
    u = new Udpif();
    lock = new Mutex();
    h = new HandlerThread(u, lock);
    r = new Revalidator(u, lock);
    start h;
    start r;
  }
}
|}

let cpqueue_fixed_src =
  {|main CpQueue;

class Queue {
  field head; field tail; field size; field cap; field flags; field gen;
  field waiters; field prio;
}
class Node { field next; field value; }
class Mutex { field held; }

class QWorker extends Thread {
  field q; field lock;
  method init(q, lock) { this.q = q; this.lock = lock; }
  method run() {
    local q, lock, n;
    q = this.q;
    lock = this.lock;
    n = new Node();
    n.value = n;
    sync (lock) {
      q.prio = q;
      q.head = q;
      q.tail = q;
      q.size = q;
      q.cap = q;
      q.flags = q;
      q.gen = q;
      q.waiters = q;
    }
  }
}

class CpQueue {
  static method main() {
    local q, lock, w1, w2;
    q = new Queue();
    lock = new Mutex();
    w1 = new QWorker(q, lock);
    w2 = new QWorker(q, lock);
    start w1;
    start w2;
  }
}
|}

let mrlock_fixed_src =
  {|main MrLock;

class LockState { field bitmap; field holders; field nextticket; field serving; field spin; }
class Mutex { field held; }

class Acquirer extends Thread {
  field st; field guard;
  method init(st, guard) { this.st = st; this.guard = guard; }
  method run() {
    local st, guard, v;
    st = this.st;
    guard = this.guard;
    sync (guard) {
      st.bitmap = st;
      st.holders = st;
      st.nextticket = st;
      v = st.serving;
      st.spin = st;
    }
  }
}

class Releaser extends Thread {
  field st; field guard;
  method init(st, guard) { this.st = st; this.guard = guard; }
  method run() {
    local st, guard, v;
    st = this.st;
    guard = this.guard;
    sync (guard) {
      v = st.bitmap;
      v = st.holders;
      v = st.nextticket;
      st.serving = st;
      st.spin = st;
    }
  }
}

class MrLock {
  static method main() {
    local st, guard, a, r;
    st = new LockState();
    guard = new Mutex();
    a = new Acquirer(st, guard);
    r = new Releaser(st, guard);
    start a;
    start r;
  }
}
|}

let tdengine_fixed_src =
  {|main TDengine;

class DnodeState {
  field vstatus; field qcount; field connections; field score; field role; field dropping;
}
class Mutex { field held; }

class VnodeWriter extends Thread {
  field st; field lock;
  method init(st, lock) { this.st = st; this.lock = lock; }
  method run() {
    local st, lock, v;
    st = this.st;
    lock = this.lock;
    sync (lock) {
      st.vstatus = st;
      st.qcount = st;
      v = st.dropping;
      st.role = st;
    }
  }
}

class HttpHandler extends Handler {
  field st; field lock;
  method init(st, lock) { this.st = st; this.lock = lock; }
  method handle() {
    local st, lock, v;
    st = this.st;
    lock = this.lock;
    sync (lock) {
      st.connections = st;
      v = st.vstatus;
      v = st.score;
    }
  }
}

class SyncThread extends Thread {
  field st; field lock;
  method init(st, lock) { this.st = st; this.lock = lock; }
  method run() {
    local st, lock, v;
    st = this.st;
    lock = this.lock;
    sync (lock) {
      v = st.connections;
      st.score = st;
      v = st.qcount;
      st.role = st;
      st.dropping = st;
    }
  }
}

class TDengine {
  static method main() {
    local st, lock, w, h, s;
    st = new DnodeState();
    lock = new Mutex();
    w = new VnodeWriter(st, lock);
    h = new HttpHandler(st, lock);
    s = new SyncThread(st, lock);
    start w;
    start s;
    post h();
  }
}
|}

let hbase_fixed_src =
  {|main HBase;

class Encryption {
  static field keyProviderCache;
}
class Cache { field entries; }

class RegionOpener extends Thread {
  method run() {
    local fresh;
    fresh = new Cache();
    Encryption::keyProviderCache = fresh;
  }
}

class HBase {
  static method main() {
    local r1, r2, seed;
    seed = new Cache();
    Encryption::keyProviderCache = seed;
    r1 = new RegionOpener();
    start r1;
    join r1;            // the fix: serialize the cache population
    r2 = new RegionOpener();
    start r2;
    join r2;
  }
}
|}

let tomcat_fixed_src =
  {|main Tomcat;

class Endpoint { field running; field paused; }
class Mutex { field held; }

class Acceptor extends Thread {
  field ep; field lock;
  method init(ep, lock) { this.ep = ep; this.lock = lock; }
  method run() {
    local ep, lock, v;
    ep = this.ep;
    lock = this.lock;
    sync (lock) {
      v = ep.running;
      v = ep.paused;
    }
  }
}

class StopEvent extends Handler {
  field ep; field lock;
  method init(ep, lock) { this.ep = ep; this.lock = lock; }
  method handle() {
    local ep, lock;
    ep = this.ep;
    lock = this.lock;
    sync (lock) {
      ep.running = ep;
      ep.paused = ep;
    }
  }
}

class Tomcat {
  static method main() {
    local ep, lock, a, stop;
    ep = new Endpoint();
    lock = new Mutex();
    a = new Acceptor(ep, lock);
    stop = new StopEvent(ep, lock);
    start a;
    post stop();
  }
}
|}

let mk name expected describe racy fixed =
  {
    name;
    expected_races = expected;
    program = parse name racy;
    fixed = parse (name ^ "-fixed") fixed;
    describe;
  }

let all =
  [
    mk "linux" 6
      "vsyscall tz update, gpio driver vs threaded irq, kthread buffer, \
       concurrent syscall self-races"
      linux_src linux_fixed_src;
    mk "tdengine" 6
      "dnode status/queue/connection/score/role/drop-flag races between \
       vnode writers, the http event handler and the sync thread"
      tdengine_src tdengine_fixed_src;
    mk "redis" 5
      "serverCron event vs bio/module threads; nested thread creation \
       (bio thread spawns lazy-free helper)"
      redis_src redis_fixed_src;
    mk "ovs" 3 "handler vs revalidator threads on shared udpif state"
      ovs_src ovs_fixed_src;
    mk "cpqueue" 7
      "lock-free priority queue with only the enqueue path protected"
      cpqueue_src cpqueue_fixed_src;
    mk "mrlock" 5 "multi-resource lock with unsynchronized bitmap updates"
      mrlock_src mrlock_fixed_src;
    mk "memcached" 3
      "slab reassign event vs worker slab growth; stats counters; \
       stop_main_loop flag"
      memcached_src memcached_fixed_src;
    mk "firefox" 2
      "GeckoAppShell application context: UI-thread onCreate write vs two \
       Gecko background-thread reads (Bug-1581940)"
      firefox_src firefox_fixed_src;
    mk "zookeeper" 1
      "DataTree ephemerals list: createNode locks it, deserialize does not \
       (ZOOKEEPER-3819)"
      zookeeper_src zookeeper_fixed_src;
    mk "hbase" 1
      "Encryption.keyProviderCache populated without synchronization \
       (HBASE-24374)"
      hbase_src hbase_fixed_src;
    mk "tomcat" 1
      "endpoint running flag: lifecycle stop event vs acceptor poll"
      tomcat_src tomcat_fixed_src;
  ]

let find name = List.find (fun m -> m.name = name) all
