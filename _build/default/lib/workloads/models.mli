(** CIR models of the real-world races O2 found (§5.4, Table 10).

    Each model transcribes the published buggy code structure — the
    thread/event mix, the lock discipline, and the defect — into CIR, sized
    so that O2 reports exactly the number of confirmed races in Table 10.
    Each model also has a [*_fixed] variant with the missing synchronization
    added, on which O2 must report zero races (the regression the paper's
    developers applied).

    All these races arise from thread–event interaction or from concurrent
    instances of the same entry point, the situations §2 argues require the
    unified origin abstraction. *)

type model = {
  name : string;
  expected_races : int;  (** the Table 10 count *)
  program : unit -> O2_ir.Program.t;
  fixed : unit -> O2_ir.Program.t;
  describe : string;  (** one-line summary of the underlying bug *)
}

(** All models, in Table 10 column order: Linux, TDengine, Redis/RedisGraph,
    OVS, cpqueue, mrlock, Memcached, Firefox, ZooKeeper, HBase, Tomcat. *)
val all : model list

val find : string -> model
(** @raise Not_found for unknown names *)

(** Individual sources (parseable CIR), exported for the examples. *)
val memcached_src : string

val zookeeper_src : string
val firefox_src : string
val linux_src : string
