let figure2_src =
  {|// Figure 2 of the paper, in CIR. Two threads share s but use
// thread-local Data objects y; only origin-sensitivity sees that
// the two y's are distinct and that each thread runs a different
// Op implementation selected by its origin attributes.
main Main;

class Data { field val; }

class Op1 {
  method util(y) {
    y.val = y;          // Op1 writes y.val
  }
}

class Op2 {
  method util(y) {
    local z;
    z = y.val;          // Op2 only reads
  }
}

class T extends Thread {
  field s;
  field op;
  method init(s, op) { this.s = s; this.op = op; }
  method sub1() { this.sub2(); }
  method sub2() { this.subN(); }
  method subN() {
    local op, y;
    y = new Data();     // line 13 of the paper: per-origin object
    op = this.op;
    op.util(y);         // act(): dispatched per origin attribute
  }
  method run() {
    this.sub1();
  }
}

class Main {
  static method main() {
    local s, op1, op2, t1, t2;
    s = new Data();
    op1 = new Op1();
    op2 = new Op2();
    t1 = new T(s, op1); // origin T1, attributes (s, op1)
    t2 = new T(s, op2); // origin T2, attributes (s, op2)
    start t1;
    start t2;
    join t1;
    join t2;
  }
}
|}

let figure3_src =
  {|// Figure 3 of the paper: the shared super-constructor T() allocates
// field f. Without the context switch at origin allocations, both
// threads' f would be one abstract object (false aliasing).
main Main;

class Obj { field x; }

class T extends Thread {
  field f;
  method init() {
    local o;
    o = new Obj();      // line 14: (of, Ta) and (of, Tb) under OPA
    this.f = o;
  }
  method run() {
    local f;
    f = this.f;
    f.x = f;            // do_something(): writes the per-thread f
  }
}

class TA extends T {
}

class TB extends T {
}

class Main {
  static method main() {
    local a, b;
    a = new TA();       // oa -> origin Ta
    b = new TB();       // ob -> origin Tb
    start a;
    start b;
  }
}
|}

let figure2 () = O2_frontend.Parser.parse_string ~file:"figure2.cir" figure2_src
let figure3 () = O2_frontend.Parser.parse_string ~file:"figure3.cir" figure3_src
