(** A concrete CIR interpreter with a seeded random scheduler.

    The substrate for validating the static analyses: programs execute with
    per-statement interleaving of threads, an Android-style single event
    dispatcher running posted handlers to completion in FIFO order (§4.2's
    runtime model), reentrant per-object monitors, and nondeterministic
    [if]/[while] resolved by the seeded RNG. Execution emits an {!event}
    stream consumed by {!Dynrace}, the vector-clock dynamic race detector.

    CIR is a pure pointer language — no arithmetic — so the observable
    behaviour of a run is its event trace. *)

open O2_ir

type event =
  | Eread of { task : int; addr : int; field : string; sid : int }
  | Ewrite of { task : int; addr : int; field : string; sid : int }
  | Esread of { task : int; cls : string; field : string; sid : int }
      (** static-field read *)
  | Eswrite of { task : int; cls : string; field : string; sid : int }
  | Eacquire of { task : int; lock : int }
  | Erelease of { task : int; lock : int }
  | Espawn of { parent : int; child : int }
      (** thread start; also emitted when the dispatcher picks up a posted
          event, [parent] being the posting task *)
  | Ejoin of { parent : int; child : int }
  | Esignal of { task : int; sem : int }  (** semaphore post on object [sem] *)
  | Ewait of { task : int; sem : int }
      (** semaphore wait completed (the task consumed a signal) *)

type outcome = {
  steps : int;
  completed : bool;  (** all tasks ran to completion (no deadlock/limit) *)
  deadlocked : bool;
  events : event list;  (** in execution order *)
}

exception Runtime_error of string
(** Null dereference, calling a missing method, etc. *)

(** [run ?seed ?chooser ?max_steps ?on_event p] executes [p].

    @param seed scheduler RNG seed (default 0)
    @param chooser overrides every nondeterministic choice (task selection,
    [if] arms, [while] continuation): called with the number of
    alternatives, must return an index in range. {!Explore} uses this to
    enumerate schedules systematically.
    @param visible_only partial-order reduction: schedule-switch only at
    globally-visible operations (accesses, lock ops, spawns/joins,
    semaphores) — every event interleaving is still reachable, but the
    choice tree shrinks by orders of magnitude
    @param max_steps global step budget (default 100_000)
    @param on_event called on each event as it happens *)
val run :
  ?seed:int ->
  ?chooser:(int -> int) ->
  ?visible_only:bool ->
  ?max_steps:int ->
  ?on_event:(event -> unit) ->
  Program.t ->
  outcome
