lib/runtime/interp.mli: O2_ir Program
