lib/runtime/explore.mli: Dynrace O2_ir
