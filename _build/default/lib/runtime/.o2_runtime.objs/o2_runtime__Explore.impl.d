lib/runtime/explore.ml: Array Dynrace Hashtbl Interp List
