lib/runtime/dynrace.ml: Hashtbl Interp List Printf Vclock
