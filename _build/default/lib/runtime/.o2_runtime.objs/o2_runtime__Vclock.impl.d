lib/runtime/vclock.ml: Format Int List Map Printf String
