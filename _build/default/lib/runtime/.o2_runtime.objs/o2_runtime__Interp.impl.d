lib/runtime/interp.ml: Ast Hashtbl List O2_ir Option Printf Program Queue Random
