lib/runtime/dynrace.mli: Interp O2_ir
