lib/runtime/vclock.mli: Format
