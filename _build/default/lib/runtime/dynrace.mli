(** A vector-clock dynamic race detector over {!Interp} event traces, in the
    style of the happens-before detectors the paper cites (FastTrack et
    al.).

    Used as executable ground truth: a race this detector observes in {e
    some} interleaving of a program is certainly real, so the test suite
    asserts that every dynamically-observed race is also in O2's static
    report (static soundness on the explored schedules). *)

type race = {
  d_sid_a : int;  (** statement id of the earlier access *)
  d_sid_b : int;  (** statement id of the racing access *)
  d_field : string;
  d_location : string;  (** rendered location, for messages *)
}

type t

val create : unit -> t

(** [handler t] is the event callback to pass to {!Interp.run}. *)
val handler : t -> Interp.event -> unit

(** [races t] lists distinct races seen so far (by sid pair + field). *)
val races : t -> race list

(** [check ?seeds ?max_steps p] runs the program once per seed and collects
    the union of observed races. *)
val check : ?seeds:int list -> ?max_steps:int -> O2_ir.Program.t -> race list
