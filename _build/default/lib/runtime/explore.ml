type report = {
  runs : int;
  exhaustive : bool;
  races : Dynrace.race list;
  deadlocks : int;
}

(* One execution is identified by the sequence of alternatives taken at
   each choice point. DFS: replay a prefix, extend with first alternatives,
   record the branching factor met at each depth, then backtrack to the
   deepest choice with an untried alternative. *)
let explore ?(max_runs = 2000) ?(max_steps = 20_000) p =
  let seen_races = Hashtbl.create 16 in
  let races = ref [] in
  let deadlocks = ref 0 in
  let runs = ref 0 in
  let exhausted = ref false in
  (* the current path: (choice taken, #alternatives) from root to leaf *)
  let path : (int * int) array ref = ref [||] in
  let continue_ = ref true in
  while !continue_ && !runs < max_runs do
    incr runs;
    (* replay the prefix in [path], then take 0 for new choice points *)
    let depth = ref 0 in
    let trace = ref [] in
    let chooser n =
      let d = !depth in
      incr depth;
      let taken = if d < Array.length !path then fst (Array.get !path d) else 0 in
      let taken = if taken >= n then 0 else taken in
      trace := (taken, n) :: !trace;
      taken
    in
    let detector = Dynrace.create () in
    let outcome =
      Interp.run ~chooser ~visible_only:true ~max_steps
        ~on_event:(Dynrace.handler detector) p
    in
    if outcome.Interp.deadlocked then incr deadlocks;
    List.iter
      (fun (r : Dynrace.race) ->
        let k = (r.Dynrace.d_sid_a, r.Dynrace.d_sid_b, r.Dynrace.d_field) in
        if not (Hashtbl.mem seen_races k) then begin
          Hashtbl.add seen_races k ();
          races := r :: !races
        end)
      (Dynrace.races detector);
    (* backtrack: drop trailing choices with no untried alternative, then
       advance the deepest one that has *)
    let arr = Array.of_list (List.rev !trace) in
    let i = ref (Array.length arr - 1) in
    while !i >= 0 && fst arr.(!i) + 1 >= snd arr.(!i) do
      decr i
    done;
    if !i < 0 then begin
      continue_ := false;
      exhausted := true
    end
    else begin
      let prefix = Array.sub arr 0 (!i + 1) in
      let taken, n = prefix.(!i) in
      prefix.(!i) <- (taken + 1, n);
      path := prefix
    end
  done;
  {
    runs = !runs;
    exhaustive = !exhausted;
    races = List.rev !races;
    deadlocks = !deadlocks;
  }
