type race = {
  d_sid_a : int;
  d_sid_b : int;
  d_field : string;
  d_location : string;
}

(* last accesses to one location: per task, the clock and sid at access *)
type loc_state = {
  mutable writes : (int * int * int) list;  (* task, clock, sid *)
  mutable reads : (int * int * int) list;
}

type t = {
  mutable task_vc : (int * Vclock.t) list;
  mutable lock_vc : (int * Vclock.t) list;
  mutable sem_vc : (int * Vclock.t) list;
  locs : (string, loc_state) Hashtbl.t;
  mutable found : race list;
  seen : (int * int * string, unit) Hashtbl.t;
}

let create () =
  {
    task_vc = [];
    lock_vc = [];
    sem_vc = [];
    locs = Hashtbl.create 64;
    found = [];
    seen = Hashtbl.create 16;
  }

let vc_of t tid =
  match List.assoc_opt tid t.task_vc with
  | Some vc -> vc
  | None -> Vclock.tick Vclock.empty tid

let set_vc t tid vc = t.task_vc <- (tid, vc) :: List.remove_assoc tid t.task_vc

let lock_vc_of t l =
  match List.assoc_opt l t.lock_vc with Some vc -> vc | None -> Vclock.empty

let set_lock_vc t l vc = t.lock_vc <- (l, vc) :: List.remove_assoc l t.lock_vc

let loc t key =
  match Hashtbl.find_opt t.locs key with
  | Some ls -> ls
  | None ->
      let ls = { writes = []; reads = [] } in
      Hashtbl.add t.locs key ls;
      ls

let report t ~sid_a ~sid_b ~field ~location =
  let a = min sid_a sid_b and b = max sid_a sid_b in
  if not (Hashtbl.mem t.seen (a, b, field)) then begin
    Hashtbl.add t.seen (a, b, field) ();
    t.found <-
      { d_sid_a = a; d_sid_b = b; d_field = field; d_location = location }
      :: t.found
  end

(* prior access (task u at clock c) is ordered before the current one iff
   c ≤ VC_current[u] *)
let ordered vc (u, c, _) = c <= Vclock.get vc u

let on_access t ~task ~key ~field ~sid ~is_write =
  let vc = vc_of t task in
  let ls = loc t key in
  let conflicts = if is_write then ls.reads @ ls.writes else ls.writes in
  List.iter
    (fun ((u, _, prev_sid) as prior) ->
      if u <> task && not (ordered vc prior) then
        report t ~sid_a:prev_sid ~sid_b:sid ~field ~location:key)
    conflicts;
  let entry = (task, Vclock.get vc task, sid) in
  if is_write then
    ls.writes <- entry :: List.filter (fun (u, _, _) -> u <> task) ls.writes
  else ls.reads <- entry :: List.filter (fun (u, _, _) -> u <> task) ls.reads

let handler t (e : Interp.event) =
  match e with
  | Interp.Eread { task; addr; field; sid } ->
      on_access t ~task
        ~key:(Printf.sprintf "#%d.%s" addr field)
        ~field ~sid ~is_write:false
  | Interp.Ewrite { task; addr; field; sid } ->
      on_access t ~task
        ~key:(Printf.sprintf "#%d.%s" addr field)
        ~field ~sid ~is_write:true
  | Interp.Esread { task; cls; field; sid } ->
      on_access t ~task
        ~key:(Printf.sprintf "%s::%s" cls field)
        ~field:(cls ^ "::" ^ field) ~sid ~is_write:false
  | Interp.Eswrite { task; cls; field; sid } ->
      on_access t ~task
        ~key:(Printf.sprintf "%s::%s" cls field)
        ~field:(cls ^ "::" ^ field) ~sid ~is_write:true
  | Interp.Eacquire { task; lock } ->
      set_vc t task (Vclock.join (vc_of t task) (lock_vc_of t lock))
  | Interp.Erelease { task; lock } ->
      let vc = vc_of t task in
      set_lock_vc t lock vc;
      set_vc t task (Vclock.tick vc task)
  | Interp.Espawn { parent; child } ->
      let pvc = vc_of t parent in
      set_vc t child (Vclock.tick (Vclock.join (vc_of t child) pvc) child);
      set_vc t parent (Vclock.tick pvc parent)
  | Interp.Ejoin { parent; child } ->
      set_vc t parent (Vclock.join (vc_of t parent) (vc_of t child))
  | Interp.Esignal { task; sem } ->
      let cur =
        match List.assoc_opt sem t.sem_vc with
        | Some vc -> vc
        | None -> Vclock.empty
      in
      let vc = vc_of t task in
      t.sem_vc <- (sem, Vclock.join cur vc) :: List.remove_assoc sem t.sem_vc;
      set_vc t task (Vclock.tick vc task)
  | Interp.Ewait { task; sem } -> (
      match List.assoc_opt sem t.sem_vc with
      | Some vc -> set_vc t task (Vclock.join (vc_of t task) vc)
      | None -> ())

let races t = List.rev t.found

let check ?(seeds = [ 0; 1; 2; 3; 4; 5; 6; 7 ]) ?(max_steps = 100_000) p =
  (* a fresh detector per run: addresses and clocks are per-execution *)
  let union = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun seed ->
      let t = create () in
      ignore (Interp.run ~seed ~max_steps ~on_event:(handler t) p);
      List.iter
        (fun r ->
          let k = (r.d_sid_a, r.d_sid_b, r.d_field) in
          if not (Hashtbl.mem union k) then begin
            Hashtbl.add union k ();
            out := r :: !out
          end)
        (races t))
    seeds;
  List.rev !out
