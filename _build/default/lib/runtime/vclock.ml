module IntMap = Map.Make (Int)

type t = int IntMap.t

let empty = IntMap.empty
let get vc tid = match IntMap.find_opt tid vc with Some c -> c | None -> 0
let set vc tid c = IntMap.add tid c vc
let tick vc tid = set vc tid (get vc tid + 1)

let join a b =
  IntMap.union (fun _ x y -> Some (max x y)) a b

let leq a b = IntMap.for_all (fun tid c -> c <= get b tid) a

let pp ppf vc =
  Format.fprintf ppf "⟨%s⟩"
    (String.concat ","
       (List.map
          (fun (t, c) -> Printf.sprintf "%d:%d" t c)
          (IntMap.bindings vc)))
