(** Bounded systematic schedule exploration — stateless-model-checking in
    the CHESS style (Musuvathi et al., cited as [42] in the paper).

    Enumerates executions by depth-first search over the interpreter's
    choice points (task selection, [if] arms, [while] continuations),
    running the vector-clock detector on each. Within the run budget this
    gives the strongest dynamic ground truth available: a race it finds is
    real in a concrete schedule; a deadlock it finds is a real schedule
    that hangs.

    Exploration is exhaustive when the program's choice tree fits in
    [max_runs] executions (the report says so); otherwise it is a
    depth-first prefix of the tree. *)

type report = {
  runs : int;  (** executions explored *)
  exhaustive : bool;  (** the whole choice tree was covered *)
  races : Dynrace.race list;  (** union over all executions *)
  deadlocks : int;  (** executions that deadlocked *)
}

(** [explore ?max_runs ?max_steps p] enumerates schedules of [p].

    @param max_runs execution budget (default 2000)
    @param max_steps per-execution step budget (default 20_000) *)
val explore : ?max_runs:int -> ?max_steps:int -> O2_ir.Program.t -> report
