open O2_ir

type event =
  | Eread of { task : int; addr : int; field : string; sid : int }
  | Ewrite of { task : int; addr : int; field : string; sid : int }
  | Esread of { task : int; cls : string; field : string; sid : int }
  | Eswrite of { task : int; cls : string; field : string; sid : int }
  | Eacquire of { task : int; lock : int }
  | Erelease of { task : int; lock : int }
  | Espawn of { parent : int; child : int }
  | Ejoin of { parent : int; child : int }
  | Esignal of { task : int; sem : int }
  | Ewait of { task : int; sem : int }

type outcome = {
  steps : int;
  completed : bool;
  deadlocked : bool;
  events : event list;
}

exception Runtime_error of string

type value = VNull | VRef of int

type obj = {
  o_class : string;
  o_fields : (string, value) Hashtbl.t;
  mutable o_cell : value;  (* the single abstract array cell *)
}

(* a work item on a frame's agenda *)
type work =
  | WStmt of Ast.stmt
  | WRelease of int  (* release monitor of this object on exit of sync *)

type frame = {
  meth : Program.meth;
  env : (string, value) Hashtbl.t;
  mutable agenda : work list;
  ret_to : (frame * string) option;  (* caller frame + var to set on return *)
}

type status =
  | Runnable
  | Blocked_lock of int
  | Blocked_join of int  (* tid *)
  | Blocked_sem of int  (* semaphore addr *)
  | Finished

type task = {
  tid : int;
  mutable frames : frame list;
  mutable status : status;
  is_dispatcher : bool;
}

type monitor = { mutable owner : int option; mutable count : int }

type state = {
  program : Program.t;
  choose : int -> int;  (* pick an alternative in [0, n-1] *)
  heap : (int, obj) Hashtbl.t;
  mutable next_addr : int;
  monitors : (int, monitor) Hashtbl.t;
  sems : (int, int ref) Hashtbl.t;  (* semaphore counters per object *)
  mutable tasks : task list;
  mutable next_tid : int;
  mutable events : event list;
  on_event : event -> unit;
  (* FIFO of posted events: handler object addr, args, posting tid *)
  event_queue : (int * value list * int) Queue.t;
  (* threads by the addr of their thread object, for join *)
  mutable thread_of_obj : (int * int) list;  (* addr, tid *)
}

let emit st e =
  st.events <- e :: st.events;
  st.on_event e

let alloc st cls =
  let addr = st.next_addr in
  st.next_addr <- addr + 1;
  Hashtbl.add st.heap addr
    { o_class = cls; o_fields = Hashtbl.create 8; o_cell = VNull };
  addr

let lookup env v =
  match Hashtbl.find_opt env v with Some value -> value | None -> VNull

let deref st env v =
  match lookup env v with
  | VRef addr -> (addr, Hashtbl.find st.heap addr)
  | VNull -> raise (Runtime_error (Printf.sprintf "null dereference of %s" v))

let new_frame meth ~this ~args ~ret_to =
  let env = Hashtbl.create 16 in
  (match this with Some v -> Hashtbl.replace env "this" v | None -> ());
  List.iteri
    (fun i p ->
      Hashtbl.replace env p
        (match List.nth_opt args i with Some v -> v | None -> VNull))
    meth.Program.m_params;
  {
    meth;
    env;
    agenda = List.map (fun s -> WStmt s) meth.Program.m_body;
    ret_to;
  }

let spawn_task st ~frames ~is_dispatcher =
  let t =
    { tid = st.next_tid; frames; status = Runnable; is_dispatcher }
  in
  st.next_tid <- t.tid + 1;
  st.tasks <- st.tasks @ [ t ];
  t

let monitor st addr =
  match Hashtbl.find_opt st.monitors addr with
  | Some m -> m
  | None ->
      let m = { owner = None; count = 0 } in
      Hashtbl.add st.monitors addr m;
      m

let push_call st task (target : Program.meth) ~this ~args ~ret =
  ignore st;
  let caller = List.hd task.frames in
  let ret_to = Option.map (fun v -> (caller, v)) ret in
  let f = new_frame target ~this ~args ~ret_to in
  task.frames <- f :: task.frames

let pop_frame task value =
  match task.frames with
  | [] -> ()
  | f :: rest ->
      (match f.ret_to with
      | Some (caller, v) -> Hashtbl.replace caller.env v value
      | None -> ());
      task.frames <- rest

(* execute exactly one work item of [task]; may block the task *)
let rec step_task st task =
  match task.frames with
  | [] ->
      if task.is_dispatcher then begin
        (* pick up the next posted event, if any *)
        match Queue.take_opt st.event_queue with
        | Some (addr, args, poster) -> (
            let o = Hashtbl.find st.heap addr in
            match Program.entry_method st.program o.o_class with
            | Some entry ->
                emit st (Espawn { parent = poster; child = task.tid });
                task.frames <-
                  [ new_frame entry ~this:(Some (VRef addr)) ~args ~ret_to:None ]
            | None -> ())
        | None -> ()
      end
      else task.status <- Finished
  | frame :: _ -> (
      match frame.agenda with
      | [] -> pop_frame task VNull
      | w :: rest -> (
          frame.agenda <- rest;
          match w with
          | WRelease addr ->
              let m = monitor st addr in
              m.count <- m.count - 1;
              if m.count = 0 then begin
                m.owner <- None;
                emit st (Erelease { task = task.tid; lock = addr })
              end
          | WStmt s -> exec_stmt st task frame s))

and exec_stmt st task frame (s : Ast.stmt) =
  let sid = s.Ast.sid in
  let env = frame.env in
  let p = st.program in
  match s.Ast.sk with
  | Ast.Null x -> Hashtbl.replace env x VNull
  | Ast.Assign (x, y) -> Hashtbl.replace env x (lookup env y)
  | Ast.New (x, c, args) -> (
      let addr = alloc st c in
      Hashtbl.replace env x (VRef addr);
      match Program.dispatch p c "init" with
      | Some init ->
          push_call st task init ~this:(Some (VRef addr))
            ~args:(List.map (lookup env) args)
            ~ret:None
      | None -> ())
  | Ast.FieldWrite (x, f, y) ->
      let addr, o = deref st env x in
      emit st (Ewrite { task = task.tid; addr; field = f; sid });
      Hashtbl.replace o.o_fields f (lookup env y)
  | Ast.FieldRead (x, y, f) ->
      let addr, o = deref st env y in
      emit st (Eread { task = task.tid; addr; field = f; sid });
      Hashtbl.replace env x
        (match Hashtbl.find_opt o.o_fields f with Some v -> v | None -> VNull)
  | Ast.ArrayWrite (x, y) ->
      let addr, o = deref st env x in
      emit st (Ewrite { task = task.tid; addr; field = "*"; sid });
      o.o_cell <- lookup env y
  | Ast.ArrayRead (x, y) ->
      let addr, o = deref st env y in
      emit st (Eread { task = task.tid; addr; field = "*"; sid });
      Hashtbl.replace env x o.o_cell
  | Ast.StaticWrite (c, f, y) ->
      emit st (Eswrite { task = task.tid; cls = c; field = f; sid });
      Hashtbl.replace st.heap (-1)
        (match Hashtbl.find_opt st.heap (-1) with
        | Some g -> g
        | None -> { o_class = "<globals>"; o_fields = Hashtbl.create 16; o_cell = VNull });
      let g = Hashtbl.find st.heap (-1) in
      Hashtbl.replace g.o_fields (c ^ "::" ^ f) (lookup env y)
  | Ast.StaticRead (x, c, f) ->
      emit st (Esread { task = task.tid; cls = c; field = f; sid });
      let v =
        match Hashtbl.find_opt st.heap (-1) with
        | Some g -> (
            match Hashtbl.find_opt g.o_fields (c ^ "::" ^ f) with
            | Some v -> v
            | None -> VNull)
        | None -> VNull
      in
      Hashtbl.replace env x v
  | Ast.Call (ret, y, mname, args) -> (
      let _, o = deref st env y in
      match Program.dispatch p o.o_class mname with
      | Some target ->
          push_call st task target ~this:(Some (lookup env y))
            ~args:(List.map (lookup env) args)
            ~ret
      | None ->
          raise
            (Runtime_error
               (Printf.sprintf "no method %s on class %s" mname o.o_class)))
  | Ast.StaticCall (ret, c, mname, args) -> (
      match Program.static_method p c mname with
      | Some target ->
          push_call st task target ~this:None
            ~args:(List.map (lookup env) args)
            ~ret
      | None ->
          raise
            (Runtime_error (Printf.sprintf "no static method %s::%s" c mname)))
  | Ast.Start x -> (
      let addr, o = deref st env x in
      match
        (Program.kind_of p o.o_class, Program.entry_method p o.o_class)
      with
      | Program.Kthread _, Some entry ->
          let child =
            spawn_task st
              ~frames:
                [ new_frame entry ~this:(Some (VRef addr)) ~args:[] ~ret_to:None ]
              ~is_dispatcher:false
          in
          st.thread_of_obj <- (addr, child.tid) :: st.thread_of_obj;
          emit st (Espawn { parent = task.tid; child = child.tid })
      | _ -> raise (Runtime_error "start on a non-thread object"))
  | Ast.Post (x, args) -> (
      let addr, o = deref st env x in
      match Program.kind_of p o.o_class with
      | Program.Khandler _ ->
          Queue.add (addr, List.map (lookup env) args, task.tid) st.event_queue
      | _ -> raise (Runtime_error "post to a non-handler object"))
  | Ast.Signal x ->
      let addr, _ = deref st env x in
      let c =
        match Hashtbl.find_opt st.sems addr with
        | Some c -> c
        | None ->
            let c = ref 0 in
            Hashtbl.add st.sems addr c;
            c
      in
      incr c;
      emit st (Esignal { task = task.tid; sem = addr })
  | Ast.Wait x -> (
      let addr, _ = deref st env x in
      match Hashtbl.find_opt st.sems addr with
      | Some c when !c > 0 ->
          decr c;
          emit st (Ewait { task = task.tid; sem = addr })
      | _ ->
          (* retry the wait when a signal arrives *)
          frame.agenda <- WStmt s :: frame.agenda;
          task.status <- Blocked_sem addr)
  | Ast.Join x -> (
      let addr, _ = deref st env x in
      match List.assoc_opt addr st.thread_of_obj with
      | Some tid -> task.status <- Blocked_join tid
      | None -> ())
  | Ast.Sync (x, body) ->
      let addr, _ = deref st env x in
      let m = monitor st addr in
      let enter () =
        m.owner <- Some task.tid;
        if m.count = 0 then emit st (Eacquire { task = task.tid; lock = addr });
        m.count <- m.count + 1;
        frame.agenda <-
          List.map (fun s -> WStmt s) body @ (WRelease addr :: frame.agenda)
      in
      (match m.owner with
      | None -> enter ()
      | Some t when t = task.tid -> enter ()
      | Some _ ->
          (* retry this statement when the monitor is released *)
          frame.agenda <- WStmt s :: frame.agenda;
          task.status <- Blocked_lock addr)
  | Ast.If (b1, b2) ->
      let chosen = if st.choose 2 = 0 then b1 else b2 in
      frame.agenda <- List.map (fun s -> WStmt s) chosen @ frame.agenda
  | Ast.While body ->
      if st.choose 2 = 0 then
        frame.agenda <-
          List.map (fun s -> WStmt s) body @ (WStmt s :: frame.agenda)
  | Ast.Return v ->
      pop_frame task (match v with Some v -> lookup env v | None -> VNull)

(* unblock tasks whose wait condition is now satisfied *)
let refresh_statuses st =
  List.iter
    (fun t ->
      match t.status with
      | Blocked_lock addr ->
          let m = monitor st addr in
          if m.owner = None then t.status <- Runnable
      | Blocked_join tid -> (
          match List.find_opt (fun t' -> t'.tid = tid) st.tasks with
          | Some t' when t'.status = Finished ->
              emit st (Ejoin { parent = t.tid; child = tid });
              t.status <- Runnable
          | _ -> ())
      | Blocked_sem addr -> (
          match Hashtbl.find_opt st.sems addr with
          | Some c when !c > 0 -> t.status <- Runnable
          | _ -> ())
      | _ -> ())
    st.tasks

let runnable st =
  List.filter
    (fun t ->
      t.status = Runnable
      && ((not t.is_dispatcher)
          || t.frames <> []
          || not (Queue.is_empty st.event_queue)))
    st.tasks

let all_finished st =
  List.for_all
    (fun t ->
      match t.status with
      | Finished -> true
      | Runnable -> t.is_dispatcher && t.frames = [] && Queue.is_empty st.event_queue
      | _ -> false)
    st.tasks

(* visible operations are the only points where interleaving matters: all
   events (accesses, lock ops, spawn/join/semaphores) happen there. With
   [visible_only], the scheduler keeps running the current task through
   invisible statements without consuming a scheduling choice — a sound
   partial-order reduction that shrinks the systematic explorer's choice
   tree by orders of magnitude. *)
let next_item_visible task =
  match task.frames with
  | [] -> task.is_dispatcher  (* event pickup emits a spawn *)
  | frame :: _ -> (
      match frame.agenda with
      | [] -> false  (* frame pop *)
      | WRelease _ :: _ -> true
      | WStmt s :: _ -> (
          match s.Ast.sk with
          | Ast.Assign _ | Ast.Null _ | Ast.Return _ | Ast.New _
          | Ast.Call _ | Ast.StaticCall _ | Ast.If _ | Ast.While _ ->
              false
          | _ -> true))

let run ?(seed = 0) ?chooser ?(visible_only = false)
    ?(max_steps = 100_000) ?(on_event = fun _ -> ()) program =
  let choose =
    match chooser with
    | Some f -> f
    | None ->
        let rng = Random.State.make [| seed |] in
        fun n -> if n <= 1 then 0 else Random.State.int rng n
  in
  let st =
    {
      program;
      choose;
      heap = Hashtbl.create 256;
      next_addr = 0;
      monitors = Hashtbl.create 16;
      sems = Hashtbl.create 16;
      tasks = [];
      next_tid = 0;
      events = [];
      on_event;
      event_queue = Queue.create ();
      thread_of_obj = [];
    }
  in
  let main = Program.main program in
  let _main_task =
    spawn_task st
      ~frames:[ new_frame main ~this:None ~args:[] ~ret_to:None ]
      ~is_dispatcher:false
  in
  let _dispatcher = spawn_task st ~frames:[] ~is_dispatcher:true in
  let steps = ref 0 in
  let deadlocked = ref false in
  let last = ref (-1) in
  (try
     while (not (all_finished st)) && !steps < max_steps do
       refresh_statuses st;
       match runnable st with
       | [] ->
           if not (all_finished st) then deadlocked := true;
           raise Exit
       | rs ->
           let current =
             if not visible_only then None
             else
               List.find_opt
                 (fun t ->
                   t.tid = !last && not (next_item_visible t))
                 rs
           in
           let t =
             match current with
             | Some t -> t  (* invisible step: no scheduling choice *)
             | None -> List.nth rs (st.choose (List.length rs))
           in
           last := t.tid;
           step_task st t;
           incr steps
     done
   with Exit -> ());
  {
    steps = !steps;
    completed = all_finished st && not !deadlocked;
    deadlocked = !deadlocked;
    events = List.rev st.events;
  }
