(** Vector clocks over task ids, for the dynamic race checker. *)

type t

val empty : t

(** [get vc tid] is the clock of task [tid] (0 when absent). *)
val get : t -> int -> int

(** [set vc tid c] overwrites one component. *)
val set : t -> int -> int -> t

(** [tick vc tid] increments [tid]'s component. *)
val tick : t -> int -> t

(** [join a b] is the componentwise maximum. *)
val join : t -> t -> t

(** [leq a b] is the componentwise ≤ — [a] happened before (or equals)
    [b]. *)
val leq : t -> t -> bool

val pp : Format.formatter -> t -> unit
