examples/quickstart.mli:
