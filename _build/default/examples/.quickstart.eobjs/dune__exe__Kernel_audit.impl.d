examples/kernel_audit.ml: Array Format List O2 O2_osa O2_pta O2_race O2_workloads
