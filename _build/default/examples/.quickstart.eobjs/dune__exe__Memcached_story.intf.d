examples/memcached_story.mli:
