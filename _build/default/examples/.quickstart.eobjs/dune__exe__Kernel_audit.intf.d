examples/kernel_audit.mli:
