examples/beyond_races.ml: Format List O2 O2_ir O2_race
