examples/policy_showdown.ml: Array Format List O2 O2_ir O2_pta O2_util O2_workloads Printf Sys Unix
