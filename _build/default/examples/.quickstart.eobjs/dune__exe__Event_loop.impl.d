examples/event_loop.ml: Format List O2 O2_ir O2_race O2_runtime O2_shb
