examples/beyond_races.mli:
