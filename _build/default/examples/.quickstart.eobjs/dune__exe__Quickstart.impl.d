examples/quickstart.ml: Format O2 O2_pta O2_workloads
