examples/policy_showdown.mli:
