examples/memcached_story.ml: Format List O2 O2_racerd O2_workloads
