(* Sweep one synthetic benchmark across every context policy — a miniature
   of Table 5/8.

   Run with:  dune exec examples/policy_showdown.exe [-- BENCH]

   Prints, per policy: analysis time, #origins, PAG sizes and the number of
   reported races. Watch 2-CFA/2-obj context counts explode on the deep
   helper chains while O2 stays near the 0-ctx cost with far fewer (and
   only true) races. *)

let policies =
  O2_pta.Context.
    [ Insensitive; Kcfa 1; Kcfa 2; Kobj 1; Kobj 2; Korigin 1; Korigin 2 ]

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "redis" in
  let spec =
    try O2_workloads.Synth.find bench
    with Not_found ->
      Printf.eprintf "unknown benchmark %s\n" bench;
      exit 1
  in
  let p = O2_workloads.Synth.program spec in
  Format.printf "benchmark %s: %d statements@.@." bench
    (O2_ir.Program.n_stmts p);
  Format.printf "%-10s %9s %6s %10s %9s %10s %7s@." "policy" "time(s)" "#O"
    "#pointer" "#object" "#edge" "#races";
  List.iter
    (fun policy ->
      (* each run gets a fresh metrics sink; the PAG sizes are read back
         from the counters the solver records into it *)
      let cfg =
        O2.Config.with_metrics { O2.Config.default with O2.Config.policy }
      in
      let r = O2.run cfg p in
      let m =
        match r.O2.config.O2.Config.metrics with
        | Some m -> m
        | None -> assert false
      in
      Format.printf "%-10s %9.3f %6d %10d %9d %10d %7d@."
        (O2_pta.Context.policy_name policy)
        r.O2.elapsed (O2.n_origins r)
        (O2_util.Metrics.get m "pta.pointers")
        (O2_util.Metrics.get m "pta.objects")
        (O2_util.Metrics.get m "pta.edges")
        (O2.n_races r))
    policies
