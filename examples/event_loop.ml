(* When threads meet events: an Android-style app built with the Builder
   DSL, statically analyzed, then executed on the concrete interpreter with
   the dynamic vector-clock detector for cross-validation.

   Run with:  dune exec examples/event_loop.exe

   The app has a UI event handler (onReceive) updating a view-model and a
   background sync thread touching the same state. Handler–handler pairs
   never race (one dispatcher thread, §4.2); the handler–thread pair does. *)

open O2_ir.Builder

let program () =
  let view_model = cls "ViewModel" ~fields:[ "items"; "status" ] [] in
  let receiver =
    (* Table 1: Receiver's entry point is onReceive *)
    cls "UiReceiver" ~super:"Receiver" ~fields:[ "vm" ]
      [
        meth "init" [ "vm" ] [ fwrite "this" "vm" "vm" ];
        meth "onReceive" [ "intent" ]
          [
            fread "vm" "this" "vm";
            fwrite "vm" "items" "intent";  (* races with SyncThread *)
            fwrite "vm" "status" "vm";     (* handler-only: dispatcher-safe *)
            ret None;
          ];
      ]
  in
  let sync_thread =
    cls "SyncThread" ~super:"Thread" ~fields:[ "vm" ]
      [
        meth "init" [ "vm" ] [ fwrite "this" "vm" "vm" ];
        meth "run" []
          [
            fread "vm" "this" "vm";
            fread "snapshot" "vm" "items";  (* RACE: unsynchronized read *)
            new_ "buf" "ViewModel" [];      (* thread-local scratch: safe *)
            fwrite "buf" "items" "snapshot";
            ret None;
          ];
      ]
  in
  let mainc =
    cls "App"
      [
        meth ~static:true "main" []
          [
            new_ "vm" "ViewModel" [];
            new_ "rx" "UiReceiver" [ "vm" ];
            new_ "intent" "ViewModel" [];
            new_ "syncer" "SyncThread" [ "vm" ];
            post "rx" [ "intent" ];
            post "rx" [ "intent" ];  (* second delivery: same dispatcher *)
            start "syncer";
            ret None;
          ];
      ]
  in
  prog ~main:"App" [ view_model; receiver; sync_thread; mainc ]

let () =
  let p = program () in
  let r = O2.run O2.Config.default p in
  Format.printf "=== static analysis ===@.%a@.@." (O2.pp_report r) ();

  (* Execute the app under many schedules; the dynamic detector observes
     real races. Every dynamic race must appear in the static report — the
     soundness cross-check the test suite automates. *)
  let dynamic = O2_runtime.Dynrace.check ~seeds:[ 0; 1; 2; 3; 4; 5; 6; 7 ] p in
  Format.printf "=== dynamic validation (8 random schedules) ===@.";
  List.iter
    (fun (d : O2_runtime.Dynrace.race) ->
      Format.printf "dynamic race on %s (stmts %d, %d)@." d.d_field d.d_sid_a
        d.d_sid_b)
    dynamic;
  let static_pairs =
    List.map
      (fun (race : O2_race.Detect.race) ->
        ( min race.r_a.O2_shb.Graph.n_sid race.r_b.O2_shb.Graph.n_sid,
          max race.r_a.O2_shb.Graph.n_sid race.r_b.O2_shb.Graph.n_sid ))
      (O2.races r)
  in
  let covered =
    List.for_all
      (fun (d : O2_runtime.Dynrace.race) ->
        List.mem (d.d_sid_a, d.d_sid_b) static_pairs)
      dynamic
  in
  Format.printf "every dynamic race statically reported: %b@." covered
