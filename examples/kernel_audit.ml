(* Auditing an OS-kernel-style code base (the §5.4 Linux study).

   Run with:  dune exec examples/kernel_audit.exe

   The paper configures four origin types for the kernel: system calls
   (two origins per syscall to model concurrent invocations), driver file
   operations, kernel threads, and interrupt handlers. The model mirrors
   that: concurrent syscall instances, a driver that spawns a kthread
   (nested origins), and an irq handler. Besides the race report, the
   origin-sharing analysis reproduces the §5.4 observation that most
   kernel memory is origin-local — useful for region-based memory
   management. *)

let () =
  let m = O2_workloads.Models.find "linux" in
  let p = m.program () in
  let r = O2.run O2.Config.default p in
  Format.printf "=== races (expected %d, as in Table 10) ===@.%a@.@."
    m.expected_races (O2.pp_report r) ();

  (* origin-local vs origin-shared breakdown *)
  let sps = r.O2.solver.O2_pta.Solver.spawns in
  Format.printf "=== per-origin locality (§5.4 kernel numbers) ===@.";
  Array.iter
    (fun (sp : O2_pta.Solver.spawn) ->
      let locals = O2_osa.Osa.origin_local_objects r.O2.osa sp.sp_id in
      Format.printf "%-50s %d origin-local object(s)@."
        (O2_race.Report.origin_name r.O2.solver sp.sp_id)
        (List.length locals))
    sps;
  let shared = O2.shared_locations r in
  Format.printf "@.origin-shared locations: %d@." (List.length shared);
  Format.printf "origins analyzed: %d@." (O2.n_origins r)
