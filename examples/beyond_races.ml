(* Beyond race detection: the other analyses origins enable (§3 of the
   paper names deadlock, over-synchronization and memory isolation).

   Run with:  dune exec examples/beyond_races.exe

   A small connection-pool server with three distinct concurrency defects:
   an AB/BA lock-order inversion between the pool and the stats locks, a
   lock pointlessly guarding per-worker scratch data, and a genuine data
   race on the connection counter — plus a semaphore handshake (the §4.3
   extension) that correctly orders the config initialization. *)

open O2_ir.Builder

let program () =
  let data = cls "Conn" ~fields:[ "state"; "count"; "cfg" ] [] in
  let worker =
    cls "PoolWorker" ~super:"Thread"
      ~fields:[ "pool"; "stats"; "ready"; "conns" ]
      [
        meth "init" [ "p"; "s"; "r"; "c" ]
          [
            fwrite "this" "pool" "p";
            fwrite "this" "stats" "s";
            fwrite "this" "ready" "r";
            fwrite "this" "conns" "c";
          ];
        meth "run" []
          [
            fread "pool" "this" "pool";
            fread "stats" "this" "stats";
            fread "ready" "this" "ready";
            fread "conns" "this" "conns";
            (* wait for the config handshake before reading it *)
            wait "ready";
            fread "cfg" "conns" "cfg";
            (* defect 1: pool->stats lock order *)
            sync "pool" [ sync "stats" [ fwrite "conns" "state" "conns" ] ];
            (* defect 2: a lock around purely worker-local scratch *)
            new_ "scratch" "Conn" [];
            sync "stats" [ fwrite "scratch" "state" "scratch" ];
            (* defect 3: unprotected shared counter *)
            fwrite "conns" "count" "conns";
            ret None;
          ];
      ]
  in
  let reaper =
    cls "Reaper" ~super:"Thread" ~fields:[ "pool"; "stats"; "conns" ]
      [
        meth "init" [ "p"; "s"; "c" ]
          [
            fwrite "this" "pool" "p";
            fwrite "this" "stats" "s";
            fwrite "this" "conns" "c";
          ];
        meth "run" []
          [
            fread "pool" "this" "pool";
            fread "stats" "this" "stats";
            fread "conns" "this" "conns";
            (* defect 1, other half: stats->pool lock order *)
            sync "stats" [ sync "pool" [ fwrite "conns" "state" "conns" ] ];
            (* defect 3, other half *)
            fread "n" "conns" "count";
            ret None;
          ];
      ]
  in
  let mainc =
    cls "Server"
      [
        meth ~static:true "main" []
          [
            new_ "pool" "Conn" [];
            new_ "stats" "Conn" [];
            new_ "ready" "Conn" [];
            new_ "conns" "Conn" [];
            new_ "w" "PoolWorker" [ "pool"; "stats"; "ready"; "conns" ];
            new_ "r" "Reaper" [ "pool"; "stats"; "conns" ];
            start "w";
            start "r";
            (* publish the config, then signal the handshake *)
            new_ "cfg" "Conn" [];
            fwrite "conns" "cfg" "cfg";
            signal "ready";
          ];
      ]
  in
  prog ~main:"Server" [ data; worker; reaper; mainc ]

let () =
  let p = program () in
  let r = O2.run O2.Config.default p in
  Format.printf "=== races ===@.%a@." (O2.pp_report r) ();

  let dl = O2_race.Deadlock.analyze p in
  Format.printf "@.=== deadlocks ===@.";
  List.iter
    (fun c -> Format.printf "%a@." O2_race.Deadlock.pp_cycle c)
    dl.O2_race.Deadlock.cycles;

  let ov = O2_race.Oversync.analyze p in
  Format.printf "@.=== over-synchronization ===@.";
  List.iter
    (fun f -> Format.printf "%a@." O2_race.Oversync.pp_finding f)
    ov.O2_race.Oversync.findings;

  Format.printf
    "@.summary: %d race(s), %d deadlock cycle(s), %d removable lock(s) — \
     and the cfg handshake is correctly ordered by signal/wait, so cfg is \
     not reported.@."
    (O2.n_races r)
    (O2_race.Deadlock.n_deadlocks dl)
    (O2_race.Oversync.n_findings ov)
