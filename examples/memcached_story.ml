(* The Memcached case study of §5.4, end to end.

   Run with:  dune exec examples/memcached_story.exe

   Memcached mixes an event-driven maintenance path (slab reassign) with
   worker threads growing the slab lists under a mutex. The event reads the
   slab state without the lock — a thread–event race that a thread-only or
   event-only analysis misses. We analyze the model, show the developers'
   fix eliminates the reports, and contrast with the RacerD-style syntactic
   baseline. *)

let () =
  let m = O2_workloads.Models.find "memcached" in
  Format.printf "model: %s@.bug: %s@.@." m.name m.describe;

  let racy = m.program () in
  let r = O2.run O2.Config.default racy in
  Format.printf "=== O2 on the buggy code (expect %d races) ===@.%a@.@."
    m.expected_races (O2.pp_report r) ();

  let fixed = m.fixed () in
  let rf = O2.run O2.Config.default fixed in
  Format.printf "=== O2 after the developers' fix ===@.%a@.@."
    (O2.pp_report rf) ();

  (* RacerD has no pointer analysis: it keys accesses by field name and
     misses/flags different things. *)
  let rd = O2_racerd.Racerd.analyze racy in
  Format.printf "=== RacerD-style baseline on the buggy code ===@.";
  Format.printf "%d warning(s)@." (O2_racerd.Racerd.n_warnings rd);
  List.iter
    (fun w -> Format.printf "  %a@." O2_racerd.Racerd.pp_warning w)
    rd.O2_racerd.Racerd.warnings;

  (* The origin-sharing report shows how the slab state is shared between
     the workers and the maintenance event. *)
  Format.printf "@.=== origin-sharing (who touches what) ===@.%a@."
    (O2.pp_sharing r) ()
