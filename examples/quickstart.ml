(* Quickstart: parse a CIR program, run the O2 pipeline, inspect results.

   Run with:  dune exec examples/quickstart.exe

   The program is Figure 2 of the paper: two instances of one thread class
   whose origin attributes (op1/op2) select different behaviours on
   thread-local Data objects. A context-insensitive analysis conflates the
   two threads' locals and reports a false race; O2's origins keep them
   apart. *)

let () =
  (* 1. Parse. Programs can come from files (Parser.parse_file), strings, or
     the Builder DSL. *)
  let program = O2_workloads.Figures.figure2 () in

  (* 2. Analyze with the paper's default configuration (1-origin OPA). *)
  let r = O2.run O2.Config.default program in

  Format.printf "=== O2 (origin-sensitive) ===@.";
  Format.printf "origins discovered: %d@." (O2.n_origins r);
  Format.printf "%a@.@." (O2.pp_report r) ();

  (* 3. The origin-sharing analysis explains *how* memory is shared. *)
  Format.printf "=== origin-sharing analysis ===@.%a@.@." (O2.pp_sharing r) ();

  (* 4. Compare with the context-insensitive baseline: it merges both
     threads' thread-local Data objects and reports a false race. *)
  let r0 =
    O2.run
      { O2.Config.default with O2.Config.policy = O2_pta.Context.Insensitive }
      program
  in
  Format.printf "=== 0-ctx baseline on the same program ===@.";
  Format.printf "%a@." (O2.pp_report r0) ();
  Format.printf
    "@.O2 reported %d race(s); the 0-ctx baseline reported %d — the extra \
     ones are the Figure 2 false positives that origins eliminate.@."
    (O2.n_races r) (O2.n_races r0)
