(* Benchmark harness: regenerates every table of the paper's evaluation
   (§5, Tables 3 and 5–10) on the synthetic workload suites and the
   real-world race models, plus the §4.1 ablations, and finishes with a
   Bechamel micro-benchmark per table kernel.

     dune exec bench/main.exe                # tables + trajectory + bechamel
     dune exec bench/main.exe -- tables      # tables + trajectory
     dune exec bench/main.exe -- bech        # bechamel only
     dune exec bench/main.exe -- trajectory  # only write BENCH_o2.json

   Absolute numbers are machine- and substrate-dependent; the claims being
   reproduced are the *shapes*: who wins, by what rough factor, and where
   the precision spread comes from. EXPERIMENTS.md records paper-vs-measured
   for every table. *)

open O2_pta

let pf = Printf.printf

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* median of [runs] repetitions — timings at this scale are noisy.
   [runs] must be >= 1; an even [runs] averages the two middle samples
   (picking the upper-middle one alone biases the estimate upward). *)
let median_time ?(runs = 5) f =
  if runs < 1 then invalid_arg "median_time: runs must be >= 1";
  let samples =
    List.init runs (fun _ ->
        let _, dt = time f in
        dt)
    |> List.sort compare
    |> Array.of_list
  in
  if runs mod 2 = 1 then samples.(runs / 2)
  else (samples.((runs / 2) - 1) +. samples.(runs / 2)) /. 2.0

let policies_all =
  [
    ("0-ctx", Context.Insensitive);
    ("O2", Context.Korigin 1);
    ("1-CFA", Context.Kcfa 1);
    ("2-CFA", Context.Kcfa 2);
    ("1-obj", Context.Kobj 1);
    ("2-obj", Context.Kobj 2);
  ]

let rule title =
  pf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 3: time complexity — empirical scaling curves per policy.     *)

let table3 () =
  rule "Table 3 — pointer-analysis scaling (empirical, helper depth sweep)";
  pf "%-8s" "n";
  List.iter (fun (name, _) -> pf "%12s" name) policies_all;
  pf "\n";
  let sizes = [ 2; 4; 6; 8; 10; 12 ] in
  let results =
    List.map
      (fun n ->
        let p = O2_workloads.Synth.scaling ~n in
        ( n,
          List.map
            (fun (_, pol) ->
              median_time ~runs:5 (fun () ->
                  ignore (Solver.analyze ~policy:pol p)))
            policies_all ))
      sizes
  in
  List.iter
    (fun (n, times) ->
      pf "%-8d" n;
      List.iter (fun dt -> pf "%12.4f" dt) times;
      pf "\n")
    results;
  (* growth factor between the smallest and largest size, as a scaling
     proxy for the worst-case bounds in the paper's Table 3 *)
  let first = List.hd results
  and last = List.nth results (List.length results - 1) in
  pf "%-8s" "growth";
  List.iteri
    (fun i _ ->
      let t0 = max 1e-6 (List.nth (snd first) i) in
      let t1 = List.nth (snd last) i in
      pf "%11.1fx" (t1 /. t0))
    policies_all;
  pf "\n";
  pf
    "paper: 0-ctx O(p.h^2) < heap/1-origin O(p^3.h^2) << 2-CFA/2-obj \
     O(p^5.h^2);\n\
     expect the k=2 columns to grow fastest and O2 to track 0-ctx.\n"

(* ------------------------------------------------------------------ *)
(* Table 5: PTA + race-detection time per policy on the JVM suites.    *)

let analyze_time pol p =
  let a = Solver.analyze ~policy:pol p in
  let dt = median_time ~runs:3 (fun () -> ignore (Solver.analyze ~policy:pol p)) in
  (a, dt)

let detect_time pol p =
  let _, _, report = O2_race.Detect.analyze ~policy:pol p in
  let dt =
    median_time ~runs:3 (fun () -> ignore (O2_race.Detect.analyze ~policy:pol p))
  in
  (report, dt)

let table5 specs =
  rule "Table 5 — performance on JVM-style suites (seconds)";
  pf "%-14s %5s |" "App" "#O";
  List.iter (fun (name, _) -> pf "%10s" ("pta:" ^ name)) policies_all;
  pf " |";
  List.iter (fun (name, _) -> pf "%10s" ("rd:" ^ name)) policies_all;
  pf "%10s\n" "RacerD";
  List.iter
    (fun (spec : O2_workloads.Synth.spec) ->
      let p = O2_workloads.Synth.program spec in
      let a0, _ = analyze_time (Context.Korigin 1) p in
      pf "%-14s %5d |" spec.s_name (Solver.n_origins a0);
      List.iter
        (fun (_, pol) ->
          let _, dt = analyze_time pol p in
          pf "%10.3f" dt)
        policies_all;
      pf " |";
      List.iter
        (fun (name, pol) ->
          (* the 0-ctx detection column is the D4 baseline: the unoptimized
             pairwise engine over context-insensitive facts, exactly the
             configuration the paper compares against *)
          let dt =
            if name = "0-ctx" then
              median_time ~runs:3 (fun () ->
                  ignore (O2_race.Naive.analyze ~policy:pol p))
            else
              median_time ~runs:3 (fun () ->
                  ignore (O2_race.Detect.analyze ~policy:pol p))
          in
          pf "%10.3f" dt)
        policies_all;
      let _, rd_dt = time (fun () -> O2_racerd.Racerd.analyze p) in
      pf "%10.3f\n" rd_dt)
    specs

(* ------------------------------------------------------------------ *)
(* Table 6: C-style apps — time and PAG sizes per policy.              *)

let table6 () =
  rule "Table 6 — C-style applications: time and PAG size";
  pf "%-11s %-8s %10s %10s %10s\n" "App" "policy" "#Pointer" "#Object" "#Edge";
  List.iter
    (fun (spec : O2_workloads.Synth.spec) ->
      let p = O2_workloads.Synth.program spec in
      List.iter
        (fun (name, pol) ->
          let a, dt = analyze_time pol p in
          let s = a.Solver.stats in
          pf "%-11s %-8s %10d %10d %10d   (%.3fs)\n" spec.s_name name
            (O2_util.Metrics.get s "pta.pointers")
            (O2_util.Metrics.get s "pta.objects")
            (O2_util.Metrics.get s "pta.edges")
            dt)
        [
          ("0-ctx", Context.Insensitive);
          ("O2", Context.Korigin 1);
          ("2-CFA", Context.Kcfa 2);
        ])
    O2_workloads.Synth.capps;
  pf
    "paper shape: O2 slightly above 0-ctx on every metric, 2-CFA far above\n\
     (13.5M vs 1M edges on redis).\n"

(* ------------------------------------------------------------------ *)
(* Table 7: OSA vs escape analysis.                                    *)

let table7 () =
  rule "Table 7 — OSA #shared accesses and time vs TLOA-style escape analysis";
  pf "%-14s %10s %10s %13s %10s\n" "App" "#S-access" "OSA time"
    "escape(2CFA)" "esc #acc";
  List.iter
    (fun (spec : O2_workloads.Synth.spec) ->
      let p = O2_workloads.Synth.program spec in
      let a, _ = analyze_time (Context.Korigin 1) p in
      let osa, osa_dt = time (fun () -> O2_osa.Osa.run a) in
      (* the TLOA model: context-sensitive information flow = escape
         analysis over 2-CFA facts, paying the full 2-CFA solve *)
      let esc_n, esc_dt =
        time (fun () ->
            let a2 = Solver.analyze ~policy:(Context.Kcfa 2) p in
            let esc = O2_escape.Escape.run a2 in
            O2_escape.Escape.n_escaped_accesses esc)
      in
      pf "%-14s %10d %10.3f %13.3f %10d\n" spec.s_name
        (O2_osa.Osa.n_shared_accesses osa)
        osa_dt esc_dt esc_n)
    O2_workloads.Synth.dacapo;
  pf
    "paper shape: OSA completes in seconds where TLOA needs >70x longer;\n\
     escape analysis also reports more shared accesses (statics, arrays).\n"

(* ------------------------------------------------------------------ *)
(* Table 8: #races per policy.                                         *)

let table8 () =
  rule "Table 8 — #races detected per pointer analysis (Dacapo-style)";
  pf "%-14s" "App";
  List.iter (fun (name, _) -> pf "%9s" name) policies_all;
  pf "%9s\n" "RacerD";
  List.iter
    (fun (spec : O2_workloads.Synth.spec) ->
      let p = O2_workloads.Synth.program spec in
      pf "%-14s" spec.s_name;
      List.iter
        (fun (_, pol) ->
          let report, _ = detect_time pol p in
          pf "%9d" (O2_race.Detect.n_races report))
        policies_all;
      pf "%9d\n" (O2_racerd.Racerd.n_warnings (O2_racerd.Racerd.analyze p)))
    O2_workloads.Synth.dacapo;
  pf
    "paper shape: O2 reduces warnings by ~77%% vs 0-ctx; k-CFA/k-obj land\n\
     in between; RacerD (no aliasing) is noisiest.\n"

(* ------------------------------------------------------------------ *)
(* Table 9: distributed systems — #races and #S-obj.                   *)

let table9 () =
  rule "Table 9 — distributed systems: #races and #thread-shared objects";
  pf "%-12s %8s %8s |%10s %10s %10s %10s\n" "App" "O2" "RacerD" "S:0-ctx"
    "S:1-CFA" "S:2-CFA" "S:O2";
  List.iter
    (fun (spec : O2_workloads.Synth.spec) ->
      let p = O2_workloads.Synth.program spec in
      let report, _ = detect_time (Context.Korigin 1) p in
      let rd = O2_racerd.Racerd.n_warnings (O2_racerd.Racerd.analyze p) in
      pf "%-12s %8d %8d |" spec.s_name (O2_race.Detect.n_races report) rd;
      List.iter
        (fun pol ->
          let a = Solver.analyze ~policy:pol p in
          let osa = O2_osa.Osa.run a in
          pf "%10d" (O2_osa.Osa.n_shared_object_sites a osa))
        [
          Context.Insensitive; Context.Kcfa 1; Context.Kcfa 2;
          Context.Korigin 1;
        ];
      pf "\n")
    O2_workloads.Synth.distributed;
  pf
    "paper shape: O2's #S-obj is the smallest, which is what makes its\n\
     detection tractable on these systems (Section 5.3).\n"

(* ------------------------------------------------------------------ *)
(* Table 10: real-world race models.                                   *)

let table10 () =
  rule "Table 10 — new races found in real-world code (models)";
  pf "%-11s %9s %9s %7s %7s  %s\n" "Code base" "expected" "detected" "fixed"
    "RacerD" "bug";
  List.iter
    (fun (m : O2_workloads.Models.model) ->
      let _, _, r = O2_race.Detect.analyze (m.program ()) in
      let _, _, rf = O2_race.Detect.analyze (m.fixed ()) in
      let rd =
        O2_racerd.Racerd.n_warnings (O2_racerd.Racerd.analyze (m.program ()))
      in
      pf "%-11s %9d %9d %7d %7d  %s\n" m.name m.expected_races
        (O2_race.Detect.n_races r)
        (O2_race.Detect.n_races rf)
        rd
        (String.sub m.describe 0 (min 46 (String.length m.describe))))
    O2_workloads.Models.all;
  (* the §5.4 Linux locality observation *)
  let m = O2_workloads.Models.find "linux" in
  let r = O2.run O2.Config.default (m.program ()) in
  let shared = List.length (O2.shared_locations r) in
  pf
    "\nLinux model: %d origin-shared locations across %d origins; the rest \
     of the\nkernel objects are origin-local, as observed in Section 5.4.\n"
    shared (O2.n_origins r)

(* ------------------------------------------------------------------ *)
(* Ablations for the §4.1 design choices.                              *)

let ablations () =
  rule "Ablations — the three Section 4.1 optimizations";
  (* run on the heaviest distributed workload *)
  let spec = O2_workloads.Synth.find "zookeeper" in
  let p = O2_workloads.Synth.program spec in
  let a = Solver.analyze ~policy:(Context.Korigin 1) p in

  (* 1: integer-id HB + memoized reachability vs naive per-pair DFS *)
  let g_nr = O2_shb.Graph.build ~lock_region:false a in
  let fast, fast_dt = time (fun () -> O2_race.Detect.run g_nr) in
  let slow, slow_dt = time (fun () -> O2_race.Naive.run g_nr) in
  pf
    "HB check:      optimized %.3fs vs naive DFS %.3fs (%.1fx); races %d = %d\n"
    fast_dt slow_dt
    (slow_dt /. max 1e-6 fast_dt)
    (O2_race.Detect.n_races fast)
    (O2_race.Detect.n_races slow);

  (* 2: lock-region merging *)
  let g_merged = O2_shb.Graph.build ~lock_region:true a in
  let rm, rm_dt = time (fun () -> O2_race.Detect.run g_merged) in
  pf
    "lock regions:  %d access nodes merged to %d; pairs checked %d -> %d; \
     %.3fs -> %.3fs\n"
    (Array.length (O2_shb.Graph.accesses g_nr))
    (Array.length (O2_shb.Graph.accesses g_merged))
    fast.O2_race.Detect.n_pairs_checked rm.O2_race.Detect.n_pairs_checked
    fast_dt rm_dt;

  (* 3: canonical lockset ids — cache behaviour during detection *)
  let locks = O2_shb.Graph.locks g_merged in
  pf "locksets:      %d distinct canonical sets; cache %d hits / %d misses\n"
    (O2_shb.Lockset.n_distinct locks)
    (O2_shb.Lockset.cache_hits locks)
    (O2_shb.Lockset.cache_misses locks);

  (* k-origin ablation: nesting depth (the Redis pattern of §3.2) *)
  let specr = O2_workloads.Synth.find "redis" in
  let pr = O2_workloads.Synth.program specr in
  List.iter
    (fun k ->
      let report, dt = detect_time (Context.Korigin k) pr in
      pf "k-origin:      k=%d -> %d races in %.3fs\n" k
        (O2_race.Detect.n_races report)
        dt)
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Trajectory: machine-readable per-workload metrics dump.             *)

(* One instrumented O2 run per workload, serialized to BENCH_o2.json so
   tooling can track the pipeline's counters/timers across commits:

     { "schema": "bench_o2/v1",
       "runs": [ { "bench": "<workload>", "policy": "O2",
                   "elapsed": <seconds>, "races": <n>,
                   "metrics": <O2_util.Metrics.to_json> }, ... ] }

   plus one "O2-batch" row per examples/programs corpus file (status and
   race count through the batch fault boundary), so corpus-level race
   drift is tracked alongside the synthetic workloads,

   plus one "pta:<workload>" row per workload pitting the round/delta
   engine against the frozen serial reference solver (Oracle): the
   oracle's median solve time, the engine's at jobs=1 and jobs=4, the
   resulting speedup, the engine's worklist/SCC counters, and a
   fingerprint-equality bit. CI gates on these rows: counters must match
   the committed run exactly, facts_equal must hold, and the zookeeper
   speedup has a floor. *)
(* stage:<name> rows: the flat-IR post-PTA stages (SHB build, race
   detection, OSA scan) against the legacy AST tree-walkers kept as test
   oracles, on the heaviest distributed workload. Each row carries the
   stage medians for both paths, the speedup, the stage's deterministic
   counters and a parity bit (byte-identical rendered reports and equal
   counters). CI gates parity, exact counters and a speedup floor; the
   committed run records the real flat-vs-legacy factor. *)
let stage_rows () =
  let p = O2_workloads.Synth.program (O2_workloads.Synth.find "zookeeper") in
  let a = Solver.analyze ~policy:(Context.Korigin 1) p in
  let legacy_shb =
    median_time ~runs:5 (fun () -> ignore (O2_shb.Graph.build ~oracle:true a))
  in
  let flat_shb = median_time ~runs:5 (fun () -> ignore (O2_shb.Graph.build a)) in
  let g_o = O2_shb.Graph.build ~oracle:true a in
  let g_f = O2_shb.Graph.build a in
  let legacy_race =
    median_time ~runs:5 (fun () ->
        ignore (O2_race.Detect.run ~oracle:true g_o))
  in
  let flat_race =
    median_time ~runs:5 (fun () -> ignore (O2_race.Detect.run g_f))
  in
  let r_o = O2_race.Detect.run ~oracle:true g_o
  and r_f = O2_race.Detect.run g_f in
  let legacy_osa =
    median_time ~runs:5 (fun () -> ignore (O2_osa.Osa.run ~oracle:true a))
  in
  let flat_osa = median_time ~runs:5 (fun () -> ignore (O2_osa.Osa.run a)) in
  let osa_o = O2_osa.Osa.run ~oracle:true a and osa_f = O2_osa.Osa.run a in
  let rep_o =
    O2_race.Report.render
      { O2_race.Report.solver = a; graph = g_o; report = r_o }
  in
  let rep_f =
    O2_race.Report.render
      { O2_race.Report.solver = a; graph = g_f; report = r_f }
  in
  let shb_nodes = Array.length (O2_shb.Graph.nodes g_f) in
  let shb_parity =
    Array.length (O2_shb.Graph.nodes g_o) = shb_nodes
    && Array.length (O2_shb.Graph.accesses g_o)
       = Array.length (O2_shb.Graph.accesses g_f)
  in
  let race_parity =
    String.equal rep_o rep_f
    && O2_race.Detect.n_races r_o = O2_race.Detect.n_races r_f
    && r_o.O2_race.Detect.n_pairs_checked = r_f.O2_race.Detect.n_pairs_checked
  in
  let osa_parity =
    O2_osa.Osa.n_shared_accesses osa_o = O2_osa.Osa.n_shared_accesses osa_f
    && List.length (O2_osa.Osa.shared_locations osa_o)
       = List.length (O2_osa.Osa.shared_locations osa_f)
  in
  let row name legacy flat parity extra =
    pf "stage:%-8s legacy %.4fs  flat %.4fs  %.2fx  parity %s\n" name legacy
      flat
      (legacy /. max 1e-9 flat)
      (if parity then "ok" else "BROKEN");
    Printf.sprintf
      {|{"bench":"stage:%s","policy":"O2","legacy_ms":%.3f,"flat_ms":%.3f,"speedup":%.2f,"parity":%b%s}|}
      name (legacy *. 1e3) (flat *. 1e3)
      (legacy /. max 1e-9 flat)
      parity extra
  in
  [
    row "shb" legacy_shb flat_shb shb_parity
      (Printf.sprintf {|,"nodes":%d|} shb_nodes);
    row "race" legacy_race flat_race race_parity
      (Printf.sprintf {|,"races":%d,"pairs":%d|}
         (O2_race.Detect.n_races r_f)
         r_f.O2_race.Detect.n_pairs_checked);
    row "osa" legacy_osa flat_osa osa_parity
      (Printf.sprintf {|,"shared_accesses":%d|}
         (O2_osa.Osa.n_shared_accesses osa_f));
    row "combined"
      (legacy_shb +. legacy_race +. legacy_osa)
      (flat_shb +. flat_race +. flat_osa)
      (shb_parity && race_parity && osa_parity)
      "";
  ]

let trajectory ?(path = "BENCH_o2.json") () =
  rule "Trajectory — instrumented runs (BENCH_o2.json)";
  let workloads =
    [ "lusearch"; "memcached"; "zookeeper"; "redis"; "cyclic"; "chainstorm" ]
  in
  let pta_runs =
    List.map
      (fun name ->
        let p = O2_workloads.Synth.program (O2_workloads.Synth.find name) in
        let oracle_dt =
          median_time ~runs:5 (fun () -> ignore (Oracle.analyze p))
        in
        let serial_dt =
          median_time ~runs:5 (fun () -> ignore (Solver.analyze ~jobs:1 p))
        in
        let par_dt =
          median_time ~runs:5 (fun () -> ignore (Solver.analyze ~jobs:4 p))
        in
        let r = Solver.analyze ~jobs:4 p in
        let m = r.Solver.stats in
        let facts_equal =
          Solver.fingerprint r = Oracle.fingerprint (Oracle.analyze p)
        in
        let speedup = oracle_dt /. max 1e-9 par_dt in
        pf
          "pta:%-9s oracle %.4fs  jobs=1 %.4fs  jobs=4 %.4fs  %.2fx  \
           iters %d  scc %d  facts %s\n"
          name oracle_dt serial_dt par_dt speedup
          (O2_util.Metrics.get m "pta.worklist_iters")
          (O2_util.Metrics.get m "pta.scc_collapsed")
          (if facts_equal then "equal" else "DIFFER");
        Printf.sprintf
          {|{"bench":"pta:%s","policy":"O2","oracle_ms":%.3f,"jobs1_ms":%.3f,"par_ms":%.3f,"speedup":%.2f,"worklist_iters":%d,"scc_collapsed":%d,"facts_equal":%b}|}
          name (oracle_dt *. 1e3) (serial_dt *. 1e3) (par_dt *. 1e3) speedup
          (O2_util.Metrics.get m "pta.worklist_iters")
          (O2_util.Metrics.get m "pta.scc_collapsed")
          facts_equal)
      workloads
  in
  let runs =
    List.map
      (fun name ->
        let p = O2_workloads.Synth.program (O2_workloads.Synth.find name) in
        let cfg = O2.Config.with_metrics O2.Config.default in
        let r = O2.run cfg p in
        let m =
          match r.O2.config.O2.Config.metrics with
          | Some m -> m
          | None -> assert false
        in
        pf "%-12s %3d races  %.3fs\n" name (O2.n_races r) r.O2.elapsed;
        Printf.sprintf
          {|{"bench":"%s","policy":"O2","elapsed":%.6f,"races":%d,"metrics":%s}|}
          name r.O2.elapsed (O2.n_races r) (O2_util.Metrics.to_json m))
      workloads
  in
  let corpus_dir = "examples/programs" in
  let corpus_runs =
    if not (Sys.file_exists corpus_dir && Sys.is_directory corpus_dir) then []
    else
      match O2_batch.enumerate [ corpus_dir ] with
      | Error _ | Ok [] -> []
      | Ok files ->
          let r = O2_batch.run { O2_batch.default with O2_batch.jobs = 2 } files in
          pf "%-12s %3d races  %.3fs (%d files, %d failed)\n" "corpus"
            (O2_batch.total_races r) r.O2_batch.b_elapsed (List.length files)
            (O2_batch.n_failed r);
          List.map
            (fun (e : O2_batch.entry) ->
              Printf.sprintf
                {|{"bench":"corpus:%s","policy":"O2-batch","elapsed":%.6f,"races":%d,"status":"%s"}|}
                (Filename.basename e.O2_batch.e_file)
                e.O2_batch.e_elapsed e.O2_batch.e_races
                (match e.O2_batch.e_status with
                | `Ok -> "ok"
                | `Error _ -> "error"
                | `Timeout _ -> "timeout"))
            r.O2_batch.b_entries
  in
  let fuzz_runs =
    (* scaled-generator row: a fixed (seed, count) slice of the fuzz
       corpus is a deterministic workload, so its aggregate race total
       gates generator and engine drift the same way the named workloads
       do. No wall budget — only the deterministic step ceiling — so the
       row is machine-independent. *)
    let gates =
      { O2_fuzz.Fuzz.default_gates with O2_fuzz.Fuzz.g_wall = None }
    in
    let r = O2_fuzz.Fuzz.sweep ~gates ~seed:7 ~count:12 () in
    let ok, timeouts, divergent = O2_fuzz.Fuzz.counts r in
    let races =
      List.fold_left
        (fun a (e : O2_fuzz.Fuzz.entry) -> a + e.O2_fuzz.Fuzz.f_races)
        0 r.O2_fuzz.Fuzz.r_entries
    in
    pf "%-12s %3d races  %.3fs (%d programs, %d ok, %d divergent)\n"
      "fuzz:sweep" races r.O2_fuzz.Fuzz.r_elapsed r.O2_fuzz.Fuzz.r_count ok
      divergent;
    [
      Printf.sprintf
        {|{"bench":"fuzz:sweep","policy":"O2-diff","elapsed":%.6f,"programs":%d,"ok":%d,"timeouts":%d,"divergent":%d,"races":%d}|}
        r.O2_fuzz.Fuzz.r_elapsed r.O2_fuzz.Fuzz.r_count ok timeouts divergent
        races;
    ]
  in
  let runs = runs @ pta_runs @ stage_rows () @ corpus_runs @ fuzz_runs in
  let oc = open_out path in
  Printf.fprintf oc {|{"schema":"bench_o2/v1","runs":[%s]}|}
    (String.concat "," runs);
  output_char oc '\n';
  close_out oc;
  pf "wrote %s (%d runs)\n" path (List.length runs)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table kernel.          *)

let bechamel_suite () =
  rule "Bechamel micro-benchmarks (one per table)";
  let open Bechamel in
  let p_small =
    O2_workloads.Synth.program (O2_workloads.Synth.find "lusearch")
  in
  let p_med =
    O2_workloads.Synth.program (O2_workloads.Synth.find "memcached")
  in
  let a_med = Solver.analyze ~policy:(Context.Korigin 1) p_med in
  let g_med = O2_shb.Graph.build a_med in
  let model = O2_workloads.Models.find "memcached" in
  let p_model = model.program () in
  let tests =
    [
      (* Table 3/5 kernel: the OPA solver *)
      Test.make ~name:"table5_opa_solve"
        (Staged.stage (fun () ->
             ignore (Solver.analyze ~policy:(Context.Korigin 1) p_small)));
      (* Table 5 baseline: 2-CFA on the same program *)
      Test.make ~name:"table5_2cfa_solve"
        (Staged.stage (fun () ->
             ignore (Solver.analyze ~policy:(Context.Kcfa 2) p_small)));
      (* Table 6 kernel: whole O2 pipeline on the C-style app *)
      Test.make ~name:"table6_o2_pipeline"
        (Staged.stage (fun () -> ignore (O2.run O2.Config.default p_med)));
      (* Table 7 kernel: OSA scan on solved facts *)
      Test.make ~name:"table7_osa_scan"
        (Staged.stage (fun () -> ignore (O2_osa.Osa.run a_med)));
      (* Table 8 kernel: race detection on a built SHB graph *)
      Test.make ~name:"table8_detect"
        (Staged.stage (fun () -> ignore (O2_race.Detect.run g_med)));
      (* Table 9 kernel: SHB construction *)
      Test.make ~name:"table9_shb_build"
        (Staged.stage (fun () -> ignore (O2_shb.Graph.build a_med)));
      (* Table 10 kernel: full pipeline on a real-world model *)
      Test.make ~name:"table10_model"
        (Staged.stage (fun () -> ignore (O2_race.Detect.analyze p_model)));
      (* ablation kernel: naive pairwise detection *)
      Test.make ~name:"ablation_naive_detect"
        (Staged.stage (fun () -> ignore (O2_race.Naive.run g_med)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all (Benchmark.cfg ~quota ()) [ instance ] test
  in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      instance raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> pf "%-26s %12.0f ns/run\n" name est
          | _ -> pf "%-26s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let run_tables () =
  table3 ();
  table5 O2_workloads.Synth.(dacapo @ android @ distributed);
  table6 ();
  table7 ();
  table8 ();
  table9 ();
  table10 ();
  ablations ()

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match mode with
  | "tables" ->
      run_tables ();
      trajectory ()
  | "bech" -> bechamel_suite ()
  | "trajectory" -> trajectory ()
  | _ ->
      run_tables ();
      trajectory ();
      bechamel_suite ());
  pf "\nbench: done\n"
