(* The o2 command-line driver.

   o2 analyze FILE.cir [--policy P] [--naive] [--json] [--stats] ...
   o2 batch DIR|FILE... [--jobs N] [--deadline S] [--max-steps N] [--cache F]
                                 corpus run with per-file fault isolation
   o2 osa FILE.cir               origin-sharing report
   o2 shb FILE.cir               dump the SHB graph
   o2 racerd FILE.cir            the syntactic baseline
   o2 deadlock FILE.cir          lock-order cycles
   o2 oversync FILE.cir          removable locks
   o2 pts FILE.cir C.m.v         points-to query
   o2 dot FILE.cir -g KIND      Graphviz (shb | origins | callgraph)
   o2 origins FILE.cir           entry points + attributes (Figure 2 view)
   o2 diff OLD.cir NEW.cir       differential report (exit 2 on regressions)
   o2 android APP.cir            lifecycle harness for main-less apps (4.2)
   o2 run FILE.cir [--seed N] [--dynamic] [--trace]
   o2 explore FILE.cir           systematic schedule DFS (+ POR)
   o2 dump FILE.cir              parse + pretty-print
   o2 fuzz [--seed N] [--count N] [--jobs N]
                                 differential fuzzing across all engines
   o2 model [NAME] [--fixed]     built-in Table 10 race models            *)

open Cmdliner

let policy_conv =
  (* one source of truth for spellings and the k >= 1 validation: a
     non-positive k used to slip through here and silently degrade to a
     context-insensitive analysis inside Context.truncate *)
  let parse s =
    match O2_pta.Context.policy_of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  let print ppf p =
    Format.pp_print_string ppf (O2_pta.Context.policy_name p)
  in
  Arg.conv (parse, print)

let jobs_conv =
  (* shared by analyze and batch: the same validation story as
     [policy_conv] — a non-positive count is a usage error at the CLI
     boundary, not something to patch up downstream *)
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "jobs must be >= 1, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "expected a worker count, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let entry_conv =
  let parse s =
    match O2_frontend.Parser.entry_of_string s with
    | Ok e -> Ok e
    | Error msg -> Error (`Msg msg)
  in
  let print ppf e =
    Format.pp_print_string ppf (O2_frontend.Parser.entry_name e)
  in
  Arg.conv (parse, print)

let entry_arg =
  Arg.(
    value
    & opt entry_conv O2_frontend.Parser.Auto
    & info [ "entry" ] ~docv:"ENTRY"
        ~doc:
          "Entry-point selection: $(b,auto) (default: a program whose first \
           token is $(b,main) runs from it, anything else gets the Android \
           lifecycle harness), $(b,main) (require a main program), \
           $(b,android) or $(b,android:)$(i,CLASS) (force the harness, \
           optionally naming the main activity).")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"CIR source file")

let policy_arg =
  Arg.(
    value
    & opt policy_conv (O2_pta.Context.Korigin 1)
    & info [ "policy"; "p" ] ~docv:"POLICY"
        ~doc:
          "Pointer-analysis policy: o2 (default), 0-ctx, $(i,k)-cfa, \
           $(i,k)-obj, $(i,k)-origin.")

let serial_arg =
  Arg.(
    value & flag
    & info [ "no-serial-events" ]
        ~doc:
          "Do not serialize event handlers under the implicit dispatcher \
           lock (§4.2 treats Android events as dispatched by one thread).")

let load ?entry file = O2_frontend.Parser.parse_file ?entry file

let handle_errors f =
  try f () with
  | O2_frontend.Parser.Parse_error (msg, line) ->
      Printf.eprintf "parse error at line %d: %s\n" line msg;
      exit 1
  | O2_frontend.Lexer.Lex_error (msg, line) ->
      Printf.eprintf "lexical error at line %d: %s\n" line msg;
      exit 1
  | O2_ir.Program.Ill_formed msg ->
      Printf.eprintf "ill-formed program: %s\n" msg;
      exit 1
  | O2_ir.Harness.No_activity msg ->
      Printf.eprintf "harness error: %s\n" msg;
      exit 1
  | Sys_error msg ->
      (* e.g. an unreadable file that passed Cmdliner's existence check *)
      Printf.eprintf "error: %s\n" msg;
      exit 1

(* ---- analyze ---- *)

let analyze_cmd =
  let naive =
    Arg.(
      value & flag
      & info [ "naive" ] ~doc:"Use the unoptimized pairwise-DFS detector.")
  in
  let no_region =
    Arg.(
      value & flag
      & info [ "no-lock-region" ] ~doc:"Disable lock-region access merging.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the race report as JSON on stdout.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Attach a metrics sink to the pipeline and print per-stage \
             timers and counters (PAG sizes, worklist iterations, OSA \
             sharing, lockset-cache hit rate, race checks). With $(b,--json) \
             the report gains a $(b,metrics) field.")
  in
  let jobs =
    Arg.(
      value & opt jobs_conv 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run the pipeline on $(docv) worker domains (default 1 = \
             serial): the pointer-analysis worklist is sharded $(docv) \
             ways by origin and the per-target race checks fan out over \
             the same domains. Output is byte-identical to a serial run. \
             Ignored by $(b,--naive).")
  in
  let run file entry policy no_serial naive no_region json stats jobs =
    handle_errors @@ fun () ->
    let p = load ~entry file in
    let serial_events = not no_serial in
    let format = if json then `Json else `Text in
    let metrics = if stats then Some (O2_util.Metrics.create ()) else None in
    if naive then begin
      let a, g, report =
        O2_race.Naive.analyze ~policy ~serial_events ?metrics p
      in
      print_endline
        (O2_race.Report.render ~format ?metrics
           { O2_race.Report.solver = a; graph = g; report })
    end
    else begin
      let cfg =
        {
          O2.Config.policy;
          serial_events;
          lock_region = not no_region;
          metrics;
          jobs;
          budget = None;
        }
      in
      let r = O2.run cfg p in
      print_endline (O2.render ~format r)
    end
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Detect data races in a CIR program")
    Term.(
      const run $ file_arg $ entry_arg $ policy_arg $ serial_arg $ naive
      $ no_region $ json $ stats $ jobs)

(* ---- batch ---- *)

let batch_cmd =
  let paths =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "CIR files and/or directories (a directory contributes its \
             $(b,.cir) files, non-recursively).")
  in
  let jobs =
    Arg.(
      value & opt jobs_conv 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Analyze up to $(docv) files concurrently on worker domains. \
             Per-file detection stays serial, so per-file reports are \
             byte-identical to serial $(b,o2 analyze) runs and the \
             aggregate report is deterministic for any $(docv).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the aggregate report (and the embedded per-file reports) \
             as JSON (schema $(b,o2_batch/v1)).")
  in
  let per_file =
    Arg.(
      value & flag
      & info [ "per-file" ]
          ~doc:
            "In text mode, print every successful file's full race report \
             (exactly the serial $(b,o2 analyze) output) before the \
             aggregate table.")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-file wall-clock budget. A file that exceeds it is reported \
             as a $(b,timeout) entry; the rest of the corpus still runs.")
  in
  let max_steps =
    Arg.(
      value & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Per-file ceiling on pointer-analysis worklist steps; exceeding \
             it yields a $(b,timeout) entry.")
  in
  let cache =
    Arg.(
      value & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:
            "On-disk result cache. Files whose source digest and analysis \
             configuration match a cached result are served from it \
             (reported as $(b,cached)) without re-analysis.")
  in
  let run paths entry policy no_serial jobs json per_file deadline max_steps
      cache =
    let cfg =
      {
        O2_batch.default with
        O2_batch.policy;
        entry;
        serial_events = not no_serial;
        jobs;
        format = (if json then `Json else `Text);
        wall = deadline;
        max_steps;
        cache_file = cache;
      }
    in
    match O2_batch.enumerate paths with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | Ok [] ->
        Printf.eprintf "error: no .cir files found under the given paths\n";
        exit 2
    | Ok files ->
        let report = O2_batch.run cfg files in
        print_string (O2_batch.render ~per_file report);
        exit (O2_batch.exit_code report)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Analyze a corpus of CIR files with per-file fault isolation and \
          resource budgets"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Every file runs inside a fault boundary: parse/lexical \
              errors, ill-formed programs, uncaught analysis exceptions \
              and exhausted budgets each produce a structured per-file \
              failure entry instead of aborting the corpus run.";
           `S "EXIT STATUS";
           `P "0 when every file analyzed successfully;";
           `P "1 when at least one file failed or exceeded its budget;";
           `P "2 on usage errors (no files found, unreadable path).";
         ])
    Term.(
      const run $ paths $ entry_arg $ policy_arg $ serial_arg $ jobs $ json
      $ per_file $ deadline $ max_steps $ cache)

(* ---- osa ---- *)

let osa_cmd =
  let run file policy =
    handle_errors @@ fun () ->
    let p = load file in
    let r = O2.run { O2.Config.default with O2.Config.policy } p in
    Format.printf "%a@." (O2.pp_sharing r) ()
  in
  Cmd.v
    (Cmd.info "osa" ~doc:"Print the origin-sharing analysis report")
    Term.(const run $ file_arg $ policy_arg)

(* ---- shb ---- *)

let shb_cmd =
  let run file policy no_serial =
    handle_errors @@ fun () ->
    let p = load file in
    let a = O2_pta.Solver.analyze ~policy p in
    let g = O2_shb.Graph.build ~serial_events:(not no_serial) a in
    Format.printf "%a@." O2_shb.Graph.pp g
  in
  Cmd.v
    (Cmd.info "shb" ~doc:"Dump the static happens-before graph")
    Term.(const run $ file_arg $ policy_arg $ serial_arg)

(* ---- racerd ---- *)

let racerd_cmd =
  let run file =
    handle_errors @@ fun () ->
    let p = load file in
    let report = O2_racerd.Racerd.analyze p in
    Format.printf "%d warning(s)@." (O2_racerd.Racerd.n_warnings report);
    List.iter
      (fun w -> Format.printf "%a@." O2_racerd.Racerd.pp_warning w)
      report.O2_racerd.Racerd.warnings
  in
  Cmd.v
    (Cmd.info "racerd"
       ~doc:"Run the RacerD-style syntactic baseline detector")
    Term.(const run $ file_arg)

(* ---- pts ---- *)

let pts_cmd =
  let target =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CLASS.METHOD.VAR"
          ~doc:"The local variable to query, e.g. Worker.run.d")
  in
  let run file policy target =
    handle_errors @@ fun () ->
    let p = load file in
    match String.split_on_char '.' target with
    | [ cls; meth; var ] ->
        let a = O2_pta.Solver.analyze ~policy p in
        let objs = O2_pta.Query.points_to a ~cls ~meth ~var in
        if objs = [] then
          Format.printf "%s: empty points-to set (unreached or never assigned)@."
            target
        else
          List.iter
            (fun oi -> Format.printf "%a@." O2_pta.Query.pp_obj_info oi)
            objs
    | _ ->
        Printf.eprintf "expected CLASS.METHOD.VAR, got %s\n" target;
        exit 1
  in
  Cmd.v
    (Cmd.info "pts" ~doc:"Print the points-to set of a local variable")
    Term.(const run $ file_arg $ policy_arg $ target)

(* ---- dot ---- *)

let dot_cmd =
  let what =
    Arg.(
      value
      & opt (enum [ ("shb", `Shb); ("origins", `Origins); ("callgraph", `Cg) ])
          `Shb
      & info [ "graph"; "g" ] ~docv:"KIND"
          ~doc:"Which graph to export: $(b,shb), $(b,origins) or \
                $(b,callgraph).")
  in
  let run file policy what =
    handle_errors @@ fun () ->
    let p = load file in
    let a = O2_pta.Solver.analyze ~policy p in
    match what with
    | `Shb ->
        let g = O2_shb.Graph.build a in
        Format.printf "%a" O2_shb.Dot.shb g
    | `Origins ->
        let g = O2_shb.Graph.build a in
        Format.printf "%a" O2_shb.Dot.origins g
    | `Cg -> Format.printf "%a" O2_shb.Dot.callgraph a
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export the SHB / origin / call graph as Graphviz")
    Term.(const run $ file_arg $ policy_arg $ what)

(* ---- deadlock ---- *)

let deadlock_cmd =
  let run file policy =
    handle_errors @@ fun () ->
    let p = load file in
    let report = O2_race.Deadlock.analyze ~policy p in
    Format.printf "%d potential deadlock(s)@."
      (O2_race.Deadlock.n_deadlocks report);
    List.iter
      (fun c -> Format.printf "%a@." O2_race.Deadlock.pp_cycle c)
      report.O2_race.Deadlock.cycles
  in
  Cmd.v
    (Cmd.info "deadlock" ~doc:"Detect lock-order cycles (potential deadlocks)")
    Term.(const run $ file_arg $ policy_arg)

(* ---- oversync ---- *)

let oversync_cmd =
  let run file policy =
    handle_errors @@ fun () ->
    let p = load file in
    let report = O2_race.Oversync.analyze ~policy p in
    Format.printf "%d over-synchronization finding(s)@."
      (O2_race.Oversync.n_findings report);
    List.iter
      (fun f -> Format.printf "%a@." O2_race.Oversync.pp_finding f)
      report.O2_race.Oversync.findings
  in
  Cmd.v
    (Cmd.info "oversync"
       ~doc:"Find locks that only guard origin-local data (removable)")
    Term.(const run $ file_arg $ policy_arg)

(* ---- origins ---- *)

let origins_cmd =
  let run file policy =
    handle_errors @@ fun () ->
    let p = load file in
    let a = O2_pta.Solver.analyze ~policy p in
    let pag = a.O2_pta.Solver.pag in
    Format.printf "%d origin(s) beside main:@." (O2_pta.Solver.n_origins a);
    Array.iteri
      (fun i og ->
        if i > 0 then begin
          Format.printf "  %a" O2_pta.Context.pp_origin og;
          let attrs = O2_pta.Solver.origin_attrs a i in
          if attrs <> [] then begin
            Format.printf "  attributes:";
            List.iter
              (fun oid ->
                let o = O2_pta.Pag.obj pag oid in
                Format.printf " %s@%d" o.O2_pta.Pag.ob_class o.O2_pta.Pag.ob_site)
              attrs
          end;
          Format.printf "@."
        end)
      (O2_pta.Solver.origins a);
    Array.iter
      (fun (sp : O2_pta.Solver.spawn) ->
        if sp.sp_kind <> `Main then
          Format.printf "  spawn: %s@."
            (O2_race.Report.origin_name a sp.sp_id))
      (a.O2_pta.Solver.spawns)
  in
  Cmd.v
    (Cmd.info "origins"
       ~doc:
         "List the origins and their attributes (the Figure 2 view: entry \
          point + data pointers)")
    Term.(const run $ file_arg $ policy_arg)

(* ---- diff ---- *)

let diff_cmd =
  (* plain strings, not [Arg.file]: a missing path must flow through the
     per-side fault boundary below (one stderr line, exit 1), not
     cmdliner's usage error *)
  let old_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc:"Old version")
  in
  let new_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc:"New version")
  in
  (* each side gets its own fault boundary, batch-style: a broken version
     becomes a structured error entry plus one stderr line instead of
     aborting the whole comparison *)
  let side name file policy =
    match O2_race.Diff.keys ~policy (load file) with
    | ks -> Ok ks
    | exception O2_frontend.Parser.Parse_error (msg, line) ->
        Error (Printf.sprintf "%s %s: parse error at line %d: %s" name file line msg)
    | exception O2_frontend.Lexer.Lex_error (msg, line) ->
        Error
          (Printf.sprintf "%s %s: lexical error at line %d: %s" name file line msg)
    | exception O2_ir.Program.Ill_formed msg ->
        Error (Printf.sprintf "%s %s: ill-formed program: %s" name file msg)
    | exception O2_ir.Harness.No_activity msg ->
        Error (Printf.sprintf "%s %s: harness error: %s" name file msg)
    | exception Sys_error msg -> Error (Printf.sprintf "%s %s: %s" name file msg)
    | exception e ->
        Error
          (Printf.sprintf "%s %s: analyzer failure: %s" name file
             (Printexc.to_string e))
  in
  let run old_f new_f policy =
    match (side "old" old_f policy, side "new" new_f policy) with
    | Ok old_keys, Ok new_keys ->
        let d = O2_race.Diff.align old_keys new_keys in
        Format.printf "%a@." O2_race.Diff.pp d;
        if d.O2_race.Diff.introduced <> [] then exit 2
    | a, b ->
        (match a with Ok _ -> () | Error msg -> Printf.eprintf "error: %s\n" msg);
        (match b with Ok _ -> () | Error msg -> Printf.eprintf "error: %s\n" msg);
        exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare the race reports of two program versions (exit 2 when \
          races were introduced)"
       ~man:
         [
           `S "EXIT STATUS";
           `P "0 when both versions analyzed and no race was introduced;";
           `P "1 when either version failed to parse or analyze;";
           `P "2 when the comparison succeeded but races were introduced.";
         ])
    Term.(const run $ old_arg $ new_arg $ policy_arg)

(* ---- android ---- *)

let android_cmd =
  let activity =
    Arg.(
      value
      & opt (some string) None
      & info [ "activity" ] ~docv:"CLASS"
          ~doc:
            "The main activity to generate the harness from (default: \
             MainActivity, else the first Activity subclass).")
  in
  let run file policy activity =
    handle_errors @@ fun () ->
    let ic = open_in_bin file in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let classes = O2_frontend.Parser.parse_classes ~file src in
    match O2_ir.Harness.android ?main_activity:activity classes with
    | p ->
        let r = O2.run { O2.Config.default with O2.Config.policy } p in
        Format.printf "%a@." (O2.pp_report r) ()
    | exception O2_ir.Harness.No_activity msg ->
        Printf.eprintf "harness error: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "android"
       ~doc:
         "Analyze an Android-style app (class declarations without main): \
          generate the lifecycle harness (Section 4.2) and detect races")
    Term.(const run $ file_arg $ policy_arg $ activity)

(* ---- run ---- *)

let pp_event ppf (e : O2_runtime.Interp.event) =
  match e with
  | Eread { task; addr; field; _ } ->
      Format.fprintf ppf "[t%d] read  #%d.%s" task addr field
  | Ewrite { task; addr; field; _ } ->
      Format.fprintf ppf "[t%d] write #%d.%s" task addr field
  | Esread { task; cls; field; _ } ->
      Format.fprintf ppf "[t%d] read  %s::%s" task cls field
  | Eswrite { task; cls; field; _ } ->
      Format.fprintf ppf "[t%d] write %s::%s" task cls field
  | Eacquire { task; lock } -> Format.fprintf ppf "[t%d] lock #%d" task lock
  | Erelease { task; lock } -> Format.fprintf ppf "[t%d] unlock #%d" task lock
  | Espawn { parent; child } ->
      Format.fprintf ppf "[t%d] spawn t%d" parent child
  | Ejoin { parent; child } -> Format.fprintf ppf "[t%d] join t%d" parent child
  | Esignal { task; sem } -> Format.fprintf ppf "[t%d] signal #%d" task sem
  | Ewait { task; sem } -> Format.fprintf ppf "[t%d] wait #%d" task sem

let run_cmd =
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Scheduler RNG seed.")
  in
  let dynamic =
    Arg.(
      value & flag
      & info [ "dynamic" ]
          ~doc:"Check the execution with the vector-clock race detector.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Print every memory/synchronization event.")
  in
  let run file seed dynamic trace =
    handle_errors @@ fun () ->
    let p = load file in
    if dynamic then begin
      let races = O2_runtime.Dynrace.check ~seeds:[ seed ] p in
      Printf.printf "%d dynamic race(s)\n" (List.length races);
      List.iter
        (fun (r : O2_runtime.Dynrace.race) ->
          Printf.printf "  race on %s (stmts %d and %d)\n" r.d_field r.d_sid_a
            r.d_sid_b)
        races
    end
    else begin
      let on_event =
        if trace then fun e -> Format.printf "%a@." pp_event e
        else fun _ -> ()
      in
      let o = O2_runtime.Interp.run ~seed ~on_event p in
      Printf.printf "executed %d steps, %s\n" o.O2_runtime.Interp.steps
        (if o.O2_runtime.Interp.deadlocked then "DEADLOCK"
         else if o.O2_runtime.Interp.completed then "completed"
         else "step limit reached")
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a CIR program on the concrete interpreter")
    Term.(const run $ file_arg $ seed $ dynamic $ trace)

(* ---- explore ---- *)

let explore_cmd =
  let max_runs =
    Arg.(
      value & opt int 2000
      & info [ "max-runs" ] ~doc:"Execution budget for the DFS.")
  in
  let run file max_runs =
    handle_errors @@ fun () ->
    let p = load file in
    let r = O2_runtime.Explore.explore ~max_runs p in
    Printf.printf "%d run(s)%s, %d race(s), %d deadlocking schedule(s)\n"
      r.O2_runtime.Explore.runs
      (if r.O2_runtime.Explore.exhaustive then " (exhaustive)" else "")
      (List.length r.O2_runtime.Explore.races)
      r.O2_runtime.Explore.deadlocks;
    List.iter
      (fun (d : O2_runtime.Dynrace.race) ->
        Printf.printf "  race on %s (stmts %d and %d)\n" d.d_field d.d_sid_a
          d.d_sid_b)
      r.O2_runtime.Explore.races
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematically explore schedules (DFS + partial-order reduction) \
          and report every dynamically-realizable race and deadlock")
    Term.(const run $ file_arg $ max_runs)

(* ---- dump ---- *)

let dump_cmd =
  let run file =
    handle_errors @@ fun () ->
    let p = load file in
    Format.printf "%a" O2_ir.Pp.pp_program p
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Parse, resolve and pretty-print a CIR program")
    Term.(const run $ file_arg)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Corpus seed. Program $(i,i) of a run is generated \
             deterministically from (seed, $(i,i)), independent of \
             $(b,--jobs).")
  in
  let count =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let jobs =
    Arg.(
      value & opt jobs_conv 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Check up to $(docv) programs concurrently on worker domains. \
             Results are deterministic for any $(docv).")
  in
  let deadline =
    Arg.(
      value & opt (some float) (Some 60.0)
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-program wall-clock budget (default 60); an exceeded budget \
             is a $(b,timeout) entry, not a divergence.")
  in
  let max_steps =
    Arg.(
      value & opt (some int) (Some 20_000_000)
      & info [ "max-steps" ] ~docv:"N"
          ~doc:"Per-program pointer-analysis worklist step ceiling.")
  in
  let out =
    Arg.(
      value & opt string "fuzz-out"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for minimized $(b,.cir) reproducers.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the sweep report as JSON (o2_fuzz/v1).")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Write reproducers from the original specs without shrinking.")
  in
  let run seed count jobs policy deadline max_steps out json no_shrink =
    let gates =
      {
        O2_fuzz.Fuzz.default_gates with
        O2_fuzz.Fuzz.g_policy = Some policy;
        g_wall = deadline;
        g_max_steps = max_steps;
      }
    in
    let r = O2_fuzz.Fuzz.sweep ~jobs ~gates ~seed ~count () in
    let divergent = O2_fuzz.Fuzz.divergent r in
    List.iter
      (fun (e : O2_fuzz.Fuzz.entry) ->
        let e =
          if no_shrink then e
          else
            let classes = O2_fuzz.Fuzz.divergence_classes e.f_status in
            let spec = O2_fuzz.Fuzz.shrink ~gates ~classes e.f_spec in
            { e with O2_fuzz.Fuzz.f_spec = spec }
        in
        let path = O2_fuzz.Fuzz.write_reproducer ~dir:out ~seed:r.r_seed e in
        Printf.eprintf "o2 fuzz: divergence at index %d, reproducer %s\n"
          e.O2_fuzz.Fuzz.f_index path)
      divergent;
    print_string
      (O2_fuzz.Fuzz.render ~format:(if json then `Json else `Text) r);
    exit (O2_fuzz.Fuzz.exit_code r)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate CIR programs and cross-check every \
          detection engine"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Generates $(b,--count) programs from the QCheck shape space \
              and drives each through the agreement-class differential \
              harness: flat-IR vs tree-walking oracle parity, naive = \
              optimized race sites, lock-region merge containment, the \
              RacerD must-race subset and dynamic-witness containment, \
              plus a printer/parser round trip. Any divergence is shrunk \
              to a minimized $(b,.cir) reproducer under $(b,--out).";
           `S "EXIT STATUS";
           `P "0 when every program agreed (timeouts are reported but OK);";
           `P "1 when at least one divergence was found.";
         ])
    Term.(
      const run $ seed $ count $ jobs $ policy_arg $ deadline $ max_steps
      $ out $ json $ no_shrink)

(* ---- model ---- *)

let model_cmd =
  let model_name =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Model name (omit to list all).")
  in
  let fixed =
    Arg.(value & flag & info [ "fixed" ] ~doc:"Analyze the repaired variant.")
  in
  let run name fixed =
    match name with
    | None ->
        List.iter
          (fun (m : O2_workloads.Models.model) ->
            Printf.printf "%-10s %d race(s): %s\n" m.name m.expected_races
              m.describe)
          O2_workloads.Models.all
    | Some n -> (
        match O2_workloads.Models.find n with
        | m ->
            let p = if fixed then m.fixed () else m.program () in
            let r = O2.run O2.Config.default p in
            Format.printf "%a@." (O2.pp_report r) ()
        | exception Not_found ->
            Printf.eprintf "unknown model %s\n" n;
            exit 1)
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:"Analyze a built-in real-world race model (Table 10)")
    Term.(const run $ model_name $ fixed)

let () =
  let info =
    Cmd.info "o2" ~version:"1.0.0"
      ~doc:"Static race detection with origins (PLDI 2021 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd; batch_cmd; osa_cmd; shb_cmd; racerd_cmd;
            deadlock_cmd; oversync_cmd; pts_cmd; dot_cmd; origins_cmd;
            diff_cmd; android_cmd; run_cmd; explore_cmd; dump_cmd; fuzz_cmd;
            model_cmd;
          ]))
